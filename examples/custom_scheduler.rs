//! Implementing your own scheduler against the `Scheduler` trait.
//!
//! The paper's design goal 1 — "do not change current interfaces to the
//! scheduler" — is what makes the designs interchangeable. This example
//! shows **both** routes to a custom design:
//!
//! 1. the native route — implement the `Scheduler` trait directly (a
//!    deliberately naive FIFO scheduler in ~60 lines below), and
//! 2. the policy route — write a few lines of `.pol` text and let the
//!    `elsc-policy` runtime verify and interpret it (the bundled
//!    round-robin program here). No Rust, no rebuild; the interpreter
//!    charges `CostKind::PolicyInsn` per executed node and the machine's
//!    watchdog ejects a program that misbehaves mid-run.
//!
//! Both run the same synthetic stress workload beside ELSC and reg.
//!
//! ```sh
//! cargo run --release --example custom_scheduler
//! ```

use elsc::ElscScheduler;
use elsc_ktask::{CpuId, Lists, TaskState, Tid};
use elsc_machine::MachineConfig;
use elsc_policy::PolicyScheduler;
use elsc_sched_api::{LockPlan, SchedCtx, Scheduler};
use elsc_simcore::CostKind;
use elsc_workloads::stress::{self, StressConfig};

/// A strict FIFO run queue: no goodness, no priorities, no affinity.
/// Don't use this at home — it ignores quanta entirely.
#[derive(Default)]
struct FifoScheduler {
    lists: Option<Lists>,
    nr: usize,
}

impl FifoScheduler {
    fn new() -> Self {
        FifoScheduler {
            lists: Some(Lists::new(1)),
            nr: 0,
        }
    }

    fn lists_mut(&mut self) -> &mut Lists {
        self.lists.as_mut().expect("initialized")
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn add_to_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge(ctx.costs, CostKind::ListOp);
        self.lists_mut().insert_back(ctx.tasks, 0, tid);
        self.nr += 1;
    }

    fn del_from_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge(ctx.costs, CostKind::ListOp);
        self.lists_mut().remove(ctx.tasks, tid);
        self.nr -= 1;
    }

    fn move_first_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge_n(ctx.costs, CostKind::ListOp, 2);
        let lists = self.lists_mut();
        lists.remove(ctx.tasks, tid);
        lists.insert_front(ctx.tasks, 0, tid);
    }

    fn move_last_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge_n(ctx.costs, CostKind::ListOp, 2);
        let lists = self.lists_mut();
        lists.remove(ctx.tasks, tid);
        lists.insert_back(ctx.tasks, 0, tid);
    }

    fn schedule(&mut self, ctx: &mut SchedCtx<'_>, cpu: CpuId, prev: Tid, idle: Tid) -> Tid {
        ctx.meter.charge(ctx.costs, CostKind::SchedBase);
        ctx.stats.cpu_mut(cpu).sched_calls += 1;
        // Requeue or drop the previous task. A running task carries the
        // ELSC-style "on queue but off list" marker; clear it first.
        if prev != idle {
            let runnable = ctx.tasks.task(prev).state == TaskState::Running;
            let marked = ctx.tasks.task(prev).on_runqueue() && !ctx.tasks.task(prev).in_list();
            if marked {
                ctx.tasks.task_mut(prev).run_list = elsc_ktask::ListNode::detached();
            }
            if runnable && !ctx.tasks.task(prev).on_runqueue() {
                self.add_to_runqueue(ctx, prev);
            } else if !runnable && ctx.tasks.task(prev).on_runqueue() {
                self.del_from_runqueue(ctx, prev);
            }
            ctx.tasks.task_mut(prev).policy.yielded = false;
        }
        // Pop the head, skipping tasks running elsewhere.
        let mut cur = self.lists_mut().first(0);
        let mut next = idle;
        while let Some(idx) = cur {
            let p = ctx.tasks.by_index(idx as usize);
            ctx.stats.cpu_mut(cpu).tasks_examined += 1;
            ctx.meter.charge(ctx.costs, CostKind::GoodnessEval);
            if !(ctx.cfg.smp && p.has_cpu && p.processor != cpu) {
                next = p.tid;
                break;
            }
            cur = self.lists_mut().next_task(ctx.tasks, idx);
        }
        if next != idle {
            self.del_from_runqueue(ctx, next);
            // Keep the on-queue marker convention so re-entry works.
            ctx.tasks.task_mut(next).run_list.next = elsc_ktask::Link::Head(0);
        } else {
            ctx.stats.cpu_mut(cpu).idle_scheduled += 1;
        }
        if next != prev {
            ctx.tasks.task_mut(prev).has_cpu = false;
        }
        ctx.tasks.task_mut(next).has_cpu = true;
        next
    }

    fn nr_running(&self) -> usize {
        self.nr
    }

    /// The locking regime this design wants. One shared FIFO list means
    /// one lock domain — the trait default is already `Global`, so this
    /// override is purely illustrative. A design with genuinely
    /// independent per-CPU queues (see `MultiQueueScheduler`) declares
    /// `LockPlan::PerCpu` instead, and calls
    /// `ctx.lock_queue_domain(victim)` before touching another CPU's
    /// queue so the machine can charge the cross-domain lock traffic.
    fn lock_plan(&self, _nr_cpus: usize) -> LockPlan {
        LockPlan::Global
    }
}

fn main() {
    let cfg = StressConfig {
        tasks: 300,
        burst: 50_000,
        rounds: 40,
        shared_mm: true,
    };
    println!(
        "stress: {} spinners x {} rounds under four schedulers\n",
        cfg.tasks, cfg.rounds
    );
    let fifo = stress::run(
        MachineConfig::up().with_max_secs(600.0),
        Box::new(FifoScheduler::new()),
        &cfg,
    );
    // The policy route: the same kind of simple design, but written as
    // an interpreted program. `policies/rr.pol` is ~15 lines of text;
    // the loader verifies it (types, bounded loops, a guaranteed pick on
    // every path) before a single cycle runs. Try editing it — no
    // recompile needed when run via `elsc-sim --sched policy:FILE`.
    let rr_src = include_str!("../policies/rr.pol");
    let rr = stress::run(
        MachineConfig::up().with_max_secs(600.0),
        Box::new(PolicyScheduler::load_str(rr_src, 1).expect("bundled program verifies")),
        &cfg,
    );
    let elsc = stress::run(
        MachineConfig::up().with_max_secs(600.0),
        Box::new(ElscScheduler::new()),
        &cfg,
    );
    let reg = stress::run(
        MachineConfig::up().with_max_secs(600.0),
        Box::new(elsc_sched_linux::LinuxScheduler::new()),
        &cfg,
    );
    for r in [&fifo, &rr, &elsc, &reg] {
        let t = r.stats.total();
        println!(
            "{:>9}: {:7.3}s | cyc/sched {:7.0} | examined/sched {:6.2}",
            r.scheduler,
            r.elapsed_secs(),
            t.cycles_per_schedule(),
            t.tasks_examined_per_schedule(),
        );
    }
    if let Some(p) = &rr.policy {
        println!(
            "\npolicy:rr interpreted {} policy insns ({} static), budget {}/decision{}",
            p.insns_executed,
            p.static_insns,
            p.budget,
            if p.ejected { " — EJECTED" } else { "" }
        );
    }
    println!("\nfifo's O(1) pop is fast but starves interactive tasks; ELSC keeps");
    println!("the goodness policy AND the bounded search. The interpreted rr pays");
    println!("PolicyInsn cycles per decision — the price of hot-swappable text.");
}
