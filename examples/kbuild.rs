//! Run the kernel-compile (light-load) workload — the paper's Table 2.
//!
//! ```sh
//! cargo run --release --example kbuild -- [jobs] [cpus]
//! ```

use elsc::ElscScheduler;
use elsc_machine::MachineConfig;
use elsc_sched_api::Scheduler;
use elsc_sched_linux::LinuxScheduler;
use elsc_workloads::kbuild::{self, KbuildConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let cpus: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(2);

    let cfg = KbuildConfig {
        jobs,
        ..KbuildConfig::default()
    };
    println!(
        "kbuild: make -j{} over {} translation units on {} CPU(s)\n",
        cfg.jobs, cfg.translation_units, cpus
    );

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(LinuxScheduler::new()),
        Box::new(ElscScheduler::new()),
    ];
    for sched in schedulers {
        let name = sched.name();
        let machine_cfg = MachineConfig::smp(cpus).with_max_secs(2_000.0);
        let report = kbuild::run(machine_cfg, sched, &cfg);
        println!(
            "{name:>5}: {:7.3}s wall | {} units compiled | sched share {:.2}%",
            report.elapsed_secs(),
            report.ledger.get("units_compiled"),
            report.stats.total().sched_time_share() * 100.0,
        );
    }
    println!("\nLight load: the run queue rarely exceeds -j, so the schedulers");
    println!("tie — the paper's 'maintain existing performance' design goal.");
}
