//! Run the VolanoMark-style chat benchmark and compare schedulers.
//!
//! ```sh
//! cargo run --release --example volanomark -- [rooms] [cpus]
//! ```
//!
//! Defaults: 10 rooms on a 2-processor SMP machine. Each room hosts 20
//! users; each connection uses 4 threads, so 10 rooms = 800 threads.

use elsc::ElscScheduler;
use elsc_machine::MachineConfig;
use elsc_sched_api::Scheduler;
use elsc_sched_linux::LinuxScheduler;
use elsc_workloads::volanomark::{self, VolanoConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rooms: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(10);
    let cpus: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(2);

    let cfg = VolanoConfig::rooms(rooms);
    println!(
        "VolanoMark: {} rooms x {} users x {} messages = {} threads, {} deliveries\n",
        cfg.rooms,
        cfg.users_per_room,
        cfg.messages_per_user,
        cfg.total_threads(),
        cfg.total_deliveries()
    );

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(LinuxScheduler::new()),
        Box::new(ElscScheduler::new()),
    ];
    for sched in schedulers {
        let name = sched.name();
        let machine_cfg = MachineConfig::smp(cpus).with_max_secs(20_000.0);
        let report = volanomark::run(machine_cfg, sched, &cfg);
        let total = report.stats.total();
        println!(
            "{name:>5}: {:8.0} msg/s | cyc/sched {:7.0} | examined/sched {:6.2} | recalcs {:6} | elapsed {:.2}s",
            volanomark::throughput(&report),
            total.cycles_per_schedule(),
            total.tasks_examined_per_schedule(),
            total.recalc_entries,
            report.elapsed_secs(),
        );
    }
    println!("\nThe baseline's per-call cost grows with the thread count; ELSC's");
    println!("stays flat — the paper's core scalability result.");
}
