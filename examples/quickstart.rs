//! Quickstart: build a two-CPU machine, run a small workload under both
//! schedulers, and print the `/proc`-style statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use elsc::ElscScheduler;
use elsc_ktask::{MmId, TaskSpec};
use elsc_machine::behavior::Script;
use elsc_machine::{Machine, MachineConfig, Op, Syscall};
use elsc_netsim::Msg;
use elsc_sched_api::Scheduler;
use elsc_sched_linux::LinuxScheduler;
use elsc_stats::render::render_proc;

/// Builds and runs a tiny producer/consumer workload.
fn run_with(sched: Box<dyn Scheduler>) {
    let name = sched.name();
    let mut machine = Machine::new(MachineConfig::smp(2).with_max_secs(60.0), sched);
    let pipe = machine.create_pipe(8);

    // A producer that computes then sends, and a consumer that receives
    // then computes — plus two CPU-bound background tasks.
    machine.spawn(
        &TaskSpec::named("producer").mm(MmId(1)),
        Box::new(Script::new(
            (0..50)
                .map(|i| Op::write_after(200_000, pipe, Msg::tagged(i)))
                .collect(),
        )),
    );
    machine.spawn(
        &TaskSpec::named("consumer").mm(MmId(2)),
        Box::new(Script::new(
            (0..50).map(|_| Op::read_after(150_000, pipe)).collect(),
        )),
    );
    for i in 0..2u32 {
        machine.spawn(
            &TaskSpec::named("background").mm(MmId(10 + i)),
            Box::new(Script::new(vec![Op::compute(30_000_000, Syscall::Nop)])),
        );
    }

    let report = machine.run().expect("quickstart workload completes");
    println!("=== {name} ===");
    println!("{report}");
    println!("{}", render_proc(&report.stats));
}

fn main() {
    println!("ELSC quickstart: the same workload under both schedulers.\n");
    run_with(Box::new(LinuxScheduler::new()));
    run_with(Box::new(ElscScheduler::new()));
    println!("Note the examined/sched row: the baseline scans the whole run");
    println!("queue while ELSC examines a bounded handful.");
}
