//! The paper's §8 future-work question: "Would we see the same
//! performance gains ... running Apache?" — an Apache-like worker-pool
//! web server under all four scheduler designs.
//!
//! ```sh
//! cargo run --release --example httpd -- [clients] [workers]
//! ```

use elsc::ElscScheduler;
use elsc_machine::MachineConfig;
use elsc_sched_api::Scheduler;
use elsc_sched_ext::{HeapScheduler, MultiQueueScheduler};
use elsc_sched_linux::LinuxScheduler;
use elsc_workloads::httpd::{self, HttpdConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let clients: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(128);
    let workers: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(16);
    let cpus = 2;

    let cfg = HttpdConfig {
        clients,
        workers,
        requests_per_client: 20,
        ..HttpdConfig::default()
    };
    println!(
        "httpd: {} workers serving {} clients x {} requests on {} CPUs\n",
        cfg.workers, cfg.clients, cfg.requests_per_client, cpus
    );

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(LinuxScheduler::new()),
        Box::new(ElscScheduler::new()),
        Box::new(HeapScheduler::new()),
        Box::new(MultiQueueScheduler::new(cpus)),
    ];
    for sched in schedulers {
        let name = sched.name();
        let machine_cfg = MachineConfig::smp(cpus).with_max_secs(2_000.0);
        let report = httpd::run(machine_cfg, sched, &cfg);
        let total = report.stats.total();
        println!(
            "{name:>5}: {:8.0} req/s | cyc/sched {:7.0} | examined/sched {:6.2}",
            httpd::throughput(&report),
            total.cycles_per_schedule(),
            total.tasks_examined_per_schedule(),
        );
    }
    println!("\nA worker pool keeps fewer tasks runnable than VolanoMark, so the");
    println!("gap is smaller — the paper's open question, answered in simulation.");
}
