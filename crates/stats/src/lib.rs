//! `/proc`-style scheduler statistics.
//!
//! The paper instrumented both schedulers and exported counters through the
//! proc file system ("we also collected statistics about what the scheduler
//! was doing and exposed them through the proc file system", §6). This
//! crate is that instrumentation: per-CPU counters incremented from inside
//! the schedulers and the machine model, with snapshot/delta support and a
//! `/proc/elscstat`-like text rendering.
//!
//! Figures 2, 5, and 6 of the paper are pure functions of these counters:
//!
//! * Figure 2 — [`CpuStats::recalc_entries`]
//! * Figure 5 — [`CpuStats::sched_cycles`] / [`CpuStats::sched_calls`] and
//!   [`CpuStats::tasks_examined`] / [`CpuStats::sched_calls`]
//! * Figure 6 — [`CpuStats::sched_calls`] and [`CpuStats::picked_new_cpu`]
#![warn(missing_docs)]

pub mod percpu;
pub mod render;

pub use percpu::{CpuStats, SchedStats};
