//! Text rendering of scheduler statistics, in the spirit of the paper's
//! proc-file export.

use core::fmt::Write as _;

use crate::percpu::{CpuStats, SchedStats};

/// One rendered row: `(label, extractor)`.
type Row = (&'static str, fn(&CpuStats) -> u64);

/// Rows rendered by [`render_proc`].
const ROWS: &[Row] = &[
    ("sched_calls", |c| c.sched_calls),
    ("sched_cycles", |c| c.sched_cycles),
    ("lock_spin_cycles", |c| c.lock_spin_cycles),
    ("lock_acquisitions", |c| c.lock_acquisitions),
    ("tasks_examined", |c| c.tasks_examined),
    ("recalc_entries", |c| c.recalc_entries),
    ("recalc_tasks", |c| c.recalc_tasks),
    ("picked_new_cpu", |c| c.picked_new_cpu),
    ("idle_scheduled", |c| c.idle_scheduled),
    ("yield_reruns", |c| c.yield_reruns),
    ("ctx_switches", |c| c.ctx_switches),
    ("mm_switches", |c| c.mm_switches),
    ("ticks", |c| c.ticks),
    ("wakeups", |c| c.wakeups),
    ("ipis_sent", |c| c.ipis_sent),
    ("yields", |c| c.yields),
    ("work_cycles", |c| c.work_cycles),
    ("idle_cycles", |c| c.idle_cycles),
];

/// Renders statistics as a `/proc/elscstat`-style table: one column per
/// CPU plus a total column.
///
/// # Examples
///
/// ```
/// use elsc_stats::{render::render_proc, SchedStats};
///
/// let mut s = SchedStats::new(2);
/// s.cpu_mut(0).sched_calls = 3;
/// let text = render_proc(&s);
/// assert!(text.contains("sched_calls"));
/// assert!(text.contains("cpu0"));
/// assert!(text.contains("total"));
/// ```
pub fn render_proc(stats: &SchedStats) -> String {
    let mut out = String::new();
    let total = stats.total();
    let _ = write!(out, "{:<18}", "counter");
    for cpu in 0..stats.nr_cpus() {
        let _ = write!(out, "{:>14}", format!("cpu{cpu}"));
    }
    let _ = writeln!(out, "{:>16}", "total");
    for (label, get) in ROWS {
        let _ = write!(out, "{label:<18}");
        for cpu in stats.per_cpu() {
            let _ = write!(out, "{:>14}", get(cpu));
        }
        let _ = writeln!(out, "{:>16}", get(&total));
    }
    let _ = writeln!(
        out,
        "{:<18}{:>16.1}",
        "cyc/sched",
        total.cycles_per_schedule()
    );
    let _ = writeln!(
        out,
        "{:<18}{:>16.2}",
        "examined/sched",
        total.tasks_examined_per_schedule()
    );
    let _ = writeln!(
        out,
        "{:<18}{:>15.1}%",
        "sched_time_share",
        total.sched_time_share() * 100.0
    );
    out
}

/// Renders a compact single-line summary for logs and examples.
pub fn render_summary(stats: &SchedStats) -> String {
    let t = stats.total();
    format!(
        "sched_calls={} cyc/sched={:.0} examined/sched={:.2} recalcs={} new_cpu={} ctx={} share={:.1}%",
        t.sched_calls,
        t.cycles_per_schedule(),
        t.tasks_examined_per_schedule(),
        t.recalc_entries,
        t.picked_new_cpu,
        t.ctx_switches,
        t.sched_time_share() * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SchedStats {
        let mut s = SchedStats::new(2);
        let c0 = s.cpu_mut(0);
        c0.sched_calls = 10;
        c0.sched_cycles = 5000;
        c0.tasks_examined = 55;
        c0.recalc_entries = 2;
        let c1 = s.cpu_mut(1);
        c1.sched_calls = 4;
        c1.picked_new_cpu = 3;
        s
    }

    #[test]
    fn proc_render_contains_all_rows() {
        let text = render_proc(&sample());
        for (label, _) in ROWS {
            assert!(text.contains(label), "missing row {label}");
        }
    }

    #[test]
    fn proc_render_has_column_per_cpu() {
        let text = render_proc(&sample());
        assert!(text.contains("cpu0"));
        assert!(text.contains("cpu1"));
        assert!(!text.contains("cpu2"));
    }

    #[test]
    fn proc_render_totals_are_sums() {
        let text = render_proc(&sample());
        let line = text.lines().find(|l| l.starts_with("sched_calls")).unwrap();
        // Columns: cpu0=10, cpu1=4, total=14.
        let nums: Vec<u64> = line
            .split_whitespace()
            .skip(1)
            .map(|w| w.parse().unwrap())
            .collect();
        assert_eq!(nums, vec![10, 4, 14]);
    }

    #[test]
    fn summary_mentions_key_counters() {
        let text = render_summary(&sample());
        assert!(text.contains("sched_calls=14"));
        assert!(text.contains("recalcs=2"));
        assert!(text.contains("new_cpu=3"));
    }
}
