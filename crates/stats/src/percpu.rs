//! Per-CPU scheduler counters and their aggregation.

use core::ops::{Add, Sub};

/// Counters collected on one CPU.
///
/// All counters are monotonically increasing over a run; deltas between
/// [`SchedStats::snapshot`]s give per-phase numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Entries into `schedule()`.
    pub sched_calls: u64,
    /// Cycles spent inside `schedule()` (scan + bookkeeping, excluding
    /// spin-wait on the run-queue lock).
    pub sched_cycles: u64,
    /// Cycles spent spinning on the run-queue lock before `schedule()`
    /// could begin.
    pub lock_spin_cycles: u64,
    /// Run-queue lock-domain acquisitions made from this CPU (the home
    /// acquire of each `schedule()`/wakeup plus any mid-call domain
    /// acquisitions a sharded plan incurs).
    pub lock_acquisitions: u64,
    /// Candidate tasks examined across all `schedule()` calls.
    pub tasks_examined: u64,
    /// Entries into the counter-recalculation loop.
    pub recalc_entries: u64,
    /// Individual task counters recalculated (recalc loop iterations).
    pub recalc_tasks: u64,
    /// Times the chosen task last ran on a *different* processor
    /// ("Tasks Scheduled on New Processor", Figure 6).
    pub picked_new_cpu: u64,
    /// Times `schedule()` picked the idle task.
    pub idle_scheduled: u64,
    /// Times a yielded previous task was re-run because nothing else was
    /// runnable (the ELSC behaviour that avoids the recalc storm).
    pub yield_reruns: u64,
    /// Context switches performed (prev != next).
    pub ctx_switches: u64,
    /// Address-space switches (prev.mm != next.mm on a context switch).
    pub mm_switches: u64,
    /// Timer ticks handled.
    pub ticks: u64,
    /// `wake_up_process()` calls executed on this CPU.
    pub wakeups: u64,
    /// Reschedule IPIs sent from this CPU.
    pub ipis_sent: u64,
    /// `sys_sched_yield()` calls made by tasks running on this CPU.
    pub yields: u64,
    /// Total cycles this CPU spent executing task (non-scheduler) work.
    pub work_cycles: u64,
    /// Total cycles this CPU spent idle.
    pub idle_cycles: u64,
}

macro_rules! combine_fields {
    ($op:tt, $a:expr, $b:expr) => {
        CpuStats {
            sched_calls: $a.sched_calls $op $b.sched_calls,
            sched_cycles: $a.sched_cycles $op $b.sched_cycles,
            lock_spin_cycles: $a.lock_spin_cycles $op $b.lock_spin_cycles,
            lock_acquisitions: $a.lock_acquisitions $op $b.lock_acquisitions,
            tasks_examined: $a.tasks_examined $op $b.tasks_examined,
            recalc_entries: $a.recalc_entries $op $b.recalc_entries,
            recalc_tasks: $a.recalc_tasks $op $b.recalc_tasks,
            picked_new_cpu: $a.picked_new_cpu $op $b.picked_new_cpu,
            idle_scheduled: $a.idle_scheduled $op $b.idle_scheduled,
            yield_reruns: $a.yield_reruns $op $b.yield_reruns,
            ctx_switches: $a.ctx_switches $op $b.ctx_switches,
            mm_switches: $a.mm_switches $op $b.mm_switches,
            ticks: $a.ticks $op $b.ticks,
            wakeups: $a.wakeups $op $b.wakeups,
            ipis_sent: $a.ipis_sent $op $b.ipis_sent,
            yields: $a.yields $op $b.yields,
            work_cycles: $a.work_cycles $op $b.work_cycles,
            idle_cycles: $a.idle_cycles $op $b.idle_cycles,
        }
    };
}

impl Add for CpuStats {
    type Output = CpuStats;

    fn add(self, rhs: CpuStats) -> CpuStats {
        combine_fields!(+, self, rhs)
    }
}

impl Sub for CpuStats {
    type Output = CpuStats;

    /// Saturating per-field difference (counters are monotone, so a
    /// later-minus-earlier delta never actually saturates).
    fn sub(self, rhs: CpuStats) -> CpuStats {
        macro_rules! ss {
            ($f:ident) => {
                self.$f.saturating_sub(rhs.$f)
            };
        }
        CpuStats {
            sched_calls: ss!(sched_calls),
            sched_cycles: ss!(sched_cycles),
            lock_spin_cycles: ss!(lock_spin_cycles),
            lock_acquisitions: ss!(lock_acquisitions),
            tasks_examined: ss!(tasks_examined),
            recalc_entries: ss!(recalc_entries),
            recalc_tasks: ss!(recalc_tasks),
            picked_new_cpu: ss!(picked_new_cpu),
            idle_scheduled: ss!(idle_scheduled),
            yield_reruns: ss!(yield_reruns),
            ctx_switches: ss!(ctx_switches),
            mm_switches: ss!(mm_switches),
            ticks: ss!(ticks),
            wakeups: ss!(wakeups),
            ipis_sent: ss!(ipis_sent),
            yields: ss!(yields),
            work_cycles: ss!(work_cycles),
            idle_cycles: ss!(idle_cycles),
        }
    }
}

impl CpuStats {
    /// Average cycles per `schedule()` call (Figure 5, top chart).
    ///
    /// Includes lock spin time, since that is time the CPU loses to
    /// scheduling; returns 0.0 when no calls were made.
    pub fn cycles_per_schedule(&self) -> f64 {
        if self.sched_calls == 0 {
            0.0
        } else {
            (self.sched_cycles + self.lock_spin_cycles) as f64 / self.sched_calls as f64
        }
    }

    /// Average tasks examined per `schedule()` call (Figure 5, bottom).
    pub fn tasks_examined_per_schedule(&self) -> f64 {
        if self.sched_calls == 0 {
            0.0
        } else {
            self.tasks_examined as f64 / self.sched_calls as f64
        }
    }

    /// Fraction of non-idle CPU time spent in the scheduler (the paper's
    /// §4 "37–55 % of kernel time" style figure, against total busy time).
    pub fn sched_time_share(&self) -> f64 {
        let sched = self.sched_cycles + self.lock_spin_cycles;
        let busy = sched + self.work_cycles;
        if busy == 0 {
            0.0
        } else {
            sched as f64 / busy as f64
        }
    }
}

/// Statistics for a whole simulated machine: one [`CpuStats`] per CPU.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    cpus: Vec<CpuStats>,
}

impl SchedStats {
    /// Creates zeroed statistics for `nr_cpus` processors.
    ///
    /// # Panics
    ///
    /// Panics if `nr_cpus == 0`.
    pub fn new(nr_cpus: usize) -> Self {
        assert!(nr_cpus > 0, "a machine has at least one CPU");
        SchedStats {
            cpus: vec![CpuStats::default(); nr_cpus],
        }
    }

    /// Number of CPUs covered.
    pub fn nr_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Mutable access to one CPU's counters.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[inline]
    pub fn cpu_mut(&mut self, cpu: usize) -> &mut CpuStats {
        &mut self.cpus[cpu]
    }

    /// Read access to one CPU's counters.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[inline]
    pub fn cpu(&self, cpu: usize) -> &CpuStats {
        &self.cpus[cpu]
    }

    /// Per-CPU view.
    pub fn per_cpu(&self) -> &[CpuStats] {
        &self.cpus
    }

    /// Sum of all CPUs' counters.
    pub fn total(&self) -> CpuStats {
        self.cpus
            .iter()
            .copied()
            .fold(CpuStats::default(), |a, b| a + b)
    }

    /// A copy of the current counters, for later delta computation.
    pub fn snapshot(&self) -> SchedStats {
        self.clone()
    }

    /// Per-field difference `self - earlier`.
    ///
    /// # Panics
    ///
    /// Panics if the CPU counts differ.
    pub fn delta(&self, earlier: &SchedStats) -> SchedStats {
        assert_eq!(
            self.cpus.len(),
            earlier.cpus.len(),
            "snapshots must cover the same CPUs"
        );
        SchedStats {
            cpus: self
                .cpus
                .iter()
                .zip(&earlier.cpus)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        for c in &mut self.cpus {
            *c = CpuStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let s = SchedStats::new(4);
        assert_eq!(s.nr_cpus(), 4);
        assert_eq!(s.total(), CpuStats::default());
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_panics() {
        SchedStats::new(0);
    }

    #[test]
    fn totals_sum_across_cpus() {
        let mut s = SchedStats::new(2);
        s.cpu_mut(0).sched_calls = 10;
        s.cpu_mut(1).sched_calls = 5;
        s.cpu_mut(1).tasks_examined = 7;
        let t = s.total();
        assert_eq!(t.sched_calls, 15);
        assert_eq!(t.tasks_examined, 7);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let mut s = SchedStats::new(1);
        s.cpu_mut(0).sched_calls = 3;
        s.cpu_mut(0).sched_cycles = 100;
        let snap = s.snapshot();
        s.cpu_mut(0).sched_calls = 10;
        s.cpu_mut(0).sched_cycles = 450;
        let d = s.delta(&snap);
        assert_eq!(d.cpu(0).sched_calls, 7);
        assert_eq!(d.cpu(0).sched_cycles, 350);
    }

    #[test]
    #[should_panic(expected = "same CPUs")]
    fn delta_mismatched_cpus_panics() {
        let a = SchedStats::new(2);
        let b = SchedStats::new(4);
        let _ = a.delta(&b);
    }

    #[test]
    fn cycles_per_schedule_includes_spin() {
        let mut c = CpuStats::default();
        assert_eq!(c.cycles_per_schedule(), 0.0);
        c.sched_calls = 4;
        c.sched_cycles = 800;
        c.lock_spin_cycles = 200;
        assert_eq!(c.cycles_per_schedule(), 250.0);
    }

    #[test]
    fn tasks_examined_average() {
        let c = CpuStats {
            sched_calls: 10,
            tasks_examined: 35,
            ..CpuStats::default()
        };
        assert_eq!(c.tasks_examined_per_schedule(), 3.5);
    }

    #[test]
    fn sched_time_share_bounds() {
        let mut c = CpuStats::default();
        assert_eq!(c.sched_time_share(), 0.0);
        c.sched_cycles = 30;
        c.work_cycles = 70;
        assert!((c.sched_time_share() - 0.3).abs() < 1e-12);
        c.work_cycles = 0;
        assert_eq!(c.sched_time_share(), 1.0);
    }

    #[test]
    fn reset_zeroes_all() {
        let mut s = SchedStats::new(2);
        s.cpu_mut(1).wakeups = 9;
        s.reset();
        assert_eq!(s.total(), CpuStats::default());
    }

    #[test]
    fn add_and_sub_are_inverse() {
        let a = CpuStats {
            sched_calls: 5,
            ticks: 2,
            ..CpuStats::default()
        };
        let b = CpuStats {
            sched_calls: 3,
            ticks: 1,
            ..CpuStats::default()
        };
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn sub_saturates() {
        let mut a = CpuStats::default();
        let mut b = CpuStats::default();
        a.sched_calls = 1;
        b.sched_calls = 5;
        assert_eq!((a - b).sched_calls, 0);
    }
}
