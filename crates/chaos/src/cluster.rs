//! Node-level fault classes for the cluster federation: partitions,
//! slow links, and node pauses.
//!
//! Machine-level faults ([`crate::FaultPlan`]) perturb one box from the
//! inside; cluster faults perturb the *fabric between* boxes. The
//! federation consults a [`ClusterInjector`] once per exchange epoch —
//! per link for the wire classes, per node for pauses — in a fixed
//! iteration order, so the whole fault schedule is a pure function of
//! `(plan, fault_seed)` exactly like the machine-level streams.
//!
//! Every class is completion-safe by construction: a partition *holds*
//! traffic until it heals (TCP retransmission semantics — nothing is
//! dropped), a slow link only stretches latency, and a paused node
//! resumes with its full event queue shifted. Workloads finish; they
//! just finish later and along different schedules — which is what the
//! per-node differential oracle is there to judge.

use std::fmt;
use std::str::FromStr;

use elsc_obs::json::Obj;
use elsc_simcore::SimRng;

/// Salt folded into the fault seed for the cluster-level streams.
/// Distinct from the machine-level `CHAOS_STREAM_SALT`, so a node's
/// internal fault schedule and the fabric's schedule never correlate
/// even when both derive from the same operator-supplied seed.
const CLUSTER_STREAM_SALT: u64 = 0x00C1_0572_FA17_u64;

/// Injection rates for the node-level fault classes. All rates are
/// per-epoch probabilities in `[0, 1]`: the wire classes are drawn once
/// per directed link per exchange epoch, `node_pause` once per node per
/// epoch. A zero rate disables the class *and* leaves its decision
/// stream unconsulted, so enabling one class never shifts another's
/// draws.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterFaultPlan {
    /// Per-link, per-epoch probability that the link partitions. A
    /// partitioned link holds (never drops) messages until it heals a
    /// drawn number of epochs later.
    pub partition: f64,
    /// Per-link, per-epoch probability of a congestion window: the
    /// link's propagation latency is multiplied 2–8× for its duration.
    pub slow_link: f64,
    /// Per-node, per-epoch probability of a whole-node stall (an SMI or
    /// hypervisor pause): every pending event shifts later by the drawn
    /// duration.
    pub node_pause: f64,
    /// The spec string this plan was parsed from (report labelling).
    label: String,
}

impl ClusterFaultPlan {
    /// A plan with every rate zero (the k=v parsing base).
    fn zero(label: &str) -> ClusterFaultPlan {
        ClusterFaultPlan {
            partition: 0.0,
            slow_link: 0.0,
            node_pause: 0.0,
            label: label.to_string(),
        }
    }

    /// The `light` preset: occasional short partitions, congestion, and
    /// stalls. VolanoMark clusters complete under it with room to spare.
    pub fn light() -> ClusterFaultPlan {
        ClusterFaultPlan {
            partition: 0.002,
            slow_link: 0.004,
            node_pause: 0.002,
            ..ClusterFaultPlan::zero("light")
        }
    }

    /// The `heavy` preset: quadrupled `light` rates. Still
    /// completion-safe, but the fabric is genuinely bad.
    pub fn heavy() -> ClusterFaultPlan {
        ClusterFaultPlan {
            partition: 0.008,
            slow_link: 0.016,
            node_pause: 0.008,
            ..ClusterFaultPlan::zero("heavy")
        }
    }

    /// The report label: the preset name or k=v spec this plan came from.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Display for ClusterFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl FromStr for ClusterFaultPlan {
    type Err = String;

    /// Parses a preset name (`light`, `heavy`) or a comma-separated
    /// `key=rate` list over the plan's field names, e.g.
    /// `partition=0.01,node_pause=0.05`.
    fn from_str(s: &str) -> Result<ClusterFaultPlan, String> {
        let s = s.trim();
        match s {
            "light" => return Ok(ClusterFaultPlan::light()),
            "heavy" => return Ok(ClusterFaultPlan::heavy()),
            "" | "none" => {
                return Err("empty cluster fault plan (use a preset or key=rate list)".into())
            }
            _ => {}
        }
        let mut plan = ClusterFaultPlan::zero(s);
        for part in s.split(',') {
            let Some((key, val)) = part.split_once('=') else {
                return Err(format!(
                    "bad cluster fault spec '{part}': expected key=rate (or a preset: light|heavy)"
                ));
            };
            let rate: f64 = val
                .trim()
                .parse()
                .map_err(|_| format!("bad fault rate '{val}' for '{key}'"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!(
                    "fault rate for '{key}' must be in [0,1], got {rate}"
                ));
            }
            let slot = match key.trim() {
                "partition" => &mut plan.partition,
                "slow_link" => &mut plan.slow_link,
                "node_pause" => &mut plan.node_pause,
                other => return Err(format!("unknown cluster fault class '{other}'")),
            };
            *slot = rate;
        }
        Ok(plan)
    }
}

/// Per-class cluster fault counters, reported in the merged report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClusterFaultCounts {
    /// Link partitions opened.
    pub partitions: u64,
    /// Slow-link windows opened.
    pub slow_links: u64,
    /// Node pauses injected.
    pub node_pauses: u64,
}

impl ClusterFaultCounts {
    /// Total cluster faults injected.
    pub fn total(&self) -> u64 {
        self.partitions + self.slow_links + self.node_pauses
    }

    /// Deterministic JSON rendering (fixed key order).
    pub fn to_json(&self) -> String {
        Obj::new()
            .u64("total", self.total())
            .u64("partitions", self.partitions)
            .u64("slow_links", self.slow_links)
            .u64("node_pauses", self.node_pauses)
            .build()
    }
}

/// A drawn slow-link window: how long it lasts and how much it hurts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlowWindow {
    /// Window length in exchange epochs.
    pub epochs: u64,
    /// Latency multiplier inside the window (2–8).
    pub factor: u64,
}

/// The runtime side of a [`ClusterFaultPlan`]: one forked [`SimRng`]
/// stream per class, consulted by the federation in fixed link/node
/// order each epoch.
#[derive(Debug)]
pub struct ClusterInjector {
    plan: ClusterFaultPlan,
    seed: u64,
    part: SimRng,
    slow: SimRng,
    pause: SimRng,
    counts: ClusterFaultCounts,
}

impl ClusterInjector {
    /// Builds an injector for `plan`, seeding every class stream from
    /// `fault_seed` (shared with the per-node machine streams but salted
    /// differently, so they never correlate).
    pub fn new(plan: ClusterFaultPlan, fault_seed: u64) -> ClusterInjector {
        let mut root = SimRng::new(fault_seed ^ CLUSTER_STREAM_SALT);
        ClusterInjector {
            plan,
            seed: fault_seed,
            part: root.fork(),
            slow: root.fork(),
            pause: root.fork(),
            counts: ClusterFaultCounts::default(),
        }
    }

    /// The plan in effect.
    pub fn plan(&self) -> &ClusterFaultPlan {
        &self.plan
    }

    /// The fault seed the streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-class injection counters so far.
    pub fn counts(&self) -> &ClusterFaultCounts {
        &self.counts
    }

    /// Per-link, per-epoch partition decision: `Some(epochs)` opens a
    /// partition lasting 2–20 exchange epochs.
    pub fn partition(&mut self) -> Option<u64> {
        if self.plan.partition <= 0.0 || !self.part.chance(self.plan.partition) {
            return None;
        }
        self.counts.partitions += 1;
        Some(self.part.range(2, 21))
    }

    /// Per-link, per-epoch congestion decision: `Some(window)` degrades
    /// the link for 2–20 epochs at 2–8× latency.
    pub fn slow_link(&mut self) -> Option<SlowWindow> {
        if self.plan.slow_link <= 0.0 || !self.slow.chance(self.plan.slow_link) {
            return None;
        }
        self.counts.slow_links += 1;
        Some(SlowWindow {
            epochs: self.slow.range(2, 21),
            factor: self.slow.range(2, 9),
        })
    }

    /// Per-node, per-epoch stall decision: `Some(cycles)` freezes the
    /// node for roughly 2 M cycles (5 ms at 400 MHz), ±50 %.
    pub fn node_pause(&mut self) -> Option<u64> {
        if self.plan.node_pause <= 0.0 || !self.pause.chance(self.plan.node_pause) {
            return None;
        }
        self.counts.node_pauses += 1;
        Some(self.pause.jitter(2_000_000, 0.5).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse() {
        assert_eq!(
            "light".parse::<ClusterFaultPlan>().unwrap(),
            ClusterFaultPlan::light()
        );
        assert_eq!(
            "heavy".parse::<ClusterFaultPlan>().unwrap(),
            ClusterFaultPlan::heavy()
        );
        assert_eq!(ClusterFaultPlan::light().label(), "light");
    }

    #[test]
    fn key_value_specs_parse() {
        let p: ClusterFaultPlan = "partition=0.25,node_pause=0.5".parse().unwrap();
        assert_eq!(p.partition, 0.25);
        assert_eq!(p.node_pause, 0.5);
        assert_eq!(p.slow_link, 0.0);
        assert_eq!(p.label(), "partition=0.25,node_pause=0.5");
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!("bogus".parse::<ClusterFaultPlan>().is_err());
        assert!("partition=2.0".parse::<ClusterFaultPlan>().is_err());
        assert!("partition=x".parse::<ClusterFaultPlan>().is_err());
        assert!("none".parse::<ClusterFaultPlan>().is_err());
        assert!("warp_core=0.1".parse::<ClusterFaultPlan>().is_err());
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let mut inj = ClusterInjector::new(ClusterFaultPlan::heavy(), seed);
            let log: Vec<String> = (0..500)
                .map(|_| {
                    format!(
                        "{:?}/{:?}/{:?}",
                        inj.partition(),
                        inj.slow_link(),
                        inj.node_pause()
                    )
                })
                .collect();
            (log, *inj.counts())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds must differ");
    }

    #[test]
    fn class_streams_are_independent() {
        // Disabling the partition class must not shift pause decisions.
        let pauses = |plan: ClusterFaultPlan| {
            let mut inj = ClusterInjector::new(plan, 42);
            (0..200).map(|_| inj.node_pause()).collect::<Vec<_>>()
        };
        let with_partitions = pauses("partition=0.002,node_pause=0.002".parse().unwrap());
        let without = pauses("node_pause=0.002".parse().unwrap());
        assert_eq!(with_partitions, without);
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let mut inj = ClusterInjector::new(ClusterFaultPlan::zero("off"), 1);
        for _ in 0..200 {
            assert_eq!(inj.partition(), None);
            assert_eq!(inj.slow_link(), None);
            assert_eq!(inj.node_pause(), None);
        }
        assert_eq!(inj.counts().total(), 0);
    }

    #[test]
    fn drawn_windows_are_in_range() {
        let mut inj = ClusterInjector::new(
            "partition=1.0,slow_link=1.0,node_pause=1.0"
                .parse()
                .unwrap(),
            9,
        );
        for _ in 0..200 {
            let p = inj.partition().unwrap();
            assert!((2..=20).contains(&p), "partition epochs {p}");
            let s = inj.slow_link().unwrap();
            assert!((2..=20).contains(&s.epochs));
            assert!((2..=8).contains(&s.factor));
            let n = inj.node_pause().unwrap();
            assert!((1_000_000..=3_000_000).contains(&n), "pause cycles {n}");
        }
        assert_eq!(inj.counts().total(), 600);
    }

    #[test]
    fn counts_json_is_stable() {
        let c = ClusterFaultCounts {
            partitions: 1,
            slow_links: 2,
            node_pauses: 3,
        };
        assert_eq!(
            c.to_json(),
            "{\"total\":6,\"partitions\":1,\"slow_links\":2,\"node_pauses\":3}"
        );
    }
}
