//! The differential oracle: replay the baseline O(n) `goodness()` scan
//! beside the scheduler under test and classify every divergence.
//!
//! On every `schedule()` call the machine snapshots the runnable set
//! *before* handing control to the scheduler, lets the scheduler decide,
//! then asks [`Oracle::judge`] to replay Linux 2.3.99's reference
//! semantics over the frozen snapshot and compare. A divergence is only
//! acceptable when it falls into one of the documented classes below;
//! anything else increments `unexplained` — and an unexplained
//! divergence is a test failure, a lab-cell failure, and a non-zero CLI
//! exit.
//!
//! | class | meaning |
//! |---|---|
//! | `Match`       | same task selected (the §5 claim, verbatim) |
//! | `Tie`         | different task, equal reference goodness — order-of-scan freedom |
//! | `YieldRerun`  | ELSC reran a lone yielder instead of recalculating (the Figure-2 fix, §5.2) |
//! | `Truncation`  | the winning list held more eligible tasks than the bounded search examines, and the gap is within the documented slack |
//! | `Affinity`    | SMP only: the reference winner sat in a list the bounded search never reached, and the gap is within the dynamic-bonus + bucket slack |
//! | `Topology`    | multi-level trees only: the divergence is locality-motivated (the pick trades bounded goodness for topological distance) |
//! | `Design`      | relaxed-contract scheduler (§8 prototypes): decision logged, not held to §5 |
//! | `Unexplained` | none of the above — the equivalence claim is violated |

use elsc_ktask::{CpuId, MmId, Task, TaskTable, Tid};
use elsc_obs::json::Obj;
use elsc_sched_api::{
    topo_affinity_bonus, IDLE_GOODNESS, MM_BONUS, PROC_CHANGE_PENALTY, RT_GOODNESS_BASE,
};
use elsc_simcore::Topology;

use crate::plan::FaultCounts;

/// Maximum goodness gap the bounded search is documented to trade away:
/// the within-list static spread (ELSC buckets `counter + priority` by 4,
/// so ≤ 3) plus both dynamic bonuses it does not sort by.
const BOUNDED_SLACK: i32 = PROC_CHANGE_PENALTY + MM_BONUS + 3;

/// The scheduling-relevant fields of one task, frozen before the
/// scheduler under test ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskSnap {
    /// The task.
    pub tid: Tid,
    /// Remaining quantum at decision time.
    pub counter: i32,
    /// Static priority.
    pub priority: i32,
    /// Real-time class?
    pub rt: bool,
    /// `SCHED_RR` specifically (quantum-refresh semantics)?
    pub rr: bool,
    /// Real-time priority.
    pub rt_priority: i32,
    /// Address space.
    pub mm: MmId,
    /// Last processor.
    pub processor: CpuId,
    /// Executing on a CPU right now?
    pub has_cpu: bool,
    /// `SCHED_YIELD` set?
    pub yielded: bool,
}

impl TaskSnap {
    /// Freezes the scheduling-relevant fields of `t`.
    pub fn of(t: &Task) -> TaskSnap {
        TaskSnap {
            tid: t.tid,
            counter: t.counter,
            priority: t.priority,
            rt: t.policy.class.is_realtime(),
            rr: t.policy.class == elsc_ktask::SchedClass::Rr,
            rt_priority: t.rt_priority,
            mm: t.mm,
            processor: t.processor,
            has_cpu: t.has_cpu,
            yielded: t.policy.yielded,
        }
    }
}

/// `goodness()` over a snapshot with an overridden counter — mirrors
/// `elsc_sched_api::goodness_ignoring_yield_on` exactly (a unit test
/// below pins the two against each other). On a flat tree the topology
/// bonus degenerates to the classic `{+15 on same CPU, else 0}`, so the
/// reference is byte-identical to the pre-topology oracle there.
fn snap_goodness(s: &TaskSnap, counter: i32, topo: &Topology, cpu: CpuId, prev_mm: MmId) -> i32 {
    if s.rt {
        return RT_GOODNESS_BASE + s.rt_priority;
    }
    if counter == 0 {
        return 0;
    }
    let mut w = counter + s.priority;
    w += topo_affinity_bonus(topo, cpu, s.processor);
    if s.mm == prev_mm {
        w += MM_BONUS;
    }
    w
}

/// The ELSC table list a snapshot would be indexed into given `counter`
/// (mirrors `ElscTable::index_for`; used to prove search truncation).
fn snap_list(s: &TaskSnap, counter: i32) -> usize {
    if s.rt {
        (20 + (s.rt_priority / 10).clamp(0, 9)) as usize
    } else {
        (((counter + s.priority) / 4).clamp(0, 19)) as usize
    }
}

/// How strictly the oracle holds a scheduler to the §5 claim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleMode {
    /// `elsc` and `reg`: divergences must be explained or they count as
    /// unexplained.
    Strict,
    /// §8 prototypes (`heap`, `aheap`, `mq`): deliberately different
    /// contracts (no dynamic bonuses, per-queue visibility); divergences
    /// are logged as `Design` instead of judged.
    Relaxed,
}

impl OracleMode {
    /// The mode for a scheduler, keyed by its `Scheduler::name()`.
    ///
    /// Interpreted policies report themselves as `policy:<name>`; the
    /// prefix is stripped so `policy:reg` — the bundled `.pol` transcription
    /// of the baseline scheduler — is held to the same strict claim as the
    /// native implementation. `policy:percpu` partitions storage per CPU
    /// but still runs the full goodness scan, so it carries the strict
    /// claim too; arbitrary policies default to relaxed.
    pub fn for_scheduler(name: &str) -> OracleMode {
        let name = name.strip_prefix("policy:").unwrap_or(name);
        match name {
            "elsc" | "reg" | "percpu" => OracleMode::Strict,
            _ => OracleMode::Relaxed,
        }
    }
}

/// One `schedule()` decision, as the machine saw it.
#[derive(Debug)]
pub struct Decision<'a> {
    /// The deciding CPU.
    pub cpu: CpuId,
    /// The outgoing task.
    pub prev: Tid,
    /// This CPU's idle task.
    pub idle: Tid,
    /// `prev->mm` at decision time.
    pub prev_mm: MmId,
    /// Whether `prev` had `SCHED_YIELD` set entering the call.
    pub prev_yielded: bool,
    /// Whether `prev` was still runnable entering the call.
    pub prev_runnable: bool,
    /// The task the scheduler under test selected.
    pub chosen: Tid,
    /// Whether the scheduler took its yield-rerun path this call (ELSC's
    /// `yield_reruns` statistic advanced).
    pub yield_rerun: bool,
    /// The bounded-search examination limit in effect.
    pub search_limit: usize,
    /// SMP build?
    pub smp: bool,
    /// The declared machine topology (flat for the classic model).
    pub topology: Topology,
    /// The frozen runnable set (idle tasks excluded; `prev` included
    /// only if still runnable).
    pub snaps: &'a [TaskSnap],
}

/// Classification of one decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergenceClass {
    /// Same task as the reference scan.
    Match,
    /// Equal reference goodness: an order-of-scan tie.
    Tie,
    /// ELSC's documented lone-yielder rerun (§5.2, the Figure-2 fix).
    YieldRerun,
    /// The winning list was longer than the examination limit and the gap
    /// is within the documented slack.
    Truncation,
    /// SMP: the reference winner sat in a list the bounded search never
    /// reached, and the gap is within the dynamic-bonus slack it trades.
    Affinity,
    /// Multi-level trees only: a locality-motivated divergence — the pick
    /// traded a bounded goodness gap for topological distance (either
    /// direction: a topology-aware pick judged against a flat-thinking
    /// peer, or a flat-model policy missing a distance-graded bonus).
    Topology,
    /// Relaxed-contract scheduler; logged, not judged.
    Design,
    /// No documented explanation — the §5 claim is violated.
    Unexplained,
}

impl DivergenceClass {
    /// Short label (obs events, reports).
    pub fn label(self) -> &'static str {
        match self {
            DivergenceClass::Match => "match",
            DivergenceClass::Tie => "tie",
            DivergenceClass::YieldRerun => "yield_rerun",
            DivergenceClass::Truncation => "truncation",
            DivergenceClass::Affinity => "affinity",
            DivergenceClass::Topology => "topology",
            DivergenceClass::Design => "design",
            DivergenceClass::Unexplained => "unexplained",
        }
    }
}

/// A judged decision: the divergence class plus what the reference scan
/// would have picked (for divergence events and diagnostics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Verdict {
    /// The divergence class.
    pub class: DivergenceClass,
    /// The task the reference scan picks over the frozen snapshot.
    pub expected: Tid,
}

/// Outcome of the reference replay.
struct RefOutcome {
    expected: Tid,
    expected_g: i32,
    /// Post-replay counters (after any reference recalculation), indexed
    /// like `snaps`.
    counters: Vec<i32>,
}

/// Aggregated oracle verdicts for one run. Plain `Send` data.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OracleReport {
    /// `schedule()` decisions judged.
    pub decisions: u64,
    /// Exact matches.
    pub matches: u64,
    /// Order-of-scan ties.
    pub ties: u64,
    /// Documented yield reruns.
    pub yield_reruns: u64,
    /// Bounded-search truncations.
    pub truncations: u64,
    /// SMP affinity-slack divergences.
    pub affinity: u64,
    /// Locality-motivated divergences on multi-level trees.
    pub topology: u64,
    /// Relaxed-contract decisions.
    pub design: u64,
    /// Divergences with no documented explanation.
    pub unexplained: u64,
    /// Run-queue invariant violations observed.
    pub invariant_violations: u64,
    /// Details of the first unexplained divergence (diagnostics).
    pub first_unexplained: Option<String>,
    /// Details of the first invariant violation (diagnostics).
    pub first_violation: Option<String>,
}

impl OracleReport {
    /// Whether every decision was explained and every invariant held.
    pub fn clean(&self) -> bool {
        self.unexplained == 0 && self.invariant_violations == 0
    }

    /// Deterministic JSON rendering (fixed key order; detail strings
    /// included only when present so clean runs stay byte-stable).
    pub fn to_json(&self) -> String {
        let mut o = Obj::new()
            .u64("decisions", self.decisions)
            .u64("matches", self.matches)
            .u64("ties", self.ties)
            .u64("yield_reruns", self.yield_reruns)
            .u64("truncations", self.truncations)
            .u64("affinity", self.affinity)
            .u64("design", self.design)
            .u64("unexplained", self.unexplained)
            .u64("invariant_violations", self.invariant_violations);
        if self.topology != 0 {
            // Only multi-level trees can produce this class; emitting it
            // conditionally keeps every flat-topology report (and the
            // committed baseline manifests) byte-identical.
            o = o.u64("topology", self.topology);
        }
        if let Some(d) = &self.first_unexplained {
            o = o.str("first_unexplained", d);
        }
        if let Some(d) = &self.first_violation {
            o = o.str("first_violation", d);
        }
        o.build()
    }
}

/// The differential oracle: judges every decision and accumulates a
/// report. Pure observer — owns no task state, charges no cycles.
#[derive(Clone, Debug)]
pub struct Oracle {
    mode: OracleMode,
    report: OracleReport,
}

impl Oracle {
    /// Builds an oracle in the given mode.
    pub fn new(mode: OracleMode) -> Oracle {
        Oracle {
            mode,
            report: OracleReport::default(),
        }
    }

    /// The mode in effect.
    pub fn mode(&self) -> OracleMode {
        self.mode
    }

    /// The report so far.
    pub fn report(&self) -> &OracleReport {
        &self.report
    }

    /// Records `n` invariant violations with a detail for the first.
    pub fn record_violations(&mut self, details: &[String]) {
        self.report.invariant_violations += details.len() as u64;
        if self.report.first_violation.is_none() {
            if let Some(first) = details.first() {
                self.report.first_violation = Some(first.clone());
            }
        }
    }

    /// Replays the reference `schedule()` semantics over the frozen
    /// snapshot: previous-task-first (ties go to `prev`), strict
    /// `goodness()` maximum over every task not executing elsewhere, and
    /// the system-wide counter recalculation when the best weight is 0.
    fn reference_pick(d: &Decision<'_>) -> RefOutcome {
        let mut counters: Vec<i32> = d.snaps.iter().map(|s| s.counter).collect();
        let prev_idx = d.snaps.iter().position(|s| s.tid == d.prev);
        // An exhausted SCHED_RR prev gets its quantum refreshed before
        // selection, in both the reference and ELSC.
        if let Some(i) = prev_idx {
            if d.snaps[i].rr && counters[i] == 0 {
                counters[i] = d.snaps[i].priority;
            }
        }
        let mut prev_yielded = d.prev_yielded;
        let mut recalced = false;
        loop {
            let mut c = IDLE_GOODNESS;
            let mut next = d.idle;
            if let Some(i) = prev_idx {
                // prev is considered first and therefore wins all ties.
                c = if prev_yielded {
                    prev_yielded = false; // consumed for this pass only
                    0
                } else {
                    snap_goodness(&d.snaps[i], counters[i], &d.topology, d.cpu, d.prev_mm)
                };
                next = d.prev;
            }
            for (i, s) in d.snaps.iter().enumerate() {
                // can_schedule(): skip tasks executing on a CPU (which
                // skips prev too — it was counted above).
                let skip = if d.smp { s.has_cpu } else { s.tid == d.prev };
                if skip {
                    continue;
                }
                let w = snap_goodness(s, counters[i], &d.topology, d.cpu, d.prev_mm);
                if w > c {
                    c = w;
                    next = s.tid;
                }
            }
            if c != 0 || recalced {
                return RefOutcome {
                    expected: next,
                    expected_g: c,
                    counters,
                };
            }
            // Every candidate out of quantum (or a lone yielder): the
            // reference recalculates every counter and scans again.
            for (i, s) in d.snaps.iter().enumerate() {
                counters[i] = (counters[i] >> 1) + s.priority;
            }
            recalced = true;
        }
    }

    /// Judges one decision, updates the report, and returns the class.
    pub fn judge(&mut self, d: &Decision<'_>) -> DivergenceClass {
        self.judge_full(d).class
    }

    /// Judges one decision, updates the report, and returns the full
    /// verdict (class plus the reference pick).
    pub fn judge_full(&mut self, d: &Decision<'_>) -> Verdict {
        self.report.decisions += 1;
        let r = Self::reference_pick(d);
        let class = self.classify(d, &r);
        match class {
            DivergenceClass::Match => self.report.matches += 1,
            DivergenceClass::Tie => self.report.ties += 1,
            DivergenceClass::YieldRerun => self.report.yield_reruns += 1,
            DivergenceClass::Truncation => self.report.truncations += 1,
            DivergenceClass::Affinity => self.report.affinity += 1,
            DivergenceClass::Topology => self.report.topology += 1,
            DivergenceClass::Design => self.report.design += 1,
            DivergenceClass::Unexplained => {
                #[cfg(debug_assertions)]
                if std::env::var_os("ELSC_ORACLE_DEBUG").is_some() {
                    eprintln!(
                        "UNEXPLAINED: prev={:?} yielded={} runnable={} chosen={:?} \
                         expected={:?} yield_rerun={} snaps={:?}",
                        d.prev,
                        d.prev_yielded,
                        d.prev_runnable,
                        d.chosen,
                        r.expected,
                        d.yield_rerun,
                        d.snaps
                    );
                }
                self.report.unexplained += 1;
                if self.report.first_unexplained.is_none() {
                    let chosen_g = Self::eval(d, &r, d.chosen);
                    self.report.first_unexplained = Some(format!(
                        "decision {} cpu {}: chose task {} (g={}) but reference picks \
                         task {} (g={})",
                        self.report.decisions,
                        d.cpu,
                        d.chosen.index(),
                        chosen_g,
                        r.expected.index(),
                        r.expected_g,
                    ));
                }
            }
        }
        Verdict {
            class,
            expected: r.expected,
        }
    }

    /// Reference goodness of `tid` under the replay's final counters.
    fn eval(d: &Decision<'_>, r: &RefOutcome, tid: Tid) -> i32 {
        if tid == d.idle {
            return IDLE_GOODNESS;
        }
        match d.snaps.iter().position(|s| s.tid == tid) {
            Some(i) => snap_goodness(&d.snaps[i], r.counters[i], &d.topology, d.cpu, d.prev_mm),
            None => IDLE_GOODNESS, // not in the runnable set at all
        }
    }

    fn classify(&self, d: &Decision<'_>, r: &RefOutcome) -> DivergenceClass {
        if d.chosen == r.expected {
            return DivergenceClass::Match;
        }
        if d.chosen != d.idle && !d.snaps.iter().any(|s| s.tid == d.chosen) {
            // Chose a task that was not runnable when the decision began:
            // never explainable, in any mode.
            return DivergenceClass::Unexplained;
        }
        if self.mode == OracleMode::Relaxed {
            // §8 prototypes: different contracts by design (no dynamic
            // bonuses, per-queue visibility, steal thresholds). On a
            // multi-level tree, refine the log: a pick that is
            // topologically *closer* to the deciding CPU than the
            // reference winner is a locality-motivated divergence (the
            // bubble scheduler and mq's LLC-aware steal do this on
            // purpose), not a generic design gap.
            if !d.topology.is_flat() {
                let closer = |tid: Tid| {
                    d.snaps
                        .iter()
                        .find(|s| s.tid == tid)
                        .map(|s| topo_affinity_bonus(&d.topology, d.cpu, s.processor))
                };
                if let (Some(c), Some(e)) = (closer(d.chosen), closer(r.expected)) {
                    if c > e {
                        return DivergenceClass::Topology;
                    }
                }
            }
            return DivergenceClass::Design;
        }
        if d.yield_rerun && d.chosen == d.prev {
            // ELSC reran the yielder instead of recalculating — the
            // deliberate Figure-2 deviation, documented in §5.2. This must
            // be classified *before* any goodness-gap arithmetic: the
            // bounded search stops at the first list holding any candidate,
            // so a yielder in a high list can shadow a runnable task in a
            // lower one — and the rerun yielder's raw goodness (its
            // SCHED_YIELD already consumed) can even exceed the reference
            // winner's, making the gap negative.
            return DivergenceClass::YieldRerun;
        }
        let chosen_g = Self::eval(d, r, d.chosen);
        let gap = r.expected_g - chosen_g;
        if gap == 0 {
            return DivergenceClass::Tie;
        }
        if gap < 0 {
            // The scheduler found something strictly better than the
            // reference scan — the reference saw everything (and the
            // yield-rerun case was handled above), so this means the
            // oracle itself is being lied to. Never explained.
            return DivergenceClass::Unexplained;
        }
        if gap <= BOUNDED_SLACK {
            let chosen_i = d.snaps.iter().position(|s| s.tid == d.chosen);
            // Truncation: the list the reference winner lives in held
            // more eligible tasks than the bounded search examines, so
            // ELSC provably could not have seen every candidate.
            if let Some(ei) = d.snaps.iter().position(|s| s.tid == r.expected) {
                let list = snap_list(&d.snaps[ei], r.counters[ei]);
                let occupancy = d
                    .snaps
                    .iter()
                    .enumerate()
                    .filter(|(i, s)| {
                        let eligible = if d.smp {
                            !(s.has_cpu && s.processor != d.cpu)
                        } else {
                            true
                        };
                        eligible && snap_list(s, r.counters[*i]) == list
                    })
                    .count();
                if occupancy > d.search_limit {
                    return DivergenceClass::Truncation;
                }
                if let Some(ci) = chosen_i {
                    let chosen_list = snap_list(&d.snaps[ci], r.counters[ci]);
                    if !d.topology.is_flat() {
                        // Multi-level tree: the reference winner was
                        // favoured by a distance-graded bonus the chosen
                        // task did not earn. A scheduler (or interpreted
                        // policy) reasoning with the flat model loses
                        // exactly this much — a locality-motivated gap,
                        // classified, still bounded by the slack.
                        let e_near = topo_affinity_bonus(&d.topology, d.cpu, d.snaps[ei].processor);
                        let c_near = topo_affinity_bonus(&d.topology, d.cpu, d.snaps[ci].processor);
                        if e_near > c_near {
                            return DivergenceClass::Topology;
                        }
                    }
                    if d.smp && list < chosen_list {
                        // The bounded search walks lists from the highest
                        // static bucket down and stops at the first list
                        // holding any candidate, so a reference winner in
                        // a *strictly lower* list — carried above the
                        // chosen task only by dynamic affinity/mm bonuses
                        // (≤ 16) plus the bucket spread (≤ 3) — is slack
                        // it documents trading for O(1) decisions. A
                        // same-list winner within the limit was examined,
                        // and skipping it is NOT explainable: requiring
                        // the strictly-lower list is what lets the oracle
                        // reject an off-by-one comparator on SMP, not
                        // just on UP.
                        return DivergenceClass::Affinity;
                    }
                }
            }
        }
        DivergenceClass::Unexplained
    }
}

/// Checks the machine-independent run-queue invariants over every live
/// task: `counter ∈ [0, 2·priority]` and list-linkage coherence
/// (`in_list() ⇒ on_runqueue()`; a zombie must never stay linked).
/// Returns one description per violation (empty when all hold).
pub fn check_task_invariants(tasks: &TaskTable) -> Vec<String> {
    let mut out = Vec::new();
    for t in tasks.iter() {
        if t.counter < 0 || t.counter > 2 * t.priority {
            out.push(format!(
                "task {} '{}': counter {} outside [0, {}]",
                t.tid.index(),
                t.name,
                t.counter,
                2 * t.priority
            ));
        }
        if t.in_list() && !t.on_runqueue() {
            out.push(format!(
                "task {} '{}': linked into a run-queue list but not marked on-queue",
                t.tid.index(),
                t.name
            ));
        }
        if t.state == elsc_ktask::TaskState::Zombie && t.in_list() {
            out.push(format!(
                "task {} '{}': zombie still linked into a run-queue list",
                t.tid.index(),
                t.name
            ));
        }
    }
    out
}

/// Everything chaos-related a run report carries: the plan label, the
/// fault seed, per-class injection counts, and the oracle verdicts (when
/// the oracle was enabled).
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosSummary {
    /// The fault plan's label (`None` when no faults were injected).
    pub fault_plan: Option<String>,
    /// The seed the fault streams derived from.
    pub fault_seed: u64,
    /// Per-class injection counts.
    pub counts: FaultCounts,
    /// Oracle verdicts (`None` when the oracle was off).
    pub oracle: Option<OracleReport>,
}

impl ChaosSummary {
    /// Deterministic JSON rendering.
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        o = match &self.fault_plan {
            Some(p) => o.str("fault_plan", p),
            None => o.raw("fault_plan", "null"),
        };
        o = o
            .u64("fault_seed", self.fault_seed)
            .raw("faults", self.counts.to_json());
        if let Some(r) = &self.oracle {
            o = o.raw("oracle", r.to_json());
        }
        o.build()
    }
}

// Compile-time Send audit: chaos state crosses lab worker threads inside
// `RunReport`.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ChaosSummary>();
    assert_send::<OracleReport>();
    assert_send::<FaultCounts>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use elsc_ktask::{SchedClass, TaskSpec, TaskTable};
    use elsc_sched_api::goodness_ignoring_yield;

    fn tid(i: u32) -> Tid {
        Tid::from_raw(i, 0)
    }

    fn snap(i: u32, counter: i32, priority: i32, mm: u32) -> TaskSnap {
        TaskSnap {
            tid: tid(i),
            counter,
            priority,
            rt: false,
            rr: false,
            rt_priority: 0,
            mm: MmId(mm),
            processor: 0,
            has_cpu: false,
            yielded: false,
        }
    }

    fn decision<'a>(snaps: &'a [TaskSnap], chosen: Tid) -> Decision<'a> {
        Decision {
            cpu: 0,
            prev: tid(999),
            idle: tid(0),
            prev_mm: MmId::KERNEL,
            prev_yielded: false,
            prev_runnable: false,
            chosen,
            yield_rerun: false,
            search_limit: 5,
            smp: false,
            topology: Topology::flat(1),
            snaps,
        }
    }

    #[test]
    fn oracle_mode_strips_the_policy_prefix() {
        assert_eq!(OracleMode::for_scheduler("reg"), OracleMode::Strict);
        assert_eq!(OracleMode::for_scheduler("policy:reg"), OracleMode::Strict);
        assert_eq!(OracleMode::for_scheduler("policy:elsc"), OracleMode::Strict);
        assert_eq!(
            OracleMode::for_scheduler("policy:percpu"),
            OracleMode::Strict
        );
        assert_eq!(OracleMode::for_scheduler("policy:rr"), OracleMode::Relaxed);
        assert_eq!(OracleMode::for_scheduler("mq"), OracleMode::Relaxed);
    }

    #[test]
    fn snap_goodness_matches_the_real_goodness() {
        let mut tasks = TaskTable::new();
        let a = tasks.spawn(&TaskSpec::named("a").priority(17).mm(MmId(3)));
        tasks.task_mut(a).counter = 9;
        tasks.task_mut(a).processor = 2;
        let rt = tasks.spawn(&TaskSpec::named("rt").realtime(SchedClass::Rr, 42));
        let flat = Topology::flat(3);
        for t in tasks.iter() {
            for cpu in 0..3 {
                for mm in [MmId(3), MmId(4), MmId::KERNEL] {
                    let s = TaskSnap::of(t);
                    assert_eq!(
                        snap_goodness(&s, s.counter, &flat, cpu, mm),
                        goodness_ignoring_yield(t, cpu, mm),
                        "task {} cpu {cpu} mm {mm:?}",
                        t.name
                    );
                }
            }
        }
        let _ = rt;
    }

    #[test]
    fn snap_goodness_matches_the_topo_goodness() {
        let topo: Topology = "2N4C2T".parse().unwrap();
        let mut tasks = TaskTable::new();
        let a = tasks.spawn(&TaskSpec::named("a").priority(17).mm(MmId(3)));
        tasks.task_mut(a).counter = 9;
        for last in [0, 1, 5, 9, 15] {
            tasks.task_mut(a).processor = last;
            for cpu in 0..16 {
                for mm in [MmId(3), MmId::KERNEL] {
                    let t = tasks.task(a);
                    let s = TaskSnap::of(t);
                    assert_eq!(
                        snap_goodness(&s, s.counter, &topo, cpu, mm),
                        elsc_sched_api::goodness_ignoring_yield_on(&topo, t, cpu, mm),
                        "last {last} cpu {cpu} mm {mm:?}",
                    );
                }
            }
        }
    }

    #[test]
    fn exact_match_is_match() {
        let snaps = [snap(1, 10, 20, 1), snap(2, 5, 20, 1)];
        let mut o = Oracle::new(OracleMode::Strict);
        assert_eq!(o.judge(&decision(&snaps, tid(1))), DivergenceClass::Match);
        assert!(o.report().clean());
    }

    #[test]
    fn equal_goodness_is_a_tie() {
        let snaps = [snap(1, 10, 20, 1), snap(2, 10, 20, 1)];
        let mut o = Oracle::new(OracleMode::Strict);
        // Reference picks the first maximum (task 1); choosing the equal
        // task 2 is an order-of-scan tie.
        assert_eq!(o.judge(&decision(&snaps, tid(2))), DivergenceClass::Tie);
        assert!(o.report().clean());
    }

    #[test]
    fn worse_choice_on_up_is_unexplained() {
        let snaps = [snap(1, 10, 20, 1), snap(2, 5, 20, 1)];
        let mut o = Oracle::new(OracleMode::Strict);
        assert_eq!(
            o.judge(&decision(&snaps, tid(2))),
            DivergenceClass::Unexplained
        );
        assert_eq!(o.report().unexplained, 1);
        assert!(o.report().first_unexplained.is_some());
        assert!(!o.report().clean());
    }

    #[test]
    fn idle_with_work_available_is_unexplained() {
        let snaps = [snap(1, 10, 20, 1)];
        let mut o = Oracle::new(OracleMode::Strict);
        let d = decision(&snaps, tid(0)); // chose idle
        assert_eq!(o.judge(&d), DivergenceClass::Unexplained);
    }

    #[test]
    fn truncated_list_within_slack_is_explained() {
        // Seven tasks in the same list (statics 80..83 clamp to list 19
        // — avoid that; use statics 40..43 -> list 10), limit 5.
        let mut snaps = Vec::new();
        for i in 0..7 {
            snaps.push(snap(i + 1, 20 + (i as i32 % 4), 20, 1));
        }
        // Reference best: counter 23 (say task with i%4==3). Choose a
        // counter-20 task instead: gap 3 <= slack, list holds 7 > 5.
        let best = snaps
            .iter()
            .max_by_key(|s| s.counter)
            .map(|s| s.tid)
            .unwrap();
        let worst = snaps.iter().min_by_key(|s| s.counter).unwrap().tid;
        assert_ne!(best, worst);
        let mut o = Oracle::new(OracleMode::Strict);
        assert_eq!(
            o.judge(&decision(&snaps, worst)),
            DivergenceClass::Truncation
        );
        assert!(o.report().clean());
    }

    #[test]
    fn same_gap_without_truncation_is_unexplained_on_up() {
        // Two tasks, same list, gap 3 — but the list holds only 2 ≤ limit,
        // so the bounded search must have seen both: no excuse.
        let snaps = [snap(1, 23, 20, 1), snap(2, 20, 20, 1)];
        let mut o = Oracle::new(OracleMode::Strict);
        assert_eq!(
            o.judge(&decision(&snaps, tid(2))),
            DivergenceClass::Unexplained
        );
    }

    #[test]
    fn smp_affinity_slack_is_explained() {
        let mut a = snap(1, 12, 20, 1); // static 32
        let mut b = snap(2, 10, 20, 2); // static 30
        a.processor = 1; // affinity elsewhere
        b.processor = 0;
        let snaps = [a, b];
        let mut d = decision(&snaps, tid(2));
        d.smp = true;
        // Reference on cpu 0: a -> 32, b -> 30 + 15 = 45; b wins. Flip:
        // choosing a instead has gap 13 <= 19 -> Affinity.
        let mut o = Oracle::new(OracleMode::Strict);
        d.chosen = tid(1);
        assert_eq!(o.judge(&d), DivergenceClass::Affinity);
    }

    #[test]
    fn smp_same_list_gap_is_unexplained() {
        // The off-by-one comparator the chaos self-test seeds (`w > best
        // + 1`) loses gap-1 picks *within one list*. Both tasks here sit
        // in list 7 and both were provably examined (occupancy 2 ≤ limit
        // 5), so the old blanket "SMP affinity slack" excuse must NOT
        // apply: same-list skips are rejected on SMP exactly as on UP.
        let mut a = snap(1, 11, 20, 1); // static 31 -> list 7
        let mut b = snap(2, 10, 20, 1); // static 30 -> list 7
        a.processor = 0;
        b.processor = 0;
        let snaps = [a, b];
        let mut d = decision(&snaps, tid(2));
        d.smp = true;
        d.topology = Topology::flat(2);
        let mut o = Oracle::new(OracleMode::Strict);
        assert_eq!(o.judge(&d), DivergenceClass::Unexplained);
    }

    #[test]
    fn strict_topology_gap_is_classified_on_multilevel_trees() {
        // 2N4C2T, deciding CPU 0. The reference winner last ran on CPU 1
        // (an SMT sibling: +12); the chosen task last ran on CPU 8 (the
        // other node: +0). Equal statics, so the whole gap is the
        // distance-graded bonus a flat-thinking scheduler cannot see.
        let mut near = snap(1, 10, 20, 1);
        let mut far = snap(2, 10, 20, 1);
        near.processor = 1;
        far.processor = 8;
        let snaps = [near, far];
        let mut d = decision(&snaps, tid(2));
        d.smp = true;
        d.topology = "2N4C2T".parse().unwrap();
        let mut o = Oracle::new(OracleMode::Strict);
        assert_eq!(o.judge(&d), DivergenceClass::Topology);
        assert_eq!(o.report().topology, 1);
        assert!(o.report().clean());
        // The counter serializes only when nonzero, so flat-topology
        // reports (and committed baselines) keep their exact bytes.
        assert!(o.report().to_json().contains("\"topology\":1"));
        assert!(!Oracle::new(OracleMode::Strict)
            .report()
            .to_json()
            .contains("topology"));
    }

    #[test]
    fn relaxed_mode_refines_closer_picks_into_topology() {
        // Relaxed scheduler on a multi-level tree choosing the task whose
        // last CPU is nearer the deciding CPU than the reference winner's:
        // a deliberate locality trade (mq's LLC steal, bubble), logged as
        // Topology rather than generic Design.
        let mut strong_far = snap(1, 30, 20, 1);
        let mut weak_near = snap(2, 10, 20, 1);
        strong_far.processor = 8; // other node
        weak_near.processor = 0; // the deciding CPU itself
        let snaps = [strong_far, weak_near];
        let mut d = decision(&snaps, tid(2));
        d.smp = true;
        d.topology = "2N4C2T".parse().unwrap();
        let mut o = Oracle::new(OracleMode::Relaxed);
        assert_eq!(o.judge(&d), DivergenceClass::Topology);
        // A *farther* pick stays Design.
        let mut d = decision(&snaps, tid(1));
        d.smp = true;
        d.topology = "2N4C2T".parse().unwrap();
        d.cpu = 0;
        // Make the reference prefer the near task so tid(1) diverges.
        let snaps2 = [weak_near, {
            let mut s = strong_far;
            s.counter = 1; // now weaker than near's bonused goodness
            s
        }];
        let mut d2 = decision(&snaps2, tid(2));
        d2.chosen = snaps2[1].tid;
        d2.smp = true;
        d2.topology = "2N4C2T".parse().unwrap();
        let mut o2 = Oracle::new(OracleMode::Relaxed);
        assert_eq!(o2.judge(&d2), DivergenceClass::Design);
        let _ = d;
    }

    #[test]
    fn yield_rerun_is_explained() {
        let mut y = snap(1, 10, 20, 1);
        y.yielded = true;
        let snaps = [y];
        let mut d = decision(&snaps, tid(1));
        d.prev = tid(1);
        d.prev_yielded = true;
        d.prev_runnable = true;
        d.yield_rerun = true;
        // Reference: lone yielder -> c == 0 -> recalc -> prev wins with
        // fresh goodness; expected == prev == chosen -> Match actually.
        // Force the divergent shape: another zero-counter task exists so
        // the reference recalc promotes *it* above the yielder's half
        // quantum.
        let mut parked = snap(2, 0, 40, 1);
        parked.processor = 0;
        let snaps2 = [y, parked];
        let mut d2 = decision(&snaps2, tid(1));
        d2.prev = tid(1);
        d2.prev_yielded = true;
        d2.prev_runnable = true;
        d2.yield_rerun = true;
        let mut o = Oracle::new(OracleMode::Strict);
        assert_eq!(o.judge(&d2), DivergenceClass::YieldRerun);
        let _ = d;
    }

    #[test]
    fn yield_rerun_shadowing_a_lower_list_is_explained() {
        // Regression (found by running the oracle over volano on UP): the
        // bounded search stops at the *first* list holding any candidate,
        // so a yielder in list 10 (static 40) shadows a runnable task in
        // list 9 (static 39). ELSC reruns the yielder; the reference scan
        // zeroes the yielder and picks the lower task — and the rerun
        // yielder's raw goodness (56, yield consumed) even *exceeds* the
        // reference winner's (55). The negative gap must not trip the
        // "better than the reference" rejection.
        let mut y = snap(26, 20, 20, 2); // static 40 -> list 10
        y.yielded = true;
        y.has_cpu = true;
        let other = snap(30, 19, 20, 2); // static 39 -> list 9
        let snaps = [y, other];
        let mut d = decision(&snaps, tid(26));
        d.prev = tid(26);
        d.prev_yielded = true;
        d.prev_runnable = true;
        d.yield_rerun = true;
        let mut o = Oracle::new(OracleMode::Strict);
        assert_eq!(o.judge(&d), DivergenceClass::YieldRerun);
        assert!(o.report().clean());
    }

    #[test]
    fn relaxed_mode_logs_design_divergence() {
        let snaps = [snap(1, 40, 20, 1), snap(2, 5, 20, 1)];
        let mut o = Oracle::new(OracleMode::Relaxed);
        assert_eq!(o.judge(&decision(&snaps, tid(2))), DivergenceClass::Design);
        assert!(o.report().clean());
    }

    #[test]
    fn relaxed_mode_still_rejects_nonrunnable_choices() {
        let snaps = [snap(1, 10, 20, 1)];
        let mut o = Oracle::new(OracleMode::Relaxed);
        assert_eq!(
            o.judge(&decision(&snaps, tid(77))),
            DivergenceClass::Unexplained
        );
    }

    #[test]
    fn reference_recalculates_when_all_quanta_exhausted() {
        let mut a = snap(1, 0, 20, 1);
        let mut b = snap(2, 0, 30, 1);
        a.processor = 0;
        b.processor = 0;
        let snaps = [a, b];
        // After recalc: a -> 20, b -> 30; b wins.
        let mut o = Oracle::new(OracleMode::Strict);
        assert_eq!(o.judge(&decision(&snaps, tid(2))), DivergenceClass::Match);
    }

    #[test]
    fn rt_always_beats_timesharing_in_reference() {
        let mut rt = snap(1, 0, 20, 1);
        rt.rt = true;
        rt.rt_priority = 10;
        let ts = snap(2, 40, 40, 1);
        let snaps = [ts, rt];
        let mut o = Oracle::new(OracleMode::Strict);
        assert_eq!(o.judge(&decision(&snaps, tid(1))), DivergenceClass::Match);
    }

    #[test]
    fn invariant_checker_flags_bad_counters() {
        let mut tasks = TaskTable::new();
        let a = tasks.spawn(&TaskSpec::named("a").priority(20));
        tasks.task_mut(a).counter = 41; // > 2 * 20
        let v = check_task_invariants(&tasks);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("counter 41"));
        tasks.task_mut(a).counter = 40;
        assert!(check_task_invariants(&tasks).is_empty());
    }

    #[test]
    fn oracle_report_json_is_stable() {
        let mut o = Oracle::new(OracleMode::Strict);
        let snaps = [snap(1, 10, 20, 1)];
        o.judge(&decision(&snaps, tid(1)));
        assert_eq!(
            o.report().to_json(),
            "{\"decisions\":1,\"matches\":1,\"ties\":0,\"yield_reruns\":0,\
             \"truncations\":0,\"affinity\":0,\"design\":0,\"unexplained\":0,\
             \"invariant_violations\":0}"
        );
    }

    #[test]
    fn chaos_summary_json_is_stable() {
        let s = ChaosSummary {
            fault_plan: Some("light".into()),
            fault_seed: 99,
            counts: FaultCounts::default(),
            oracle: None,
        };
        let j = s.to_json();
        assert!(j.starts_with("{\"fault_plan\":\"light\",\"fault_seed\":99,\"faults\":{"));
        let s2 = ChaosSummary {
            fault_plan: None,
            ..s
        };
        assert!(s2.to_json().starts_with("{\"fault_plan\":null,"));
    }

    #[test]
    fn record_violations_keeps_first_detail() {
        let mut o = Oracle::new(OracleMode::Strict);
        o.record_violations(&["first".into(), "second".into()]);
        o.record_violations(&["third".into()]);
        assert_eq!(o.report().invariant_violations, 3);
        assert_eq!(o.report().first_violation.as_deref(), Some("first"));
    }
}
