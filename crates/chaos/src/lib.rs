//! elsc-chaos: deterministic fault injection and a differential
//! scheduler oracle.
//!
//! The paper's central claim (§5) is that ELSC makes *exactly* the
//! decisions the O(n) baseline would make, only cheaper — "the same task
//! is selected". This crate turns that sentence into machinery:
//!
//! * **Fault plan** ([`FaultPlan`] / [`FaultInjector`]): a seeded,
//!   independently-streamed RNG that perturbs the machine at configurable
//!   rates — delayed or dropped-then-retried reschedule IPIs, spurious
//!   `wake_up_process()` calls, timer-tick jitter, lock-holder delay
//!   inside a held run-queue domain, and netsim peer resets / short
//!   writes. Every fault is emitted as an `obs` event so traces stay
//!   diffable, and the same `--fault-seed` reproduces a byte-identical
//!   run report.
//!
//! * **Cluster fault plan** ([`ClusterFaultPlan`] / [`ClusterInjector`]):
//!   the same machinery one level up, for the federated multi-machine
//!   simulation — link partitions (messages held, never dropped),
//!   slow-link congestion windows, and whole-node pauses, drawn from
//!   their own salted streams so fabric faults never correlate with any
//!   node's internal fault schedule.
//!
//! * **Differential oracle** ([`Oracle`]): a pessimistic O(n) reference
//!   `goodness()` scan replayed beside the scheduler under test on every
//!   `schedule()` decision. Any divergence that is not explained by a
//!   documented, bounded-search-permitted tie is counted as
//!   *unexplained* — the §5 equivalence claim as a machine-checked
//!   invariant. A run-queue invariant checker
//!   ([`check_task_invariants`]) rides along.
//!
//! The oracle is a pure observer: it charges no simulated cycles and
//! never mutates task state, so enabling it cannot change the schedule
//! it is checking (the same non-perturbation contract the tracing
//! subsystem keeps).
#![warn(missing_docs)]
#![deny(missing_docs)]

mod cluster;
mod oracle;
mod plan;

pub use cluster::{ClusterFaultCounts, ClusterFaultPlan, ClusterInjector, SlowWindow};
pub use oracle::{
    check_task_invariants, ChaosSummary, Decision, DivergenceClass, Oracle, OracleMode,
    OracleReport, TaskSnap, Verdict,
};
pub use plan::{FaultCounts, FaultInjector, FaultPlan, IpiFault};
