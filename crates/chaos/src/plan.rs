//! The deterministic fault plan: what to inject, how often, and the
//! seeded decision streams that make every run reproducible.

use std::fmt;
use std::str::FromStr;

use elsc_obs::json::Obj;
use elsc_simcore::SimRng;

/// Salt folded into the fault seed so the fault streams never collide
/// with the workload's own `MachineConfig::seed` streams even when the
/// operator passes the same number for both.
const CHAOS_STREAM_SALT: u64 = 0x00C4_A05F_4A17_u64;

/// Injection rates for every machine-level fault class.
///
/// All rates are probabilities in `[0, 1]` except [`FaultPlan::tick_jitter`],
/// which is the maximum *fractional* perturbation applied to every timer
/// tick period (`0.1` = ±10 %). A rate of zero disables the class and —
/// importantly for determinism — means its decision stream is never
/// consulted, so enabling one class cannot shift another class's draws.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Probability that a reschedule IPI is delivered late (its latency
    /// inflated 2–10×).
    pub ipi_delay: f64,
    /// Probability that a reschedule IPI is dropped outright. The lost
    /// interrupt is *recovered* by the target CPU's next timer tick
    /// (`need_resched` stays set), modelling the kernel's own safety net.
    pub ipi_drop: f64,
    /// Per-tick probability of a spurious `wake_up_process()` aimed at a
    /// deterministically chosen task. Waking a non-blocked task must be a
    /// no-op; waking a blocked one early is legal but hostile.
    pub spurious_wakeup: f64,
    /// Maximum fractional jitter on the timer-tick period (0 disables).
    pub tick_jitter: f64,
    /// Probability that a `schedule()` call holds its run-queue lock
    /// domain 1–4× longer than the work it did (a delayed lock holder;
    /// SMP builds only).
    pub lock_hold: f64,
    /// Probability that a pipe write is cut short: the syscall is charged
    /// but the message is not enqueued, and the writer retries.
    pub short_write: f64,
    /// Probability that a pipe write instead observes the peer resetting
    /// the connection: the pipe is closed, waking every parked reader and
    /// writer. Hostile — most workloads will not complete under this.
    pub peer_reset: f64,
    /// The spec string this plan was parsed from (report labelling).
    label: String,
}

impl FaultPlan {
    /// A plan with every rate zero (useful as a k=v parsing base).
    fn zero(label: &str) -> FaultPlan {
        FaultPlan {
            ipi_delay: 0.0,
            ipi_drop: 0.0,
            spurious_wakeup: 0.0,
            tick_jitter: 0.0,
            lock_hold: 0.0,
            short_write: 0.0,
            peer_reset: 0.0,
            label: label.to_string(),
        }
    }

    /// The `light` preset: every completion-safe fault class at low
    /// rates. Workloads still finish; the scheduler just lives in a
    /// noisier machine. No peer resets.
    pub fn light() -> FaultPlan {
        FaultPlan {
            ipi_delay: 0.05,
            ipi_drop: 0.02,
            spurious_wakeup: 0.05,
            tick_jitter: 0.10,
            lock_hold: 0.05,
            short_write: 0.05,
            peer_reset: 0.0,
            ..FaultPlan::zero("light")
        }
    }

    /// The `heavy` preset: doubled `light` rates. Still completion-safe
    /// (no peer resets), but the machine is genuinely hostile.
    pub fn heavy() -> FaultPlan {
        FaultPlan {
            ipi_delay: 0.10,
            ipi_drop: 0.05,
            spurious_wakeup: 0.10,
            tick_jitter: 0.20,
            lock_hold: 0.10,
            short_write: 0.10,
            peer_reset: 0.0,
            ..FaultPlan::zero("heavy")
        }
    }

    /// The `net` preset: `light` plus peer resets. Workloads whose
    /// conversations die mid-stream may never complete — use with a small
    /// watchdog and expect failures; that is the point.
    pub fn net() -> FaultPlan {
        FaultPlan {
            peer_reset: 0.01,
            label: "net".to_string(),
            ..FaultPlan::light()
        }
    }

    /// The report label: the preset name or k=v spec this plan came from.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    /// Parses a preset name (`light`, `heavy`, `net`) or a comma-separated
    /// `key=rate` list over the plan's field names, e.g.
    /// `ipi_drop=0.1,tick_jitter=0.2`.
    fn from_str(s: &str) -> Result<FaultPlan, String> {
        let s = s.trim();
        match s {
            "light" => return Ok(FaultPlan::light()),
            "heavy" => return Ok(FaultPlan::heavy()),
            "net" => return Ok(FaultPlan::net()),
            "" | "none" => return Err("empty fault plan (use a preset or key=rate list)".into()),
            _ => {}
        }
        let mut plan = FaultPlan::zero(s);
        for part in s.split(',') {
            let Some((key, val)) = part.split_once('=') else {
                return Err(format!(
                    "bad fault spec '{part}': expected key=rate (or a preset: light|heavy|net)"
                ));
            };
            let rate: f64 = val
                .trim()
                .parse()
                .map_err(|_| format!("bad fault rate '{val}' for '{key}'"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!(
                    "fault rate for '{key}' must be in [0,1], got {rate}"
                ));
            }
            let slot = match key.trim() {
                "ipi_delay" => &mut plan.ipi_delay,
                "ipi_drop" => &mut plan.ipi_drop,
                "spurious_wakeup" => &mut plan.spurious_wakeup,
                "tick_jitter" => &mut plan.tick_jitter,
                "lock_hold" => &mut plan.lock_hold,
                "short_write" => &mut plan.short_write,
                "peer_reset" => &mut plan.peer_reset,
                other => return Err(format!("unknown fault class '{other}'")),
            };
            *slot = rate;
        }
        Ok(plan)
    }
}

/// What the injector decided to do with one reschedule IPI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpiFault {
    /// Deliver normally.
    None,
    /// Deliver with this many *extra* cycles of latency.
    Delay(u64),
    /// Do not deliver. The target's `need_resched` flag stays set, so its
    /// next timer tick performs the reschedule — the kernel's own lost-IPI
    /// recovery path, which the machine model shares.
    Drop,
}

/// Per-class fault counters, reported at the end of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// IPIs delivered late.
    pub ipi_delayed: u64,
    /// IPIs dropped (recovered by the next tick).
    pub ipi_dropped: u64,
    /// Spurious `wake_up_process()` calls issued.
    pub spurious_wakeups: u64,
    /// Timer ticks whose period was jittered.
    pub ticks_jittered: u64,
    /// `schedule()` calls whose lock domain was held late.
    pub lock_holds: u64,
    /// Pipe writes cut short (retried by the writer).
    pub short_writes: u64,
    /// Pipes closed under a parked conversation (peer resets).
    pub peer_resets: u64,
}

impl FaultCounts {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.ipi_delayed
            + self.ipi_dropped
            + self.spurious_wakeups
            + self.ticks_jittered
            + self.lock_holds
            + self.short_writes
            + self.peer_resets
    }

    /// Deterministic JSON rendering (fixed key order).
    pub fn to_json(&self) -> String {
        Obj::new()
            .u64("total", self.total())
            .u64("ipi_delayed", self.ipi_delayed)
            .u64("ipi_dropped", self.ipi_dropped)
            .u64("spurious_wakeups", self.spurious_wakeups)
            .u64("ticks_jittered", self.ticks_jittered)
            .u64("lock_holds", self.lock_holds)
            .u64("short_writes", self.short_writes)
            .u64("peer_resets", self.peer_resets)
            .build()
    }
}

/// The runtime side of a [`FaultPlan`]: one forked [`SimRng`] stream per
/// fault class, so classes draw independently — changing the IPI rate
/// can never shift the wakeup stream's decisions — plus the per-class
/// injection counters.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    ipi: SimRng,
    wake: SimRng,
    tick: SimRng,
    lock: SimRng,
    net: SimRng,
    counts: FaultCounts,
}

impl FaultInjector {
    /// Builds an injector for `plan`, seeding every class stream from
    /// `fault_seed` (independent of the workload seed).
    pub fn new(plan: FaultPlan, fault_seed: u64) -> FaultInjector {
        let mut root = SimRng::new(fault_seed ^ CHAOS_STREAM_SALT);
        FaultInjector {
            plan,
            seed: fault_seed,
            ipi: root.fork(),
            wake: root.fork(),
            tick: root.fork(),
            lock: root.fork(),
            net: root.fork(),
            counts: FaultCounts::default(),
        }
    }

    /// The plan in effect.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault seed the streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-class injection counters so far.
    pub fn counts(&self) -> &FaultCounts {
        &self.counts
    }

    /// Decides the fate of one reschedule IPI with base latency
    /// `base_latency` cycles.
    pub fn ipi_fault(&mut self, base_latency: u64) -> IpiFault {
        if self.plan.ipi_drop > 0.0 && self.ipi.chance(self.plan.ipi_drop) {
            self.counts.ipi_dropped += 1;
            return IpiFault::Drop;
        }
        if self.plan.ipi_delay > 0.0 && self.ipi.chance(self.plan.ipi_delay) {
            // 1–9 extra base latencies: total delivery 2–10x nominal.
            let extra = base_latency.max(1) * (1 + self.ipi.below(9));
            self.counts.ipi_delayed += 1;
            return IpiFault::Delay(extra);
        }
        IpiFault::None
    }

    /// Returns the (possibly jittered) period for the next timer tick and
    /// whether jitter was applied.
    pub fn tick_period(&mut self, nominal: u64) -> (u64, bool) {
        if self.plan.tick_jitter <= 0.0 {
            return (nominal, false);
        }
        let jittered = self.tick.jitter(nominal, self.plan.tick_jitter).max(1);
        if jittered != nominal {
            self.counts.ticks_jittered += 1;
            (jittered, true)
        } else {
            (nominal, false)
        }
    }

    /// Per-tick spurious-wakeup decision: `Some(i)` names the victim by
    /// index into the caller's deterministic candidate list of length
    /// `candidates`.
    pub fn spurious_wakeup(&mut self, candidates: usize) -> Option<usize> {
        if candidates == 0 || self.plan.spurious_wakeup <= 0.0 {
            return None;
        }
        if !self.wake.chance(self.plan.spurious_wakeup) {
            return None;
        }
        self.counts.spurious_wakeups += 1;
        Some(self.wake.below(candidates as u64) as usize)
    }

    /// Lock-holder delay: `Some(extra)` stretches the held interval of a
    /// `schedule()` call whose metered work was `held` cycles by 1–4× of
    /// that work.
    pub fn lock_hold(&mut self, held: u64) -> Option<u64> {
        if self.plan.lock_hold <= 0.0 || !self.lock.chance(self.plan.lock_hold) {
            return None;
        }
        self.counts.lock_holds += 1;
        Some(held.max(1) * (1 + self.lock.below(4)))
    }

    /// Whether this pipe write is cut short (charged but not delivered;
    /// the writer retries at an advanced time, so progress is preserved
    /// with probability one for any rate < 1).
    pub fn short_write(&mut self) -> bool {
        if self.plan.short_write > 0.0 && self.net.chance(self.plan.short_write) {
            self.counts.short_writes += 1;
            true
        } else {
            false
        }
    }

    /// Whether this pipe write instead observes a peer reset (the pipe is
    /// closed under the conversation).
    pub fn peer_reset(&mut self) -> bool {
        if self.plan.peer_reset > 0.0 && self.net.chance(self.plan.peer_reset) {
            self.counts.peer_resets += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse() {
        assert_eq!("light".parse::<FaultPlan>().unwrap(), FaultPlan::light());
        assert_eq!("heavy".parse::<FaultPlan>().unwrap(), FaultPlan::heavy());
        assert_eq!("net".parse::<FaultPlan>().unwrap(), FaultPlan::net());
        assert_eq!(FaultPlan::light().label(), "light");
    }

    #[test]
    fn key_value_specs_parse() {
        let p: FaultPlan = "ipi_drop=0.25,tick_jitter=0.5".parse().unwrap();
        assert_eq!(p.ipi_drop, 0.25);
        assert_eq!(p.tick_jitter, 0.5);
        assert_eq!(p.ipi_delay, 0.0);
        assert_eq!(p.label(), "ipi_drop=0.25,tick_jitter=0.5");
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!("bogus".parse::<FaultPlan>().is_err());
        assert!("ipi_drop=2.0".parse::<FaultPlan>().is_err());
        assert!("ipi_drop=x".parse::<FaultPlan>().is_err());
        assert!("none".parse::<FaultPlan>().is_err());
        assert!("warp_core=0.1".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed| {
            let mut inj = FaultInjector::new(FaultPlan::heavy(), seed);
            let mut log = Vec::new();
            for i in 0..200u64 {
                log.push(format!(
                    "{:?}/{:?}/{:?}/{:?}/{}/{}",
                    inj.ipi_fault(100),
                    inj.tick_period(4_000_000),
                    inj.spurious_wakeup(8),
                    inj.lock_hold(500 + i),
                    inj.short_write(),
                    inj.peer_reset()
                ));
            }
            (log, *inj.counts())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds must differ");
    }

    #[test]
    fn class_streams_are_independent() {
        // Turning one class off must not shift another class's stream.
        let wake_draws = |plan: FaultPlan| {
            let mut inj = FaultInjector::new(plan, 42);
            (0..100)
                .map(|_| inj.spurious_wakeup(16))
                .collect::<Vec<_>>()
        };
        let with_ipi = wake_draws(FaultPlan::light());
        let without_ipi = wake_draws("spurious_wakeup=0.05".parse().unwrap());
        assert_eq!(with_ipi, without_ipi);
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::zero("off"), 1);
        for _ in 0..100 {
            assert_eq!(inj.ipi_fault(100), IpiFault::None);
            assert_eq!(inj.tick_period(1000), (1000, false));
            assert_eq!(inj.spurious_wakeup(4), None);
            assert_eq!(inj.lock_hold(100), None);
            assert!(!inj.short_write());
            assert!(!inj.peer_reset());
        }
        assert_eq!(inj.counts().total(), 0);
    }

    #[test]
    fn counts_track_injections() {
        let mut inj = FaultInjector::new("short_write=1.0".parse().unwrap(), 3);
        for _ in 0..5 {
            assert!(inj.short_write());
        }
        assert_eq!(inj.counts().short_writes, 5);
        assert_eq!(inj.counts().total(), 5);
    }

    #[test]
    fn counts_json_is_stable() {
        let c = FaultCounts {
            ipi_delayed: 1,
            ipi_dropped: 2,
            spurious_wakeups: 3,
            ticks_jittered: 4,
            lock_holds: 5,
            short_writes: 6,
            peer_resets: 7,
        };
        assert_eq!(
            c.to_json(),
            "{\"total\":28,\"ipi_delayed\":1,\"ipi_dropped\":2,\"spurious_wakeups\":3,\
             \"ticks_jittered\":4,\"lock_holds\":5,\"short_writes\":6,\"peer_resets\":7}"
        );
    }
}
