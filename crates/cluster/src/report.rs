//! The merged cluster report.
//!
//! A cluster run produces one [`RunReport`] per node — each already a
//! deterministic JSON artifact — plus fabric-level facts only the
//! federation knows: link traffic, cluster fault counts, and the
//! placement policy. [`ClusterReport`] merges them into a single
//! document whose bytes are a pure function of the run inputs, so the
//! lab's caching, hashing, and regression gating work on cluster cells
//! exactly as they do on single-machine cells.

use elsc_chaos::ClusterFaultCounts;
use elsc_machine::RunReport;
use elsc_netsim::LinkStats;
use elsc_obs::json::{array, num, Obj};
use elsc_simcore::Cycles;

use crate::dispatch::DispatcherId;

/// Traffic summary of one directional inter-node link.
#[derive(Clone, Copy, Debug)]
pub struct LinkReport {
    /// Source node.
    pub from: usize,
    /// Destination node.
    pub to: usize,
    /// Lifetime traffic counters.
    pub stats: LinkStats,
}

/// The merged result of a federated run.
#[derive(Debug)]
pub struct ClusterReport {
    /// Placement policy the dispatcher tier ran.
    pub dispatcher: DispatcherId,
    /// Exchange-epoch length used, in cycles.
    pub epoch_cycles: u64,
    /// Per-node reports, indexed by node id.
    pub nodes: Vec<RunReport>,
    /// Per-link traffic, in link-creation (bridge registration) order.
    pub links: Vec<LinkReport>,
    /// Cluster-level faults injected.
    pub fault_counts: ClusterFaultCounts,
}

impl ClusterReport {
    pub(crate) fn new(
        dispatcher: DispatcherId,
        epoch_cycles: u64,
        nodes: Vec<RunReport>,
        links: Vec<LinkReport>,
        fault_counts: ClusterFaultCounts,
    ) -> ClusterReport {
        ClusterReport {
            dispatcher,
            epoch_cycles,
            nodes,
            links,
            fault_counts,
        }
    }

    /// Cluster makespan: the slowest node's elapsed virtual time.
    pub fn elapsed(&self) -> Cycles {
        self.nodes
            .iter()
            .map(|n| n.elapsed)
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// Makespan in simulated seconds.
    pub fn elapsed_secs(&self) -> f64 {
        let hz = self.nodes.first().map_or(1, |n| n.cpu_hz);
        self.elapsed().get() as f64 / hz as f64
    }

    /// Sums a ledger counter across all nodes.
    pub fn ledger_total(&self, key: &str) -> u64 {
        self.nodes.iter().map(|n| n.ledger.get(key)).sum()
    }

    /// Cluster-wide rate of a ledger counter against the makespan.
    pub fn per_sec(&self, key: &str) -> f64 {
        let secs = self.elapsed_secs();
        if secs <= 0.0 {
            return 0.0;
        }
        self.ledger_total(key) as f64 / secs
    }

    /// Tasks spawned per node — the load-spread profile the dispatcher
    /// produced (VolanoMark: 2 threads per placed connection endpoint).
    pub fn node_tasks(&self) -> Vec<u64> {
        self.nodes.iter().map(|n| n.tasks_spawned).collect()
    }

    /// Whether every node's cycle ledger balanced.
    pub fn conservation_ok(&self) -> bool {
        self.nodes.iter().all(|n| n.conservation_ok)
    }

    /// Total messages carried by the inter-node fabric (zero under the
    /// locality dispatcher — its defining property).
    pub fn fabric_msgs(&self) -> u64 {
        self.links.iter().map(|l| l.stats.msgs).sum()
    }

    /// Renders the merged report. Key order is fixed and every value is
    /// deterministic, so the whole document is byte-identical across
    /// same-input runs — the property the lab cache and CI gate key on.
    pub fn to_json(&self) -> String {
        let links = array(self.links.iter().map(|l| {
            Obj::new()
                .u64("from", l.from as u64)
                .u64("to", l.to as u64)
                .u64("msgs", l.stats.msgs)
                .u64("bytes", l.stats.bytes)
                .u64("held", l.stats.held)
                .build()
        }));
        let tasks = array(self.node_tasks().into_iter().map(|t| t.to_string()));
        Obj::new()
            .str("kind", "cluster")
            .str("dispatcher", self.dispatcher.label())
            .u64("nodes", self.nodes.len() as u64)
            .u64("epoch_cycles", self.epoch_cycles)
            .u64("elapsed", self.elapsed().get())
            .raw("elapsed_secs", num(self.elapsed_secs()))
            .raw("node_tasks", tasks)
            .raw("links", links)
            .raw("cluster_faults", self.fault_counts.to_json())
            .raw(
                "node_reports",
                array(self.nodes.iter().map(|n| n.to_json())),
            )
            .build()
    }
}
