//! The cluster dispatcher: the upper tier of the two-level scheduler.
//!
//! The paper's scheduler decides *which task runs next on one box*; a
//! chat service of the era scaled past one box with a connection router
//! in front — a dispatcher deciding *which box a room and each of its
//! connections lands on*. Placement is made once, at admission (rooms
//! and clients are long-lived), so the dispatcher is pure bookkeeping:
//! no simulated cycles are charged for it, exactly like the lab's other
//! out-of-band machinery.
//!
//! Placement quality then feeds back through the *lower* tier: a node
//! that receives more connections runs more threads, and under the O(n)
//! baseline every extra thread makes every `schedule()` call on that
//! node slower. The cluster sweep measures exactly that interaction.

use std::fmt;
use std::str::FromStr;

/// The placement policies the dispatcher tier ships with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DispatcherId {
    /// Rooms and clients dealt to nodes in strict rotation.
    RoundRobin,
    /// Each placement goes to the node with the fewest threads so far
    /// (ties to the lowest node id). The classic connection router.
    LeastLoaded,
    /// Placements hashed onto a virtual-node ring: stable under
    /// membership change, but load balance is only as good as the hash.
    ConsistentHash,
    /// Clients co-located with their room's server side: zero
    /// cross-node traffic, load balance entirely up to room placement.
    Locality,
}

impl DispatcherId {
    /// Every policy, in presentation order.
    pub const ALL: [DispatcherId; 4] = [
        DispatcherId::RoundRobin,
        DispatcherId::LeastLoaded,
        DispatcherId::ConsistentHash,
        DispatcherId::Locality,
    ];

    /// The CLI/report token for this policy.
    pub fn label(&self) -> &'static str {
        match self {
            DispatcherId::RoundRobin => "round-robin",
            DispatcherId::LeastLoaded => "least-loaded",
            DispatcherId::ConsistentHash => "consistent-hash",
            DispatcherId::Locality => "locality",
        }
    }

    /// One-line description for `elsc-sim ls`.
    pub fn describe(&self) -> &'static str {
        match self {
            DispatcherId::RoundRobin => "deal rooms and clients to nodes in rotation",
            DispatcherId::LeastLoaded => {
                "place on the node with the fewest threads (ties: lowest id)"
            }
            DispatcherId::ConsistentHash => "hash placements onto a 16-vnode-per-node ring",
            DispatcherId::Locality => "co-locate every client with its room's server",
        }
    }
}

impl fmt::Display for DispatcherId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for DispatcherId {
    type Err = String;

    fn from_str(s: &str) -> Result<DispatcherId, String> {
        DispatcherId::ALL
            .iter()
            .copied()
            .find(|d| d.label() == s.trim())
            .ok_or_else(|| {
                let known: Vec<&str> = DispatcherId::ALL.iter().map(|d| d.label()).collect();
                format!("unknown dispatcher '{s}' (known: {})", known.join(", "))
            })
    }
}

/// SplitMix64: the placement hash. Self-contained so dispatcher
/// decisions depend on nothing but their inputs.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Virtual nodes per physical node on the consistent-hash ring.
const VNODES: usize = 16;

/// The dispatcher's mutable placement state. One instance drives one
/// cluster build; placements are a pure function of the call sequence,
/// so the same workload shape always shards the same way.
#[derive(Debug)]
pub struct Dispatcher {
    id: DispatcherId,
    nodes: usize,
    /// Round-robin rotation cursor.
    next: usize,
    /// Thread-count estimate per node (least-loaded).
    load: Vec<u64>,
    /// `(hash, node)` ring, sorted by hash (consistent-hash).
    ring: Vec<(u64, usize)>,
    /// Locality's room rotation cursor.
    room_next: usize,
}

impl Dispatcher {
    /// A fresh dispatcher for a cluster of `nodes` machines.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(id: DispatcherId, nodes: usize) -> Dispatcher {
        assert!(nodes > 0, "cluster needs at least one node");
        let mut ring: Vec<(u64, usize)> = (0..nodes)
            .flat_map(|n| (0..VNODES).map(move |v| (mix64((n as u64) << 32 | v as u64), n)))
            .collect();
        ring.sort_unstable();
        Dispatcher {
            id,
            nodes,
            next: 0,
            load: vec![0; nodes],
            ring,
            room_next: 0,
        }
    }

    /// The policy this dispatcher runs.
    pub fn id(&self) -> DispatcherId {
        self.id
    }

    fn ring_lookup(&self, hash: u64) -> usize {
        let i = self.ring.partition_point(|&(h, _)| h < hash);
        self.ring[i % self.ring.len()].1
    }

    fn least_loaded(&self) -> usize {
        let mut best = 0;
        for n in 1..self.nodes {
            if self.load[n] < self.load[best] {
                best = n;
            }
        }
        best
    }

    /// Places a room's server side: returns the home node. `weight` is
    /// the thread count this placement adds there (VolanoMark: two
    /// server threads per member).
    pub fn place_room(&mut self, room: usize, weight: u64) -> usize {
        let node = match self.id {
            DispatcherId::RoundRobin => {
                let n = self.next % self.nodes;
                self.next += 1;
                n
            }
            DispatcherId::LeastLoaded => self.least_loaded(),
            DispatcherId::ConsistentHash => self.ring_lookup(mix64(0x500D ^ (room as u64) << 8)),
            DispatcherId::Locality => {
                let n = self.room_next % self.nodes;
                self.room_next += 1;
                n
            }
        };
        self.load[node] += weight;
        node
    }

    /// Places one client connection of `room` (whose server side lives
    /// on `room_node`): returns the client's node. `weight` is the
    /// thread count added there (VolanoMark: two client threads).
    pub fn place_client(
        &mut self,
        room: usize,
        user: usize,
        room_node: usize,
        weight: u64,
    ) -> usize {
        let node = match self.id {
            DispatcherId::RoundRobin => {
                let n = self.next % self.nodes;
                self.next += 1;
                n
            }
            DispatcherId::LeastLoaded => self.least_loaded(),
            DispatcherId::ConsistentHash => {
                self.ring_lookup(mix64(0xC11E ^ ((room as u64) << 20 | user as u64)))
            }
            DispatcherId::Locality => room_node,
        };
        self.load[node] += weight;
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for d in DispatcherId::ALL {
            assert_eq!(d.label().parse::<DispatcherId>().unwrap(), d);
        }
        assert!("warp-drive".parse::<DispatcherId>().is_err());
    }

    #[test]
    fn round_robin_rotates_over_all_placements() {
        let mut d = Dispatcher::new(DispatcherId::RoundRobin, 3);
        let h = d.place_room(0, 8);
        assert_eq!(h, 0);
        assert_eq!(d.place_client(0, 0, h, 2), 1);
        assert_eq!(d.place_client(0, 1, h, 2), 2);
        assert_eq!(d.place_client(0, 2, h, 2), 0);
    }

    #[test]
    fn least_loaded_balances_threads_and_breaks_ties_low() {
        let mut d = Dispatcher::new(DispatcherId::LeastLoaded, 2);
        // Empty cluster: tie, so the room lands on node 0 with weight 8.
        assert_eq!(d.place_room(0, 8), 0);
        // Clients now pile onto node 1 until it catches up.
        for user in 0..4 {
            assert_eq!(d.place_client(0, user, 0, 2), 1);
        }
        // 8 vs 8: tie again, back to node 0.
        assert_eq!(d.place_client(0, 4, 0, 2), 0);
    }

    #[test]
    fn consistent_hash_is_stable_and_spreads() {
        let placements = |nodes| {
            let mut d = Dispatcher::new(DispatcherId::ConsistentHash, nodes);
            (0..64).map(|r| d.place_room(r, 1)).collect::<Vec<_>>()
        };
        assert_eq!(placements(4), placements(4), "pure function of inputs");
        let p = placements(4);
        for n in 0..4 {
            assert!(p.contains(&n), "node {n} got no rooms out of 64");
        }
        // Ring stability: adding a node moves some placements but leaves
        // most where they were (the property the policy exists for).
        let p5 = placements(5);
        let moved = p.iter().zip(&p5).filter(|(a, b)| a != b).count();
        assert!(moved < 40, "{moved}/64 placements moved on grow");
    }

    #[test]
    fn locality_pins_clients_to_the_room_home() {
        let mut d = Dispatcher::new(DispatcherId::Locality, 4);
        for room in 0..8 {
            let home = d.place_room(room, 8);
            assert_eq!(home, room % 4, "rooms rotate across nodes");
            for user in 0..5 {
                assert_eq!(d.place_client(room, user, home, 2), home);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_cluster_is_rejected() {
        Dispatcher::new(DispatcherId::RoundRobin, 0);
    }
}
