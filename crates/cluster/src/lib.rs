//! elsc-cluster: deterministic federated multi-machine simulation with
//! a two-level scheduler.
//!
//! The paper studies one box; services of the era scaled chat past one
//! box with a connection router in front of N machines. This crate
//! reproduces that architecture *inside* the simulation's determinism
//! contract:
//!
//! * **Federation** ([`Cluster`]): N [`elsc_machine::Machine`]s advance
//!   in conservative lock-step exchange epochs, connected by
//!   [`elsc_netsim::Link`] delay models (latency + serialisation, with
//!   partition / slow-link / node-pause fault windows from
//!   [`elsc_chaos::ClusterFaultPlan`]).
//! * **Dispatcher tier** ([`Dispatcher`]): pluggable placement policies
//!   — `round-robin`, `least-loaded`, `consistent-hash`, `locality` —
//!   routing VolanoMark rooms and connections across nodes. The lower
//!   tier is whichever kernel scheduler each node runs, so the sweep
//!   measures how placement skew amplifies (baseline) or doesn't (ELSC)
//!   per-node scheduling cost.
//! * **Merged report** ([`ClusterReport`]): per-node run reports plus
//!   link traffic and cluster fault counts, rendered byte-identically
//!   for the same `(seed, fault_seed, plan, cluster config)` no matter
//!   how many lab workers ran the sweep.
#![deny(missing_docs)]

pub mod dispatch;
pub mod federation;
pub mod report;
pub mod volano;

pub use dispatch::{Dispatcher, DispatcherId};
pub use federation::{node_seed, Cluster, ClusterConfig, ClusterError};
pub use report::{ClusterReport, LinkReport};

// Cluster fault types that appear in [`ClusterConfig`] and
// [`ClusterReport`], so downstream users (the lab, the CLI) do not need
// a direct `elsc-chaos` dependency.
pub use elsc_chaos::{ClusterFaultCounts, ClusterFaultPlan, ClusterInjector};
