//! Sharding VolanoMark across a cluster.
//!
//! The single-machine builder ([`elsc_workloads::volanomark::build`])
//! wires every room and connection onto one pipe table. This module
//! makes the same topology decisions one level up: the dispatcher
//! places each room's server side on a *home* node and each client
//! connection on some node; co-located endpoints share a plain local
//! pipe, split endpoints get an egress/ingress pipe pair bridged
//! through the federation's links.
//!
//! Under a 1-node cluster every placement collapses to node 0 and the
//! build degenerates to the single-machine builder — same pipes, same
//! spawn order, same RNG draws — which is what makes a 1-node cluster
//! cell byte-identical to the standalone cell (pinned by test).

use elsc_sched_api::Scheduler;
use elsc_workloads::volanomark::{
    new_room_monitor, spawn_client_pair, spawn_server_pair, VolanoConfig,
};

use crate::dispatch::Dispatcher;
use crate::federation::{Cluster, ClusterConfig, ClusterError};
use crate::report::ClusterReport;

/// Shards the VolanoMark topology across the cluster's nodes using the
/// configured dispatcher. Returns each room's home node.
pub fn build_sharded(cluster: &mut Cluster, cfg: &VolanoConfig) -> Vec<usize> {
    assert!(cfg.rooms > 0 && cfg.users_per_room > 0 && cfg.messages_per_user > 0);
    let mut dispatcher = Dispatcher::new(cluster.config().dispatcher, cluster.nodes());
    let users = cfg.users_per_room;
    // Placement weights are thread counts: the server side of a room is
    // two threads per member, a client connection is two threads.
    let room_weight = 2 * users as u64;
    let cap = cfg.pipe_capacity;
    let mut homes = Vec::with_capacity(cfg.rooms);
    for room in 0..cfg.rooms {
        let home = dispatcher.place_room(room, room_weight);
        homes.push(home);
        let outboxes: Vec<_> = (0..users)
            .map(|_| cluster.machine(home).create_pipe(cap))
            .collect();
        let monitor = new_room_monitor();
        for user in 0..users {
            let node = dispatcher.place_client(room, user, home, 2);
            let tag = (room * users + user) as u64;
            if node == home {
                // Co-located: one local pipe per direction, exactly the
                // single-machine wiring.
                let c2s = cluster.machine(home).create_pipe(cap);
                let s2c = cluster.machine(home).create_pipe(cap);
                spawn_client_pair(cluster.machine(home), cfg, c2s, s2c, tag);
                spawn_server_pair(
                    cluster.machine(home),
                    cfg,
                    c2s,
                    s2c,
                    outboxes[user],
                    &outboxes,
                    &monitor,
                );
            } else {
                // Split: each direction is an egress pipe on the writer's
                // node bridged to an ingress pipe on the reader's node.
                let c2s_egress = cluster.machine(node).create_pipe(cap);
                let s2c_ingress = cluster.machine(node).create_pipe(cap);
                let c2s_ingress = cluster.machine(home).create_pipe(cap);
                let s2c_egress = cluster.machine(home).create_pipe(cap);
                cluster.bridge(node, c2s_egress, home, c2s_ingress);
                cluster.bridge(home, s2c_egress, node, s2c_ingress);
                spawn_client_pair(cluster.machine(node), cfg, c2s_egress, s2c_ingress, tag);
                spawn_server_pair(
                    cluster.machine(home),
                    cfg,
                    c2s_ingress,
                    s2c_egress,
                    outboxes[user],
                    &outboxes,
                    &monitor,
                );
            }
        }
    }
    homes
}

/// Builds and runs a sharded VolanoMark cluster.
pub fn run(
    cluster_cfg: ClusterConfig,
    mk_sched: impl FnMut(usize) -> Box<dyn Scheduler>,
    cfg: &VolanoConfig,
) -> Result<ClusterReport, ClusterError> {
    let mut cluster = Cluster::new(cluster_cfg, mk_sched);
    build_sharded(&mut cluster, cfg);
    cluster.run()
}

/// The benchmark metric: cluster-wide delivered messages per simulated
/// second (against the makespan).
pub fn throughput(report: &ClusterReport) -> f64 {
    report.per_sec("messages")
}

/// Total deliveries a clean run must produce (same formula as the
/// single-machine benchmark — sharding changes placement, not volume).
pub fn total_deliveries(cfg: &VolanoConfig) -> u64 {
    cfg.total_deliveries()
}
