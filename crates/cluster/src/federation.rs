//! The conservative time-stepped federation.
//!
//! N [`Machine`]s advance in lock-step *exchange epochs*: every node
//! simulates up to the epoch barrier, then the federation drains each
//! bridged egress pipe, runs the segments through the connecting
//! [`Link`]'s delay model, and injects the arrivals into the destination
//! node's event queue. Every node has already simulated up to the
//! barrier when the exchange runs, and every arrival lands strictly
//! *after* it (the link adds propagation latency), so no message can
//! affect an instant a node has already passed — the conservative
//! synchronisation argument — and the merged result is a pure function
//! of `(seed, fault_seed, plan, cluster config)` no matter how the
//! surrounding lab schedules cells onto worker threads.
//!
//! Cluster-level faults (partitions, slow links, node pauses) are drawn
//! once per epoch from [`ClusterInjector`] streams in fixed link/node
//! order, so the fault schedule is part of the same determinism
//! contract.

use elsc_chaos::{ClusterFaultPlan, ClusterInjector};
use elsc_machine::{Machine, MachineConfig, RunError, StepStatus};
use elsc_netsim::{Link, LinkConfig, PipeId};
use elsc_sched_api::Scheduler;
use elsc_simcore::Cycles;

use crate::dispatch::DispatcherId;
use crate::report::{ClusterReport, LinkReport};

/// Cluster-wide configuration: the node template plus the fabric.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of federated machines.
    pub nodes: usize,
    /// Placement policy for the dispatcher tier.
    pub dispatcher: DispatcherId,
    /// Per-node machine template. Each node runs a copy with its seed,
    /// fault seed, and node id derived per [`node_seed`]; everything
    /// else (CPU count, costs, tick, watchdog, oracle) is shared.
    pub node_cfg: MachineConfig,
    /// Exchange-epoch length in cycles (default 400 000 = 1 ms at
    /// 400 MHz). Egress traffic is only drained at epoch barriers, so
    /// the effective cross-node latency is quantised up by at most one
    /// epoch; smaller epochs trade federation overhead for fidelity.
    pub epoch_cycles: u64,
    /// Delay model for every inter-node link.
    pub link: LinkConfig,
    /// Cluster-level fault plan (`None` runs a clean fabric).
    pub faults: Option<ClusterFaultPlan>,
    /// Seed for the cluster-level fault streams.
    pub fault_seed: u64,
}

impl ClusterConfig {
    /// A cluster of `nodes` copies of `node_cfg` with default fabric:
    /// 1 ms epochs, 100 µs / ~100 Mbit/s links, no faults.
    pub fn new(nodes: usize, dispatcher: DispatcherId, node_cfg: MachineConfig) -> ClusterConfig {
        ClusterConfig {
            nodes,
            dispatcher,
            fault_seed: node_cfg.fault_seed,
            node_cfg,
            epoch_cycles: 400_000,
            link: LinkConfig::default(),
            faults: None,
        }
    }

    /// Builder-style cluster fault plan.
    pub fn with_faults(mut self, plan: Option<ClusterFaultPlan>) -> ClusterConfig {
        self.faults = plan;
        self
    }

    /// Builder-style cluster fault seed.
    pub fn with_fault_seed(mut self, seed: u64) -> ClusterConfig {
        self.fault_seed = seed;
        self
    }
}

/// Derives node `n`'s seed from the cluster seed. Node 0 keeps the
/// cluster seed unchanged, so a 1-node cluster is byte-identical to the
/// equivalent standalone machine run.
pub fn node_seed(cluster_seed: u64, node: usize) -> u64 {
    cluster_seed ^ 0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(node as u64)
}

/// A failed cluster run.
#[derive(Debug)]
pub enum ClusterError {
    /// A node aborted (watchdog).
    Node {
        /// Which node.
        node: usize,
        /// Its machine-level error.
        err: RunError,
    },
    /// Every live node is wedged and no segment moved in an epoch: a
    /// cross-node deadlock (a bridge or teardown bug, not a result).
    Deadlock {
        /// The barrier (cycles) at which the cluster stalled.
        at: u64,
        /// Users still alive across all nodes.
        live_users: usize,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Node { node, err } => write!(f, "node {node}: {err}"),
            ClusterError::Deadlock { at, live_users } => write!(
                f,
                "cluster deadlock at {at} cycles: {live_users} users live, all nodes idle, no traffic moving"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// One direction of a bridged connection: segments written into
/// `egress` on node `from` are drained each epoch, delayed by the
/// shared link, and injected into `ingress` on node `to`.
#[derive(Debug)]
struct Bridge {
    from: usize,
    egress: PipeId,
    to: usize,
    ingress: PipeId,
    /// Index into [`Cluster::links`].
    link: usize,
    /// Arrival time of the latest segment, for in-order (TCP-like)
    /// delivery and for sequencing the FIN behind the data.
    last_arrival: u64,
    /// The egress close has been propagated; the bridge is drained.
    closed_sent: bool,
}

/// The federated cluster: machines, bridges, links, and the epoch loop.
pub struct Cluster {
    cfg: ClusterConfig,
    machines: Vec<Machine>,
    bridges: Vec<Bridge>,
    /// One directional link per `(from, to)` node pair, shared by every
    /// bridge between that pair (one wire serialises all of a pair's
    /// traffic). Creation order follows bridge registration order.
    links: Vec<((usize, usize), Link)>,
}

impl Cluster {
    /// Builds `cfg.nodes` machines, each with a scheduler from
    /// `mk_sched` and per-node seeds derived via [`node_seed`].
    ///
    /// # Panics
    ///
    /// Panics if the config has no nodes, or if the epoch exceeds the
    /// link latency (which would break conservative synchronisation).
    pub fn new(
        cfg: ClusterConfig,
        mut mk_sched: impl FnMut(usize) -> Box<dyn Scheduler>,
    ) -> Cluster {
        assert!(cfg.nodes > 0, "cluster needs at least one node");
        assert!(cfg.epoch_cycles > 0, "epoch must be positive");
        let machines = (0..cfg.nodes)
            .map(|n| {
                let node_cfg = cfg
                    .node_cfg
                    .clone()
                    .with_seed(node_seed(cfg.node_cfg.seed, n))
                    .with_fault_seed(node_seed(cfg.node_cfg.fault_seed, n))
                    .with_node_id(n as u32);
                Machine::new(node_cfg, mk_sched(n))
            })
            .collect();
        Cluster {
            cfg,
            machines,
            bridges: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.machines.len()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Mutable access to node `n`'s machine, for topology building
    /// (creating pipes, spawning tasks) before [`Cluster::run`].
    pub fn machine(&mut self, node: usize) -> &mut Machine {
        &mut self.machines[node]
    }

    fn link_index(&mut self, from: usize, to: usize) -> usize {
        if let Some(i) = self
            .links
            .iter()
            .position(|&((f, t), _)| f == from && t == to)
        {
            return i;
        }
        self.links.push(((from, to), Link::new(self.cfg.link)));
        self.links.len() - 1
    }

    /// Registers a directional bridge: traffic written to `egress` on
    /// node `from` arrives (delayed by the pair's link) in `ingress` on
    /// node `to`.
    ///
    /// # Panics
    ///
    /// Panics on a self-bridge — co-located endpoints should share a
    /// plain local pipe instead.
    pub fn bridge(&mut self, from: usize, egress: PipeId, to: usize, ingress: PipeId) {
        assert_ne!(from, to, "bridging a node to itself (use a local pipe)");
        let link = self.link_index(from, to);
        self.bridges.push(Bridge {
            from,
            egress,
            to,
            ingress,
            link,
            last_arrival: 0,
            closed_sent: false,
        });
    }

    /// Draws and applies this epoch's cluster faults: link order first
    /// (partitions, then congestion, per link), node order second
    /// (pauses). Each injected fault is recorded as an obs `fault` event
    /// on the machine it hits, so per-node traces stay diffable.
    fn inject_faults(&mut self, inj: &mut ClusterInjector, barrier: u64) {
        let epoch = self.cfg.epoch_cycles;
        // Draw per link first (the borrow of `self.links` must end
        // before the machines are touched), then emit the obs events on
        // the source machines so per-node traces stay diffable.
        let mut hits: Vec<(usize, &'static str)> = Vec::new();
        for ((from, _), link) in &mut self.links {
            if let Some(epochs) = inj.partition() {
                link.partition_until(Cycles(barrier + epochs * epoch));
                hits.push((*from, "cluster_partition"));
            }
            if let Some(w) = inj.slow_link() {
                link.degrade_until(Cycles(barrier + w.epochs * epoch), w.factor);
                hits.push((*from, "cluster_slow_link"));
            }
        }
        for (node, fault) in hits {
            self.machines[node].note_fault(fault);
        }
        for node in 0..self.machines.len() {
            if let Some(delta) = inj.node_pause() {
                self.machines[node].pause_for(delta);
                self.machines[node].note_fault("cluster_node_pause");
            }
        }
    }

    /// Drains every bridge at `barrier`, transmitting segments through
    /// the links and injecting arrivals. Returns how many segments (and
    /// FINs) moved.
    fn exchange(&mut self, barrier: u64) -> u64 {
        let mut moved = 0;
        for b in &mut self.bridges {
            if b.closed_sent {
                continue;
            }
            let (msgs, closed) = self.machines[b.from].drain_external(b.egress, Cycles(barrier));
            let link = &mut self.links[b.link].1;
            for msg in msgs {
                // In-order delivery: a segment sent after a congestion
                // window may compute an earlier raw arrival than one sent
                // inside it; clamp to the stream's latest arrival.
                let arrival = link.transmit(Cycles(barrier), msg.len);
                let at = arrival.get().max(b.last_arrival);
                b.last_arrival = at;
                self.machines[b.to].inject_external_msg(b.ingress, msg, Cycles(at));
                moved += 1;
            }
            if closed {
                // FIN: a zero-length segment through the same link, held
                // behind the data it follows.
                let arrival = link.transmit(Cycles(barrier), 0);
                let at = arrival.get().max(b.last_arrival);
                b.last_arrival = at;
                self.machines[b.to].inject_external_close(b.ingress, Cycles(at));
                b.closed_sent = true;
                moved += 1;
            }
        }
        moved
    }

    /// Runs the federation to completion and merges the per-node
    /// reports.
    pub fn run(mut self) -> Result<ClusterReport, ClusterError> {
        let mut injector = self
            .cfg
            .faults
            .clone()
            .map(|plan| ClusterInjector::new(plan, self.cfg.fault_seed));
        for m in &mut self.machines {
            m.start();
        }
        let mut done = vec![false; self.machines.len()];
        let mut barrier = 0u64;
        loop {
            barrier += self.cfg.epoch_cycles;
            if let Some(inj) = injector.as_mut() {
                self.inject_faults(inj, barrier);
            }
            let mut all_done = true;
            let mut all_idle = true;
            for (n, m) in self.machines.iter_mut().enumerate() {
                if done[n] {
                    continue;
                }
                match m.step_until(Cycles(barrier)) {
                    Ok(StepStatus::Done) => done[n] = true,
                    Ok(StepStatus::Paused { idle }) => {
                        all_done = false;
                        all_idle &= idle;
                    }
                    Err(err) => return Err(ClusterError::Node { node: n, err }),
                }
            }
            let moved = self.exchange(barrier);
            if all_done {
                break;
            }
            if all_idle && moved == 0 {
                let live_users = self.machines.iter().map(|m| m.live_users()).sum();
                return Err(ClusterError::Deadlock {
                    at: barrier,
                    live_users,
                });
            }
        }
        let fault_counts = injector.map(|inj| *inj.counts()).unwrap_or_default();
        let links = self
            .links
            .iter()
            .map(|(pair, link)| LinkReport {
                from: pair.0,
                to: pair.1,
                stats: link.stats(),
            })
            .collect();
        let nodes: Vec<_> = self.machines.iter_mut().map(|m| m.finish()).collect();
        Ok(ClusterReport::new(
            self.cfg.dispatcher,
            self.cfg.epoch_cycles,
            nodes,
            links,
            fault_counts,
        ))
    }
}
