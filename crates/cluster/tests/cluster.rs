//! Integration tests for the federated cluster: the headline
//! determinism invariant, the dispatcher tier's observable properties,
//! fault completion-safety, and per-node oracle cleanliness.

use elsc::ElscScheduler;
use elsc_chaos::ClusterFaultPlan;
use elsc_cluster::{volano, Cluster, ClusterConfig, DispatcherId};
use elsc_machine::MachineConfig;
use elsc_sched_api::Scheduler;
use elsc_sched_linux::LinuxScheduler;
use elsc_workloads::volanomark::{self, VolanoConfig};

fn tiny() -> VolanoConfig {
    VolanoConfig {
        rooms: 4,
        users_per_room: 4,
        messages_per_user: 3,
        ..VolanoConfig::default()
    }
}

fn node_cfg(seed: u64) -> MachineConfig {
    MachineConfig::smp(2).with_seed(seed).with_max_secs(200.0)
}

fn elsc_sched(_node: usize) -> Box<dyn Scheduler> {
    Box::new(ElscScheduler::new())
}

fn linux_sched(_node: usize) -> Box<dyn Scheduler> {
    Box::new(LinuxScheduler::new())
}

#[test]
fn merged_report_is_byte_identical_across_runs() {
    let run = || {
        let cfg = ClusterConfig::new(4, DispatcherId::LeastLoaded, node_cfg(11))
            .with_faults(Some(ClusterFaultPlan::light()))
            .with_fault_seed(7);
        volano::run(cfg, elsc_sched, &tiny()).expect("cluster completes")
    };
    assert_eq!(run().to_json(), run().to_json());
}

#[test]
fn different_seeds_produce_different_reports() {
    let run = |seed| {
        let cfg = ClusterConfig::new(2, DispatcherId::RoundRobin, node_cfg(seed));
        volano::run(cfg, elsc_sched, &tiny()).expect("cluster completes")
    };
    assert_ne!(run(1).to_json(), run(2).to_json());
}

#[test]
fn single_node_cluster_matches_standalone_run_byte_for_byte() {
    // The degenerate federation: same pipes, same spawn order, same RNG
    // draws, stepped instead of free-run — the node report must equal
    // the standalone machine's bytes exactly.
    let cluster = {
        let cfg = ClusterConfig::new(1, DispatcherId::LeastLoaded, node_cfg(42));
        volano::run(cfg, linux_sched, &tiny()).expect("cluster completes")
    };
    let standalone = volanomark::run(node_cfg(42), Box::new(LinuxScheduler::new()), &tiny());
    assert_eq!(cluster.nodes.len(), 1);
    assert_eq!(cluster.nodes[0].to_json(), standalone.to_json());
}

#[test]
fn all_messages_are_delivered_across_nodes() {
    let wl = tiny();
    for dispatcher in DispatcherId::ALL {
        let cfg = ClusterConfig::new(3, dispatcher, node_cfg(5));
        let r = volano::run(cfg, elsc_sched, &wl).expect("cluster completes");
        assert_eq!(
            r.ledger_total("messages"),
            wl.total_deliveries(),
            "{dispatcher}: every broadcast must arrive"
        );
        assert!(r.conservation_ok(), "{dispatcher}: per-node cycle ledgers");
        assert!(volano::throughput(&r) > 0.0);
    }
}

#[test]
fn locality_dispatcher_moves_zero_fabric_traffic() {
    let cfg = ClusterConfig::new(4, DispatcherId::Locality, node_cfg(9));
    let r = volano::run(cfg, elsc_sched, &tiny()).expect("cluster completes");
    assert_eq!(r.fabric_msgs(), 0, "co-located rooms need no links");
    assert_eq!(r.links.len(), 0, "no bridges at all");
    // Load still spreads: rooms rotate across nodes.
    assert!(r.node_tasks().iter().all(|&t| t > 0));
}

#[test]
fn least_loaded_spreads_wider_than_consistent_hash() {
    // The acceptance criterion: measurably different load spread. With
    // thread-count balancing the max/min gap across nodes must be no
    // worse than the hash ring's (and strictly better in imbalance).
    let wl = tiny();
    let spread = |dispatcher| {
        let cfg = ClusterConfig::new(4, dispatcher, node_cfg(13));
        let r = volano::run(cfg, elsc_sched, &wl).expect("cluster completes");
        let tasks = r.node_tasks();
        (
            *tasks.iter().max().unwrap() - *tasks.iter().min().unwrap(),
            tasks,
        )
    };
    let (ll_gap, ll_tasks) = spread(DispatcherId::LeastLoaded);
    let (ch_gap, ch_tasks) = spread(DispatcherId::ConsistentHash);
    assert!(
        ll_gap < ch_gap,
        "least-loaded {ll_tasks:?} (gap {ll_gap}) must balance tighter than \
         consistent-hash {ch_tasks:?} (gap {ch_gap})"
    );
}

#[test]
fn four_node_oracle_is_clean_under_no_faults_and_light_faults() {
    let wl = tiny();
    for faults in [None, Some(ClusterFaultPlan::light())] {
        let label = faults.as_ref().map_or("none", |f| f.label()).to_string();
        let cfg = ClusterConfig::new(4, DispatcherId::LeastLoaded, node_cfg(3).with_oracle(true))
            .with_faults(faults)
            .with_fault_seed(21);
        let r = volano::run(cfg, elsc_sched, &wl).expect("cluster completes");
        assert_eq!(r.ledger_total("messages"), wl.total_deliveries(), "{label}");
        for node in &r.nodes {
            let oracle = node
                .chaos
                .as_ref()
                .and_then(|c| c.oracle.as_ref())
                .expect("oracle was enabled");
            assert!(oracle.decisions > 0, "{label}: oracle judged decisions");
            assert_eq!(
                oracle.unexplained, 0,
                "{label}: node {} diverged: {:?}",
                node.config, oracle.first_unexplained
            );
            assert_eq!(oracle.invariant_violations, 0, "{label}");
        }
    }
}

#[test]
fn partitions_heal_and_the_run_still_completes() {
    // Aggressive partition rates: traffic stalls repeatedly but nothing
    // is dropped, so the benchmark still finishes with full delivery.
    let wl = tiny();
    let cfg = ClusterConfig::new(2, DispatcherId::RoundRobin, node_cfg(17))
        .with_faults(Some("partition=0.05,node_pause=0.01".parse().unwrap()))
        .with_fault_seed(99);
    let r = volano::run(cfg, elsc_sched, &wl).expect("cluster completes despite partitions");
    assert_eq!(r.ledger_total("messages"), wl.total_deliveries());
    assert!(
        r.fault_counts.partitions > 0,
        "the plan must actually have fired: {:?}",
        r.fault_counts
    );
    let held: u64 = r.links.iter().map(|l| l.stats.held).sum();
    assert!(held > 0, "some segment must have waited out a partition");
}

#[test]
fn cross_node_wiring_is_what_the_report_says() {
    // Round-robin on 2 nodes with 4-user rooms: every room splits, so
    // both directions of fabric must carry traffic.
    let wl = tiny();
    let cfg = ClusterConfig::new(2, DispatcherId::RoundRobin, node_cfg(8));
    let mut cluster = Cluster::new(cfg, elsc_sched);
    let homes = volano::build_sharded(&mut cluster, &wl);
    assert_eq!(homes, vec![0, 1, 0, 1], "rotation interleaves placements");
    let r = cluster.run().expect("cluster completes");
    assert!(r.fabric_msgs() > 0);
    for l in &r.links {
        assert!(l.stats.msgs > 0, "link {}->{} idle", l.from, l.to);
        assert!(l.stats.bytes > 0);
    }
    assert_eq!(r.ledger_total("messages"), wl.total_deliveries());
}
