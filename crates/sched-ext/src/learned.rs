//! The `learned:<model>` scheduler: model-predicted picks with a
//! verified native fallback.
//!
//! A trained `elsc-learn` model (logistic regression or MLP over the
//! seven per-candidate features) predicts which task `schedule()` should
//! pick. The prediction is never trusted blindly: a **bounded goodness
//! check** — the first `search_limit()` queue candidates, the same bound
//! ELSC's table search uses — verifies the pick is at least as good as
//! anything the bound saw. A verified hit dispatches straight away, so a
//! good model replaces the baseline's O(n) goodness scan with O(n) cheap
//! table-index scores plus an O(limit) verification. A failed check
//! charges one [`CostKind::Mispredict`] (pipeline-flush class) and falls
//! back to the full native scan, so a bad model costs strictly *more*
//! than the baseline — which the machine's accuracy watchdog notices and
//! punishes with deterministic ejection (`learn_eject_k` consecutive
//! misses), reusing the policy watchdog's swap-to-baseline machinery.
//!
//! Run-queue semantics are Linux-style (running tasks stay linked, adds
//! go to the front), so an ejection's drain + reversed re-add into the
//! baseline scheduler preserves queue order exactly.
//!
//! One deliberate train/inference skew: the machine snapshots trace
//! features *before* `schedule()` runs, but inference scores *after* the
//! RR quantum refresh on `prev`. Only exhausted SCHED_RR prevs are
//! affected, and the verification bound catches any pick the skew
//! misleads.

use std::collections::HashMap;

use elsc_ktask::{CpuId, Lists, SchedClass, Tid};
use elsc_learn::{quantize, Model, FEATURES};
use elsc_obs::ObsEvent;
use elsc_sched_api::{
    goodness_ignoring_yield_on, lane_goodness_ignoring_yield_on, topo_affinity_bonus, LearnedInfo,
    SchedCtx, Scheduler, IDLE_GOODNESS,
};
use elsc_simcore::CostKind;

/// A scheduler driving its picks from a trained [`Model`].
#[derive(Debug)]
pub struct LearnedScheduler {
    /// The single run-queue list, baseline-style.
    lists: Lists,
    /// Tasks on the run queue (running tasks included).
    nr_running: usize,
    /// The trained scorer.
    model: Model,
    /// Report name, `learned:<model stem>`.
    name: &'static str,
    /// Decision counter for the recency feature (mirrors the machine's
    /// `--decision-trace` bookkeeping, so trained recency columns mean
    /// the same thing at inference).
    decisions: u64,
    /// Decision index of each task's last win on any CPU.
    last_picked: HashMap<Tid, u64>,
    /// Predictions made (one per decision with scorable candidates).
    predictions: u64,
    /// Predictions that survived verification.
    hits: u64,
    /// Outcome of the last decision's prediction, for the machine's
    /// watchdog poll.
    last_outcome: Option<bool>,
}

impl LearnedScheduler {
    /// Builds a scheduler from an already-parsed model. `name` is the
    /// report label, conventionally `learned:<model stem>`.
    pub fn new(name: &'static str, model: Model) -> LearnedScheduler {
        LearnedScheduler {
            lists: Lists::new(1),
            nr_running: 0,
            model,
            name,
            decisions: 0,
            last_picked: HashMap::new(),
            predictions: 0,
            hits: 0,
            last_outcome: None,
        }
    }

    /// Parses a model file's text and builds the scheduler. `stem` is
    /// the model's short name (file stem); the report name becomes
    /// `learned:<stem>` (leaked once per load, like policy names).
    pub fn from_text(stem: &str, text: &str) -> Result<LearnedScheduler, String> {
        let model = Model::parse(text)?;
        let name: &'static str = Box::leak(format!("learned:{stem}").into_boxed_str());
        Ok(LearnedScheduler::new(name, model))
    }

    /// The model architecture label.
    pub fn arch(&self) -> &'static str {
        self.model.arch.name()
    }

    /// Collects the run queue front-to-back (tests and examples).
    pub fn queue_order(&self, tasks: &elsc_ktask::TaskTable) -> Vec<u32> {
        self.lists.collect(tasks, 0)
    }

    /// Scores one candidate: features vs this decision's context, then
    /// the model. `depth` is the queue depth sampled at entry.
    fn score_candidate(
        &self,
        ctx: &SchedCtx<'_>,
        cpu: CpuId,
        tid: Tid,
        depth: u64,
        prev_mm: elsc_ktask::MmId,
    ) -> i64 {
        let task = ctx.tasks.task(tid);
        let recency = self
            .last_picked
            .get(&tid)
            .map_or(255, |&won| (self.decisions - won).min(255));
        let raw: [i64; FEATURES] = [
            depth as i64,
            task.counter.max(0) as i64,
            task.priority.max(0) as i64,
            task.policy.class.is_realtime() as i64,
            (task.mm == prev_mm) as i64,
            topo_affinity_bonus(&ctx.cfg.topology, cpu, task.processor).max(0) as i64,
            recency as i64,
        ];
        self.model.score(&quantize(&raw))
    }

    /// The baseline's selection loop, verbatim: full O(n) goodness scan
    /// with system-wide recalculation when everything is out of quantum.
    /// The misprediction fallback and the no-prediction path both land
    /// here, so the learned scheduler can never pick worse than `reg`.
    fn native_scan(
        &mut self,
        ctx: &mut SchedCtx<'_>,
        cpu: CpuId,
        prev: Tid,
        idle: Tid,
        prev_mm: elsc_ktask::MmId,
        mut prev_yielded: bool,
    ) -> Tid {
        loop {
            let mut c = IDLE_GOODNESS;
            let mut next = idle;
            {
                let prev_task = ctx.tasks.task(prev);
                if prev != idle && prev_task.state.is_runnable() {
                    ctx.meter.charge(ctx.costs, CostKind::GoodnessEval);
                    ctx.stats.cpu_mut(cpu).tasks_examined += 1;
                    c = if prev_yielded {
                        prev_yielded = false;
                        0
                    } else {
                        goodness_ignoring_yield_on(&ctx.cfg.topology, prev_task, cpu, prev_mm)
                    };
                    next = prev;
                }
            }
            let mut cur = self.lists.first(0);
            while let Some(idx) = cur {
                let i = idx as usize;
                let lanes = ctx.tasks.lanes();
                let skip = if ctx.cfg.smp {
                    lanes.has_cpu(i)
                } else {
                    i == prev.index()
                };
                if !skip {
                    ctx.meter.charge(ctx.costs, CostKind::GoodnessEval);
                    ctx.stats.cpu_mut(cpu).tasks_examined += 1;
                    let weight = lane_goodness_ignoring_yield_on(
                        &ctx.cfg.topology,
                        ctx.tasks.lanes(),
                        i,
                        cpu,
                        prev_mm,
                    );
                    if weight > c {
                        c = weight;
                        next = ctx.tasks.by_index(i).tid;
                    }
                }
                cur = self.lists.next_task(ctx.tasks, idx);
            }
            if c != 0 {
                return next;
            }
            let stats = ctx.stats.cpu_mut(cpu);
            stats.recalc_entries += 1;
            ctx.emit(ObsEvent::RecalcStart {
                cpu,
                nr_running: self.nr_running as u64,
            });
            let n = elsc_ktask::recalc::recalculate_counters(ctx.tasks);
            ctx.stats.cpu_mut(cpu).recalc_tasks += n as u64;
            ctx.meter
                .charge_n(ctx.costs, CostKind::RecalcPerTask, n as u64);
            ctx.emit(ObsEvent::RecalcEnd {
                cpu,
                updated: n as u64,
            });
        }
    }
}

impl Scheduler for LearnedScheduler {
    fn name(&self) -> &'static str {
        self.name
    }

    fn add_to_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge(ctx.costs, CostKind::ListOp);
        debug_assert!(
            !ctx.tasks.task(tid).on_runqueue(),
            "double add to run queue"
        );
        self.lists.insert_front(ctx.tasks, 0, tid);
        self.nr_running += 1;
    }

    fn del_from_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge(ctx.costs, CostKind::ListOp);
        debug_assert!(
            ctx.tasks.task(tid).on_runqueue(),
            "del of task not on run queue"
        );
        self.lists.remove(ctx.tasks, tid);
        self.nr_running -= 1;
    }

    fn move_first_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge_n(ctx.costs, CostKind::ListOp, 2);
        self.lists.remove(ctx.tasks, tid);
        self.lists.insert_front(ctx.tasks, 0, tid);
    }

    fn move_last_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge_n(ctx.costs, CostKind::ListOp, 2);
        self.lists.remove(ctx.tasks, tid);
        self.lists.insert_back(ctx.tasks, 0, tid);
    }

    fn schedule(&mut self, ctx: &mut SchedCtx<'_>, cpu: CpuId, prev: Tid, idle: Tid) -> Tid {
        ctx.meter.charge(ctx.costs, CostKind::SchedBase);
        ctx.stats.cpu_mut(cpu).sched_calls += 1;
        self.decisions += 1;
        self.last_outcome = None;
        // Queue depth *before* prev leaves, matching the machine's
        // `--decision-trace` sampling point.
        let depth = self.nr_running as u64;

        // Baseline prev handling: blocked/exiting tasks leave the queue,
        // exhausted round-robin tasks requeue with a fresh quantum.
        {
            let prev_task = ctx.tasks.task(prev);
            if prev != idle && !prev_task.state.is_runnable() && prev_task.on_runqueue() {
                self.del_from_runqueue(ctx, prev);
            }
        }
        {
            let mut prev_task = ctx.tasks.task_mut(prev);
            let requeue = if prev_task.policy.class == SchedClass::Rr && prev_task.counter == 0 {
                prev_task.counter = prev_task.priority;
                prev_task.on_runqueue()
            } else {
                false
            };
            drop(prev_task);
            if requeue {
                self.move_last_runqueue(ctx, prev);
            }
        }
        let prev_mm = ctx.tasks.task(prev).mm;
        let prev_yielded = {
            let mut prev_task = ctx.tasks.task_mut(prev);
            let y = prev_task.policy.yielded;
            prev_task.policy.yielded = false;
            y
        };

        // Prediction pass: model-score every eligible candidate (prev
        // first, then the queue), one TableIndex charge per score — the
        // fixed-topology model evaluates in constant time, like an ELSC
        // table lookup. First-wins argmax mirrors the trainer's eval.
        let mut pick: Option<(i64, Tid)> = None;
        {
            let prev_runnable = ctx.tasks.task(prev).state.is_runnable();
            if prev != idle && prev_runnable {
                ctx.meter.charge(ctx.costs, CostKind::TableIndex);
                ctx.stats.cpu_mut(cpu).tasks_examined += 1;
                let s = self.score_candidate(ctx, cpu, prev, depth, prev_mm);
                pick = Some((s, prev));
            }
        }
        let mut cur = self.lists.first(0);
        while let Some(idx) = cur {
            let i = idx as usize;
            let skip = if ctx.cfg.smp {
                ctx.tasks.lanes().has_cpu(i)
            } else {
                i == prev.index()
            };
            if !skip {
                ctx.meter.charge(ctx.costs, CostKind::TableIndex);
                ctx.stats.cpu_mut(cpu).tasks_examined += 1;
                let tid = ctx.tasks.by_index(i).tid;
                let s = self.score_candidate(ctx, cpu, tid, depth, prev_mm);
                if pick.is_none_or(|(bs, _)| s > bs) {
                    pick = Some((s, tid));
                }
            }
            cur = self.lists.next_task(ctx.tasks, idx);
        }

        let next = if let Some((_, predicted)) = pick {
            // Bounded verification: the predicted pick must be schedulable
            // now (goodness > 0, yield respected) and at least as good as
            // the first `search_limit()` queue candidates.
            let g_pick = if predicted == prev && prev_yielded {
                0
            } else {
                goodness_ignoring_yield_on(
                    &ctx.cfg.topology,
                    ctx.tasks.task(predicted),
                    cpu,
                    prev_mm,
                )
            };
            ctx.meter.charge(ctx.costs, CostKind::GoodnessEval);
            ctx.stats.cpu_mut(cpu).tasks_examined += 1;
            let mut best_bounded = IDLE_GOODNESS;
            let mut seen = 0usize;
            let limit = ctx.cfg.search_limit();
            let mut cur = self.lists.first(0);
            while let Some(idx) = cur {
                if seen >= limit {
                    break;
                }
                let i = idx as usize;
                let skip = if ctx.cfg.smp {
                    ctx.tasks.lanes().has_cpu(i)
                } else {
                    i == prev.index()
                };
                if !skip {
                    ctx.meter.charge(ctx.costs, CostKind::GoodnessEval);
                    ctx.stats.cpu_mut(cpu).tasks_examined += 1;
                    let w = lane_goodness_ignoring_yield_on(
                        &ctx.cfg.topology,
                        ctx.tasks.lanes(),
                        i,
                        cpu,
                        prev_mm,
                    );
                    if w > best_bounded {
                        best_bounded = w;
                    }
                    seen += 1;
                }
                cur = self.lists.next_task(ctx.tasks, idx);
            }
            if g_pick > 0 && g_pick >= best_bounded {
                self.predictions += 1;
                self.hits += 1;
                self.last_outcome = Some(true);
                predicted
            } else if best_bounded <= 0 && g_pick <= 0 {
                // Nothing within the bound is schedulable either: the
                // world is out of quantum, not the model. No prediction
                // is scored; the native scan recalculates and picks.
                self.native_scan(ctx, cpu, prev, idle, prev_mm, prev_yielded)
            } else {
                self.predictions += 1;
                self.last_outcome = Some(false);
                ctx.meter.charge(ctx.costs, CostKind::Mispredict);
                self.native_scan(ctx, cpu, prev, idle, prev_mm, prev_yielded)
            }
        } else {
            // No scorable candidate (empty queue): the native loop
            // handles idle selection without scoring a prediction.
            self.native_scan(ctx, cpu, prev, idle, prev_mm, prev_yielded)
        };

        if next == idle {
            ctx.stats.cpu_mut(cpu).idle_scheduled += 1;
        } else {
            self.last_picked.insert(next, self.decisions);
        }
        if next != prev {
            ctx.tasks.task_mut(prev).has_cpu = false;
        }
        ctx.tasks.task_mut(next).has_cpu = true;
        next
    }

    fn nr_running(&self) -> usize {
        self.nr_running
    }

    fn debug_check(&self, tasks: &elsc_ktask::TaskTable) {
        self.lists.check(tasks, 0);
        assert_eq!(
            self.lists.len(tasks, 0),
            self.nr_running,
            "nr_running out of sync with the run queue"
        );
    }

    fn learned_info(&self) -> Option<LearnedInfo> {
        Some(LearnedInfo {
            name: self.name,
            arch: self.arch(),
        })
    }

    fn take_prediction(&mut self) -> Option<bool> {
        self.last_outcome.take()
    }

    fn prediction_stats(&self) -> (u64, u64) {
        (self.predictions, self.hits)
    }

    fn drain(&mut self, ctx: &mut SchedCtx<'_>) -> Vec<Tid> {
        let mut out = Vec::new();
        while let Some(i) = self.lists.first(0) {
            let tid = ctx.tasks.by_index(i as usize).tid;
            ctx.meter.charge(ctx.costs, CostKind::ListOp);
            self.lists.remove(ctx.tasks, tid);
            out.push(tid);
        }
        self.nr_running = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsc_ktask::{TaskSpec, TaskState, TaskTable};
    use elsc_learn::model::Arch;
    use elsc_learn::Q_ONE;
    use elsc_sched_api::SchedConfig;
    use elsc_simcore::{CostModel, CycleMeter};
    use elsc_stats::SchedStats;

    /// Model scoring `+counter`: agrees with goodness on equal-priority
    /// timesharing tasks, so its predictions verify.
    fn good_model() -> Model {
        let mut m = Model::zeroed(Arch::LogReg);
        m.w[1] = Q_ONE;
        m
    }

    /// Model scoring `-counter`: prefers exactly the task goodness would
    /// not, so every contested prediction fails verification.
    fn bad_model() -> Model {
        let mut m = Model::zeroed(Arch::LogReg);
        m.w[1] = -Q_ONE;
        m
    }

    struct Rig {
        tasks: TaskTable,
        stats: SchedStats,
        meter: CycleMeter,
        costs: CostModel,
        cfg: SchedConfig,
        sched: LearnedScheduler,
        idle: Tid,
    }

    impl Rig {
        fn new(cfg: SchedConfig, model: Model) -> Rig {
            let mut tasks = TaskTable::new();
            let idle = tasks.spawn(&TaskSpec::named("idle").priority(1));
            tasks.task_mut(idle).counter = 0;
            tasks.task_mut(idle).has_cpu = true;
            Rig {
                tasks,
                stats: SchedStats::new(cfg.nr_cpus),
                meter: CycleMeter::new(),
                costs: CostModel::default(),
                cfg,
                sched: LearnedScheduler::new("learned:test", model),
                idle,
            }
        }

        fn spawn(&mut self, name: &'static str, counter: i32) -> Tid {
            let tid = self.tasks.spawn(&TaskSpec::named(name));
            self.tasks.task_mut(tid).counter = counter;
            let mut ctx = SchedCtx {
                tasks: &mut self.tasks,
                stats: &mut self.stats,
                meter: &mut self.meter,
                costs: &self.costs,
                cfg: &self.cfg,
                probe: None,
                locks: None,
            };
            self.sched.add_to_runqueue(&mut ctx, tid);
            tid
        }

        fn schedule(&mut self, cpu: CpuId, prev: Tid) -> Tid {
            let mut ctx = SchedCtx {
                tasks: &mut self.tasks,
                stats: &mut self.stats,
                meter: &mut self.meter,
                costs: &self.costs,
                cfg: &self.cfg,
                probe: None,
                locks: None,
            };
            let next = self.sched.schedule(&mut ctx, cpu, prev, self.idle);
            self.sched.debug_check(&self.tasks);
            next
        }
    }

    #[test]
    fn verified_hit_dispatches_the_prediction() {
        let mut rig = Rig::new(SchedConfig::up(), good_model());
        rig.spawn("a", 5);
        let b = rig.spawn("b", 15);
        let next = rig.schedule(0, rig.idle);
        assert_eq!(next, b);
        assert_eq!(rig.sched.prediction_stats(), (1, 1));
        assert_eq!(rig.sched.take_prediction(), Some(true));
        assert_eq!(rig.sched.take_prediction(), None, "take clears");
        assert_eq!(rig.meter.kind_cycles()[CostKind::Mispredict as usize], 0);
    }

    #[test]
    fn misprediction_charges_and_falls_back_to_native_pick() {
        let mut rig = Rig::new(SchedConfig::up(), bad_model());
        rig.spawn("a", 5);
        let b = rig.spawn("b", 15);
        let next = rig.schedule(0, rig.idle);
        assert_eq!(next, b, "fallback must pick the goodness winner");
        assert_eq!(rig.sched.prediction_stats(), (1, 0));
        assert_eq!(rig.sched.take_prediction(), Some(false));
        assert_eq!(
            rig.meter.kind_cycles()[CostKind::Mispredict as usize],
            CostModel::default().get(CostKind::Mispredict)
        );
    }

    #[test]
    fn empty_queue_schedules_idle_without_predicting() {
        let mut rig = Rig::new(SchedConfig::up(), good_model());
        let next = rig.schedule(0, rig.idle);
        assert_eq!(next, rig.idle);
        assert_eq!(rig.sched.prediction_stats(), (0, 0));
        assert_eq!(rig.sched.take_prediction(), None);
        assert_eq!(rig.stats.cpu(0).recalc_entries, 0, "footnote 1 holds");
    }

    #[test]
    fn quantum_exhaustion_recalculates_without_scoring_a_miss() {
        let mut rig = Rig::new(SchedConfig::up(), good_model());
        let a = rig.spawn("a", 0);
        let b = rig.spawn("b", 0);
        let next = rig.schedule(0, rig.idle);
        assert!(next == a || next == b);
        assert_eq!(rig.stats.cpu(0).recalc_entries, 1);
        assert_eq!(
            rig.sched.prediction_stats(),
            (0, 0),
            "an unschedulable world is not the model's miss"
        );
    }

    #[test]
    fn blocking_prev_leaves_the_queue() {
        let mut rig = Rig::new(SchedConfig::up(), good_model());
        let a = rig.spawn("a", 10);
        let b = rig.spawn("b", 10);
        rig.tasks.task_mut(a).has_cpu = true;
        rig.tasks.task_mut(a).state = TaskState::Interruptible;
        let next = rig.schedule(0, a);
        assert_eq!(next, b);
        assert!(!rig.tasks.task(a).on_runqueue());
        assert_eq!(rig.sched.nr_running(), 1);
    }

    #[test]
    fn smp_skips_tasks_running_elsewhere() {
        let mut rig = Rig::new(SchedConfig::smp(2), good_model());
        let a = rig.spawn("a", 40);
        let b = rig.spawn("b", 1);
        rig.tasks.task_mut(a).has_cpu = true; // on the other CPU
        let next = rig.schedule(0, rig.idle);
        assert_eq!(next, b);
    }

    #[test]
    fn drain_preserves_queue_order() {
        let mut rig = Rig::new(SchedConfig::up(), good_model());
        let a = rig.spawn("a", 5);
        let b = rig.spawn("b", 5);
        // Adds insert at the front: queue order is b, a.
        let mut ctx = SchedCtx {
            tasks: &mut rig.tasks,
            stats: &mut rig.stats,
            meter: &mut rig.meter,
            costs: &rig.costs,
            cfg: &rig.cfg,
            probe: None,
            locks: None,
        };
        let drained = rig.sched.drain(&mut ctx);
        assert_eq!(drained, vec![b, a]);
        assert_eq!(rig.sched.nr_running(), 0);
        assert!(!ctx.tasks.task(a).on_runqueue());
        assert!(!ctx.tasks.task(b).on_runqueue());
    }

    #[test]
    fn yielding_prev_is_not_verified_as_a_hit() {
        let mut rig = Rig::new(SchedConfig::up(), good_model());
        let y = rig.spawn("y", 20);
        let o = rig.spawn("o", 5);
        rig.tasks.task_mut(y).policy.yielded = true;
        rig.tasks.task_mut(y).has_cpu = true;
        let next = rig.schedule(0, y);
        assert_eq!(next, o, "the yield must be honoured");
        assert!(!rig.tasks.task(y).policy.yielded, "yield bit consumed");
    }

    #[test]
    fn from_text_round_trips_and_names() {
        let text = good_model().to_text();
        let s = LearnedScheduler::from_text("volano-logreg", &text).unwrap();
        assert_eq!(s.name(), "learned:volano-logreg");
        let info = s.learned_info().unwrap();
        assert_eq!(info.arch, "logreg");
        assert!(LearnedScheduler::from_text("x", "garbage").is_err());
    }

    #[test]
    fn recency_feature_tracks_wins() {
        // A model scoring only recency (prefer least-recently-run) must
        // alternate between two equal tasks... as long as verification
        // lets it, which it does for equal-goodness candidates.
        let mut m = Model::zeroed(Arch::LogReg);
        m.w[6] = Q_ONE;
        let mut rig = Rig::new(SchedConfig::up(), m);
        let a = rig.spawn("a", 10);
        let b = rig.spawn("b", 10);
        let first = rig.schedule(0, rig.idle);
        let prev = first;
        let second = rig.schedule(0, prev);
        assert_ne!(first, second, "least-recent candidate wins round 2");
        assert_eq!(rig.sched.prediction_stats(), (2, 2));
        let _ = (a, b);
    }
}
