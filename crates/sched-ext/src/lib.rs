//! Alternative scheduler designs from the paper's §8 ("Future Work").
//!
//! The paper closes by sketching two directions beyond the table-based
//! design:
//!
//! * "sorting tasks by static goodness within heaps ... One could choose
//!   the absolute best task available simply by examining the top of each
//!   heap" — [`heap::HeapScheduler`] (one global ordered structure) and
//!   [`affinity_heap::AffinityHeapScheduler`] (a heap per
//!   processor × address-space pair, giving *exact* selection).
//! * "perhaps a multi-priority-queue solution would be more beneficial to
//!   help the scheduler scale to multiple processors" —
//!   [`multiqueue::MultiQueueScheduler`], per-CPU run queues with work
//!   stealing (the direction Linux eventually took with the O(1)
//!   scheduler).
//!
//! A third design goes beyond the paper's sketches:
//! [`bubble::BubbleScheduler`] places whole address-space *groups* down
//! a declared NUMA/SMT topology tree — per-node queues, sticky group
//! homes, and whole-group re-homing on steal.
//!
//! A fourth replaces the selection heuristic itself:
//! [`learned::LearnedScheduler`] ranks candidates with an offline-trained
//! `elsc-learn` model and dispatches the prediction only after a bounded
//! goodness check — mispredictions pay a `Mispredict` penalty and fall
//! back to the full native scan, and persistent inaccuracy gets the model
//! ejected by the machine's watchdog.
//!
//! All plug into the same [`elsc_sched_api::Scheduler`] trait and are
//! compared against `reg` and `elsc` by the ablation benchmarks.
#![warn(missing_docs)]

pub mod affinity_heap;
pub mod bubble;
pub mod heap;
pub mod learned;
pub mod multiqueue;

pub use affinity_heap::AffinityHeapScheduler;
pub use bubble::BubbleScheduler;
pub use heap::HeapScheduler;
pub use learned::LearnedScheduler;
pub use multiqueue::MultiQueueScheduler;
