//! The §8 "heaps for each processor and address space" design.
//!
//! "...many other possibilities exist, such as sorting tasks by static
//! goodness within heaps for each processor and address space. One could
//! choose the absolute best task available simply by examining the top of
//! each heap."
//!
//! Every queued task lives in exactly one heap, keyed by its
//! `(last processor, mm)` pair. All tasks in one heap therefore share the
//! same dynamic bonuses from any given caller's perspective, so the
//! heap's *top* (maximum static goodness) dominates the rest of the heap
//! — and the true global best is the maximum over heap tops plus
//! per-heap bonuses. Unlike ELSC's bounded search this selection is
//! *exact*: no task with a higher full goodness is ever passed over.
//!
//! The price is that selection examines one candidate per non-empty heap:
//! O(#processors × #address-spaces) instead of ELSC's O(1) — fine for a
//! chat server with two JVMs, unbounded for a fork-heavy compile. The
//! ablation benches quantify exactly that trade.

use std::collections::BTreeMap;

use elsc_ktask::{CpuId, MmId, SchedClass, TaskState, TaskTable, Tid};
use elsc_sched_api::{topo_affinity_bonus, SchedCtx, Scheduler, MM_BONUS, RT_GOODNESS_BASE};
use elsc_simcore::CostKind;

/// Heap key: `(static key, tie sequence)`; highest key wins, lowest
/// sequence is front-most among ties.
type Key = (i32, u64);

/// Which heap a task belongs to.
type HeapId = (CpuId, MmId);

/// Static key of a task: real-time above everything.
fn static_key(t: &elsc_ktask::Task) -> i32 {
    if t.policy.class.is_realtime() {
        RT_GOODNESS_BASE + t.rt_priority
    } else {
        t.static_goodness()
    }
}

/// Per-(processor, address-space) heap scheduler.
#[derive(Debug, Default)]
pub struct AffinityHeapScheduler {
    // Ordered maps keep iteration deterministic (selection ties and
    // recalculation rebuilds must not depend on hash order).
    heaps: BTreeMap<HeapId, BTreeMap<Key, Tid>>,
    /// Reverse index: each queued task's heap and key.
    index: BTreeMap<Tid, (HeapId, Key)>,
    /// Tasks marked on-queue while running.
    running: usize,
    front: u64,
    back: u64,
}

impl AffinityHeapScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        AffinityHeapScheduler {
            heaps: BTreeMap::new(),
            index: BTreeMap::new(),
            running: 0,
            front: u64::MAX / 2,
            back: u64::MAX / 2 + 1,
        }
    }

    fn insert(&mut self, tasks: &TaskTable, tid: Tid, at_front: bool) {
        let task = tasks.task(tid);
        let heap_id = (task.processor, task.mm);
        let seq = if at_front {
            self.front -= 1;
            self.front
        } else {
            self.back += 1;
            self.back
        };
        let key = (static_key(task), seq);
        let old = self.heaps.entry(heap_id).or_default().insert(key, tid);
        debug_assert!(old.is_none(), "key collision");
        self.index.insert(tid, (heap_id, key));
    }

    fn remove(&mut self, tid: Tid) -> bool {
        if let Some((heap_id, key)) = self.index.remove(&tid) {
            let heap = self.heaps.get_mut(&heap_id).expect("indexed heap exists");
            let removed = heap.remove(&key);
            debug_assert_eq!(removed, Some(tid));
            if heap.is_empty() {
                self.heaps.remove(&heap_id);
            }
            true
        } else {
            false
        }
    }

    fn recalculate(&mut self, ctx: &mut SchedCtx<'_>, cpu: CpuId) {
        ctx.stats.cpu_mut(cpu).recalc_entries += 1;
        // Zombies awaiting the post-schedule reap are not walked (or
        // charged for): recalc cost is per *live* task. Dense sweep of
        // the hot-field lanes.
        let n = ctx.tasks.recalc_counters(false) as u64;
        ctx.stats.cpu_mut(cpu).recalc_tasks += n;
        ctx.meter.charge_n(ctx.costs, CostKind::RecalcPerTask, n);
        // Rebuild all keys.
        let tids: Vec<Tid> = self.index.keys().copied().collect();
        for tid in &tids {
            self.remove(*tid);
        }
        for tid in tids {
            self.insert(ctx.tasks, tid, false);
        }
    }
}

impl Scheduler for AffinityHeapScheduler {
    fn name(&self) -> &'static str {
        "aheap"
    }

    fn add_to_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge(ctx.costs, CostKind::TableIndex);
        ctx.meter.charge(ctx.costs, CostKind::ListOp);
        debug_assert!(!self.index.contains_key(&tid), "double add");
        self.insert(ctx.tasks, tid, false);
    }

    fn del_from_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge(ctx.costs, CostKind::ListOp);
        if !self.remove(tid) {
            debug_assert!(self.running > 0, "del of unknown task");
            self.running -= 1;
        }
    }

    fn move_first_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge_n(ctx.costs, CostKind::ListOp, 2);
        if self.remove(tid) {
            self.insert(ctx.tasks, tid, true);
        }
    }

    fn move_last_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge_n(ctx.costs, CostKind::ListOp, 2);
        if self.remove(tid) {
            self.insert(ctx.tasks, tid, false);
        }
    }

    fn schedule(&mut self, ctx: &mut SchedCtx<'_>, cpu: CpuId, prev: Tid, idle: Tid) -> Tid {
        ctx.meter.charge(ctx.costs, CostKind::SchedBase);
        ctx.stats.cpu_mut(cpu).sched_calls += 1;

        let prev_yielded = ctx.tasks.task(prev).policy.yielded;
        if prev != idle {
            let runnable = ctx.tasks.task(prev).state == TaskState::Running;
            if runnable {
                {
                    let mut t = ctx.tasks.task_mut(prev);
                    if t.policy.class == SchedClass::Rr && t.counter == 0 {
                        t.counter = t.priority;
                    }
                }
                debug_assert!(self.running > 0);
                self.running -= 1;
                ctx.meter.charge(ctx.costs, CostKind::TableIndex);
                ctx.meter.charge(ctx.costs, CostKind::ListOp);
                self.insert(ctx.tasks, prev, false);
            } else {
                ctx.meter.charge(ctx.costs, CostKind::ListOp);
                if !self.remove(prev) {
                    debug_assert!(self.running > 0);
                    self.running -= 1;
                }
            }
        }

        let prev_mm = ctx.tasks.task(prev).mm;
        let next = loop {
            // Examine the top of every heap: one candidate each, with the
            // heap-wide bonuses applied — exact by construction.
            let mut best: Option<(Tid, i32)> = None;
            let mut yielded_fallback: Option<Tid> = None;
            let mut exhausted = false;
            for (&(heap_cpu, heap_mm), heap) in &self.heaps {
                // Skip tops running on other CPUs by walking down the few
                // affected entries (only running-marked tasks are absent
                // from heaps, so in practice the top is eligible).
                let Some((&(top_key, _), &tid)) = heap.iter().next_back() else {
                    continue;
                };
                let p = ctx.tasks.task(tid);
                if ctx.cfg.smp && p.has_cpu && p.processor != cpu {
                    continue;
                }
                if !p.policy.class.is_realtime() && p.counter == 0 {
                    exhausted = true;
                    continue;
                }
                ctx.meter.charge(ctx.costs, CostKind::GoodnessEval);
                ctx.stats.cpu_mut(cpu).tasks_examined += 1;
                if p.policy.yielded {
                    if yielded_fallback.is_none() {
                        yielded_fallback = Some(tid);
                    }
                    continue;
                }
                let w = if p.policy.class.is_realtime() {
                    top_key
                } else {
                    // Per-processor heaps make the affinity term a
                    // per-heap constant; distance-graded on declared
                    // topologies, the classic `{+15, 0}` on flat trees.
                    let mut w = top_key + topo_affinity_bonus(&ctx.cfg.topology, cpu, heap_cpu);
                    if heap_mm == prev_mm {
                        w += MM_BONUS;
                    }
                    w
                };
                if best.is_none_or(|(_, b)| w > b) {
                    best = Some((tid, w));
                }
            }
            if let Some((tid, _)) = best {
                break tid;
            }
            if let Some(tid) = yielded_fallback {
                ctx.stats.cpu_mut(cpu).yield_reruns += 1;
                break tid;
            }
            if exhausted {
                self.recalculate(ctx, cpu);
                continue;
            }
            break idle;
        };

        if next == idle {
            ctx.stats.cpu_mut(cpu).idle_scheduled += 1;
        } else {
            ctx.meter.charge(ctx.costs, CostKind::ListOp);
            let was_queued = self.remove(next);
            debug_assert!(was_queued);
            self.running += 1;
        }
        if prev_yielded {
            ctx.tasks.task_mut(prev).policy.yielded = false;
        }
        if next != prev {
            ctx.tasks.task_mut(prev).has_cpu = false;
        }
        ctx.tasks.task_mut(next).has_cpu = true;
        next
    }

    fn nr_running(&self) -> usize {
        self.index.len() + self.running
    }

    fn debug_check(&self, tasks: &TaskTable) {
        let total: usize = self.heaps.values().map(|h| h.len()).sum();
        assert_eq!(total, self.index.len(), "index out of sync");
        for (&heap_id, heap) in &self.heaps {
            assert!(!heap.is_empty(), "empty heap retained for {heap_id:?}");
            for (&key, &tid) in heap {
                let t = tasks.task(tid);
                assert_eq!((t.processor, t.mm), heap_id, "{} in the wrong heap", t.name);
                assert_eq!(key.0, static_key(t), "stale key for {tid:?}");
                assert_eq!(self.index.get(&tid), Some(&(heap_id, key)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsc_ktask::TaskSpec;
    use elsc_sched_api::SchedConfig;
    use elsc_simcore::{CostModel, CycleMeter};
    use elsc_stats::SchedStats;

    struct Rig {
        tasks: TaskTable,
        stats: SchedStats,
        meter: CycleMeter,
        costs: CostModel,
        cfg: SchedConfig,
        sched: AffinityHeapScheduler,
        idle: Tid,
    }

    impl Rig {
        fn new(cfg: SchedConfig) -> Rig {
            let mut tasks = TaskTable::new();
            let idle = tasks.spawn(&TaskSpec::named("idle").priority(1));
            tasks.task_mut(idle).counter = 0;
            tasks.task_mut(idle).has_cpu = true;
            Rig {
                tasks,
                stats: SchedStats::new(cfg.nr_cpus),
                meter: CycleMeter::new(),
                costs: CostModel::default(),
                cfg,
                sched: AffinityHeapScheduler::new(),
                idle,
            }
        }

        fn spawn_with(&mut self, counter: i32, cpu: CpuId, mm: MmId) -> Tid {
            let tid = self.tasks.spawn(&TaskSpec::named("t").mm(mm));
            {
                let mut t = self.tasks.task_mut(tid);
                t.counter = counter;
                t.processor = cpu;
            }
            let mut ctx = SchedCtx {
                tasks: &mut self.tasks,
                stats: &mut self.stats,
                meter: &mut self.meter,
                costs: &self.costs,
                cfg: &self.cfg,
                probe: None,
                locks: None,
            };
            self.sched.add_to_runqueue(&mut ctx, tid);
            tid
        }

        fn schedule(&mut self, cpu: CpuId, prev: Tid) -> Tid {
            let idle = self.idle;
            let mut ctx = SchedCtx {
                tasks: &mut self.tasks,
                stats: &mut self.stats,
                meter: &mut self.meter,
                costs: &self.costs,
                cfg: &self.cfg,
                probe: None,
                locks: None,
            };
            let next = self.sched.schedule(&mut ctx, cpu, prev, idle);
            self.sched.debug_check(&self.tasks);
            next
        }
    }

    #[test]
    fn empty_schedules_idle() {
        let mut rig = Rig::new(SchedConfig::smp(2));
        assert_eq!(rig.schedule(0, rig.idle), rig.idle);
    }

    #[test]
    fn selection_is_exact_across_heaps() {
        // ELSC can pass over a task whose bonuses would win; this design
        // must not. Task a: static 39, wrong CPU, wrong mm -> 39.
        // Task b: static 30, this CPU, matching mm -> 46. Exact pick: b.
        let mut rig = Rig::new(SchedConfig::smp(2));
        rig.tasks.task_mut(rig.idle).mm = MmId(7);
        let _a = rig.spawn_with(19, 1, MmId(3)); // 39
        let b = rig.spawn_with(10, 0, MmId(7)); // 30 + 15 + 1
        let next = rig.schedule(0, rig.idle);
        assert_eq!(next, b, "bonuses must be weighed exactly");
    }

    #[test]
    fn examines_one_candidate_per_heap() {
        let mut rig = Rig::new(SchedConfig::up());
        // 12 tasks, but only 2 distinct (cpu, mm) heaps.
        for i in 0..12 {
            rig.spawn_with(20, 0, MmId(1 + (i % 2) as u32));
        }
        rig.schedule(0, rig.idle);
        assert_eq!(rig.stats.cpu(0).tasks_examined, 2);
    }

    #[test]
    fn exhausted_tops_trigger_recalc() {
        let mut rig = Rig::new(SchedConfig::up());
        let a = rig.spawn_with(0, 0, MmId(1));
        let next = rig.schedule(0, rig.idle);
        assert_eq!(next, a);
        assert_eq!(rig.stats.cpu(0).recalc_entries, 1);
    }

    #[test]
    fn lone_yielder_reruns_without_recalc() {
        let mut rig = Rig::new(SchedConfig::up());
        let y = rig.spawn_with(20, 0, MmId(1));
        assert_eq!(rig.schedule(0, rig.idle), y);
        rig.tasks.task_mut(y).policy.yielded = true;
        assert_eq!(rig.schedule(0, y), y);
        assert_eq!(rig.stats.cpu(0).recalc_entries, 0);
        assert_eq!(rig.stats.cpu(0).yield_reruns, 1);
    }

    #[test]
    fn empty_heaps_are_garbage_collected() {
        let mut rig = Rig::new(SchedConfig::up());
        let a = rig.spawn_with(20, 0, MmId(1));
        assert_eq!(rig.sched.heaps.len(), 1);
        {
            let mut ctx = SchedCtx {
                tasks: &mut rig.tasks,
                stats: &mut rig.stats,
                meter: &mut rig.meter,
                costs: &rig.costs,
                cfg: &rig.cfg,
                probe: None,
                locks: None,
            };
            rig.sched.del_from_runqueue(&mut ctx, a);
        }
        assert!(rig.sched.heaps.is_empty());
        assert_eq!(rig.sched.nr_running(), 0);
    }

    #[test]
    fn realtime_tops_every_heap() {
        let mut rig = Rig::new(SchedConfig::up());
        let _other = rig.spawn_with(40, 0, MmId(1));
        let rt = {
            let tid = rig
                .tasks
                .spawn(&TaskSpec::named("rt").realtime(SchedClass::Fifo, 5));
            let mut ctx = SchedCtx {
                tasks: &mut rig.tasks,
                stats: &mut rig.stats,
                meter: &mut rig.meter,
                costs: &rig.costs,
                cfg: &rig.cfg,
                probe: None,
                locks: None,
            };
            rig.sched.add_to_runqueue(&mut ctx, tid);
            tid
        };
        assert_eq!(rig.schedule(0, rig.idle), rt);
    }
}
