//! Bubble scheduling: hierarchical placement of task *groups* down the
//! topology tree.
//!
//! The flat designs treat every CPU as equidistant; on a NUMA machine
//! that throws away the property the paper's chat-server workload has in
//! abundance — tasks that share an address space (a JVM's threads) also
//! share their cache working set. This scheduler places whole groups
//! ("bubbles", keyed by `mm`) onto NUMA nodes instead of placing tasks
//! onto CPUs:
//!
//! * One run queue per **node**, not per CPU. Every CPU on a node scans
//!   the same short list, so intra-node balance is automatic and the
//!   shared-LLC bonus applies to every candidate.
//! * A bubble is **homed** on the least-loaded node the first time one
//!   of its tasks becomes runnable; all later wakeups of the group land
//!   on the home node regardless of which CPU ran them last.
//! * When a node runs dry it steals — and re-homes the *entire bubble*
//!   of the stolen task, not just the one victim. Splitting an address
//!   space across nodes pays the interconnect on every mm switch; moving
//!   the group once pays it on the move only.
//!
//! Locking follows the structure: [`LockPlan::PerNode`] gives each node
//! queue its own domain, sized by the declared topology's
//! `cpus_per_node`. On a flat tree the whole scheduler degenerates to a
//! single global queue under a single domain — the baseline regime.

use std::collections::BTreeMap;

use elsc_ktask::recalc::recalculate_counters;
use elsc_ktask::{CpuId, Lists, MmId, SchedClass, TaskTable, Tid};
use elsc_sched_api::{goodness_ignoring_yield_on, LockPlan, SchedCtx, Scheduler, IDLE_GOODNESS};
use elsc_simcore::{CostKind, Topology};

/// Per-NUMA-node run queues placing mm-keyed task groups.
#[derive(Debug)]
pub struct BubbleScheduler {
    /// The declared machine shape; drives queue count and lock sizing.
    topo: Topology,
    /// One list per NUMA node.
    lists: Lists,
    /// Tasks per node queue.
    counts: Vec<usize>,
    /// Each bubble's home node. Sticky: survives the group going idle,
    /// so a JVM that sleeps between bursts keeps its warm node.
    homes: BTreeMap<MmId, usize>,
    nr_running: usize,
}

impl BubbleScheduler {
    /// Creates one queue per node of `topo`.
    pub fn new(topo: Topology) -> Self {
        let nodes = topo.nr_nodes();
        BubbleScheduler {
            topo,
            lists: Lists::new(nodes),
            counts: vec![0; nodes],
            homes: BTreeMap::new(),
            nr_running: 0,
        }
    }

    /// The node a task enqueues on: its bubble's home, assigned to the
    /// least-loaded node (lowest index on ties, for determinism) the
    /// first time the group is seen.
    fn place(&mut self, mm: MmId) -> usize {
        if let Some(&node) = self.homes.get(&mm) {
            return node;
        }
        let node = (0..self.counts.len())
            .min_by_key(|&n| self.counts[n])
            .expect("at least one node");
        self.homes.insert(mm, node);
        node
    }

    /// Scans node queue `q`, returning the best candidate and its
    /// goodness. `prev` is skipped (the caller evaluates it separately).
    fn scan_queue(
        &self,
        ctx: &mut SchedCtx<'_>,
        q: usize,
        cpu: CpuId,
        prev: Tid,
        prev_mm: MmId,
    ) -> (i32, Option<Tid>) {
        let mut best = (IDLE_GOODNESS, None);
        let mut cur = self.lists.first(q);
        while let Some(idx) = cur {
            let p = ctx.tasks.by_index(idx as usize);
            let tid = p.tid;
            let skip = if ctx.cfg.smp { p.has_cpu } else { tid == prev };
            if !skip {
                ctx.meter.charge(ctx.costs, CostKind::GoodnessEval);
                ctx.stats.cpu_mut(cpu).tasks_examined += 1;
                let w = goodness_ignoring_yield_on(&ctx.cfg.topology, p, cpu, prev_mm);
                if w > best.0 {
                    best = (w, Some(tid));
                }
            }
            cur = self.lists.next_task(ctx.tasks, idx);
        }
        best
    }

    /// Moves every queued member of `mm` from node `from` to node `to`
    /// and re-homes the bubble. Returns how many tasks moved.
    fn rehome(&mut self, ctx: &mut SchedCtx<'_>, mm: MmId, from: usize, to: usize) -> usize {
        let mut members = Vec::new();
        let mut cur = self.lists.first(from);
        while let Some(idx) = cur {
            let p = ctx.tasks.by_index(idx as usize);
            if p.mm == mm {
                members.push(p.tid);
            }
            cur = self.lists.next_task(ctx.tasks, idx);
        }
        for &tid in &members {
            ctx.meter.charge_n(ctx.costs, CostKind::ListOp, 2);
            self.lists.remove(ctx.tasks, tid);
            self.counts[from] -= 1;
            ctx.tasks.task_mut(tid).rq_hint = to as u8;
            self.lists.insert_front(ctx.tasks, to, tid);
            self.counts[to] += 1;
        }
        self.homes.insert(mm, to);
        members.len()
    }
}

impl Scheduler for BubbleScheduler {
    fn name(&self) -> &'static str {
        "bubble"
    }

    fn add_to_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge(ctx.costs, CostKind::ListOp);
        let mm = ctx.tasks.task(tid).mm;
        let q = self.place(mm);
        ctx.tasks.task_mut(tid).rq_hint = q as u8;
        self.lists.insert_front(ctx.tasks, q, tid);
        self.counts[q] += 1;
        self.nr_running += 1;
    }

    fn del_from_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge(ctx.costs, CostKind::ListOp);
        let q = ctx.tasks.task(tid).rq_hint as usize;
        self.lists.remove(ctx.tasks, tid);
        self.counts[q] -= 1;
        self.nr_running -= 1;
    }

    fn move_first_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge_n(ctx.costs, CostKind::ListOp, 2);
        let q = ctx.tasks.task(tid).rq_hint as usize;
        self.lists.remove(ctx.tasks, tid);
        self.lists.insert_front(ctx.tasks, q, tid);
    }

    fn move_last_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge_n(ctx.costs, CostKind::ListOp, 2);
        let q = ctx.tasks.task(tid).rq_hint as usize;
        self.lists.remove(ctx.tasks, tid);
        self.lists.insert_back(ctx.tasks, q, tid);
    }

    fn schedule(&mut self, ctx: &mut SchedCtx<'_>, cpu: CpuId, prev: Tid, idle: Tid) -> Tid {
        ctx.meter.charge(ctx.costs, CostKind::SchedBase);
        ctx.stats.cpu_mut(cpu).sched_calls += 1;
        let my_node = self.topo.node_of(cpu).min(self.counts.len() - 1);

        // Previous-task handling, as in the baseline.
        {
            let prev_task = ctx.tasks.task(prev);
            if prev != idle && !prev_task.state.is_runnable() && prev_task.on_runqueue() {
                self.del_from_runqueue(ctx, prev);
            }
        }
        {
            let mut prev_task = ctx.tasks.task_mut(prev);
            let requeue = if prev_task.policy.class == SchedClass::Rr && prev_task.counter == 0 {
                prev_task.counter = prev_task.priority;
                prev_task.on_runqueue()
            } else {
                false
            };
            drop(prev_task);
            if requeue {
                self.move_last_runqueue(ctx, prev);
            }
        }
        let prev_mm = ctx.tasks.task(prev).mm;
        let mut prev_yielded = {
            let mut t = ctx.tasks.task_mut(prev);
            let y = t.policy.yielded;
            t.policy.yielded = false;
            y
        };

        let next = loop {
            let mut c = IDLE_GOODNESS;
            let mut next = idle;
            {
                let prev_task = ctx.tasks.task(prev);
                if prev != idle && prev_task.state.is_runnable() {
                    ctx.meter.charge(ctx.costs, CostKind::GoodnessEval);
                    ctx.stats.cpu_mut(cpu).tasks_examined += 1;
                    c = if prev_yielded {
                        prev_yielded = false;
                        0
                    } else {
                        goodness_ignoring_yield_on(&ctx.cfg.topology, prev_task, cpu, prev_mm)
                    };
                    next = prev;
                }
            }
            // Own node's queue first.
            let (w, cand) = self.scan_queue(ctx, my_node, cpu, prev, prev_mm);
            if w > c {
                c = w;
                next = cand.expect("goodness above idle implies a task");
            }
            // Steal from the fullest other node when ours is dry — and
            // re-home the stolen task's whole bubble, so its siblings
            // follow it here instead of paying an mm switch across the
            // interconnect on every future wakeup.
            if next == idle && self.counts.len() > 1 {
                let victim = (0..self.counts.len())
                    .filter(|&n| n != my_node && self.counts[n] > 0)
                    .max_by_key(|&n| self.counts[n]);
                if let Some(victim) = victim {
                    // Take the victim node's lock domain before touching
                    // its list (any CPU on the node names the domain).
                    ctx.lock_queue_domain(victim * self.topo.cpus_per_node());
                    let (w, cand) = self.scan_queue(ctx, victim, cpu, prev, prev_mm);
                    if w > c {
                        c = w;
                        next = cand.expect("goodness above idle implies a task");
                        let mm = ctx.tasks.task(next).mm;
                        self.rehome(ctx, mm, victim, my_node);
                    }
                }
            }
            if c != 0 {
                break next;
            }
            ctx.stats.cpu_mut(cpu).recalc_entries += 1;
            let n = recalculate_counters(ctx.tasks);
            ctx.stats.cpu_mut(cpu).recalc_tasks += n as u64;
            ctx.meter
                .charge_n(ctx.costs, CostKind::RecalcPerTask, n as u64);
        };

        if next == idle {
            ctx.stats.cpu_mut(cpu).idle_scheduled += 1;
        }
        if next != prev {
            ctx.tasks.task_mut(prev).has_cpu = false;
        }
        ctx.tasks.task_mut(next).has_cpu = true;
        next
    }

    fn nr_running(&self) -> usize {
        self.nr_running
    }

    /// Node queues want node locks: one domain per `cpus_per_node`
    /// chunk of the declared tree.
    fn lock_plan(&self, _nr_cpus: usize) -> LockPlan {
        LockPlan::PerNode(self.topo.cpus_per_node())
    }

    fn debug_check(&self, tasks: &TaskTable) {
        let mut total = 0;
        for q in 0..self.counts.len() {
            self.lists.check(tasks, q);
            assert_eq!(self.lists.len(tasks, q), self.counts[q], "count on {q}");
            total += self.counts[q];
        }
        assert_eq!(total, self.nr_running, "nr_running out of sync");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsc_ktask::TaskSpec;
    use elsc_sched_api::SchedConfig;
    use elsc_simcore::{CostModel, CycleMeter};
    use elsc_stats::SchedStats;

    struct Rig {
        tasks: TaskTable,
        stats: SchedStats,
        meter: CycleMeter,
        costs: CostModel,
        cfg: SchedConfig,
        sched: BubbleScheduler,
        idles: Vec<Tid>,
    }

    impl Rig {
        fn new(topo: &str) -> Rig {
            let topo: Topology = topo.parse().unwrap();
            let nr_cpus = topo.nr_cpus();
            let cfg = SchedConfig::topo(topo);
            let mut tasks = TaskTable::new();
            let idles = (0..nr_cpus)
                .map(|c| {
                    let t = tasks.spawn(&TaskSpec::named("idle").priority(1));
                    tasks.task_mut(t).counter = 0;
                    tasks.task_mut(t).processor = c;
                    tasks.task_mut(t).has_cpu = true;
                    t
                })
                .collect();
            Rig {
                tasks,
                stats: SchedStats::new(nr_cpus),
                meter: CycleMeter::new(),
                costs: CostModel::default(),
                cfg,
                sched: BubbleScheduler::new(topo),
                idles,
            }
        }

        fn spawn_mm(&mut self, name: &'static str, mm: MmId, cpu: CpuId) -> Tid {
            let tid = self.tasks.spawn(&TaskSpec::named(name).mm(mm));
            self.tasks.task_mut(tid).processor = cpu;
            let mut ctx = SchedCtx {
                tasks: &mut self.tasks,
                stats: &mut self.stats,
                meter: &mut self.meter,
                costs: &self.costs,
                cfg: &self.cfg,
                probe: None,
                locks: None,
            };
            self.sched.add_to_runqueue(&mut ctx, tid);
            tid
        }

        fn schedule(&mut self, cpu: CpuId) -> Tid {
            let idle = self.idles[cpu];
            let mut ctx = SchedCtx {
                tasks: &mut self.tasks,
                stats: &mut self.stats,
                meter: &mut self.meter,
                costs: &self.costs,
                cfg: &self.cfg,
                probe: None,
                locks: None,
            };
            let next = self.sched.schedule(&mut ctx, cpu, idle, idle);
            self.sched.debug_check(&self.tasks);
            next
        }
    }

    #[test]
    fn a_bubble_shares_one_home_node() {
        let mut rig = Rig::new("2N2C1T");
        // Two tasks of mm 7, last run on CPUs in *different* nodes: both
        // must enqueue on the bubble's home, not their last processor.
        let a = rig.spawn_mm("a", MmId(7), 0);
        let b = rig.spawn_mm("b", MmId(7), 3);
        assert_eq!(
            rig.tasks.task(a).rq_hint,
            rig.tasks.task(b).rq_hint,
            "group members share a node queue"
        );
    }

    #[test]
    fn groups_spread_across_nodes() {
        let mut rig = Rig::new("2N2C1T");
        let a = rig.spawn_mm("a", MmId(1), 0);
        let b = rig.spawn_mm("b", MmId(2), 0);
        assert_ne!(
            rig.tasks.task(a).rq_hint,
            rig.tasks.task(b).rq_hint,
            "second bubble lands on the emptier node"
        );
    }

    #[test]
    fn node_mates_scan_the_shared_queue() {
        let mut rig = Rig::new("2N2C1T");
        let a = rig.spawn_mm("a", MmId(1), 0);
        let b = rig.spawn_mm("b", MmId(1), 0);
        // Both CPUs of node 0 drain the one node queue.
        let first = rig.schedule(0);
        let second = rig.schedule(1);
        assert!(first == a || first == b);
        assert!(second == a || second == b);
        assert_ne!(first, second);
    }

    #[test]
    fn stealing_rehomes_the_whole_bubble() {
        let mut rig = Rig::new("2N2C1T");
        // Bubble of three on node 0 (first group placed → node 0).
        let a = rig.spawn_mm("a", MmId(5), 0);
        let _b = rig.spawn_mm("b", MmId(5), 0);
        let _c = rig.spawn_mm("c", MmId(5), 0);
        let home = rig.tasks.task(a).rq_hint;
        // A CPU on the other node runs dry and steals.
        let thief_cpu = if home == 0 { 2 } else { 0 };
        let stolen = rig.schedule(thief_cpu);
        assert_ne!(stolen, rig.idles[thief_cpu]);
        // The *entire* group moved with it, and the home followed.
        let new_home = rig.tasks.task(stolen).rq_hint;
        assert_ne!(new_home, home);
        for t in [a, _b, _c] {
            assert_eq!(rig.tasks.task(t).rq_hint, new_home, "sibling followed");
        }
        // A later wakeup of the group lands on the new home too.
        let d = rig.spawn_mm("d", MmId(5), 0);
        assert_eq!(rig.tasks.task(d).rq_hint, new_home);
    }

    #[test]
    fn flat_trees_degenerate_to_one_global_queue() {
        let mut rig = Rig::new("1N4C1T");
        let a = rig.spawn_mm("a", MmId(1), 0);
        let b = rig.spawn_mm("b", MmId(2), 3);
        assert_eq!(rig.tasks.task(a).rq_hint, 0);
        assert_eq!(rig.tasks.task(b).rq_hint, 0);
        assert_ne!(rig.schedule(2), rig.idles[2]);
    }

    #[test]
    fn lock_plan_is_per_node() {
        let topo: Topology = "2N4C2T".parse().unwrap();
        let s = BubbleScheduler::new(topo);
        assert_eq!(s.lock_plan(16), LockPlan::PerNode(8));
    }

    #[test]
    fn idle_when_everything_empty() {
        let mut rig = Rig::new("2N2C1T");
        assert_eq!(rig.schedule(0), rig.idles[0]);
        assert_eq!(rig.stats.cpu(0).idle_scheduled, 1);
    }
}
