//! The §8 "heap" design: an ordered priority structure keyed by static
//! goodness.
//!
//! The paper suggests "sorting tasks by static goodness within heaps" so
//! the best task is found at the top. This prototype uses a balanced
//! ordered map (`BTreeMap`) as the priority structure — same asymptotics
//! as a heap (`O(log n)` insert/remove) with exact deletion, which a
//! binary heap would need tombstones for.
//!
//! Like ELSC, a running task is removed from the structure and re-keyed
//! on re-insertion (its `counter` changes while running, which would
//! silently corrupt an in-place key). Selection examines only the tasks
//! tied at the maximum key (up to the same `nr_cpus/2 + 5` limit),
//! evaluating dynamic bonuses among them; a yielded previous task is used
//! only as a fallback, inheriting ELSC's recalc-storm fix.

use std::collections::{BTreeMap, HashMap};

use elsc_ktask::{CpuId, SchedClass, TaskState, TaskTable, Tid};
use elsc_sched_api::{topo_affinity_bonus, SchedCtx, Scheduler, MM_BONUS, RT_GOODNESS_BASE};
use elsc_simcore::CostKind;

/// Key of a queued task: `(static key, tie sequence)`. Higher key wins;
/// among ties, the *lowest* sequence is front-most.
type Key = (i32, u64);

/// Ordered-structure scheduler ("heap" in the paper's sketch).
#[derive(Debug, Default)]
pub struct HeapScheduler {
    /// Queued, not-running tasks ordered by key.
    queue: BTreeMap<Key, Tid>,
    /// Reverse index: each queued task's current key.
    keys: HashMap<Tid, Key>,
    /// Tasks marked on-queue while running (ELSC-style).
    running: usize,
    /// Tie counters: move_first assigns from `front`, normal adds and
    /// move_last from `back`.
    front: u64,
    back: u64,
}

/// Static key of a task: real-time tasks above everything.
fn static_key(t: &elsc_ktask::Task) -> i32 {
    if t.policy.class.is_realtime() {
        RT_GOODNESS_BASE + t.rt_priority
    } else {
        t.static_goodness()
    }
}

impl HeapScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        HeapScheduler {
            queue: BTreeMap::new(),
            keys: HashMap::new(),
            running: 0,
            front: u64::MAX / 2,
            back: u64::MAX / 2 + 1,
        }
    }

    fn insert(&mut self, tasks: &TaskTable, tid: Tid, at_front: bool) {
        let seq = if at_front {
            self.front -= 1;
            self.front
        } else {
            self.back += 1;
            self.back
        };
        let key = (static_key(tasks.task(tid)), seq);
        let old = self.queue.insert(key, tid);
        debug_assert!(old.is_none(), "key collision in heap scheduler");
        self.keys.insert(tid, key);
    }

    fn remove(&mut self, tid: Tid) -> bool {
        if let Some(key) = self.keys.remove(&tid) {
            let removed = self.queue.remove(&key);
            debug_assert_eq!(removed, Some(tid));
            true
        } else {
            false
        }
    }

    /// Rebuilds every key after a counter recalculation.
    fn rebuild(&mut self, tasks: &TaskTable) {
        let tids: Vec<Tid> = self.queue.values().copied().collect();
        self.queue.clear();
        self.keys.clear();
        for tid in tids {
            self.insert(tasks, tid, false);
        }
    }

    fn recalculate(&mut self, ctx: &mut SchedCtx<'_>, cpu: CpuId) {
        ctx.stats.cpu_mut(cpu).recalc_entries += 1;
        // Zombies awaiting the post-schedule reap are not walked (or
        // charged for): recalc cost is per *live* task. Dense sweep of
        // the hot-field lanes.
        let n = ctx.tasks.recalc_counters(false) as u64;
        ctx.stats.cpu_mut(cpu).recalc_tasks += n;
        ctx.meter.charge_n(ctx.costs, CostKind::RecalcPerTask, n);
        self.rebuild(ctx.tasks);
    }
}

impl Scheduler for HeapScheduler {
    fn name(&self) -> &'static str {
        "heap"
    }

    fn add_to_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        // O(log n) insertion; charged as an index plus a list op.
        ctx.meter.charge(ctx.costs, CostKind::TableIndex);
        ctx.meter.charge(ctx.costs, CostKind::ListOp);
        debug_assert!(!self.keys.contains_key(&tid), "double add");
        self.insert(ctx.tasks, tid, false);
    }

    fn del_from_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge(ctx.costs, CostKind::ListOp);
        if !self.remove(tid) {
            // Marked-running task leaving the queue.
            debug_assert!(self.running > 0, "del of unknown task");
            self.running -= 1;
        }
    }

    fn move_first_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge_n(ctx.costs, CostKind::ListOp, 2);
        if self.remove(tid) {
            self.insert(ctx.tasks, tid, true);
        }
    }

    fn move_last_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge_n(ctx.costs, CostKind::ListOp, 2);
        if self.remove(tid) {
            self.insert(ctx.tasks, tid, false);
        }
    }

    fn schedule(&mut self, ctx: &mut SchedCtx<'_>, cpu: CpuId, prev: Tid, idle: Tid) -> Tid {
        ctx.meter.charge(ctx.costs, CostKind::SchedBase);
        ctx.stats.cpu_mut(cpu).sched_calls += 1;

        let prev_yielded = ctx.tasks.task(prev).policy.yielded;
        // Previous-task handling (mirrors ELSC).
        if prev != idle {
            let runnable = ctx.tasks.task(prev).state == TaskState::Running;
            if runnable {
                {
                    let mut t = ctx.tasks.task_mut(prev);
                    if t.policy.class == SchedClass::Rr && t.counter == 0 {
                        t.counter = t.priority;
                    }
                }
                debug_assert!(self.running > 0);
                self.running -= 1;
                ctx.meter.charge(ctx.costs, CostKind::TableIndex);
                ctx.meter.charge(ctx.costs, CostKind::ListOp);
                self.insert(ctx.tasks, prev, false);
            } else {
                ctx.meter.charge(ctx.costs, CostKind::ListOp);
                if !self.remove(prev) {
                    debug_assert!(self.running > 0);
                    self.running -= 1;
                }
            }
        }

        let limit = ctx.cfg.search_limit();
        let prev_mm = ctx.tasks.task(prev).mm;
        let next = loop {
            // Top of the structure: the maximum static key.
            let Some((&(top_key, _), _)) = self.queue.iter().next_back() else {
                break idle;
            };
            // Examine the tasks tied at the top key (bounded), evaluating
            // dynamic bonuses; remember a yielded fallback.
            let mut best: Option<(Tid, i32)> = None;
            let mut yielded_fallback: Option<Tid> = None;
            let mut exhausted = false;
            for (&(_, _seq), &tid) in self
                .queue
                .range((top_key, 0)..=(top_key, u64::MAX))
                .take(limit)
            {
                let p = ctx.tasks.task(tid);
                if ctx.cfg.smp && p.has_cpu && p.processor != cpu {
                    continue;
                }
                if !p.policy.class.is_realtime() && p.counter == 0 {
                    exhausted = true;
                    continue;
                }
                ctx.meter.charge(ctx.costs, CostKind::GoodnessEval);
                ctx.stats.cpu_mut(cpu).tasks_examined += 1;
                if p.policy.yielded {
                    if yielded_fallback.is_none() {
                        yielded_fallback = Some(tid);
                    }
                    continue;
                }
                let w = if p.policy.class.is_realtime() {
                    RT_GOODNESS_BASE + p.rt_priority
                } else {
                    // Distance-graded on declared topologies; the classic
                    // `{+15 same CPU, else 0}` on flat trees.
                    let mut w = p.static_goodness()
                        + topo_affinity_bonus(&ctx.cfg.topology, cpu, p.processor);
                    if p.mm == prev_mm {
                        w += MM_BONUS;
                    }
                    w
                };
                if best.is_none_or(|(_, b)| w > b) {
                    best = Some((tid, w));
                }
            }
            if let Some((tid, _)) = best {
                break tid;
            }
            if let Some(tid) = yielded_fallback {
                ctx.stats.cpu_mut(cpu).yield_reruns += 1;
                break tid;
            }
            if exhausted {
                // Top of the structure is out of quantum: recalculate.
                self.recalculate(ctx, cpu);
                continue;
            }
            // Everything at the top is running elsewhere; with equal keys
            // deeper entries are also at top_key... they were covered by
            // the range. Nothing runnable here.
            break idle;
        };

        if next == idle {
            ctx.stats.cpu_mut(cpu).idle_scheduled += 1;
        } else {
            ctx.meter.charge(ctx.costs, CostKind::ListOp);
            let was_queued = self.remove(next);
            debug_assert!(was_queued);
            self.running += 1;
        }
        if prev_yielded {
            ctx.tasks.task_mut(prev).policy.yielded = false;
        }
        if next != prev {
            ctx.tasks.task_mut(prev).has_cpu = false;
        }
        ctx.tasks.task_mut(next).has_cpu = true;
        next
    }

    fn nr_running(&self) -> usize {
        self.queue.len() + self.running
    }

    fn debug_check(&self, tasks: &TaskTable) {
        assert_eq!(self.queue.len(), self.keys.len(), "index out of sync");
        for (&key, &tid) in &self.queue {
            assert_eq!(self.keys.get(&tid), Some(&key));
            assert_eq!(key.0, static_key(tasks.task(tid)), "stale key for {tid:?}");
        }
    }
}

// The trait contract says on_runqueue() reflects membership; the heap
// design tracks membership in its own index instead of the intrusive
// links. The machine model only consults schedulers through the trait, so
// this is sound, but we keep the marker consistent for cross-scheduler
// tests by leaving `run_list` untouched (always detached).

#[cfg(test)]
mod tests {
    use super::*;
    use elsc_ktask::{MmId, TaskSpec};
    use elsc_sched_api::SchedConfig;
    use elsc_simcore::{CostModel, CycleMeter};
    use elsc_stats::SchedStats;

    struct Rig {
        tasks: TaskTable,
        stats: SchedStats,
        meter: CycleMeter,
        costs: CostModel,
        cfg: SchedConfig,
        sched: HeapScheduler,
        idle: Tid,
    }

    impl Rig {
        fn new(cfg: SchedConfig) -> Rig {
            let mut tasks = TaskTable::new();
            let idle = tasks.spawn(&TaskSpec::named("idle").priority(1));
            tasks.task_mut(idle).counter = 0;
            tasks.task_mut(idle).has_cpu = true;
            Rig {
                tasks,
                stats: SchedStats::new(cfg.nr_cpus),
                meter: CycleMeter::new(),
                costs: CostModel::default(),
                cfg,
                sched: HeapScheduler::new(),
                idle,
            }
        }

        fn add(&mut self, tid: Tid) {
            let mut ctx = SchedCtx {
                tasks: &mut self.tasks,
                stats: &mut self.stats,
                meter: &mut self.meter,
                costs: &self.costs,
                cfg: &self.cfg,
                probe: None,
                locks: None,
            };
            self.sched.add_to_runqueue(&mut ctx, tid);
        }

        fn spawn(&mut self, name: &'static str) -> Tid {
            let tid = self.tasks.spawn(&TaskSpec::named(name));
            self.add(tid);
            tid
        }

        fn schedule(&mut self, cpu: CpuId, prev: Tid) -> Tid {
            let mut ctx = SchedCtx {
                tasks: &mut self.tasks,
                stats: &mut self.stats,
                meter: &mut self.meter,
                costs: &self.costs,
                cfg: &self.cfg,
                probe: None,
                locks: None,
            };
            let next = self.sched.schedule(&mut ctx, cpu, prev, self.idle);
            self.sched.debug_check(&self.tasks);
            next
        }
    }

    #[test]
    fn empty_schedules_idle() {
        let mut rig = Rig::new(SchedConfig::up());
        assert_eq!(rig.schedule(0, rig.idle), rig.idle);
        assert_eq!(rig.stats.cpu(0).idle_scheduled, 1);
    }

    #[test]
    fn picks_highest_static_goodness() {
        let mut rig = Rig::new(SchedConfig::up());
        let weak = rig.spawn("weak");
        let strong = rig.spawn("strong");
        rig.tasks.task_mut(weak).counter = 1;
        rig.tasks.task_mut(strong).counter = 20;
        // Keys were computed at insert; re-add with fresh counters.
        {
            let mut ctx = SchedCtx {
                tasks: &mut rig.tasks,
                stats: &mut rig.stats,
                meter: &mut rig.meter,
                costs: &rig.costs,
                cfg: &rig.cfg,
                probe: None,
                locks: None,
            };
            rig.sched.del_from_runqueue(&mut ctx, weak);
            rig.sched.add_to_runqueue(&mut ctx, weak);
        }
        assert_eq!(rig.schedule(0, rig.idle), strong);
    }

    #[test]
    fn exact_best_across_classes_unlike_elsc() {
        // The heap picks the absolute best static goodness, not just the
        // best within a bucket of 4.
        let mut rig = Rig::new(SchedConfig::up());
        let a = rig.spawn("a");
        let b = rig.spawn("b");
        rig.tasks.task_mut(a).counter = 19;
        rig.tasks.task_mut(b).counter = 20;
        for t in [a, b] {
            let mut ctx = SchedCtx {
                tasks: &mut rig.tasks,
                stats: &mut rig.stats,
                meter: &mut rig.meter,
                costs: &rig.costs,
                cfg: &rig.cfg,
                probe: None,
                locks: None,
            };
            rig.sched.del_from_runqueue(&mut ctx, t);
            rig.sched.add_to_runqueue(&mut ctx, t);
        }
        assert_eq!(rig.schedule(0, rig.idle), b);
    }

    #[test]
    fn running_task_is_out_of_structure() {
        let mut rig = Rig::new(SchedConfig::up());
        let a = rig.spawn("a");
        assert_eq!(rig.schedule(0, rig.idle), a);
        assert_eq!(rig.sched.nr_running(), 1);
        assert_eq!(rig.sched.queue.len(), 0);
        // Re-enters on the next schedule.
        let b = rig.spawn("b");
        rig.tasks.task_mut(b).counter = 1;
        {
            let mut ctx = SchedCtx {
                tasks: &mut rig.tasks,
                stats: &mut rig.stats,
                meter: &mut rig.meter,
                costs: &rig.costs,
                cfg: &rig.cfg,
                probe: None,
                locks: None,
            };
            rig.sched.del_from_runqueue(&mut ctx, b);
            rig.sched.add_to_runqueue(&mut ctx, b);
        }
        assert_eq!(rig.schedule(0, a), a, "prev re-wins on static goodness");
        assert_eq!(rig.sched.nr_running(), 2);
    }

    #[test]
    fn exhausted_tasks_trigger_recalc() {
        let mut rig = Rig::new(SchedConfig::up());
        let a = rig.spawn("a");
        assert_eq!(rig.schedule(0, rig.idle), a);
        rig.tasks.task_mut(a).counter = 0;
        let next = rig.schedule(0, a);
        assert_eq!(next, a);
        assert_eq!(rig.stats.cpu(0).recalc_entries, 1);
        assert_eq!(rig.tasks.task(a).counter, 20);
    }

    #[test]
    fn lone_yielder_reruns_without_recalc() {
        let mut rig = Rig::new(SchedConfig::up());
        let y = rig.spawn("y");
        assert_eq!(rig.schedule(0, rig.idle), y);
        rig.tasks.task_mut(y).policy.yielded = true;
        assert_eq!(rig.schedule(0, y), y);
        assert_eq!(rig.stats.cpu(0).recalc_entries, 0);
        assert_eq!(rig.stats.cpu(0).yield_reruns, 1);
    }

    #[test]
    fn mm_bonus_breaks_ties() {
        let mut rig = Rig::new(SchedConfig::up());
        let prev = rig.spawn("prev");
        rig.tasks.task_mut(prev).mm = MmId(5);
        assert_eq!(rig.schedule(0, rig.idle), prev);
        let kin = rig.tasks.spawn(&TaskSpec::named("kin").mm(MmId(5)));
        let stranger = rig.tasks.spawn(&TaskSpec::named("stranger").mm(MmId(6)));
        rig.add(kin);
        rig.add(stranger);
        rig.tasks.task_mut(prev).state = TaskState::Interruptible;
        assert_eq!(rig.schedule(0, prev), kin);
    }

    #[test]
    fn blocked_prev_leaves_structure() {
        let mut rig = Rig::new(SchedConfig::up());
        let a = rig.spawn("a");
        assert_eq!(rig.schedule(0, rig.idle), a);
        rig.tasks.task_mut(a).state = TaskState::Interruptible;
        assert_eq!(rig.schedule(0, a), rig.idle);
        assert_eq!(rig.sched.nr_running(), 0);
    }

    #[test]
    fn realtime_on_top() {
        let mut rig = Rig::new(SchedConfig::up());
        let other = rig.tasks.spawn(&TaskSpec::named("other"));
        rig.tasks.task_mut(other).counter = 40;
        rig.add(other);
        let rt = rig
            .tasks
            .spawn(&TaskSpec::named("rt").realtime(SchedClass::Fifo, 0));
        rig.add(rt);
        assert_eq!(rig.schedule(0, rig.idle), rt);
    }
}
