//! The §8 "multi-priority-queue" design: per-CPU run queues.
//!
//! "Perhaps a multi-priority-queue solution would be more beneficial to
//! help the scheduler scale to multiple processors well." This prototype
//! gives each CPU its own (baseline-style, unsorted) run queue: wakeups
//! enqueue on the task's last processor, `schedule()` scans only its own
//! queue — an O(n / nr_cpus) scan — and steals the best task from the
//! busiest other queue when its own is empty. This is the direction the
//! Linux O(1) scheduler later took.
//!
//! The queues shard the paper's single `runqueue_lock` too: this
//! scheduler declares a [`LockPlan::PerCpu`] regime, so each queue is
//! guarded by its own lock domain. `schedule()` enters holding only its
//! own CPU's domain; the steal path takes the victim's domain through
//! [`SchedCtx::lock_queue_domain`] (kept deadlock-free by the
//! `double_rq_lock` canonical ordering in the locking layer) before
//! scanning the victim queue. Forcing `LockPlan::Global` via the
//! machine's lock-plan override separates the shorter-scan benefit from
//! the reduced-contention benefit in ablations. The system-wide counter
//! recalculation still runs under whatever the caller holds, as the
//! kernel's recalc loop did.

use elsc_ktask::recalc::recalculate_counters;
use elsc_ktask::{CpuId, Lists, SchedClass, TaskTable, Tid};
use elsc_sched_api::{goodness_ignoring_yield_on, LockPlan, SchedCtx, Scheduler, IDLE_GOODNESS};
use elsc_simcore::CostKind;

/// Per-CPU run queues with stealing.
#[derive(Debug)]
pub struct MultiQueueScheduler {
    /// One list per CPU.
    lists: Lists,
    /// Tasks per queue.
    counts: Vec<usize>,
    nr_running: usize,
}

impl MultiQueueScheduler {
    /// Creates queues for `nr_cpus` processors.
    ///
    /// # Panics
    ///
    /// Panics if `nr_cpus == 0`.
    pub fn new(nr_cpus: usize) -> Self {
        assert!(nr_cpus > 0, "need at least one queue");
        MultiQueueScheduler {
            lists: Lists::new(nr_cpus),
            counts: vec![0; nr_cpus],
            nr_running: 0,
        }
    }

    /// Which queue a task belongs to.
    fn home_queue(&self, tasks: &TaskTable, tid: Tid) -> usize {
        tasks.task(tid).processor % self.counts.len()
    }

    /// Scans queue `q`, returning the best candidate and its goodness.
    /// `prev` is skipped (the caller evaluates it separately).
    fn scan_queue(
        &self,
        ctx: &mut SchedCtx<'_>,
        q: usize,
        cpu: CpuId,
        prev: Tid,
        prev_mm: elsc_ktask::MmId,
    ) -> (i32, Option<Tid>) {
        let mut best = (IDLE_GOODNESS, None);
        let mut cur = self.lists.first(q);
        while let Some(idx) = cur {
            let p = ctx.tasks.by_index(idx as usize);
            let tid = p.tid;
            let skip = if ctx.cfg.smp { p.has_cpu } else { tid == prev };
            if !skip {
                ctx.meter.charge(ctx.costs, CostKind::GoodnessEval);
                ctx.stats.cpu_mut(cpu).tasks_examined += 1;
                let w = goodness_ignoring_yield_on(&ctx.cfg.topology, p, cpu, prev_mm);
                if w > best.0 {
                    best = (w, Some(tid));
                }
            }
            cur = self.lists.next_task(ctx.tasks, idx);
        }
        best
    }
}

impl Scheduler for MultiQueueScheduler {
    fn name(&self) -> &'static str {
        "mq"
    }

    fn add_to_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge(ctx.costs, CostKind::ListOp);
        let q = self.home_queue(ctx.tasks, tid);
        ctx.tasks.task_mut(tid).rq_hint = q as u8;
        self.lists.insert_front(ctx.tasks, q, tid);
        self.counts[q] += 1;
        self.nr_running += 1;
    }

    fn del_from_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge(ctx.costs, CostKind::ListOp);
        let q = ctx.tasks.task(tid).rq_hint as usize;
        self.lists.remove(ctx.tasks, tid);
        self.counts[q] -= 1;
        self.nr_running -= 1;
    }

    fn move_first_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge_n(ctx.costs, CostKind::ListOp, 2);
        let q = ctx.tasks.task(tid).rq_hint as usize;
        self.lists.remove(ctx.tasks, tid);
        self.lists.insert_front(ctx.tasks, q, tid);
    }

    fn move_last_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge_n(ctx.costs, CostKind::ListOp, 2);
        let q = ctx.tasks.task(tid).rq_hint as usize;
        self.lists.remove(ctx.tasks, tid);
        self.lists.insert_back(ctx.tasks, q, tid);
    }

    fn schedule(&mut self, ctx: &mut SchedCtx<'_>, cpu: CpuId, prev: Tid, idle: Tid) -> Tid {
        ctx.meter.charge(ctx.costs, CostKind::SchedBase);
        ctx.stats.cpu_mut(cpu).sched_calls += 1;
        let my_q = cpu % self.counts.len();

        // Previous-task handling, as in the baseline.
        {
            let prev_task = ctx.tasks.task(prev);
            if prev != idle && !prev_task.state.is_runnable() && prev_task.on_runqueue() {
                self.del_from_runqueue(ctx, prev);
            }
        }
        {
            let mut prev_task = ctx.tasks.task_mut(prev);
            let requeue = if prev_task.policy.class == SchedClass::Rr && prev_task.counter == 0 {
                prev_task.counter = prev_task.priority;
                prev_task.on_runqueue()
            } else {
                false
            };
            drop(prev_task);
            if requeue {
                self.move_last_runqueue(ctx, prev);
            }
        }
        let prev_mm = ctx.tasks.task(prev).mm;
        let mut prev_yielded = {
            let mut t = ctx.tasks.task_mut(prev);
            let y = t.policy.yielded;
            t.policy.yielded = false;
            y
        };

        let next = loop {
            let mut c = IDLE_GOODNESS;
            let mut next = idle;
            {
                let prev_task = ctx.tasks.task(prev);
                if prev != idle && prev_task.state.is_runnable() {
                    ctx.meter.charge(ctx.costs, CostKind::GoodnessEval);
                    ctx.stats.cpu_mut(cpu).tasks_examined += 1;
                    c = if prev_yielded {
                        prev_yielded = false;
                        0
                    } else {
                        goodness_ignoring_yield_on(&ctx.cfg.topology, prev_task, cpu, prev_mm)
                    };
                    next = prev;
                }
            }
            // Own queue first.
            let (w, cand) = self.scan_queue(ctx, my_q, cpu, prev, prev_mm);
            if w > c {
                c = w;
                next = cand.expect("goodness above idle implies a task");
            }
            // Steal from the fullest other queue when ours is empty of
            // candidates — preferring victims that share this CPU's LLC.
            // A task stolen from a queue on the same NUMA node keeps its
            // working set warm in the shared last-level cache; crossing
            // the node boundary means a cold start plus interconnect
            // traffic (the machine charges a doubled migration penalty
            // for it). On a flat tree every queue is same-node, so the
            // preference degenerates to the old global fullest-queue
            // pick, byte for byte.
            if next == idle && self.counts.len() > 1 {
                let topo = &ctx.cfg.topology;
                let victim = (0..self.counts.len())
                    .filter(|&q| q != my_q && self.counts[q] > 0 && topo.same_node(q, cpu))
                    .max_by_key(|&q| self.counts[q])
                    .or_else(|| {
                        (0..self.counts.len())
                            .filter(|&q| q != my_q && self.counts[q] > 0)
                            .max_by_key(|&q| self.counts[q])
                    });
                if let Some(victim) = victim {
                    // Take the victim queue's lock domain before touching
                    // its list (two domains held, canonical order).
                    ctx.lock_queue_domain(victim);
                    let (w, cand) = self.scan_queue(ctx, victim, cpu, prev, prev_mm);
                    if w > c {
                        c = w;
                        next = cand.expect("goodness above idle implies a task");
                    }
                }
            }
            if c != 0 {
                break next;
            }
            ctx.stats.cpu_mut(cpu).recalc_entries += 1;
            let n = recalculate_counters(ctx.tasks);
            ctx.stats.cpu_mut(cpu).recalc_tasks += n as u64;
            ctx.meter
                .charge_n(ctx.costs, CostKind::RecalcPerTask, n as u64);
        };

        if next == idle {
            ctx.stats.cpu_mut(cpu).idle_scheduled += 1;
        } else if next != prev {
            // Migrate a stolen task to this CPU's queue so future wakeups
            // land here. Both the source and destination queue domains
            // must be held for the splice (the source was taken by the
            // steal scan; this is a free re-check).
            let q = ctx.tasks.task(next).rq_hint as usize;
            if q != my_q && ctx.tasks.task(next).in_list() {
                ctx.lock_queue_domain(q);
                ctx.meter.charge_n(ctx.costs, CostKind::ListOp, 2);
                self.lists.remove(ctx.tasks, next);
                self.counts[q] -= 1;
                ctx.tasks.task_mut(next).rq_hint = my_q as u8;
                self.lists.insert_front(ctx.tasks, my_q, next);
                self.counts[my_q] += 1;
            }
        }
        if next != prev {
            ctx.tasks.task_mut(prev).has_cpu = false;
        }
        ctx.tasks.task_mut(next).has_cpu = true;
        next
    }

    fn nr_running(&self) -> usize {
        self.nr_running
    }

    /// Per-CPU queues want per-CPU locks: this is the §8 regime the
    /// paper could not evaluate under the global `runqueue_lock`.
    fn lock_plan(&self, _nr_cpus: usize) -> LockPlan {
        LockPlan::PerCpu
    }

    fn debug_check(&self, tasks: &TaskTable) {
        let mut total = 0;
        for q in 0..self.counts.len() {
            self.lists.check(tasks, q);
            assert_eq!(self.lists.len(tasks, q), self.counts[q], "count on {q}");
            total += self.counts[q];
        }
        assert_eq!(total, self.nr_running, "nr_running out of sync");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsc_ktask::TaskSpec;
    use elsc_sched_api::SchedConfig;
    use elsc_simcore::{CostModel, CycleMeter};
    use elsc_stats::SchedStats;

    struct Rig {
        tasks: TaskTable,
        stats: SchedStats,
        meter: CycleMeter,
        costs: CostModel,
        cfg: SchedConfig,
        sched: MultiQueueScheduler,
        idles: Vec<Tid>,
    }

    impl Rig {
        fn new(nr_cpus: usize) -> Rig {
            let cfg = SchedConfig::smp(nr_cpus);
            let mut tasks = TaskTable::new();
            let idles = (0..nr_cpus)
                .map(|c| {
                    let t = tasks.spawn(&TaskSpec::named("idle").priority(1));
                    tasks.task_mut(t).counter = 0;
                    tasks.task_mut(t).processor = c;
                    tasks.task_mut(t).has_cpu = true;
                    t
                })
                .collect();
            Rig {
                tasks,
                stats: SchedStats::new(nr_cpus),
                meter: CycleMeter::new(),
                costs: CostModel::default(),
                cfg,
                sched: MultiQueueScheduler::new(nr_cpus),
                idles,
            }
        }

        fn spawn_on(&mut self, name: &'static str, cpu: CpuId) -> Tid {
            let tid = self.tasks.spawn(&TaskSpec::named(name));
            self.tasks.task_mut(tid).processor = cpu;
            let mut ctx = SchedCtx {
                tasks: &mut self.tasks,
                stats: &mut self.stats,
                meter: &mut self.meter,
                costs: &self.costs,
                cfg: &self.cfg,
                probe: None,
                locks: None,
            };
            self.sched.add_to_runqueue(&mut ctx, tid);
            tid
        }

        fn schedule(&mut self, cpu: CpuId) -> Tid {
            let idle = self.idles[cpu];
            let mut ctx = SchedCtx {
                tasks: &mut self.tasks,
                stats: &mut self.stats,
                meter: &mut self.meter,
                costs: &self.costs,
                cfg: &self.cfg,
                probe: None,
                locks: None,
            };
            let next = self.sched.schedule(&mut ctx, cpu, idle, idle);
            self.sched.debug_check(&self.tasks);
            next
        }
    }

    #[test]
    fn tasks_land_on_their_home_queue() {
        let mut rig = Rig::new(2);
        let a = rig.spawn_on("a", 0);
        let b = rig.spawn_on("b", 1);
        assert_eq!(rig.schedule(0), a);
        assert_eq!(rig.schedule(1), b);
    }

    #[test]
    fn own_queue_scan_ignores_other_queues() {
        let mut rig = Rig::new(2);
        let _a = rig.spawn_on("a", 0);
        let _b = rig.spawn_on("b", 0);
        rig.meter.take();
        rig.schedule(1); // steals, but only after scanning its empty queue
                         // Examined tasks should be the steal scan only (2 tasks).
        assert_eq!(rig.stats.cpu(1).tasks_examined, 2);
    }

    #[test]
    fn stealing_takes_from_busiest_queue() {
        let mut rig = Rig::new(2);
        let _a = rig.spawn_on("a", 0);
        let _b = rig.spawn_on("b", 0);
        let stolen = rig.schedule(1);
        assert_ne!(stolen, rig.idles[1]);
        // The stolen task now belongs to queue 1.
        assert_eq!(rig.tasks.task(stolen).rq_hint, 1);
    }

    #[test]
    fn stealing_prefers_a_same_node_victim_under_topology() {
        // 2N2C1T: node 0 = CPUs {0,1}, node 1 = {2,3}. Queue 0 is the
        // fullest, but queue 2 shares CPU 3's LLC — the steal must take
        // the node-mate's task, not cross the node boundary.
        let mut rig = Rig::new(4);
        rig.cfg.topology = "2N2C1T".parse().unwrap();
        let _a = rig.spawn_on("a", 0);
        let _b = rig.spawn_on("b", 0);
        let _c = rig.spawn_on("c", 0);
        let d = rig.spawn_on("d", 2);
        let stolen = rig.schedule(3);
        assert_eq!(stolen, d, "same-node victim beats the fullest queue");
        // With every same-node queue now empty, the fullest remote queue
        // is still fair game (work beats locality when it's that or idle).
        let stolen2 = rig.schedule(3);
        assert_ne!(stolen2, rig.idles[3]);
        assert_eq!(rig.tasks.task(stolen2).rq_hint, 3);
    }

    #[test]
    fn idle_when_everything_empty() {
        let mut rig = Rig::new(2);
        assert_eq!(rig.schedule(0), rig.idles[0]);
        assert_eq!(rig.stats.cpu(0).idle_scheduled, 1);
    }

    #[test]
    fn scan_cost_divides_by_cpu_count() {
        // 40 tasks spread over 4 queues: a schedule() on one CPU scans
        // ~10 tasks, not 40.
        let mut rig = Rig::new(4);
        for i in 0..40 {
            rig.spawn_on("t", i % 4);
        }
        rig.schedule(0);
        assert_eq!(rig.stats.cpu(0).tasks_examined, 10);
    }

    #[test]
    fn exhausted_queue_triggers_recalc() {
        let mut rig = Rig::new(1);
        let a = rig.spawn_on("a", 0);
        rig.tasks.task_mut(a).counter = 0;
        let next = rig.schedule(0);
        assert_eq!(next, a);
        assert_eq!(rig.stats.cpu(0).recalc_entries, 1);
    }
}
