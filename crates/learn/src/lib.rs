//! Learned scheduling: the offline half of `--sched learned:<model>`.
//!
//! ROADMAP item 4 asks whether a *trained* predictor can beat the paper's
//! hand-built heuristics (reg's O(n) goodness scan, ELSC's table split) at
//! the per-decision "which task runs next" problem. This crate is the
//! train-time side of that loop:
//!
//! * [`data`] — replays a `--decision-trace` JSON-lines stream
//!   (`sched_candidate` bursts closed by a `sched_decision` label, see
//!   `elsc-obs`) into supervised per-decision rows.
//! * [`model`] — the model zoo: logistic regression and a tiny
//!   fixed-topology MLP over [`FEATURES`] integer features, with a
//!   versioned text serialization. All weights are Q16.16 fixed-point
//!   `i64`s; scoring is pure integer arithmetic so train-time and
//!   run-time agree bit-for-bit on every platform.
//! * [`mod@train`] — a dependency-free SGD trainer with `SimRng`-seeded
//!   initialization and integer weight updates, so `(seed, dataset)` →
//!   **byte-identical model file**. Models are lab-cache-friendly: the
//!   model text digests into the cell id like `.pol` policy source does.
//!
//! The run-time half — the `learned:<model>` scheduler that scores
//! candidates, verifies the pick with a bounded goodness check, charges
//! `CostKind::Mispredict` on failure and falls back to the native scan —
//! lives in `elsc-sched-ext`, built on the same [`model::Model`] type.
#![deny(missing_docs)]

pub mod data;
pub mod model;
pub mod train;

pub use data::{parse_trace, CandidateRow, Dataset, Decision};
pub use model::{Arch, Model, Q_ONE};
pub use train::{eval, train, TrainConfig};

/// Number of features per candidate, in [`FEATURE_NAMES`] order.
pub const FEATURES: usize = 7;

/// Canonical feature order. Indexes into every feature vector in this
/// crate and in the `learned:<model>` scheduler; see CONTRIBUTING.md for
/// the checklist when adding a column.
pub const FEATURE_NAMES: [&str; FEATURES] = [
    "depth",    // runnable tasks at the decision (excluding idle)
    "counter",  // candidate's remaining time-slice counter
    "priority", // candidate's static priority
    "rt",       // 1 if realtime-class
    "mm_match", // 1 if candidate shares the outgoing task's mm
    "affinity", // topology affinity bonus of last CPU vs deciding CPU
    "recency",  // decisions since the candidate last won here (255 = never)
];

/// Per-feature full-scale values: a raw feature equal to its scale maps
/// to 1.0 in Q16.16. Chosen so every in-range raw value lands in roughly
/// `[0, 1]` and SGD sees comparable magnitudes per column.
pub const SCALE: [i64; FEATURES] = [64, 64, 64, 1, 1, 16, 256];

/// Quantizes raw integer features into Q16.16 model inputs
/// (`x_q = raw * 65536 / SCALE`).
pub fn quantize(raw: &[i64; FEATURES]) -> [i64; FEATURES] {
    let mut q = [0i64; FEATURES];
    for i in 0..FEATURES {
        q[i] = raw[i] * model::Q_ONE / SCALE[i];
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_maps_scale_to_one() {
        let mut raw = [0i64; FEATURES];
        for (i, s) in SCALE.iter().enumerate() {
            raw[i] = *s;
        }
        assert_eq!(quantize(&raw), [model::Q_ONE; FEATURES]);
    }

    #[test]
    fn quantize_zero_is_zero() {
        assert_eq!(quantize(&[0; FEATURES]), [0; FEATURES]);
    }
}
