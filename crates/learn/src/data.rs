//! Dataset extraction: `--decision-trace` JSON lines → supervised rows.
//!
//! The machine (under `--decision-trace`) emits, for every `schedule()`
//! call, one `sched_candidate` line per eligible task followed by a
//! single `sched_decision` line naming the pick. This module replays that
//! stream into [`Decision`] rows: the candidate burst becomes the feature
//! matrix, the decision line the label. Parsing is a hand-rolled field
//! extractor over the fixed key order `elsc-obs` guarantees — no JSON
//! dependency, and byte-identical traces extract byte-identical datasets.

use crate::FEATURES;

/// One candidate's raw (unquantized) feature row within a decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandidateRow {
    /// Task slab index (labels match on this).
    pub tid: u64,
    /// Raw features in [`crate::FEATURE_NAMES`] order.
    pub raw: [i64; FEATURES],
}

/// One labeled scheduling decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// The candidates the scheduler chose among.
    pub candidates: Vec<CandidateRow>,
    /// Slab index of the task actually picked (always one of
    /// `candidates` — idle picks are dropped at extraction).
    pub chosen: u64,
}

/// An extracted training set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Dataset {
    /// Decisions in trace order.
    pub decisions: Vec<Decision>,
}

impl Dataset {
    /// Total candidate rows across all decisions.
    pub fn rows(&self) -> usize {
        self.decisions.iter().map(|d| d.candidates.len()).sum()
    }
}

/// Pulls the integer value of `"key":N` out of a JSON line. Only handles
/// the flat, unescaped objects `ObsRecord::to_json_line` produces.
fn int_field(line: &str, key: &str) -> Option<i64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the labeled dataset from a trace.
///
/// Candidate lines buffer until the next `sched_decision` closes the
/// burst. Decisions whose pick is not among the buffered candidates
/// (idle picks) and malformed bursts are skipped, not errors: traces
/// legitimately interleave other event kinds, and the extractor's job is
/// to harvest every well-formed decision deterministically.
pub fn parse_trace(text: &str) -> Dataset {
    let mut out = Dataset::default();
    let mut pending: Vec<CandidateRow> = Vec::new();
    for line in text.lines() {
        if line.contains("\"event\":\"sched_candidate\"") {
            let get = |k| int_field(line, k);
            if let (
                Some(tid),
                Some(counter),
                Some(priority),
                Some(rt),
                Some(mm),
                Some(aff),
                Some(rec),
            ) = (
                get("tid"),
                get("counter"),
                get("priority"),
                get("rt"),
                get("mm_match"),
                get("affinity"),
                get("recency"),
            ) {
                // raw[0] (depth) is filled from the closing decision line.
                pending.push(CandidateRow {
                    tid: tid as u64,
                    raw: [0, counter, priority, rt, mm, aff, rec],
                });
            }
        } else if line.contains("\"event\":\"sched_decision\"") {
            let chosen = int_field(line, "chosen");
            let depth = int_field(line, "depth");
            if let (Some(chosen), Some(depth)) = (chosen, depth) {
                let chosen = chosen as u64;
                if !pending.is_empty() && pending.iter().any(|c| c.tid == chosen) {
                    for c in &mut pending {
                        c.raw[0] = depth;
                    }
                    out.decisions.push(Decision {
                        candidates: std::mem::take(&mut pending),
                        chosen,
                    });
                    continue;
                }
            }
            pending.clear();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = concat!(
        r#"{"at":5,"event":"wakeup","tid":1,"by_cpu":0}"#,
        "\n",
        r#"{"at":9,"event":"sched_candidate","cpu":0,"tid":1,"counter":6,"priority":20,"rt":0,"mm_match":1,"affinity":0,"recency":255}"#,
        "\n",
        r#"{"at":9,"event":"sched_candidate","cpu":0,"tid":2,"counter":3,"priority":20,"rt":0,"mm_match":0,"affinity":12,"recency":4}"#,
        "\n",
        r#"{"at":10,"event":"sched_decision","cpu":0,"prev":1,"chosen":2,"depth":2}"#,
        "\n",
        // Idle pick: chosen (0) not among candidates — dropped.
        r#"{"at":20,"event":"sched_candidate","cpu":0,"tid":3,"counter":0,"priority":20,"rt":0,"mm_match":0,"affinity":0,"recency":1}"#,
        "\n",
        r#"{"at":21,"event":"sched_decision","cpu":0,"prev":3,"chosen":0,"depth":1}"#,
        "\n",
    );

    #[test]
    fn extracts_labeled_decisions() {
        let ds = parse_trace(TRACE);
        assert_eq!(ds.decisions.len(), 1);
        let d = &ds.decisions[0];
        assert_eq!(d.chosen, 2);
        assert_eq!(d.candidates.len(), 2);
        assert_eq!(
            d.candidates[0],
            CandidateRow {
                tid: 1,
                raw: [2, 6, 20, 0, 1, 0, 255],
            }
        );
        assert_eq!(
            d.candidates[1],
            CandidateRow {
                tid: 2,
                raw: [2, 3, 20, 0, 0, 12, 4],
            }
        );
        assert_eq!(ds.rows(), 2);
    }

    #[test]
    fn extraction_is_deterministic() {
        assert_eq!(parse_trace(TRACE), parse_trace(TRACE));
    }

    #[test]
    fn foreign_and_malformed_lines_are_skipped() {
        let ds = parse_trace("not json\n{\"event\":\"sched_decision\"}\n");
        assert!(ds.decisions.is_empty());
        // A decision with no preceding candidates yields nothing.
        let ds = parse_trace(
            r#"{"at":1,"event":"sched_decision","cpu":0,"prev":1,"chosen":2,"depth":1}"#,
        );
        assert!(ds.decisions.is_empty());
    }

    #[test]
    fn int_field_handles_negatives_and_missing() {
        assert_eq!(int_field(r#"{"a":-5,"b":7}"#, "a"), Some(-5));
        assert_eq!(int_field(r#"{"a":-5,"b":7}"#, "b"), Some(7));
        assert_eq!(int_field(r#"{"a":-5}"#, "c"), None);
    }
}
