//! The offline trainer: integer SGD over extracted decision rows.
//!
//! Every candidate row becomes one binary example (label 1 if it was the
//! pick, 0 otherwise); inference ranks candidates by raw score, so the
//! trainer only needs the scores to order correctly, not to calibrate.
//! All updates are integer arithmetic on Q16.16 weights with a power-of-
//! two learning rate (a shift), and initialization draws from `SimRng` —
//! so `(seed, dataset, config)` determines every weight bit and
//! [`train`] → [`Model::to_text`] is byte-reproducible anywhere.

use crate::data::Dataset;
use crate::model::{Arch, Model, HIDDEN};
use crate::{quantize, FEATURES};
use elsc_simcore::SimRng;

/// Trainer hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrainConfig {
    /// Architecture to train.
    pub arch: Arch,
    /// Seed for weight initialization.
    pub seed: u64,
    /// Full passes over the dataset.
    pub epochs: u32,
    /// Learning rate as a right-shift: `lr = 2^-lr_shift`.
    pub lr_shift: u32,
}

impl TrainConfig {
    /// Defaults: 30 epochs at `lr = 1/64`.
    pub fn new(arch: Arch, seed: u64) -> TrainConfig {
        TrainConfig {
            arch,
            seed,
            epochs: 30,
            lr_shift: 6,
        }
    }
}

/// Small symmetric random weight in roughly `[-0.03, 0.03]` Q16.16.
fn init_weight(rng: &mut SimRng) -> i64 {
    rng.range(0, 4096) as i64 - 2048
}

/// Trains a model on `data`. Deterministic in `(cfg, data)`.
pub fn train(data: &Dataset, cfg: TrainConfig) -> Model {
    let mut rng = SimRng::new(cfg.seed);
    let mut m = Model::zeroed(cfg.arch);
    m.seed = cfg.seed;
    // Both architectures random-init every weight they use, so two seeds
    // differ even before the first update (and even on an empty dataset).
    match cfg.arch {
        Arch::LogReg => {
            for i in 0..FEATURES {
                m.w[i] = init_weight(&mut rng);
            }
            m.b = init_weight(&mut rng);
        }
        Arch::Mlp => {
            for j in 0..HIDDEN {
                for i in 0..FEATURES {
                    m.w1[j][i] = init_weight(&mut rng);
                }
                m.b1[j] = init_weight(&mut rng);
                m.w2[j] = init_weight(&mut rng);
            }
            m.b2 = init_weight(&mut rng);
        }
    }
    for _ in 0..cfg.epochs {
        for d in &data.decisions {
            for c in &d.candidates {
                let x = quantize(&c.raw);
                let y = if c.tid == d.chosen { crate::Q_ONE } else { 0 };
                step(&mut m, &x, y, cfg.lr_shift);
            }
        }
    }
    m
}

/// One SGD step on one example: `err = sigmoid(score) - y` (Q16.16),
/// gradients shifted back to Q16.16, then scaled by `2^-lr_shift`.
fn step(m: &mut Model, x: &[i64; FEATURES], y: i64, lr_shift: u32) {
    match m.arch {
        Arch::LogReg => {
            let err = Model::sigmoid_q(m.score(x)) - y;
            for (w, xi) in m.w.iter_mut().zip(x) {
                *w -= ((err * xi) >> 16) >> lr_shift;
            }
            m.b -= err >> lr_shift;
        }
        Arch::Mlp => {
            // Forward pass keeping hidden activations for backprop.
            let mut h = [0i64; HIDDEN];
            let mut z = m.b2;
            for (j, hj) in h.iter_mut().enumerate() {
                let mut a = m.b1[j];
                for (w, xi) in m.w1[j].iter().zip(x) {
                    a += (w * xi) >> 16;
                }
                *hj = a.max(0);
                z += (m.w2[j] * *hj) >> 16;
            }
            let err = Model::sigmoid_q(z) - y;
            for (j, &hj) in h.iter().enumerate() {
                // dL/dh_j before the ReLU gate.
                let dh = (err * m.w2[j]) >> 16;
                m.w2[j] -= ((err * hj) >> 16) >> lr_shift;
                if hj > 0 {
                    for (w, xi) in m.w1[j].iter_mut().zip(x) {
                        *w -= ((dh * xi) >> 16) >> lr_shift;
                    }
                    m.b1[j] -= dh >> lr_shift;
                }
            }
            m.b2 -= err >> lr_shift;
        }
    }
}

/// Evaluates argmax accuracy over the dataset: `(correct, total)`
/// decisions. Ties break toward the earliest candidate, matching the
/// scheduler's first-wins scoring loop.
pub fn eval(m: &Model, data: &Dataset) -> (u64, u64) {
    let mut correct = 0u64;
    for d in &data.decisions {
        let mut best: Option<(i64, u64)> = None;
        for c in &d.candidates {
            let s = m.score(&quantize(&c.raw));
            if best.is_none_or(|(bs, _)| s > bs) {
                best = Some((s, c.tid));
            }
        }
        if best.map(|(_, tid)| tid) == Some(d.chosen) {
            correct += 1;
        }
    }
    (correct, data.decisions.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{CandidateRow, Decision};

    /// A toy dataset where the candidate with the larger counter always
    /// wins — linearly separable, so both archs should learn it.
    fn counter_wins(n: usize) -> Dataset {
        let mut ds = Dataset::default();
        for k in 0..n {
            let hi = 2 + (k % 30) as i64;
            let lo = (k % (hi as usize)) as i64;
            ds.decisions.push(Decision {
                candidates: vec![
                    CandidateRow {
                        tid: 1,
                        raw: [2, lo, 20, 0, 0, 0, 10],
                    },
                    CandidateRow {
                        tid: 2,
                        raw: [2, hi, 20, 0, 0, 0, 10],
                    },
                ],
                chosen: 2,
            });
        }
        ds
    }

    #[test]
    fn same_seed_same_dataset_byte_identical_model() {
        let ds = counter_wins(50);
        for arch in [Arch::LogReg, Arch::Mlp] {
            let a = train(&ds, TrainConfig::new(arch, 42));
            let b = train(&ds, TrainConfig::new(arch, 42));
            assert_eq!(a, b);
            assert_eq!(a.to_text(), b.to_text());
        }
    }

    #[test]
    fn different_seeds_different_weights() {
        let ds = counter_wins(50);
        for arch in [Arch::LogReg, Arch::Mlp] {
            let a = train(&ds, TrainConfig::new(arch, 1));
            let b = train(&ds, TrainConfig::new(arch, 2));
            assert_ne!(a.to_text(), b.to_text(), "{}", arch.name());
        }
    }

    #[test]
    fn trained_model_round_trips_through_text() {
        let ds = counter_wins(50);
        for arch in [Arch::LogReg, Arch::Mlp] {
            let m = train(&ds, TrainConfig::new(arch, 42));
            let back = Model::parse(&m.to_text()).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn learns_a_separable_rule() {
        let ds = counter_wins(200);
        for arch in [Arch::LogReg, Arch::Mlp] {
            let m = train(&ds, TrainConfig::new(arch, 42));
            let (correct, total) = eval(&m, &ds);
            assert!(
                correct * 10 >= total * 9,
                "{}: {correct}/{total}",
                arch.name()
            );
        }
    }

    #[test]
    fn empty_dataset_trains_to_init_only() {
        let ds = Dataset::default();
        let a = train(&ds, TrainConfig::new(Arch::LogReg, 5));
        let b = train(&ds, TrainConfig::new(Arch::LogReg, 5));
        assert_eq!(a, b);
        assert_eq!(eval(&a, &ds), (0, 0));
    }
}
