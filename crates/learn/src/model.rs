//! Model representation, integer scoring, and the versioned text format.
//!
//! Everything here is Q16.16 fixed-point: weights, inputs, and scores are
//! `i64`s where 65536 means 1.0. Scoring uses only integer multiply and
//! arithmetic shift, so a model file evaluates identically in the trainer,
//! in tests, and inside the `learned:<model>` scheduler — there is no
//! float path whose rounding could differ between train and inference.

use crate::FEATURES;

/// 1.0 in Q16.16.
pub const Q_ONE: i64 = 1 << 16;

/// Hidden width of the MLP architecture. Fixed so the model file format
/// and the scheduler's scoring loop need no dynamic shapes.
pub const HIDDEN: usize = 8;

/// Magic first line of every model file; bump the version on any change
/// to the format or to scoring semantics.
pub const MODEL_MAGIC: &str = "elsc-learn model v1";

/// Model architecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arch {
    /// Linear scorer: `z = b + w·x`.
    LogReg,
    /// One ReLU hidden layer of [`HIDDEN`] units:
    /// `z = b2 + w2·relu(b1 + W1·x)`.
    Mlp,
}

impl Arch {
    /// The label used in model files and reports.
    pub fn name(self) -> &'static str {
        match self {
            Arch::LogReg => "logreg",
            Arch::Mlp => "mlp",
        }
    }

    /// Parses a label back into an architecture.
    pub fn parse(s: &str) -> Result<Arch, String> {
        match s {
            "logreg" => Ok(Arch::LogReg),
            "mlp" => Ok(Arch::Mlp),
            other => Err(format!("unknown arch {other:?} (want logreg or mlp)")),
        }
    }
}

/// A trained candidate scorer.
///
/// Both architectures carry full-size weight arrays; the unused MLP
/// arrays of a logreg model stay zero. That wastes a few hundred bytes
/// but keeps the type `Clone + PartialEq` without boxing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Model {
    /// Architecture selector.
    pub arch: Arch,
    /// Seed the trainer initialized from (recorded for provenance; not
    /// used at inference).
    pub seed: u64,
    /// Logreg weights, one per feature (Q16.16).
    pub w: [i64; FEATURES],
    /// Logreg bias (Q16.16).
    pub b: i64,
    /// MLP input→hidden weights, `w1[j][i]` for hidden unit `j` (Q16.16).
    pub w1: [[i64; FEATURES]; HIDDEN],
    /// MLP hidden biases (Q16.16).
    pub b1: [i64; HIDDEN],
    /// MLP hidden→output weights (Q16.16).
    pub w2: [i64; HIDDEN],
    /// MLP output bias (Q16.16).
    pub b2: i64,
}

impl Model {
    /// An all-zero model of the given architecture (scores everything 0).
    pub fn zeroed(arch: Arch) -> Model {
        Model {
            arch,
            seed: 0,
            w: [0; FEATURES],
            b: 0,
            w1: [[0; FEATURES]; HIDDEN],
            b1: [0; HIDDEN],
            w2: [0; HIDDEN],
            b2: 0,
        }
    }

    /// Scores one quantized candidate feature vector. Higher = more
    /// likely to be the pick; the scheduler takes the argmax.
    pub fn score(&self, x: &[i64; FEATURES]) -> i64 {
        match self.arch {
            Arch::LogReg => {
                let mut z = self.b;
                for (w, xi) in self.w.iter().zip(x) {
                    z += (w * xi) >> 16;
                }
                z
            }
            Arch::Mlp => {
                let mut z = self.b2;
                for j in 0..HIDDEN {
                    let mut h = self.b1[j];
                    for (w, xi) in self.w1[j].iter().zip(x) {
                        h += (w * xi) >> 16;
                    }
                    if h > 0 {
                        z += (self.w2[j] * h) >> 16;
                    }
                }
                z
            }
        }
    }

    /// Hard sigmoid in Q16.16: `clamp(0.5 + z/4, 0, 1)`. Piecewise-linear
    /// so the trainer's probabilities are exact integers.
    pub fn sigmoid_q(z: i64) -> i64 {
        (Q_ONE / 2 + z / 4).clamp(0, Q_ONE)
    }

    /// Serializes the model to its canonical text form. Field order and
    /// formatting are fixed, so equal models produce byte-equal files.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(MODEL_MAGIC);
        out.push('\n');
        out.push_str(&format!("arch {}\n", self.arch.name()));
        out.push_str(&format!("features {FEATURES}\n"));
        let hidden = match self.arch {
            Arch::LogReg => 0,
            Arch::Mlp => HIDDEN,
        };
        out.push_str(&format!("hidden {hidden}\n"));
        out.push_str(&format!("seed {}\n", self.seed));
        match self.arch {
            Arch::LogReg => {
                out.push_str(&row("w", &self.w));
                out.push_str(&format!("b {}\n", self.b));
            }
            Arch::Mlp => {
                for j in 0..HIDDEN {
                    out.push_str(&row("w1", &self.w1[j]));
                }
                out.push_str(&row("b1", &self.b1));
                out.push_str(&row("w2", &self.w2));
                out.push_str(&format!("b2 {}\n", self.b2));
            }
        }
        out
    }

    /// Parses a model file produced by [`Model::to_text`].
    pub fn parse(text: &str) -> Result<Model, String> {
        let mut lines = text.lines();
        let magic = lines.next().ok_or("empty model file")?;
        if magic != MODEL_MAGIC {
            return Err(format!("bad magic {magic:?} (want {MODEL_MAGIC:?})"));
        }
        let arch = Arch::parse(field(lines.next(), "arch")?)?;
        let features: usize = num(field(lines.next(), "features")?)?;
        if features != FEATURES {
            return Err(format!(
                "model has {features} features, build expects {FEATURES}"
            ));
        }
        let hidden: usize = num(field(lines.next(), "hidden")?)?;
        let want_hidden = match arch {
            Arch::LogReg => 0,
            Arch::Mlp => HIDDEN,
        };
        if hidden != want_hidden {
            return Err(format!(
                "arch {} wants hidden {want_hidden}, file says {hidden}",
                arch.name()
            ));
        }
        let seed: u64 = num(field(lines.next(), "seed")?)?;
        let mut m = Model::zeroed(arch);
        m.seed = seed;
        match arch {
            Arch::LogReg => {
                m.w = parse_row(field(lines.next(), "w")?)?;
                m.b = num(field(lines.next(), "b")?)?;
            }
            Arch::Mlp => {
                for j in 0..HIDDEN {
                    m.w1[j] = parse_row(field(lines.next(), "w1")?)?;
                }
                m.b1 = parse_row(field(lines.next(), "b1")?)?;
                m.w2 = parse_row(field(lines.next(), "w2")?)?;
                m.b2 = num(field(lines.next(), "b2")?)?;
            }
        }
        if let Some(extra) = lines.next() {
            return Err(format!("trailing line {extra:?} after model body"));
        }
        Ok(m)
    }
}

/// Formats one `key v0 v1 ...` weight row.
fn row(key: &str, vals: &[i64]) -> String {
    let mut s = String::from(key);
    for v in vals {
        s.push(' ');
        s.push_str(&v.to_string());
    }
    s.push('\n');
    s
}

/// Strips the expected key from a `key rest` line, returning `rest`.
fn field<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, String> {
    let line = line.ok_or_else(|| format!("model file truncated before {key:?}"))?;
    line.strip_prefix(key)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| format!("expected {key:?} line, got {line:?}"))
}

/// Parses one integer.
fn num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.trim().parse().map_err(|_| format!("bad number {s:?}"))
}

/// Parses a space-separated row of exactly `N` integers.
fn parse_row<const N: usize>(s: &str) -> Result<[i64; N], String> {
    let mut out = [0i64; N];
    let mut it = s.split_whitespace();
    for slot in out.iter_mut() {
        *slot = num(it
            .next()
            .ok_or_else(|| format!("row {s:?} too short, want {N}"))?)?;
    }
    if it.next().is_some() {
        return Err(format!("row {s:?} too long, want {N}"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_clamped_and_centered() {
        assert_eq!(Model::sigmoid_q(0), Q_ONE / 2);
        assert_eq!(Model::sigmoid_q(10 * Q_ONE), Q_ONE);
        assert_eq!(Model::sigmoid_q(-10 * Q_ONE), 0);
        // 0.5 + 1/4 at z = 1.0.
        assert_eq!(Model::sigmoid_q(Q_ONE), Q_ONE / 2 + Q_ONE / 4);
    }

    #[test]
    fn logreg_round_trips() {
        let mut m = Model::zeroed(Arch::LogReg);
        m.seed = 99;
        m.w = [1, -2, 3, -400000, 5, 65536, -7];
        m.b = -12345;
        let text = m.to_text();
        let back = Model::parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn mlp_round_trips() {
        let mut m = Model::zeroed(Arch::Mlp);
        m.seed = 7;
        for j in 0..HIDDEN {
            for i in 0..FEATURES {
                m.w1[j][i] = (j as i64 * 31 - i as i64 * 17) * 100;
            }
            m.b1[j] = j as i64 - 4;
            m.w2[j] = -(j as i64) * 1000;
        }
        m.b2 = 42;
        let text = m.to_text();
        let back = Model::parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Model::parse("").is_err());
        assert!(Model::parse("not a model\n").is_err());
        let mut m = Model::zeroed(Arch::LogReg);
        m.w[0] = 1;
        let text = m.to_text();
        assert!(Model::parse(&text.replace("features 7", "features 9")).is_err());
        assert!(Model::parse(&text.replace("arch logreg", "arch forest")).is_err());
        assert!(Model::parse(&format!("{text}junk\n")).is_err());
        // Truncated body.
        let short: String = text.lines().take(5).map(|l| format!("{l}\n")).collect();
        assert!(Model::parse(&short).is_err());
    }

    #[test]
    fn linear_score_matches_hand_computation() {
        let mut m = Model::zeroed(Arch::LogReg);
        m.w[0] = Q_ONE; // 1.0 on depth
        m.w[1] = -Q_ONE / 2; // -0.5 on counter
        m.b = 100;
        let x = [Q_ONE, Q_ONE, 0, 0, 0, 0, 0];
        assert_eq!(m.score(&x), Q_ONE - Q_ONE / 2 + 100);
    }

    #[test]
    fn mlp_relu_gates_negative_hidden() {
        let mut m = Model::zeroed(Arch::Mlp);
        m.w1[0][0] = Q_ONE;
        m.w2[0] = Q_ONE;
        m.w1[1][0] = -Q_ONE; // always-negative unit must not contribute
        m.w2[1] = 1_000_000;
        let x = [Q_ONE, 0, 0, 0, 0, 0, 0];
        assert_eq!(m.score(&x), Q_ONE);
    }
}
