//! Learned-scheduler integration: the trained bundled models drive real
//! machine workloads to completion, and the adversarial always-wrong
//! model is ejected by the watchdog — deterministically, with
//! conservation intact and no task lost either side of the swap.

use elsc_ktask::{MmId, TaskSpec};
use elsc_machine::behavior::Script;
use elsc_machine::{Machine, MachineConfig, Op, RunReport, Syscall};
use elsc_sched_ext::LearnedScheduler;

const LOGREG: &str = include_str!("../../../models/volano-logreg.model");
const MLP: &str = include_str!("../../../models/volano-mlp.model");
const ADVERSARIAL: &str = include_str!("../../../models/adversarial.model");

/// A chat-shaped workload: twelve workers across three address spaces,
/// compute bursts separated by sleeps so run queues keep a mix of
/// candidates with different counters, priorities, and mm affinities —
/// enough signal for predictions to be non-trivial.
fn run(cfg: MachineConfig, stem: &str, model: &str) -> RunReport {
    let sched = LearnedScheduler::from_text(stem, model).expect("bundled model parses");
    let mut m = Machine::new(cfg, Box::new(sched));
    for i in 0..12u32 {
        m.spawn(
            &TaskSpec::named("worker").mm(MmId(i % 3 + 1)),
            Box::new(Script::new(
                (0..5)
                    .map(|_| Op::compute(250_000, Syscall::Nop))
                    .flat_map(|c| [c, Op::sleep_after(30_000, 120_000)])
                    .collect(),
            )),
        );
    }
    m.run().expect("run completes")
}

#[test]
fn trained_models_complete_with_verified_accuracy() {
    for (stem, model) in [("volano-logreg", LOGREG), ("volano-mlp", MLP)] {
        for nr_cpus in [1usize, 2] {
            // This script workload is off the models' training
            // distribution (they are fitted to a UP volano trace), so a
            // cold streak can legitimately reach the default K=8; a
            // generous streak allowance keeps the test about completion
            // and accounting, not about on-distribution accuracy (the
            // CLI and lab volano tests pin that).
            let cfg = if nr_cpus == 1 {
                MachineConfig::up()
            } else {
                MachineConfig::smp(nr_cpus)
            }
            .with_max_secs(100.0)
            .with_learn_eject_k(64);
            let r = run(cfg, stem, model);
            assert!(r.conservation_ok, "{stem}/{nr_cpus}P: conservation");
            assert_eq!(r.tasks_spawned, 12, "{stem}/{nr_cpus}P");
            let l = r.learned.as_ref().expect("learned summary present");
            assert!(!l.ejected, "{stem}/{nr_cpus}P: trained model survives");
            assert!(
                l.predictions > 10,
                "{stem}/{nr_cpus}P: only {} predictions",
                l.predictions
            );
            assert!((0.0..=1.0).contains(&l.accuracy()));
            assert_eq!(l.mispredicts(), l.predictions - l.hits);
            // The summary serializes into the report.
            assert!(r.to_json().contains("\"learned\""));
        }
    }
}

#[test]
fn adversarial_model_is_ejected_deterministically() {
    let cfg = || {
        MachineConfig::smp(2)
            .with_max_secs(100.0)
            .with_learn_eject_k(8)
    };
    let one = run(cfg(), "adversarial", ADVERSARIAL);
    let l = one.learned.as_ref().expect("learned summary present");
    assert!(l.ejected, "an always-wrong model must trip the watchdog");
    assert_eq!(l.eject_reason, Some("accuracy_collapse"));
    let at = l.ejected_at.expect("ejection is timestamped");
    assert!(at.get() > 0);
    // Mispredictions were charged before the ejection froze the record.
    assert!(l.mispredicts() >= 8, "streak-K fired: {}", l.mispredicts());
    // The swap to the native scan loses nothing: every task accounted
    // for, the run completes, and the whole story is deterministic —
    // two runs produce byte-identical reports.
    assert!(one.conservation_ok);
    assert_eq!(one.tasks_spawned, 12);
    let two = run(cfg(), "adversarial", ADVERSARIAL);
    assert_eq!(one.to_json(), two.to_json());
}
