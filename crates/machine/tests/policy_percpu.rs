//! The bundled `percpu.pol` program partitions its run-queue storage
//! per CPU but still runs the full goodness scan, so it carries the
//! strict oracle claim: every decision must match the reference scan
//! (or be an order-of-scan tie). This drives the VM's multi-list
//! paths — a `percpu` bank, `foreach` over a computed list index —
//! under real machine workloads.

use elsc_ktask::{MmId, TaskSpec};
use elsc_machine::behavior::Script;
use elsc_machine::{Machine, MachineConfig, Op, Syscall};
use elsc_policy::PolicyScheduler;

const PERCPU_POL: &str = include_str!("../../../policies/percpu.pol");

fn run_with_oracle(cfg: MachineConfig, nr_cpus: usize) -> elsc_machine::OracleReport {
    let sched = PolicyScheduler::load_str(PERCPU_POL, nr_cpus).expect("percpu.pol loads");
    let mut m = Machine::new(cfg.with_oracle(true), Box::new(sched));
    for i in 0..6u32 {
        m.spawn(
            &TaskSpec::named("worker").mm(MmId(i % 3 + 1)),
            Box::new(Script::new(
                (0..4)
                    .map(|_| Op::compute(300_000, Syscall::Nop))
                    .flat_map(|c| [c, Op::sleep_after(20_000, 150_000)])
                    .collect(),
            )),
        );
    }
    let r = m.run().expect("run completes");
    let chaos = r.chaos.expect("oracle enables the chaos summary");
    chaos.oracle.expect("oracle report present")
}

#[test]
fn percpu_policy_is_strict_clean_on_up_and_smp() {
    for nr_cpus in [1usize, 2, 4] {
        let cfg = if nr_cpus == 1 {
            MachineConfig::up()
        } else {
            MachineConfig::smp(nr_cpus)
        }
        .with_max_secs(100.0);
        let o = run_with_oracle(cfg, nr_cpus);
        assert!(
            o.decisions > 10,
            "{nr_cpus} cpus: only {} decisions",
            o.decisions
        );
        assert!(
            o.clean(),
            "{nr_cpus} cpus: {} unexplained / {} violations (first: {:?})",
            o.unexplained,
            o.invariant_violations,
            o.first_unexplained.as_ref().or(o.first_violation.as_ref())
        );
        // Full-scan selection: every decision is the reference pick or
        // an equal-goodness tie — never a relaxed-mode "design" gap,
        // which proves the strict mode was actually in effect.
        assert_eq!(o.design, 0, "{nr_cpus} cpus: judged under relaxed mode?");
        assert_eq!(
            o.matches + o.ties + o.yield_reruns,
            o.decisions,
            "{nr_cpus} cpus: unexpected divergence classes in {o:?}"
        );
    }
}
