//! Timing-model tests: quanta, preemption, migration penalties, poll
//! yields, and cost-model knobs observable through virtual time.

use elsc_ktask::{MmId, TaskSpec};
use elsc_machine::behavior::Script;
use elsc_machine::{Machine, MachineConfig, Op, RunReport, Syscall};
use elsc_netsim::Msg;
use elsc_simcore::{CostKind, CostModel};

fn reg() -> Box<dyn elsc_sched_api::Scheduler> {
    Box::new(elsc_sched_linux::LinuxScheduler::new())
}

fn elsc() -> Box<dyn elsc_sched_api::Scheduler> {
    Box::new(elsc::ElscScheduler::new())
}

fn run(cfg: MachineConfig, build: impl FnOnce(&mut Machine)) -> RunReport {
    let mut m = Machine::new(cfg, elsc());
    build(&mut m);
    m.run().expect("run completes")
}

#[test]
fn quantum_is_twenty_ticks() {
    // Two CPU hogs on one CPU: the running one is preempted when its
    // 20-tick (200 ms) quantum drains, so over a 400 ms burst each task
    // gets the CPU in 200 ms slices -> at least 2 involuntary switches.
    let tick = MachineConfig::up().tick_cycles;
    let burst = tick * 45; // 450 ms of work each
    let r = run(MachineConfig::up().with_max_secs(50.0), |m| {
        for i in 0..2u32 {
            m.spawn(
                &TaskSpec::named("hog").mm(MmId(i + 1)),
                Box::new(Script::new(vec![Op::compute(burst, Syscall::Nop)])),
            );
        }
    });
    let t = r.stats.total();
    // 90 ticks of runtime / 20-tick quanta ~ 4 expiries; switches include
    // dispatch/exit, so bound loosely from below.
    assert!(
        t.ctx_switches >= 4,
        "expected quantum-driven alternation, got {} switches",
        t.ctx_switches
    );
    assert!(t.ticks >= 90, "ticks {}", t.ticks);
}

#[test]
fn preempted_work_is_not_lost() {
    // Total elapsed must equal the serial work regardless of how many
    // preemptions slice it (plus bounded scheduling overhead).
    let tick = MachineConfig::up().tick_cycles;
    let burst = tick * 30;
    let r = run(MachineConfig::up().with_max_secs(50.0), |m| {
        for i in 0..3u32 {
            m.spawn(
                &TaskSpec::named("hog").mm(MmId(i + 1)),
                Box::new(Script::new(vec![Op::compute(burst, Syscall::Nop)])),
            );
        }
    });
    let serial = 3 * burst;
    assert!(r.elapsed.get() >= serial);
    // Overhead below 2% for three tasks on light scheduling.
    assert!(
        (r.elapsed.get() as f64) < serial as f64 * 1.02,
        "elapsed {} vs serial {serial}",
        r.elapsed
    );
}

#[test]
fn migration_penalty_is_visible_in_elapsed_time() {
    // One task ping-pongs between two CPUs via sleeps; with a huge
    // migration penalty the run takes measurably longer.
    let elapsed_with_penalty = |penalty: u64| {
        let mut costs = CostModel::default();
        costs.set(CostKind::MigrationPenalty, penalty);
        let cfg = MachineConfig::smp(2).with_costs(costs).with_max_secs(100.0);
        let r = run(cfg, |m| {
            // A distractor hog pins CPU parity so the sleeper's wakeups
            // land on alternating CPUs.
            m.spawn(
                &TaskSpec::named("hog").mm(MmId(1)),
                Box::new(Script::new(vec![Op::compute(80_000_000, Syscall::Nop)])),
            );
            m.spawn(
                &TaskSpec::named("sleeper").mm(MmId(2)),
                Box::new(Script::new(
                    (0..40).map(|_| Op::sleep_after(50_000, 100_000)).collect(),
                )),
            );
        });
        (r.elapsed.get(), r.stats.total().picked_new_cpu)
    };
    let (fast, migrations_fast) = elapsed_with_penalty(0);
    let (slow, migrations_slow) = elapsed_with_penalty(2_000_000);
    // Same schedule shape (penalty only delays), so migrations happen in
    // both runs; the paid run must be slower.
    if migrations_fast > 0 && migrations_slow > 0 {
        assert!(slow > fast, "penalty must cost time: {fast} vs {slow}");
    }
}

#[test]
fn poll_yields_replace_blocking_for_quick_data() {
    // With a generous poll budget and a writer that produces quickly, the
    // reader polls through the gap instead of sleeping: zero wakeups for
    // the reader path, but yields recorded.
    let cfg = MachineConfig::up().with_max_secs(50.0).with_poll_yields(50);
    let mut m = Machine::new(cfg, reg());
    let pipe = m.create_pipe(4);
    m.spawn(
        &TaskSpec::named("writer").mm(MmId(1)),
        Box::new(Script::new(
            (0..10)
                .map(|i| Op::write_after(5_000, pipe, Msg::tagged(i)))
                .collect(),
        )),
    );
    m.spawn(
        &TaskSpec::named("reader").mm(MmId(2)),
        Box::new(Script::new(
            (0..10).map(|_| Op::read_after(1_000, pipe)).collect(),
        )),
    );
    let r = m.run().expect("completes");
    assert_eq!(r.messages_read, 10);
    assert!(r.stats.total().yields > 0, "the reader should have polled");
}

#[test]
fn mm_switch_cost_charged_only_across_address_spaces() {
    // Two tasks sharing an mm context-switch cheaper than two tasks in
    // different address spaces.
    let elapsed_for = |mms: [u32; 2]| {
        let tick = MachineConfig::up().tick_cycles;
        let r = run(MachineConfig::up().with_max_secs(60.0), |m| {
            for &mm in &mms {
                m.spawn(
                    &TaskSpec::named("t").mm(MmId(mm)),
                    Box::new(Script::new(vec![Op::compute(tick * 25, Syscall::Nop)])),
                );
            }
        });
        (r.elapsed.get(), r.stats.total().mm_switches)
    };
    let (same, switches_same) = elapsed_for([1, 1]);
    let (diff, switches_diff) = elapsed_for([1, 2]);
    // Only the initial load of the user mm; never between the two tasks.
    assert_eq!(
        switches_same, 1,
        "shared address space must not flush between tasks"
    );
    assert!(switches_diff > switches_same);
    // Elapsed times differ by scheduling-decision noise (the mm bonus
    // changes tie-breaks), so assert only that both runs completed the
    // same work; the per-flush cost itself is covered by the counters.
    assert!(same > 0 && diff > 0);
}

#[test]
fn ipi_latency_delays_idle_wakeup() {
    // A sleeping task on an otherwise idle machine wakes via IPI; raising
    // the IPI latency delays completion measurably.
    let elapsed_with_ipi = |lat: u64| {
        let mut costs = CostModel::default();
        costs.set(CostKind::IpiLatency, lat);
        let cfg = MachineConfig::smp(1).with_costs(costs).with_max_secs(50.0);
        run(cfg, |m| {
            m.spawn(
                &TaskSpec::named("sleeper"),
                Box::new(Script::new(
                    (0..20).map(|_| Op::sleep_after(1_000, 50_000)).collect(),
                )),
            );
        })
        .elapsed
        .get()
    };
    let fast = elapsed_with_ipi(100);
    let slow = elapsed_with_ipi(100_000);
    // IPIs coalesce across back-to-back wakeups (need_resched is
    // level-triggered, as in the kernel), so not every wakeup pays the
    // full latency — but a material fraction must.
    assert!(
        slow >= fast + 4 * 100_000,
        "raising IPI latency must slow the run: {fast} vs {slow}"
    );
}

#[test]
fn lock_transfer_cost_only_applies_on_smp_builds() {
    let elapsed_with = |smp: bool| {
        let cfg = if smp {
            MachineConfig::smp(1)
        } else {
            MachineConfig::up()
        }
        .with_max_secs(60.0);
        let r = run(cfg, |m| {
            for i in 0..4u32 {
                m.spawn(
                    &TaskSpec::named("t").mm(MmId(i + 1)),
                    Box::new(Script::new(
                        (0..50).map(|_| Op::yield_after(10_000)).collect(),
                    )),
                );
            }
        });
        (r.elapsed.get(), r.lock_acquisitions)
    };
    let (up_time, up_locks) = elapsed_with(false);
    let (smp_time, smp_locks) = elapsed_with(true);
    assert_eq!(up_locks, 0, "UP builds never touch the run-queue lock");
    assert!(smp_locks > 0);
    assert!(
        smp_time > up_time,
        "the 1P SMP build pays lock overhead: {up_time} vs {smp_time}"
    );
}
