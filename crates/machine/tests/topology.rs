//! Topology integration tests: the bubble scheduler re-homing whole
//! address-space groups across NUMA nodes must keep the task table's
//! SoA lanes in lockstep with the slab and conserve every kernel cycle
//! in the profiler ledger.

use elsc_ktask::{MmId, TaskSpec};
use elsc_machine::behavior::Script;
use elsc_machine::{Machine, MachineConfig, Op, StepStatus, Syscall};
use elsc_sched_ext::BubbleScheduler;
use elsc_simcore::{Cycles, Topology};

/// A workload that forces cross-node traffic: a few large address-space
/// groups with more runnable tasks than one node can hold, plus sleep
/// phases so nodes go idle and steal (which re-homes whole groups).
fn spawn_groups(m: &mut Machine, groups: u32, tasks_per_group: u32) {
    for mm in 1..=groups {
        for _ in 0..tasks_per_group {
            m.spawn(
                &TaskSpec::named("member").mm(MmId(mm)),
                Box::new(Script::new(
                    (0..6)
                        .map(|_| Op::compute(400_000, Syscall::Nop))
                        .flat_map(|c| [c, Op::sleep_after(50_000, 300_000)])
                        .collect(),
                )),
            );
        }
    }
}

#[test]
fn bubble_rehoming_keeps_lanes_in_lockstep_with_the_slab() {
    // Step the machine in small barriers so the lockstep invariant is
    // checked *during* the run — between re-homes, steals, and exits —
    // not only after the table has drained.
    let topo: Topology = "2N2C1T".parse().unwrap();
    let cfg = MachineConfig::topo(topo).with_max_secs(200.0);
    let mut m = Machine::new(cfg, Box::new(BubbleScheduler::new(topo)));
    spawn_groups(&mut m, 3, 4);
    m.start();
    let mut barrier = 0u64;
    let report = loop {
        barrier += 2_000_000;
        let status = m.step_until(Cycles(barrier)).expect("no watchdog");
        m.tasks().assert_lanes_in_lockstep();
        // The processor lane is the steal path's read side: every live
        // slot must agree with its slab record even mid-migration.
        for idx in 0..m.tasks().lanes().len() {
            if m.tasks().lanes().live(idx) {
                assert_eq!(
                    m.tasks().lanes().processor(idx),
                    m.tasks().by_index(idx).processor,
                    "processor lane drifted at slot {idx}"
                );
            }
        }
        if status == StepStatus::Done {
            break m.finish();
        }
    };
    assert!(report.conservation_ok, "kernel cycles must be conserved");
    let topo_sum = report.topology.expect("multi-level run reports topology");
    assert_eq!(topo_sum.shape, "2N2C1T");
    // The scenario must actually have moved work between nodes —
    // otherwise the lockstep walk above never exercised a re-home.
    assert!(
        topo_sum.migrations_cross_node > 0,
        "expected cross-node migrations, got same_core={} same_node={} cross_node={}",
        topo_sum.migrations_same_core,
        topo_sum.migrations_same_node,
        topo_sum.migrations_cross_node
    );
}

#[test]
fn bubble_run_is_deterministic_on_smt_topology() {
    // Same spawn order, same topology -> byte-identical reports. The
    // bubble scheduler's BTreeMap home table and lowest-index
    // tie-breaks must not leak any iteration-order nondeterminism.
    let run = || {
        let topo: Topology = "2N4C2T".parse().unwrap();
        let cfg = MachineConfig::topo(topo).with_max_secs(200.0);
        let mut m = Machine::new(cfg, Box::new(BubbleScheduler::new(topo)));
        spawn_groups(&mut m, 4, 4);
        let r = m.run().expect("run completes");
        m.tasks().assert_lanes_in_lockstep();
        r.to_json()
    };
    let a = run();
    assert_eq!(a, run(), "bubble runs must be reproducible");
    assert!(a.contains("\"shape\":\"2N4C2T\""));
}
