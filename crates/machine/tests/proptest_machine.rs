//! Property tests on the machine: determinism, time monotonicity, and
//! accounting consistency over randomly generated workloads.

#![cfg(feature = "proptest")]
// Property-based suites need the external `proptest` crate, which is
// unavailable in offline builds; enable the `proptest` feature after
// restoring the dev-dependency (see CONTRIBUTING.md).
use proptest::prelude::*;

use elsc_ktask::{MmId, TaskSpec};
use elsc_machine::behavior::Script;
use elsc_machine::{Machine, MachineConfig, Op, RunReport, Syscall};
use elsc_netsim::Msg;

/// Builds a random-but-reproducible producer/consumer workload from the
/// proptest-generated shape parameters.
fn build_machine(
    seed: u64,
    cpus: usize,
    pairs: usize,
    msgs: usize,
    burst: u64,
    elsc: bool,
) -> Machine {
    let cfg = MachineConfig::smp(cpus)
        .with_seed(seed)
        .with_max_secs(2_000.0);
    let sched: Box<dyn elsc_sched_api::Scheduler> = if elsc {
        Box::new(elsc::ElscScheduler::new())
    } else {
        Box::new(elsc_sched_linux::LinuxScheduler::new())
    };
    let mut m = Machine::new(cfg, sched);
    for p in 0..pairs {
        let pipe = m.create_pipe(2);
        m.spawn(
            &TaskSpec::named("producer").mm(MmId(1 + p as u32)),
            Box::new(Script::new(
                (0..msgs)
                    .map(|i| Op::write_after(burst, pipe, Msg::tagged(i as u64)))
                    .collect(),
            )),
        );
        m.spawn(
            &TaskSpec::named("consumer").mm(MmId(100 + p as u32)),
            Box::new(Script::new(
                (0..msgs).map(|_| Op::read_after(burst / 2, pipe)).collect(),
            )),
        );
        m.spawn(
            &TaskSpec::named("cruncher").mm(MmId(200 + p as u32)),
            Box::new(Script::new(vec![
                Op::compute(burst * 4, Syscall::Nop),
                Op::yield_after(burst),
                Op::sleep_after(burst, 100_000),
            ])),
        );
    }
    m
}

fn run(seed: u64, cpus: usize, pairs: usize, msgs: usize, burst: u64, elsc: bool) -> RunReport {
    build_machine(seed, cpus, pairs, msgs, burst, elsc)
        .run()
        .expect("workload completes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn runs_are_deterministic(
        seed in any::<u64>(),
        cpus in 1usize..4,
        pairs in 1usize..4,
        msgs in 1usize..6,
        burst in 1_000u64..200_000,
        elsc in any::<bool>(),
    ) {
        let a = run(seed, cpus, pairs, msgs, burst, elsc);
        let b = run(seed, cpus, pairs, msgs, burst, elsc);
        prop_assert_eq!(a.elapsed, b.elapsed);
        prop_assert_eq!(a.stats.total().sched_calls, b.stats.total().sched_calls);
        prop_assert_eq!(a.stats.total().ctx_switches, b.stats.total().ctx_switches);
        prop_assert_eq!(a.messages_read, b.messages_read);
    }

    #[test]
    fn all_work_completes_and_time_is_sane(
        seed in any::<u64>(),
        cpus in 1usize..5,
        pairs in 1usize..5,
        msgs in 1usize..5,
        burst in 1_000u64..100_000,
        elsc in any::<bool>(),
    ) {
        let r = run(seed, cpus, pairs, msgs, burst, elsc);
        // Every message makes it through.
        prop_assert_eq!(r.messages_read, (pairs * msgs) as u64);
        // Elapsed covers at least the producer's serial compute.
        prop_assert!(r.elapsed.get() >= burst * msgs as u64);
        // Exactly 3 tasks per pair were created and all exited.
        prop_assert_eq!(r.tasks_spawned, (pairs * 3) as u64);
        let t = r.stats.total();
        // Scheduler accounting is internally consistent.
        prop_assert!(t.ctx_switches <= t.sched_calls);
        prop_assert!(t.idle_scheduled <= t.sched_calls);
        prop_assert!(t.recalc_tasks >= t.recalc_entries);
    }

    #[test]
    fn work_conservation_across_cpu_counts(
        seed in any::<u64>(),
        pairs in 1usize..4,
        msgs in 2usize..5,
    ) {
        // The same workload must deliver the same messages regardless of
        // machine shape — only timing may differ.
        let one = run(seed, 1, pairs, msgs, 50_000, true);
        let four = run(seed, 4, pairs, msgs, 50_000, true);
        prop_assert_eq!(one.messages_read, four.messages_read);
    }
}
