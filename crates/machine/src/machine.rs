//! The machine: event loop, dispatch, syscalls, wakeups.

use elsc_chaos::{
    check_task_invariants, ChaosSummary, Decision, DivergenceClass, FaultInjector, IpiFault,
    Oracle, OracleMode, TaskSnap,
};
use elsc_ktask::{CpuId, TaskSpec, TaskState, TaskTable, Tid};
use elsc_netsim::{Msg, PipeError, PipeId, PipeTable};
use elsc_sched_api::{
    reschedule_idle, CpuView, DomainAcquire, DomainLocker, LockDomains, LockPlan, LockScratch,
    PolicyBackend, SchedCtx, Scheduler, WakeTarget,
};
use elsc_simcore::{CostKind, CycleMeter, Cycles, EventQueue, LockModel, SimRng};
use elsc_stats::SchedStats;

use elsc_obs::{CycleProfiler, EventBus, ObsEvent, Phase, Sink};

use crate::behavior::{Behavior, Op, SysView, Syscall};
use crate::config::MachineConfig;
use crate::cpu::CpuState;
use crate::report::{
    Distributions, EngineSummary, LearnedSummary, Ledger, PolicySummary, RunReport, TopologySummary,
};
use crate::trace::Trace;

/// Simulation events.
#[derive(Debug)]
enum Event {
    /// Periodic 10 ms timer interrupt on one CPU.
    Tick { cpu: CpuId },
    /// The current compute segment of `cpu` ends (cancellable via `gen`).
    Resume { cpu: CpuId, gen: u64 },
    /// Reschedule interrupt (wakeup placement decided this CPU should
    /// call `schedule()`).
    Ipi { cpu: CpuId },
    /// A sleeping task's timer expires.
    Timer { tid: Tid },
    /// An inter-node message arrives from the cluster fabric (NIC DMA
    /// completion into `pipe`'s socket buffer).
    Net { pipe: PipeId, msg: Msg },
    /// The far end of an inter-node connection closed; the close
    /// propagates to the local ingress pipe.
    NetClose { pipe: PipeId },
}

impl Event {
    fn is_tick(&self) -> bool {
        matches!(self, Event::Tick { .. })
    }
}

/// Why a run failed.
#[derive(Debug, PartialEq, Eq)]
pub enum RunError {
    /// Virtual time exceeded [`MachineConfig::max_cycles`].
    Watchdog {
        /// Time at which the watchdog fired.
        at: Cycles,
    },
    /// Live tasks remain but none can ever run again.
    Deadlock {
        /// Time of detection.
        at: Cycles,
        /// Number of tasks stuck.
        live: usize,
    },
}

impl core::fmt::Display for RunError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RunError::Watchdog { at } => write!(f, "watchdog expired at {at:?}"),
            RunError::Deadlock { at, live } => {
                write!(f, "deadlock at {at:?}: {live} tasks blocked forever")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// The outcome of one [`Machine::step_until`] slice of a federated run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepStatus {
    /// The barrier was reached with live tasks remaining. `idle` is true
    /// when nothing on this node can make progress without external
    /// input (the per-node half of the cluster deadlock check — a
    /// pending inter-node message elsewhere may still unwedge it).
    Paused {
        /// Whether the node is locally wedged: no runnable task, no
        /// pending wake-ish event.
        idle: bool,
    },
    /// Every spawned task has exited; the node is finished.
    Done,
}

/// A task's in-flight work: remaining compute cycles, then a syscall.
struct Pending {
    remaining: u64,
    syscall: Syscall,
}

/// Machine-side per-task state (parallel to the kernel's task struct).
struct TaskRun {
    behavior: Option<Box<dyn Behavior>>,
    pending: Option<Pending>,
    last_read: Option<Msg>,
    last_spawned: Option<Tid>,
    /// Cold-cache cycles to add to the task's next compute segment after
    /// a migration (0 = none pending). Scaled at migration time by the
    /// topological distance crossed; on a flat tree the scale is 1/1, so
    /// the value is exactly `CostKind::MigrationPenalty`.
    migrate_penalty: u64,
    /// Remaining spin-then-block poll attempts for the current blocking
    /// I/O operation (reset on every successful or parked operation).
    polls_left: u32,
    /// When the task was last woken, for wakeup-to-dispatch latency.
    woken_at: Option<Cycles>,
    rng: SimRng,
}

/// What the trampoline should do next (avoids unbounded recursion between
/// `schedule` and task execution).
enum Drive {
    Schedule(Cycles),
    RunCurrent(Cycles),
}

/// Watchdog state for a run driven by an interpreted policy scheduler
/// (one that reports [`Scheduler::loaded_info`]). `None` on native runs,
/// so they stay byte-identical to the pre-policy machine.
struct PolicyRun {
    /// The policy's reported name (`policy:<name>`), kept across
    /// ejection so the report names what the run was asked to do.
    name: &'static str,
    /// Verifier's static worst-case instruction bound.
    static_insns: u64,
    /// Per-decision runtime instruction budget.
    budget: u64,
    /// Which backend executed the policy (`interp` or `vm`).
    backend: PolicyBackend,
    /// Consecutive idle picks with runnable, unclaimed work queued.
    starve_streak: u32,
    /// Set once the watchdog fires: `(when, why)`. The policy scheduler
    /// is gone by then; `insns_final` froze its instruction count.
    ejected: Option<(Cycles, &'static str)>,
    /// Interpreter instructions executed up to ejection.
    insns_final: u64,
}

/// Watchdog state for a run driven by a learned scheduler (one that
/// reports [`Scheduler::learned_info`]). `None` on native and policy
/// runs, so they stay byte-identical to the pre-learned machine.
struct LearnedRun {
    /// The scheduler's reported name (`learned:<model>`), kept across
    /// ejection so the report names what the run was asked to do.
    name: &'static str,
    /// Model architecture label (`logreg` or `mlp`).
    arch: &'static str,
    /// Consecutive verified mispredictions.
    miss_streak: u32,
    /// Set once the watchdog fires: `(when, why)`. The learned scheduler
    /// is gone by then; the `final_*` fields froze its counters.
    ejected: Option<(Cycles, &'static str)>,
    /// Predictions made up to ejection.
    final_predictions: u64,
    /// Verified hits up to ejection.
    final_hits: u64,
}

/// The simulated machine.
///
/// Construct with [`Machine::new`], create pipes and [`Machine::spawn`]
/// tasks, then call [`Machine::run`] to completion. See the crate docs
/// for the execution model.
pub struct Machine {
    cfg: MachineConfig,
    tasks: TaskTable,
    sched: Box<dyn Scheduler>,
    stats: SchedStats,
    pipes: PipeTable,
    runs: Vec<Option<TaskRun>>,
    cpus: Vec<CpuState>,
    events: EventQueue<Event>,
    /// Pending events that are not ticks (deadlock detection).
    pending_wakeish: usize,
    /// The locking regime in effect: the scheduler's declared plan unless
    /// overridden by [`MachineConfig::lock_plan`].
    plan: LockPlan,
    /// The bank of run-queue lock domains (one under [`LockPlan::Global`]).
    locks: LockModel,
    rng: SimRng,
    ledger: Ledger,
    dists: Distributions,
    /// Observability: event bus (bounded ring + pluggable external sinks).
    bus: EventBus,
    /// Observability: per-(CPU, phase, kind) kernel cycle attribution.
    profiler: CycleProfiler,
    /// Every kernel cycle charged anywhere in the machine; must always
    /// equal `profiler.total()` (the conservation invariant).
    kernel_cycles: u64,
    /// Chaos: the deterministic fault injector (None = clean machine).
    injector: Option<FaultInjector>,
    /// Chaos: the differential scheduler oracle (None = not judging).
    oracle: Option<Oracle>,
    /// Policy runtime: watchdog state (None = native scheduler).
    policy: Option<PolicyRun>,
    /// Learned scheduler: watchdog state (None = not a learned run).
    learned: Option<LearnedRun>,
    /// Decision counter for `--decision-trace` recency features. Only
    /// advanced while tracing, so untraced runs carry no extra state.
    trace_decisions: u64,
    /// Per-task decision index of the last traced win, for the recency
    /// feature column.
    trace_last_picked: std::collections::HashMap<Tid, u64>,
    now: Cycles,
    live_users: usize,
    last_exit: Cycles,
    to_free: Vec<Tid>,
    ran: bool,
    /// Reusable held-set/acquisition-log storage for the per-call lock
    /// domain bookkeeping (allocation-free dispatch).
    lock_scratch: LockScratch,
    /// Reusable per-wakeup CPU snapshot buffer for `reschedule_idle()`.
    view_scratch: Vec<CpuView>,
    /// Migration distance breakdown under a declared multi-level tree:
    /// `[same_core, same_node, cross_node]`. Stays all-zero on flat
    /// trees (no levels to grade by), and is only serialized when the
    /// tree is multi-level.
    topo_migrations: [u64; 3],
    /// Wall-clock instant `run()` started, for the informational
    /// events-per-second throughput readout (never serialized).
    wall_start: Option<std::time::Instant>,
    /// Wall-clock seconds the completed run took (never serialized).
    wall_secs: f64,
}

impl Machine {
    /// Builds a machine with the given configuration and scheduler.
    pub fn new(cfg: MachineConfig, mut sched: Box<dyn Scheduler>) -> Machine {
        let mut tasks = TaskTable::new();
        let mut runs: Vec<Option<TaskRun>> = Vec::new();
        let mut rng = SimRng::new(cfg.seed);
        let cpus = (0..cfg.nr_cpus())
            .map(|id| {
                let idle = tasks.spawn(&TaskSpec::named("idle").priority(1));
                let mut t = tasks.task_mut(idle);
                t.counter = 0;
                t.processor = id;
                t.has_cpu = true;
                grow_to(&mut runs, idle.index());
                runs[idle.index()] = Some(TaskRun {
                    behavior: None,
                    pending: None,
                    last_read: None,
                    last_spawned: None,
                    migrate_penalty: 0,
                    polls_left: 0,
                    woken_at: None,
                    rng: rng.fork(),
                });
                CpuState::new(id, idle)
            })
            .collect();
        let nr_cpus = cfg.nr_cpus();
        let plan = cfg.lock_plan.unwrap_or_else(|| sched.lock_plan(nr_cpus));
        let locks = LockModel::new(
            plan.nr_domains(nr_cpus),
            cfg.costs.get(CostKind::LockTransfer),
        );
        let bus = EventBus::new(cfg.trace_capacity);
        let injector = cfg
            .faults
            .clone()
            .map(|plan| FaultInjector::new(plan, cfg.fault_seed));
        let oracle = cfg
            .oracle
            .then(|| Oracle::new(OracleMode::for_scheduler(sched.name())));
        if let Some(backend) = cfg.policy_backend {
            sched.set_policy_backend(backend);
        }
        let policy = sched.loaded_info().map(|info| PolicyRun {
            name: info.name,
            static_insns: info.static_insns,
            budget: info.budget,
            backend: info.backend,
            starve_streak: 0,
            ejected: None,
            insns_final: 0,
        });
        let learned = sched.learned_info().map(|info| LearnedRun {
            name: info.name,
            arch: info.arch,
            miss_streak: 0,
            ejected: None,
            final_predictions: 0,
            final_hits: 0,
        });
        Machine {
            cfg,
            tasks,
            sched,
            stats: SchedStats::new(nr_cpus),
            pipes: PipeTable::new(),
            runs,
            cpus,
            events: EventQueue::new(),
            pending_wakeish: 0,
            plan,
            locks,
            rng,
            ledger: Ledger::new(),
            dists: Distributions::new(),
            bus,
            profiler: CycleProfiler::new(nr_cpus),
            kernel_cycles: 0,
            injector,
            oracle,
            policy,
            learned,
            trace_decisions: 0,
            trace_last_picked: std::collections::HashMap::new(),
            now: Cycles::ZERO,
            live_users: 0,
            last_exit: Cycles::ZERO,
            to_free: Vec::new(),
            ran: false,
            lock_scratch: LockScratch::default(),
            view_scratch: Vec::new(),
            topo_migrations: [0; 3],
            wall_start: None,
            wall_secs: 0.0,
        }
    }

    /// Creates a pipe with the given message capacity.
    pub fn create_pipe(&mut self, capacity: usize) -> PipeId {
        self.pipes.create(capacity)
    }

    /// Spawns a task before (or during) the run and makes it runnable.
    pub fn spawn(&mut self, spec: &TaskSpec, behavior: Box<dyn Behavior>) -> Tid {
        let tid = self.spawn_inner(spec, behavior);
        let t = self.now;
        self.make_runnable(tid, 0, t);
        tid
    }

    fn spawn_inner(&mut self, spec: &TaskSpec, behavior: Box<dyn Behavior>) -> Tid {
        let tid = self.tasks.spawn(spec);
        // Spread initial affinity round-robin, as fork balancing would.
        let cpu = (self.tasks.total_spawned() as usize) % self.cfg.nr_cpus();
        self.tasks.task_mut(tid).processor = cpu;
        grow_to(&mut self.runs, tid.index());
        let rng = self.rng.fork();
        self.runs[tid.index()] = Some(TaskRun {
            behavior: Some(behavior),
            pending: None,
            last_read: None,
            last_spawned: None,
            migrate_penalty: 0,
            polls_left: self.cfg.io_poll_yields,
            woken_at: None,
            rng,
        });
        self.live_users += 1;
        tid
    }

    /// Read access to the scheduler statistics (live during a run).
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// Read access to the task table.
    pub fn tasks(&self) -> &TaskTable {
        &self.tasks
    }

    /// Read access to the workload ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The scheduler's name.
    pub fn scheduler_name(&self) -> &'static str {
        self.sched.name()
    }

    /// Read access to the scheduling trace — the event bus's bounded
    /// ring (empty unless [`MachineConfig::trace_capacity`] was set).
    pub fn trace(&self) -> &Trace {
        self.bus.ring()
    }

    /// Attaches an external observability sink (JSON-lines writer,
    /// callback, ...). Records flow to sinks in attachment order;
    /// attaching sinks never changes the schedule.
    pub fn add_sink(&mut self, sink: Box<dyn Sink>) {
        self.bus.add_sink(sink);
    }

    /// Read access to the cycle-attribution profiler (live during a run).
    pub fn profiler(&self) -> &CycleProfiler {
        &self.profiler
    }

    /// Total kernel cycles charged so far. Always equals
    /// `self.profiler().total()` — the conservation invariant the
    /// profiler tests pin.
    pub fn kernel_cycles(&self) -> u64 {
        self.kernel_cycles
    }

    /// Attributes kernel cycles of one cost kind and counts them toward
    /// the conservation total.
    #[inline]
    fn charge_kernel_kind(&mut self, cpu: CpuId, phase: Phase, kind: CostKind, cycles: u64) {
        self.profiler.attribute_kind(cpu, phase, kind, cycles);
        self.kernel_cycles += cycles;
    }

    /// Attributes kind-less kernel cycles (lock spin).
    #[inline]
    fn charge_kernel_raw(&mut self, cpu: CpuId, phase: Phase, cycles: u64) {
        self.profiler.attribute_raw(cpu, phase, cycles);
        self.kernel_cycles += cycles;
    }

    /// Attributes a whole meter's accumulation, preserving its per-kind
    /// breakdown. Call before `meter.take()`.
    #[inline]
    fn charge_kernel_meter(&mut self, cpu: CpuId, phase: Phase, meter: &CycleMeter) {
        self.profiler.attribute_meter(cpu, phase, meter);
        self.kernel_cycles += meter.cycles();
    }

    /// Folds one mid-call lock-domain acquisition (logged by
    /// [`LockDomains`]) into the stats, the profiler's conservation
    /// total, and the trace — attributed to `cpu`, whose call paid for
    /// the spin.
    fn account_domain_acquire(&mut self, cpu: CpuId, a: DomainAcquire) {
        let c = self.stats.cpu_mut(cpu);
        c.lock_acquisitions += 1;
        c.lock_spin_cycles += a.spin;
        if a.spin > 0 {
            self.charge_kernel_raw(cpu, Phase::LockSpin, a.spin);
            self.bus.emit_at(
                a.at,
                ObsEvent::LockContended {
                    cpu,
                    domain: a.domain,
                    spin: a.spin,
                },
            );
        }
    }

    /// Acquires the home lock domain for a call on `queue_cpu`'s queue,
    /// made by `by_cpu` at `t`, charging spin to `by_cpu`. Returns the
    /// owned instant and the home domain. SMP builds only.
    fn acquire_home_domain(
        &mut self,
        queue_cpu: CpuId,
        by_cpu: CpuId,
        t: Cycles,
    ) -> (Cycles, usize) {
        let home = self.plan.domain_for_cpu(queue_cpu, self.cfg.nr_cpus());
        let a = self.locks.acquire(home, t, by_cpu);
        let spin = a.saturating_sub(t).get();
        let c = self.stats.cpu_mut(by_cpu);
        c.lock_acquisitions += 1;
        c.lock_spin_cycles += spin;
        if spin > 0 {
            self.charge_kernel_raw(by_cpu, Phase::LockSpin, spin);
            self.bus.emit_at(
                a,
                ObsEvent::LockContended {
                    cpu: by_cpu,
                    domain: home,
                    spin,
                },
            );
        }
        (a, home)
    }

    fn run_ref(&self, tid: Tid) -> &TaskRun {
        self.runs[tid.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("no run state for {tid:?}"))
    }

    fn run_mut(&mut self, tid: Tid) -> &mut TaskRun {
        self.runs[tid.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("no run state for {tid:?}"))
    }

    fn push_event(&mut self, at: Cycles, ev: Event) {
        if !ev.is_tick() {
            self.pending_wakeish += 1;
        }
        self.events.push(at, ev);
    }

    /// Runs the machine until every spawned task has exited.
    ///
    /// # Errors
    ///
    /// [`RunError::Watchdog`] if virtual time exceeds the configured
    /// limit; [`RunError::Deadlock`] if live tasks can never run again.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn run(&mut self) -> Result<RunReport, RunError> {
        assert!(!self.ran, "Machine::run() may only be called once");
        self.ran = true;
        self.wall_start = Some(std::time::Instant::now());
        let result = self.run_loop();
        self.wall_secs = self
            .wall_start
            .map(|s| s.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        // Flush external sinks (trace files) even when the run fails —
        // a truncated-but-flushed trace is exactly what you want when
        // debugging a watchdog or deadlock.
        self.bus.finish();
        result.map(|()| self.report())
    }

    /// Pushes the boot events every run starts from: one armed tick and
    /// one reschedule IPI per CPU.
    fn boot_events(&mut self) {
        if let Some(p) = &self.policy {
            self.bus.emit_at(
                Cycles::ZERO,
                ObsEvent::PolicyLoaded {
                    policy: p.name,
                    insns: p.static_insns,
                    budget: p.budget,
                },
            );
        }
        if let Some(l) = &self.learned {
            self.bus.emit_at(
                Cycles::ZERO,
                ObsEvent::LearnedLoaded {
                    model: l.name,
                    arch: l.arch,
                },
            );
        }
        for cpu in 0..self.cfg.nr_cpus() {
            self.push_event(self.cfg.tick_cycles.into(), Event::Tick { cpu });
            self.push_event(Cycles::ZERO, Event::Ipi { cpu });
            self.cpus[cpu].need_resched = true;
        }
    }

    /// Pops nothing — dispatches one already-popped event: advances the
    /// clock, checks the watchdog, and runs the handler. Shared verbatim
    /// by [`Machine::run`] and [`Machine::step_until`] so a single-node
    /// federated run is byte-identical to a plain run.
    fn dispatch_event(&mut self, t: Cycles, ev: Event) -> Result<(), RunError> {
        if !ev.is_tick() {
            self.pending_wakeish -= 1;
        }
        debug_assert!(t >= self.now, "time ran backwards");
        self.now = t;
        if t.get() > self.cfg.max_cycles {
            return Err(RunError::Watchdog { at: t });
        }
        if self.cfg.engine_slowdown > 1 {
            // Wall-clock-only busy work per dispatched event, sized so a
            // factor-F slowdown dominates the real dispatch cost. Burns
            // host time without touching virtual time, the meter, or any
            // simulation state — reports stay byte-identical; only the
            // lab's `wall_ratio` moves (which is the point: the CI engine
            // job injects a 3× here to prove the wall-clock gate trips).
            let mut x = t.get() | 1;
            for i in 0..(self.cfg.engine_slowdown - 1) * 2000 {
                x = std::hint::black_box(x.wrapping_mul(6364136223846793005).wrapping_add(i));
            }
            std::hint::black_box(x);
        }
        match ev {
            Event::Tick { cpu } => self.on_tick(cpu),
            Event::Resume { cpu, gen } => self.on_resume(cpu, gen),
            Event::Ipi { cpu } => self.on_ipi(cpu),
            Event::Timer { tid } => {
                self.wake_up(tid, 0, self.now);
            }
            Event::Net { pipe, msg } => self.on_net_arrival(pipe, msg),
            Event::NetClose { pipe } => self.on_net_close(pipe),
        }
        Ok(())
    }

    fn run_loop(&mut self) -> Result<(), RunError> {
        self.boot_events();
        while self.live_users > 0 {
            let Some((t, ev)) = self.events.pop() else {
                return Err(RunError::Deadlock {
                    at: self.now,
                    live: self.live_users,
                });
            };
            self.dispatch_event(t, ev)?;
            if self.live_users > 0 && self.is_wedged() {
                return Err(RunError::Deadlock {
                    at: self.now,
                    live: self.live_users,
                });
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Federated stepping (the cluster tier drives nodes through these)
    // ------------------------------------------------------------------

    /// Boots the machine for externally driven stepping: emits the same
    /// initial events [`Machine::run`] would, without entering the loop.
    /// Pair with [`Machine::step_until`] and [`Machine::finish`].
    ///
    /// # Panics
    ///
    /// Panics if the machine already ran (or started).
    pub fn start(&mut self) {
        assert!(!self.ran, "Machine::start() after a run");
        self.ran = true;
        self.boot_events();
    }

    /// Runs the event loop up to (and including) `barrier`, then pauses.
    ///
    /// Unlike [`Machine::run`], a locally wedged node does *not* error:
    /// ticks keep firing and virtual time keeps advancing to the
    /// barrier, because an inter-node message may arrive next epoch.
    /// Local wedging is reported through [`StepStatus::Paused`] so the
    /// federation can detect a *cluster-wide* deadlock (every node idle,
    /// nothing in flight).
    ///
    /// # Errors
    ///
    /// [`RunError::Watchdog`] when virtual time exceeds the configured
    /// limit — the only per-node failure in step mode.
    pub fn step_until(&mut self, barrier: Cycles) -> Result<StepStatus, RunError> {
        assert!(self.ran, "step_until() before start()");
        while self.live_users > 0 {
            match self.events.peek_time() {
                Some(t) if t <= barrier => {
                    let (t, ev) = self.events.pop().expect("peeked event exists");
                    self.dispatch_event(t, ev)?;
                }
                // The tick re-arms itself unconditionally, so the queue
                // cannot run dry while tasks live; the next event simply
                // lies beyond the barrier.
                _ => {
                    return Ok(StepStatus::Paused {
                        idle: self.is_wedged(),
                    })
                }
            }
        }
        Ok(StepStatus::Done)
    }

    /// Finishes a stepped run: flushes sinks and renders the report.
    /// The step-mode counterpart of the tail of [`Machine::run`].
    pub fn finish(&mut self) -> RunReport {
        assert!(self.ran, "finish() before start()");
        self.bus.finish();
        self.report()
    }

    /// Discrete events dispatched so far (lifetime pop count of the
    /// event queue).
    pub fn events_dispatched(&self) -> u64 {
        self.events.total_popped()
    }

    /// Wall-clock seconds the completed [`Machine::run`] took. `0.0`
    /// before the run finishes. Informational only — wall time is never
    /// serialized into reports, which must stay byte-identical across
    /// machines.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_secs
    }

    /// Current virtual time (the clock of the last dispatched event).
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of spawned tasks that have not exited yet.
    pub fn live_users(&self) -> usize {
        self.live_users
    }

    /// This machine's cluster node identity (0 standalone).
    pub fn node_id(&self) -> u32 {
        self.cfg.node_id
    }

    /// Schedules an inter-node message to arrive in `pipe` at `at` —
    /// the NIC interrupt for a segment the cluster fabric routed here.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in this node's past (the federation must only
    /// schedule arrivals at or after the exchange barrier).
    pub fn inject_external_msg(&mut self, pipe: PipeId, msg: Msg, at: Cycles) {
        assert!(
            at >= self.now,
            "arrival {at:?} before node time {:?}",
            self.now
        );
        self.push_event(at, Event::Net { pipe, msg });
    }

    /// Schedules the far end's close of an inter-node connection to
    /// reach `pipe` at `at` (FIN after the last in-flight segment).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in this node's past.
    pub fn inject_external_close(&mut self, pipe: PipeId, at: Cycles) {
        assert!(
            at >= self.now,
            "close {at:?} before node time {:?}",
            self.now
        );
        self.push_event(at, Event::NetClose { pipe });
    }

    /// Drains every queued message from `pipe` for transmission across
    /// the cluster fabric, waking parked writers at `at` (the NIC pulled
    /// their backlog). Returns the messages and whether the pipe is
    /// closed — a closed-and-drained egress means the connection's FIN
    /// should propagate.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in this node's past.
    pub fn drain_external(&mut self, pipe: PipeId, at: Cycles) -> (Vec<Msg>, bool) {
        assert!(
            at >= self.now,
            "drain {at:?} before node time {:?}",
            self.now
        );
        let mut out = Vec::new();
        while let Ok((msg, waker)) = self.pipes.pipe_mut(pipe).try_read() {
            out.push(msg);
            if let Some(w) = waker {
                self.wake_up(w, 0, at);
            }
        }
        (out, self.pipes.pipe(pipe).is_closed())
    }

    /// Records a node-level fault firing (partition, slow-link,
    /// node-pause) as an observability event at the node's current time.
    pub fn note_fault(&mut self, fault: &'static str) {
        let now = self.now;
        self.bus
            .emit_at(now, ObsEvent::FaultInjected { cpu: 0, fault });
    }

    /// Freezes the whole node for `delta` cycles: every pending event
    /// and every CPU's busy horizon moves `delta` later, like an SMI or
    /// a virtualisation pause. Time spent frozen accrues to whatever
    /// each CPU was doing (`running_since`/`idle_since` deliberately do
    /// not move), exactly as a real stall would be accounted.
    pub fn pause_for(&mut self, delta: u64) {
        self.events.shift_pending(delta);
        for cpu in &mut self.cpus {
            cpu.busy_until += delta;
        }
    }

    /// Delivers an inter-node message into its ingress pipe. Arrival on
    /// a closed pipe drops the segment, as a dead socket would.
    fn on_net_arrival(&mut self, pipe: PipeId, msg: Msg) {
        let now = self.now;
        if let Ok(Some(reader)) = self.pipes.pipe_mut(pipe).deliver(msg) {
            self.wake_up(reader, 0, now);
        }
    }

    /// Applies a propagated close to an ingress pipe and wakes every
    /// task parked on it so it observes the shutdown.
    fn on_net_close(&mut self, pipe: PipeId) {
        let now = self.now;
        for tid in self.pipes.pipe_mut(pipe).close() {
            self.wake_up(tid, 0, now);
        }
    }

    /// True when no task can ever run again: all CPUs idle, nothing on
    /// the run queue, and no pending wake-ish events.
    fn is_wedged(&self) -> bool {
        self.pending_wakeish == 0
            && self.sched.nr_running() == 0
            && self.cpus.iter().all(|c| c.is_idle())
    }

    fn report(&self) -> RunReport {
        debug_assert_eq!(
            self.kernel_cycles,
            self.profiler.total(),
            "cycle attribution must be conservative"
        );
        let total = self.stats.total();
        RunReport {
            // An ejected policy or learned run still reports under its
            // original name: the run *was* that scheduler plus its
            // ejection.
            scheduler: self
                .policy
                .as_ref()
                .map(|p| p.name)
                .or_else(|| self.learned.as_ref().map(|l| l.name))
                .unwrap_or_else(|| self.sched.name()),
            config: self.cfg.label(),
            seed: self.cfg.seed,
            elapsed: self.last_exit,
            cpu_hz: self.cfg.cpu_hz,
            stats: self.stats.clone(),
            ledger: self.ledger.clone(),
            lock_spin: self.locks.total_spin(),
            lock_acquisitions: self.locks.total_acquisitions(),
            lock_plan: self.plan.label(),
            lock_domains: self.locks.domain_stats(),
            tasks_spawned: self.tasks.total_spawned() - self.cfg.nr_cpus() as u64,
            messages_read: self.pipes.total_read(),
            dists: self.dists.clone(),
            trace_dropped: self.bus.dropped(),
            profile: self.profiler.report(total.work_cycles, total.idle_cycles),
            conservation_ok: self.kernel_cycles == self.profiler.total(),
            chaos: if self.injector.is_some() || self.oracle.is_some() {
                Some(ChaosSummary {
                    fault_plan: self
                        .injector
                        .as_ref()
                        .map(|inj| inj.plan().label().to_string()),
                    fault_seed: self.cfg.fault_seed,
                    counts: self
                        .injector
                        .as_ref()
                        .map(|inj| *inj.counts())
                        .unwrap_or_default(),
                    oracle: self.oracle.as_ref().map(|o| o.report().clone()),
                })
            } else {
                None
            },
            policy: self.policy.as_ref().map(|p| PolicySummary {
                name: p.name,
                static_insns: p.static_insns,
                budget: p.budget,
                backend: p.backend.label(),
                insns_executed: if p.ejected.is_some() {
                    p.insns_final
                } else {
                    self.sched.policy_insns_executed()
                },
                ejected: p.ejected.is_some(),
                ejected_at: p.ejected.map(|(at, _)| at),
                eject_reason: p.ejected.map(|(_, r)| r),
            }),
            learned: self.learned.as_ref().map(|l| {
                let (predictions, hits) = if l.ejected.is_some() {
                    (l.final_predictions, l.final_hits)
                } else {
                    self.sched.prediction_stats()
                };
                LearnedSummary {
                    name: l.name,
                    arch: l.arch,
                    predictions,
                    hits,
                    ejected: l.ejected.is_some(),
                    ejected_at: l.ejected.map(|(at, _)| at),
                    eject_reason: l.ejected.map(|(_, r)| r),
                }
            }),
            engine: if self.cfg.engine_metrics {
                let events = self.events.total_popped();
                let secs = self.last_exit.as_secs(self.cfg.cpu_hz);
                Some(EngineSummary {
                    events_dispatched: events,
                    sim_events_per_sec: if secs == 0.0 {
                        0.0
                    } else {
                        events as f64 / secs
                    },
                })
            } else {
                None
            },
            topology: {
                let topo = &self.cfg.sched.topology;
                if topo.is_flat() {
                    None
                } else {
                    Some(TopologySummary {
                        shape: topo.to_string(),
                        nr_nodes: topo.nr_nodes() as u64,
                        threads_per_core: topo.threads_per_core() as u64,
                        migrations_same_core: self.topo_migrations[0],
                        migrations_same_node: self.topo_migrations[1],
                        migrations_cross_node: self.topo_migrations[2],
                    })
                }
            },
        }
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_tick(&mut self, cpu: CpuId) {
        let now = self.now;
        self.stats.cpu_mut(cpu).ticks += 1;
        // Re-arm the periodic tick, optionally jittered by the fault plan
        // (a sloppy timer: the next interrupt lands early or late).
        let period = match self.injector.as_mut() {
            Some(inj) => {
                let (period, jittered) = inj.tick_period(self.cfg.tick_cycles);
                if jittered {
                    self.bus.emit_at(
                        now,
                        ObsEvent::FaultInjected {
                            cpu,
                            fault: "tick_jitter",
                        },
                    );
                }
                period
            }
            None => self.cfg.tick_cycles,
        };
        self.events.push(now + period, Event::Tick { cpu });
        // Spurious wakeup: aim a wake_up_process() at a deterministically
        // chosen live task. Waking a non-blocked task must be a no-op;
        // waking a blocked one early is legal but hostile.
        if self.injector.is_some() {
            let idles: Vec<Tid> = self.cpus.iter().map(|c| c.idle).collect();
            let cands: Vec<Tid> = self
                .tasks
                .iter()
                .map(|t| t.tid)
                .filter(|tid| !idles.contains(tid))
                .collect();
            if let Some(i) = self
                .injector
                .as_mut()
                .and_then(|inj| inj.spurious_wakeup(cands.len()))
            {
                self.bus.emit_at(
                    now,
                    ObsEvent::FaultInjected {
                        cpu,
                        fault: "spurious_wakeup",
                    },
                );
                self.wake_up(cands[i], cpu, now);
            }
        }
        let cur = self.cpus[cpu].current;
        if !self.cpus[cpu].is_idle() {
            // Quantum accounting: the timer interrupt decrements the
            // running task's counter (update_process_times).
            let expired = {
                let mut task = self.tasks.task_mut(cur);
                if task.counter > 0 {
                    task.counter -= 1;
                }
                // An expired quantum forces a reschedule for timesharing
                // tasks and SCHED_RR; SCHED_FIFO runs until it blocks.
                task.counter == 0
                    && (!task.policy.class.is_realtime()
                        || task.policy.class == elsc_ktask::SchedClass::Rr)
            };
            if expired {
                self.cpus[cpu].need_resched = true;
            }
            // Policy tick hook: runs after the machine's own quantum
            // bookkeeping. Gated on an active interpreted policy, so
            // native runs never see the extra call and stay
            // byte-identical to the pre-policy machine.
            if self.policy.as_ref().is_some_and(|p| p.ejected.is_none()) {
                let mut meter = CycleMeter::new();
                self.bus.set_now(now);
                {
                    let mut ctx = SchedCtx {
                        tasks: &mut self.tasks,
                        stats: &mut self.stats,
                        meter: &mut meter,
                        costs: &self.cfg.costs,
                        cfg: &self.cfg.sched,
                        probe: Some(&mut self.bus),
                        locks: None,
                    };
                    self.sched.on_tick(&mut ctx, cpu, cur);
                }
                self.charge_kernel_meter(cpu, Phase::Schedule, &meter);
                // The hook may have zeroed the running task's counter;
                // honour the expired quantum exactly as above.
                let task = self.tasks.task(cur);
                if task.counter == 0
                    && (!task.policy.class.is_realtime()
                        || task.policy.class == elsc_ktask::SchedClass::Rr)
                {
                    self.cpus[cpu].need_resched = true;
                }
            }
        } else if self.has_waiting_work() {
            // Idle loop poll: runnable work exists somewhere.
            self.cpus[cpu].need_resched = true;
        }
        if self.cpus[cpu].need_resched {
            self.preempt(cpu);
            self.drive(cpu, Drive::Schedule(now));
        }
    }

    /// Whether the run queue holds tasks beyond those currently running.
    fn has_waiting_work(&self) -> bool {
        let running = self.cpus.iter().filter(|c| !c.is_idle()).count();
        self.sched.nr_running() > running
    }

    /// Saves the preempted task's remaining compute so it resumes where
    /// it left off.
    fn preempt(&mut self, cpu: CpuId) {
        let cur = self.cpus[cpu].current;
        if cur == self.cpus[cpu].idle {
            return;
        }
        let remaining = self.cpus[cpu].busy_until.saturating_sub(self.now).get();
        if let Some(p) = self.run_mut(cur).pending.as_mut() {
            if p.remaining > 0 {
                p.remaining = remaining.max(1);
            }
        }
    }

    fn on_resume(&mut self, cpu: CpuId, gen: u64) {
        if gen != self.cpus[cpu].gen {
            return; // cancelled by a preemption or reschedule
        }
        let cur = self.cpus[cpu].current;
        if cur == self.cpus[cpu].idle {
            return;
        }
        if let Some(p) = self.run_mut(cur).pending.as_mut() {
            p.remaining = 0;
        }
        self.drive(cpu, Drive::RunCurrent(self.now));
    }

    fn on_ipi(&mut self, cpu: CpuId) {
        if !self.cpus[cpu].need_resched {
            return;
        }
        self.preempt(cpu);
        self.drive(cpu, Drive::Schedule(self.now));
    }

    // ------------------------------------------------------------------
    // The trampoline: schedule <-> run without recursion
    // ------------------------------------------------------------------

    fn drive(&mut self, cpu: CpuId, start: Drive) {
        let mut step = Some(start);
        while let Some(s) = step.take() {
            step = match s {
                Drive::Schedule(t) => {
                    let next = self.do_schedule(cpu, t);
                    // Free any task that exited under this schedule.
                    while let Some(tid) = self.to_free.pop() {
                        self.runs[tid.index()] = None;
                        self.tasks.free(tid);
                    }
                    next.map(Drive::RunCurrent)
                }
                Drive::RunCurrent(t) => self.run_segments(cpu, t).map(Drive::Schedule),
            };
        }
    }

    /// One `schedule()` call: lock, decide, switch. Returns the time at
    /// which a dispatched user task starts running, or `None` if the CPU
    /// went idle.
    fn do_schedule(&mut self, cpu: CpuId, t: Cycles) -> Option<Cycles> {
        let prev = self.cpus[cpu].current;
        let idle = self.cpus[cpu].idle;
        // CPU time accounting for the outgoing occupancy.
        if prev != idle {
            if let Some(s) = self.cpus[cpu].running_since.take() {
                self.stats.cpu_mut(cpu).work_cycles += t.saturating_sub(s).get();
            }
        } else {
            let s = self.cpus[cpu].idle_since;
            self.stats.cpu_mut(cpu).idle_cycles += t.saturating_sub(s).get();
        }

        // The run-queue lock plan covers the whole decision (SMP builds):
        // the home domain — this CPU's queue — is taken up front; any
        // further domain a sharded scheduler needs mid-call (a steal) is
        // taken through the ctx's `DomainLocker` and logged.
        let depth = self.sched.nr_running() as u64;
        self.dists.record("runqueue_len", depth);
        self.bus
            .emit_at(t, ObsEvent::QueueDepthSample { cpu, depth });
        // Decision trace: snapshot every eligible candidate's features
        // *before* the scheduler runs (it mutates counters and yield
        // bits). The burst plus the closing `sched_decision` below is one
        // supervised training row for `elsc-learn`. Pure observation.
        if self.cfg.decision_trace {
            self.trace_decisions += 1;
            let idles: Vec<Tid> = self.cpus.iter().map(|c| c.idle).collect();
            let prev_mm = self.tasks.task(prev).mm;
            let topo = self.cfg.sched.topology;
            for task in self.tasks.iter() {
                let eligible = task.state.is_runnable()
                    && !idles.contains(&task.tid)
                    && (task.tid == prev || !task.has_cpu);
                if !eligible {
                    continue;
                }
                let recency = self
                    .trace_last_picked
                    .get(&task.tid)
                    .map_or(255, |&won| (self.trace_decisions - won).min(255));
                self.bus.emit_at(
                    t,
                    ObsEvent::SchedCandidate {
                        cpu,
                        tid: task.tid,
                        counter: task.counter.max(0) as u64,
                        priority: task.priority.max(0) as u64,
                        rt: task.policy.class.is_realtime() as u64,
                        mm_match: (task.mm == prev_mm) as u64,
                        affinity: elsc_sched_api::topo_affinity_bonus(&topo, cpu, task.processor)
                            .max(0) as u64,
                        recency,
                    },
                );
            }
        }
        // Chaos oracle: freeze the runnable set and prev's scheduling
        // state *before* the scheduler under test runs (it may mutate
        // counters, clear SCHED_YIELD, or recalculate). Idle tasks are
        // excluded; tasks executing elsewhere carry `has_cpu` so the
        // reference scan can apply `can_schedule()` itself.
        let probe = if self.oracle.is_some() {
            let idles: Vec<Tid> = self.cpus.iter().map(|c| c.idle).collect();
            let snaps: Vec<TaskSnap> = self
                .tasks
                .iter()
                .filter(|task| task.state.is_runnable() && !idles.contains(&task.tid))
                .map(TaskSnap::of)
                .collect();
            let pt = self.tasks.task(prev);
            Some((
                snaps,
                pt.mm,
                pt.policy.yielded,
                pt.state.is_runnable(),
                self.stats.cpu(cpu).yield_reruns,
            ))
        } else {
            None
        };
        let (t_acq, home) = if self.cfg.sched.smp {
            self.acquire_home_domain(cpu, cpu, t)
        } else {
            (t, 0)
        };
        let mut meter = CycleMeter::new();
        self.bus.set_now(t_acq);
        let mut domains = if self.cfg.sched.smp {
            Some(LockDomains::new(
                &mut self.locks,
                self.plan,
                self.cfg.sched.nr_cpus,
                cpu,
                t_acq,
                home,
                &mut self.lock_scratch,
            ))
        } else {
            None
        };
        let next = {
            let mut ctx = SchedCtx {
                tasks: &mut self.tasks,
                stats: &mut self.stats,
                meter: &mut meter,
                costs: &self.cfg.costs,
                cfg: &self.cfg.sched,
                probe: Some(&mut self.bus),
                locks: domains.as_mut().map(|d| d as &mut dyn DomainLocker),
            };
            self.sched.schedule(&mut ctx, cpu, prev, idle)
        };
        // Chaos: a delayed lock holder stretches the held interval beyond
        // the work the call actually did, so every other CPU contending
        // for the domain spins correspondingly longer (SMP builds only —
        // there is no held domain to delay on UP).
        let hold_extra = match self.injector.as_mut() {
            Some(inj) if domains.is_some() => inj.lock_hold(meter.cycles()).unwrap_or(0),
            _ => 0,
        };
        // Release every held domain before any further `&mut self` work:
        // the domain set borrows the lock bank. Mid-call spins stretch
        // the call, so they are part of the held interval.
        let (extra_spin, n_taken) = match domains {
            Some(d) => {
                let extra = d.extra_spin();
                let taken = d.release_all(t_acq + meter.cycles() + extra + hold_extra);
                (extra, taken.len())
            }
            None => (0, 0),
        };
        self.charge_kernel_meter(cpu, Phase::Schedule, &meter);
        if hold_extra > 0 {
            // The extra held time is real CPU time on the holder; charge
            // it as lock-domain cycles so the conservation invariant
            // (`kernel_cycles == profiler.total()`) keeps holding.
            self.bus.emit_at(
                t_acq,
                ObsEvent::FaultInjected {
                    cpu,
                    fault: "lock_hold",
                },
            );
            self.charge_kernel_raw(cpu, Phase::LockSpin, hold_extra);
        }
        let cycles = meter.take();
        let t_done = t_acq + cycles + extra_spin + hold_extra;
        for k in 0..n_taken {
            let a = self.lock_scratch.taken()[k];
            self.account_domain_acquire(cpu, a);
        }
        self.stats.cpu_mut(cpu).sched_cycles += cycles;
        // Close the decision-trace burst with the label: what the
        // scheduler actually picked, and at what queue depth.
        if self.cfg.decision_trace {
            self.bus.emit_at(
                t_done,
                ObsEvent::SchedDecision {
                    cpu,
                    prev,
                    chosen: next,
                    depth,
                },
            );
            if next != idle {
                self.trace_last_picked.insert(next, self.trace_decisions);
            }
        }
        // Chaos oracle: replay the reference O(n) scan over the frozen
        // snapshot, classify this decision, and check the run-queue
        // invariants the scheduler must have preserved. Pure observation:
        // no simulated cycles are charged and no task state is touched.
        if let Some((snaps, prev_mm, prev_yielded, prev_runnable, reruns_before)) = probe {
            let d = Decision {
                cpu,
                prev,
                idle,
                prev_mm,
                prev_yielded,
                prev_runnable,
                chosen: next,
                yield_rerun: self.stats.cpu(cpu).yield_reruns > reruns_before,
                search_limit: self.cfg.sched.search_limit(),
                smp: self.cfg.sched.smp,
                topology: self.cfg.sched.topology,
                snaps: &snaps,
            };
            let v = self
                .oracle
                .as_mut()
                .expect("probe implies oracle")
                .judge_full(&d);
            if v.class != DivergenceClass::Match {
                self.bus.emit_at(
                    t_done,
                    ObsEvent::OracleDivergence {
                        cpu,
                        chosen: next,
                        expected: v.expected,
                        class: v.class.label(),
                    },
                );
            }
            let violations = check_task_invariants(&self.tasks);
            if !violations.is_empty() {
                self.oracle
                    .as_mut()
                    .expect("probe implies oracle")
                    .record_violations(&violations);
            }
        }
        // Policy watchdog. A policy that violated its contract this
        // decision (budget blowout, illegal pick, corrupted state) or
        // picked idle over a runnable, unclaimed task for
        // `policy_starve_k` consecutive decisions is deterministically
        // ejected: the vanilla baseline scheduler takes over from the
        // *next* decision. The pick for this decision stands — the
        // policy host already substituted a legal one.
        if self.policy.as_ref().is_some_and(|p| p.ejected.is_none()) {
            if let Some(v) = self.sched.take_violation() {
                self.eject_policy(cpu, t_done, v.label());
            } else {
                let starving = next == idle
                    && self.tasks.iter().any(|task| {
                        task.on_runqueue() && task.state.is_runnable() && !task.has_cpu
                    });
                let p = self.policy.as_mut().expect("checked above");
                if !starving {
                    p.starve_streak = 0;
                } else {
                    p.starve_streak += 1;
                    if p.starve_streak >= self.cfg.policy_starve_k {
                        self.eject_policy(cpu, t_done, "starvation");
                    }
                }
            }
        }
        // Learned watchdog: the accuracy-collapse analogue of the policy
        // starvation check. A model whose verified prediction fails
        // `learn_eject_k` consecutive decisions is deterministically
        // ejected; the pick for this decision stands — the scheduler's
        // fallback scan already substituted the native choice.
        if self.learned.as_ref().is_some_and(|l| l.ejected.is_none()) {
            if let Some(hit) = self.sched.take_prediction() {
                let l = self.learned.as_mut().expect("checked above");
                if hit {
                    l.miss_streak = 0;
                } else {
                    l.miss_streak += 1;
                    if l.miss_streak >= self.cfg.learn_eject_k {
                        self.eject_learned(cpu, t_done, "accuracy_collapse");
                    }
                }
            }
        }
        self.cpus[cpu].need_resched = false;
        self.cpus[cpu].gen += 1; // cancel any outstanding Resume

        let mut t2 = t_done;
        // The topological distance this pick makes the task cross (its
        // last CPU → here) must be known *before* the mm-switch charge
        // below: adopting an address space whose page tables live on the
        // far node costs more than a local flush. On flat trees every
        // pair of CPUs is same-node, so nothing here changes.
        let topo = self.cfg.sched.topology;
        let from_cpu = if next != idle {
            self.tasks.task(next).processor
        } else {
            cpu
        };
        let cross_node = from_cpu != cpu && !topo.same_node(from_cpu, cpu);
        if next != prev {
            self.bus.emit_at(
                t_done,
                ObsEvent::Switch {
                    cpu,
                    from: prev,
                    to: next,
                },
            );
            self.stats.cpu_mut(cpu).ctx_switches += 1;
            let ctx_cost = self.cfg.costs.get(CostKind::CtxSwitch);
            self.charge_kernel_kind(cpu, Phase::Switch, CostKind::CtxSwitch, ctx_cost);
            t2 += ctx_cost;
            // Lazy TLB: the idle task borrows the outgoing mm
            // (`active_mm`), so only a switch to a *different user mm*
            // flushes.
            let next_mm = self.tasks.task(next).mm;
            if next != idle && next_mm != self.cpus[cpu].active_mm {
                self.stats.cpu_mut(cpu).mm_switches += 1;
                let mut mm_cost = self.cfg.costs.get(CostKind::MmSwitch);
                if cross_node {
                    // The flush coincides with a cross-node migration:
                    // the incoming mm's page tables are remote, so the
                    // TLB refill traffic crosses the interconnect.
                    mm_cost *= 2;
                }
                self.charge_kernel_kind(cpu, Phase::Switch, CostKind::MmSwitch, mm_cost);
                t2 += mm_cost;
                self.cpus[cpu].active_mm = next_mm;
            }
        }
        self.cpus[cpu].current = next;
        if next == idle {
            self.cpus[cpu].idle_since = t2;
            return None;
        }
        // Migration detection: the scheduler left `processor` untouched.
        let migrated = {
            let mut nt = self.tasks.task_mut(next);
            let m = nt.processor != cpu;
            nt.processor = cpu;
            m
        };
        if migrated {
            self.bus.emit_at(
                t2,
                ObsEvent::Migrate {
                    tid: next,
                    to_cpu: cpu,
                },
            );
            self.stats.cpu_mut(cpu).picked_new_cpu += 1;
            // Cold-cache penalty, scaled by the distance crossed: SMT
            // siblings share L1/L2 (quarter cost), node-mates share the
            // LLC (half), and crossing a node boundary doubles the flat
            // cost. Flat trees scale 1/1 — the classic model verbatim.
            let (num, den) = topo.migration_scale(from_cpu, cpu);
            let base = self.cfg.costs.get(CostKind::MigrationPenalty);
            self.run_mut(next).migrate_penalty = base * num / den;
            if !topo.is_flat() {
                let bucket = if topo.same_core(from_cpu, cpu) {
                    0
                } else if topo.same_node(from_cpu, cpu) {
                    1
                } else {
                    2
                };
                self.topo_migrations[bucket] += 1;
            }
        }
        if let Some(w) = self.run_mut(next).woken_at.take() {
            self.dists
                .record("wake_latency", t2.saturating_sub(w).get());
        }
        self.cpus[cpu].running_since = Some(t2);
        Some(t2)
    }

    /// Ejects the active interpreted policy at `t`: freezes its
    /// instruction count, emits [`ObsEvent::PolicyEjected`], swaps in
    /// the vanilla baseline scheduler, and migrates every queued task
    /// across with front-to-back order preserved. All list-surgery
    /// cycles are charged to the ejecting CPU's `Schedule` phase, so the
    /// conservation invariant keeps holding. Deterministic: the decision
    /// stream up to this point is seed-determined, so same-seed runs
    /// eject at the same instant with byte-identical reports.
    fn eject_policy(&mut self, cpu: CpuId, t: Cycles, reason: &'static str) {
        let insns = self.sched.policy_insns_executed();
        let p = self.policy.as_mut().expect("eject without a policy run");
        p.insns_final = insns;
        p.ejected = Some((t, reason));
        let name = p.name;
        self.bus.emit_at(
            t,
            ObsEvent::PolicyEjected {
                cpu,
                policy: name,
                reason,
            },
        );
        let mut old = std::mem::replace(
            &mut self.sched,
            Box::new(elsc_sched_linux::LinuxScheduler::new()),
        );
        let mut meter = CycleMeter::new();
        self.bus.set_now(t);
        {
            let mut ctx = SchedCtx {
                tasks: &mut self.tasks,
                stats: &mut self.stats,
                meter: &mut meter,
                costs: &self.cfg.costs,
                cfg: &self.cfg.sched,
                probe: Some(&mut self.bus),
                locks: None,
            };
            let queued = old.drain(&mut ctx);
            // The baseline's `add_to_runqueue` inserts at the *front*,
            // so re-adding in reverse preserves the drained order.
            for &tid in queued.iter().rev() {
                self.sched.add_to_runqueue(&mut ctx, tid);
            }
        }
        self.charge_kernel_meter(cpu, Phase::Schedule, &meter);
    }

    /// Ejects the active learned scheduler at `t`: freezes its prediction
    /// counters, emits [`ObsEvent::LearnedEjected`], swaps in the vanilla
    /// baseline scheduler, and migrates every queued task across with
    /// front-to-back order preserved — the same surgery as
    /// [`Machine::eject_policy`], charged the same way, and equally
    /// deterministic.
    fn eject_learned(&mut self, cpu: CpuId, t: Cycles, reason: &'static str) {
        let (predictions, hits) = self.sched.prediction_stats();
        let l = self.learned.as_mut().expect("eject without a learned run");
        l.final_predictions = predictions;
        l.final_hits = hits;
        l.ejected = Some((t, reason));
        let name = l.name;
        self.bus.emit_at(
            t,
            ObsEvent::LearnedEjected {
                cpu,
                model: name,
                reason,
            },
        );
        let mut old = std::mem::replace(
            &mut self.sched,
            Box::new(elsc_sched_linux::LinuxScheduler::new()),
        );
        let mut meter = CycleMeter::new();
        self.bus.set_now(t);
        {
            let mut ctx = SchedCtx {
                tasks: &mut self.tasks,
                stats: &mut self.stats,
                meter: &mut meter,
                costs: &self.cfg.costs,
                cfg: &self.cfg.sched,
                probe: Some(&mut self.bus),
                locks: None,
            };
            let queued = old.drain(&mut ctx);
            // Front insertion again: reverse re-add preserves order.
            for &tid in queued.iter().rev() {
                self.sched.add_to_runqueue(&mut ctx, tid);
            }
        }
        self.charge_kernel_meter(cpu, Phase::Schedule, &meter);
    }

    /// Runs the current task: dispatch compute segments and execute
    /// completed syscalls until an event is scheduled or the task stops.
    /// Returns `Some(t)` when the CPU must call `schedule()` at `t`.
    fn run_segments(&mut self, cpu: CpuId, mut t: Cycles) -> Option<Cycles> {
        loop {
            if self.cpus[cpu].need_resched {
                return Some(t);
            }
            let cur = self.cpus[cpu].current;
            debug_assert_ne!(cur, self.cpus[cpu].idle, "running the idle task");
            if self.run_ref(cur).pending.is_none() {
                let op = self.call_behavior(cur, t);
                self.run_mut(cur).pending = Some(Pending {
                    remaining: op.compute.max(1),
                    syscall: op.then,
                });
            }
            // Dispatch the compute segment if any cycles remain.
            let remaining = self
                .run_ref(cur)
                .pending
                .as_ref()
                .map_or(0, |p| p.remaining);
            if remaining > 0 {
                if self.run_ref(cur).migrate_penalty > 0 {
                    // Cold caches after migrating: the first segment runs
                    // longer (paper: the 15-point bonus exists to avoid
                    // exactly this cost). The cycle count was scaled by
                    // topological distance at migration time.
                    let run = self.run_mut(cur);
                    let penalty = run.migrate_penalty;
                    run.migrate_penalty = 0;
                    if let Some(p) = run.pending.as_mut() {
                        p.remaining += penalty;
                    }
                }
                let remaining = self.run_ref(cur).pending.as_ref().unwrap().remaining;
                let end = t + remaining;
                self.cpus[cpu].gen += 1;
                let gen = self.cpus[cpu].gen;
                self.cpus[cpu].busy_until = end;
                self.push_event(end, Event::Resume { cpu, gen });
                return None;
            }
            // Segment complete: perform the syscall.
            let Pending { syscall, .. } = self.run_mut(cur).pending.take().expect("pending");
            let base = self.cfg.costs.get(CostKind::SyscallBase);
            match syscall {
                Syscall::Nop => {}
                Syscall::Yield => {
                    t += base;
                    self.charge_kernel_kind(cpu, Phase::Syscall, CostKind::SyscallBase, base);
                    self.tasks.task_mut(cur).policy.yielded = true;
                    self.stats.cpu_mut(cpu).yields += 1;
                    return Some(t);
                }
                Syscall::Exit => {
                    let exit_cost = self.cfg.costs.get(CostKind::Exit);
                    t += base + exit_cost;
                    self.charge_kernel_kind(cpu, Phase::Syscall, CostKind::SyscallBase, base);
                    self.charge_kernel_kind(cpu, Phase::Syscall, CostKind::Exit, exit_cost);
                    self.bus.emit_at(t, ObsEvent::Exit { tid: cur });
                    self.tasks.task_mut(cur).state = TaskState::Zombie;
                    self.live_users -= 1;
                    self.last_exit = t;
                    self.to_free.push(cur);
                    return Some(t);
                }
                Syscall::Sleep(d) => {
                    t += base;
                    self.charge_kernel_kind(cpu, Phase::Syscall, CostKind::SyscallBase, base);
                    self.bus.emit_at(t, ObsEvent::Block { tid: cur, cpu });
                    self.tasks.task_mut(cur).state = TaskState::Interruptible;
                    self.push_event(t + d, Event::Timer { tid: cur });
                    return Some(t);
                }
                Syscall::Read(pipe) => {
                    let pipe_cost = self.cfg.costs.get(CostKind::PipeOp);
                    t += base + pipe_cost;
                    self.charge_kernel_kind(cpu, Phase::Syscall, CostKind::SyscallBase, base);
                    self.charge_kernel_kind(cpu, Phase::Syscall, CostKind::PipeOp, pipe_cost);
                    match self.pipes.pipe_mut(pipe).try_read() {
                        Ok((msg, waker)) => {
                            // finish_wait(): a spuriously woken reader may
                            // still hold its queue entry; drop it so a
                            // later wake_one() cannot be swallowed by the
                            // stale slot.
                            self.pipes.pipe_mut(pipe).readers.unpark(cur);
                            let polls = self.cfg.io_poll_yields;
                            let run = self.run_mut(cur);
                            run.last_read = Some(msg);
                            run.polls_left = polls;
                            if let Some(w) = waker {
                                t = self.wake_up(w, cpu, t);
                            }
                        }
                        Err(PipeError::WouldBlock) => {
                            self.run_mut(cur).pending = Some(Pending {
                                remaining: 0,
                                syscall: Syscall::Read(pipe),
                            });
                            if self.poll_or_park(cur, cpu, |pipes| {
                                pipes.pipe_mut(pipe).readers.park(cur)
                            }) {
                                return Some(t);
                            }
                            return Some(t);
                        }
                        Err(PipeError::Closed) => {
                            self.pipes.pipe_mut(pipe).readers.unpark(cur);
                            self.run_mut(cur).last_read = None;
                        }
                    }
                }
                Syscall::Write(pipe, msg) => {
                    let pipe_cost = self.cfg.costs.get(CostKind::PipeOp);
                    t += base + pipe_cost;
                    self.charge_kernel_kind(cpu, Phase::Syscall, CostKind::SyscallBase, base);
                    self.charge_kernel_kind(cpu, Phase::Syscall, CostKind::PipeOp, pipe_cost);
                    // Chaos: the peer may reset the connection under this
                    // write, or the write may be cut short (charged but
                    // not delivered; the writer retries).
                    let (reset, short) = match self.injector.as_mut() {
                        Some(inj) => {
                            let reset = inj.peer_reset();
                            (reset, !reset && inj.short_write())
                        }
                        None => (false, false),
                    };
                    if reset {
                        self.bus.emit_at(
                            t,
                            ObsEvent::FaultInjected {
                                cpu,
                                fault: "peer_reset",
                            },
                        );
                        // The peer closes the pipe under the conversation:
                        // every parked reader and writer wakes to observe
                        // `Closed`, and the `try_write` below fails like a
                        // real post-reset send.
                        let wakers = self.pipes.pipe_mut(pipe).close();
                        for w in wakers {
                            t = self.wake_up(w, cpu, t);
                        }
                    } else if short {
                        self.bus.emit_at(
                            t,
                            ObsEvent::FaultInjected {
                                cpu,
                                fault: "short_write",
                            },
                        );
                        // Retry the write via a yield, like a would-block
                        // poll. Time advanced, so progress is preserved
                        // with probability one for any rate < 1.
                        self.run_mut(cur).pending = Some(Pending {
                            remaining: 0,
                            syscall: Syscall::Write(pipe, msg),
                        });
                        self.tasks.task_mut(cur).policy.yielded = true;
                        self.stats.cpu_mut(cpu).yields += 1;
                        return Some(t);
                    }
                    match self.pipes.pipe_mut(pipe).try_write(msg) {
                        Ok(waker) => {
                            // finish_wait(), as on the read side.
                            self.pipes.pipe_mut(pipe).writers.unpark(cur);
                            self.run_mut(cur).polls_left = self.cfg.io_poll_yields;
                            if let Some(w) = waker {
                                t = self.wake_up(w, cpu, t);
                            }
                        }
                        Err(PipeError::WouldBlock) => {
                            self.run_mut(cur).pending = Some(Pending {
                                remaining: 0,
                                syscall: Syscall::Write(pipe, msg),
                            });
                            self.poll_or_park(cur, cpu, |pipes| {
                                pipes.pipe_mut(pipe).writers.park(cur)
                            });
                            return Some(t);
                        }
                        Err(PipeError::Closed) => {
                            // Writing to a closed pipe: message dropped.
                            self.pipes.pipe_mut(pipe).writers.unpark(cur);
                        }
                    }
                }
                Syscall::Close(pipe) => {
                    let pipe_cost = self.cfg.costs.get(CostKind::PipeOp);
                    t += base + pipe_cost;
                    self.charge_kernel_kind(cpu, Phase::Syscall, CostKind::SyscallBase, base);
                    self.charge_kernel_kind(cpu, Phase::Syscall, CostKind::PipeOp, pipe_cost);
                    // Closing must wake *every* parked reader and writer
                    // so each observes `Closed` now — a task parked on a
                    // dead pipe would otherwise wedge until the deadlock
                    // detector trips.
                    let wakers = self.pipes.pipe_mut(pipe).close();
                    for w in wakers {
                        t = self.wake_up(w, cpu, t);
                    }
                }
                Syscall::Spawn(req) => {
                    let fork_cost = self.cfg.costs.get(CostKind::Fork);
                    t += base + fork_cost;
                    self.charge_kernel_kind(cpu, Phase::Syscall, CostKind::SyscallBase, base);
                    self.charge_kernel_kind(cpu, Phase::Syscall, CostKind::Fork, fork_cost);
                    let child = self.spawn_inner(&req.spec, req.behavior);
                    t = self.make_runnable(child, cpu, t);
                    self.run_mut(cur).last_spawned = Some(child);
                }
            }
        }
    }

    /// Spin-then-block on a would-block I/O operation: while the task has
    /// poll budget left, consume one unit and `sched_yield()` (the
    /// pending syscall retries when the task next runs); once the budget
    /// is spent, park the task via `park` and block. Returns `true` when
    /// it polled.
    fn poll_or_park<F: FnOnce(&mut PipeTable)>(&mut self, cur: Tid, cpu: CpuId, park: F) -> bool {
        let polls_left = self.run_ref(cur).polls_left;
        if polls_left > 0 {
            self.run_mut(cur).polls_left = polls_left - 1;
            self.tasks.task_mut(cur).policy.yielded = true;
            self.stats.cpu_mut(cpu).yields += 1;
            true
        } else {
            self.run_mut(cur).polls_left = self.cfg.io_poll_yields;
            park(&mut self.pipes);
            self.bus
                .emit_at(self.now, ObsEvent::Block { tid: cur, cpu });
            self.tasks.task_mut(cur).state = TaskState::Interruptible;
            false
        }
    }

    /// Calls the task's behaviour to get its next op.
    fn call_behavior(&mut self, tid: Tid, now: Cycles) -> Op {
        let idx = tid.index();
        let mut behavior = self.runs[idx]
            .as_mut()
            .expect("no run state")
            .behavior
            .take()
            .expect("idle task has no behavior to run");
        let op = {
            let run = self.runs[idx].as_mut().expect("no run state");
            let mut sys = SysView {
                tid,
                now,
                last_read: run.last_read.take(),
                last_spawned: run.last_spawned.take(),
                rng: &mut run.rng,
                ledger: &mut self.ledger,
                dists: &mut self.dists,
            };
            behavior.resume(&mut sys)
        };
        self.runs[idx].as_mut().expect("no run state").behavior = Some(behavior);
        op
    }

    // ------------------------------------------------------------------
    // Wakeups
    // ------------------------------------------------------------------

    /// `wake_up_process()`: make a blocked task runnable and decide where
    /// it should run. Returns the caller's advanced time cursor.
    fn wake_up(&mut self, tid: Tid, waker_cpu: CpuId, t: Cycles) -> Cycles {
        let Some(task) = self.tasks.get(tid) else {
            return t; // stale timer on an exited task
        };
        if !task.state.is_blocked() {
            return t; // already runnable (or a zombie)
        }
        self.tasks.task_mut(tid).state = TaskState::Running;
        self.bus.emit_at(
            t,
            ObsEvent::Wakeup {
                tid,
                by_cpu: waker_cpu,
            },
        );
        self.stats.cpu_mut(waker_cpu).wakeups += 1;
        self.run_mut(tid).woken_at = Some(t);
        self.make_runnable(tid, waker_cpu, t)
    }

    /// Sends a reschedule IPI to `target`, subject to the fault plan:
    /// delivery may be delayed (latency inflated) or dropped outright.
    /// A dropped IPI is safe because `need_resched` stays set on the
    /// target — its next timer tick performs the reschedule, the same
    /// safety net the kernel itself relies on.
    fn send_ipi(&mut self, target: CpuId, t: Cycles) {
        let base = self.cfg.costs.get(CostKind::IpiLatency);
        let fault = self
            .injector
            .as_mut()
            .map_or(IpiFault::None, |inj| inj.ipi_fault(base));
        match fault {
            IpiFault::None => self.push_event(t + base, Event::Ipi { cpu: target }),
            IpiFault::Delay(extra) => {
                self.bus.emit_at(
                    t,
                    ObsEvent::FaultInjected {
                        cpu: target,
                        fault: "ipi_delay",
                    },
                );
                self.push_event(t + base + extra, Event::Ipi { cpu: target });
            }
            IpiFault::Drop => {
                self.bus.emit_at(
                    t,
                    ObsEvent::FaultInjected {
                        cpu: target,
                        fault: "ipi_drop",
                    },
                );
            }
        }
    }

    /// Enqueues a runnable task and runs `reschedule_idle()` placement.
    fn make_runnable(&mut self, tid: Tid, waker_cpu: CpuId, t: Cycles) -> Cycles {
        debug_assert!(self.tasks.task(tid).state.is_runnable());
        // add_to_runqueue under the run-queue lock. The home domain is
        // the one guarding the queue the task lands on — its last CPU's
        // queue under sharded plans — while the spin is charged to the
        // waker, whose time pays for it.
        let queue_cpu = self.tasks.task(tid).processor;
        let (t_acq, home) = if self.cfg.sched.smp {
            self.acquire_home_domain(queue_cpu, waker_cpu, t)
        } else {
            (t, 0)
        };
        let mut meter = CycleMeter::new();
        let mut domains = if self.cfg.sched.smp {
            Some(LockDomains::new(
                &mut self.locks,
                self.plan,
                self.cfg.sched.nr_cpus,
                waker_cpu,
                t_acq,
                home,
                &mut self.lock_scratch,
            ))
        } else {
            None
        };
        {
            self.bus.set_now(t_acq);
            let mut ctx = SchedCtx {
                tasks: &mut self.tasks,
                stats: &mut self.stats,
                meter: &mut meter,
                costs: &self.cfg.costs,
                cfg: &self.cfg.sched,
                probe: Some(&mut self.bus),
                locks: domains.as_mut().map(|d| d as &mut dyn DomainLocker),
            };
            self.sched.add_to_runqueue(&mut ctx, tid);
        }
        // reschedule_idle() runs under the run-queue lock in the kernel:
        // it reads every CPU's current task, so it is charged one
        // goodness evaluation per CPU plus its fixed cost, all while
        // holding the lock — a major serialization point on SMP.
        meter.charge(&self.cfg.costs, CostKind::RescheduleIdle);
        meter.charge_n(
            &self.cfg.costs,
            CostKind::GoodnessEval,
            self.cfg.nr_cpus() as u64,
        );
        let (extra_spin, n_taken) = match domains {
            Some(d) => {
                let extra = d.extra_spin();
                let taken = d.release_all(t_acq + meter.cycles() + extra);
                (extra, taken.len())
            }
            None => (0, 0),
        };
        self.charge_kernel_meter(waker_cpu, Phase::Wakeup, &meter);
        let t2 = t_acq + meter.take() + extra_spin;
        for k in 0..n_taken {
            let a = self.lock_scratch.taken()[k];
            self.account_domain_acquire(waker_cpu, a);
        }
        let mut t3 = t2;

        // Snapshot every CPU into the reusable scratch buffer — one of
        // the hot wakeup-path allocations this engine must not make.
        self.view_scratch.clear();
        self.view_scratch.extend(self.cpus.iter().map(|c| CpuView {
            id: c.id,
            idle: c.is_idle(),
            current: c.current,
        }));
        match reschedule_idle(&self.tasks, &self.cfg.sched, &self.view_scratch, tid) {
            WakeTarget::IpiIdle(target) => {
                self.cpus[target].need_resched = true;
                self.stats.cpu_mut(waker_cpu).ipis_sent += 1;
                t3 += 1;
                self.send_ipi(target, t3);
            }
            WakeTarget::Preempt(target) => {
                self.cpus[target].need_resched = true;
                if target != waker_cpu {
                    self.stats.cpu_mut(waker_cpu).ipis_sent += 1;
                    self.send_ipi(target, t3);
                }
                // target == waker_cpu: the need_resched check at the top
                // of run_segments picks this up at the syscall boundary.
            }
            WakeTarget::None => {}
        }
        t3
    }
}

/// Grows a vector of options so `idx` is addressable.
fn grow_to<T>(v: &mut Vec<Option<T>>, idx: usize) {
    while v.len() <= idx {
        v.push(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Script;
    use elsc_ktask::MmId;

    fn up_machine() -> Machine {
        // Small watchdog so a broken test fails fast.
        let cfg = MachineConfig::up().with_max_secs(50.0);
        Machine::new(cfg, Box::new(elsc_sched_linux::LinuxScheduler::new()))
    }

    fn smp_machine(n: usize) -> Machine {
        let cfg = MachineConfig::smp(n).with_max_secs(50.0);
        Machine::new(cfg, Box::new(elsc_sched_linux::LinuxScheduler::new()))
    }

    fn elsc_machine(n: usize, smp: bool) -> Machine {
        let cfg = if smp {
            MachineConfig::smp(n)
        } else {
            MachineConfig::up()
        }
        .with_max_secs(50.0);
        Machine::new(cfg, Box::new(elsc::ElscScheduler::new()))
    }

    #[test]
    fn single_task_computes_and_exits() {
        let mut m = up_machine();
        m.spawn(
            &TaskSpec::named("solo"),
            Box::new(Script::new(vec![Op::compute(100_000, Syscall::Nop)])),
        );
        let r = m.run().expect("completes");
        assert!(r.elapsed.get() >= 100_000);
        assert_eq!(r.tasks_spawned, 1);
        let t = r.stats.total();
        assert!(t.sched_calls >= 2, "at least dispatch + exit");
        assert!(t.ctx_switches >= 1);
    }

    #[test]
    fn run_twice_panics() {
        let mut m = up_machine();
        m.spawn(&TaskSpec::named("x"), Box::new(Script::new(vec![])));
        let _ = m.run();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.run()));
        assert!(result.is_err());
    }

    #[test]
    fn two_tasks_share_one_cpu() {
        let mut m = up_machine();
        let burst = 30_000_000; // 3 quanta at 400MHz/100Hz ticks? ticks are 4M cycles; 30M = 7.5 ticks
        m.spawn(
            &TaskSpec::named("a").mm(MmId(1)),
            Box::new(Script::new(vec![Op::compute(burst, Syscall::Nop)])),
        );
        m.spawn(
            &TaskSpec::named("b").mm(MmId(2)),
            Box::new(Script::new(vec![Op::compute(burst, Syscall::Nop)])),
        );
        let r = m.run().expect("completes");
        // Serialized on one CPU: at least the sum of both bursts.
        assert!(r.elapsed.get() >= 2 * burst);
        // Quantum expiry forces preemptions between them.
        let t = r.stats.total();
        assert!(t.ticks > 0);
    }

    #[test]
    fn smp_runs_tasks_in_parallel() {
        let burst = 40_000_000u64;
        let elapsed_on = |cpus: usize| {
            let mut m = smp_machine(cpus);
            for i in 0..4u64 {
                m.spawn(
                    &TaskSpec::named("w").mm(MmId(i as u32 + 1)),
                    Box::new(Script::new(vec![Op::compute(burst, Syscall::Nop)])),
                );
            }
            m.run().expect("completes").elapsed.get()
        };
        let one = elapsed_on(1);
        let four = elapsed_on(4);
        assert!(
            (four as f64) < (one as f64) * 0.5,
            "4 CPUs ({four}) should be much faster than 1 ({one})"
        );
    }

    #[test]
    fn pipe_roundtrip_between_tasks() {
        // Poll-yields disabled so the reader genuinely blocks and the
        // write must wake it.
        let cfg = MachineConfig::up().with_max_secs(50.0).with_poll_yields(0);
        let mut m = Machine::new(cfg, Box::new(elsc_sched_linux::LinuxScheduler::new()));
        let pipe = m.create_pipe(4);
        m.spawn(
            &TaskSpec::named("writer").mm(MmId(1)),
            Box::new(Script::new(vec![
                Op::write_after(10_000, pipe, Msg::tagged(1)),
                Op::write_after(10_000, pipe, Msg::tagged(2)),
            ])),
        );
        m.spawn(
            &TaskSpec::named("reader").mm(MmId(2)),
            Box::new(Script::new(vec![
                Op::read_after(1_000, pipe),
                Op::read_after(1_000, pipe),
            ])),
        );
        let r = m.run().expect("completes");
        assert_eq!(r.messages_read, 2);
        let t = r.stats.total();
        assert!(t.wakeups >= 1, "reader must be woken by the writer");
    }

    #[test]
    fn reader_blocks_until_writer_writes() {
        let mut m = up_machine();
        let pipe = m.create_pipe(1);
        // Reader starts immediately; writer computes a long time first.
        m.spawn(
            &TaskSpec::named("reader").mm(MmId(1)),
            Box::new(Script::new(vec![Op::read_after(1, pipe)])),
        );
        m.spawn(
            &TaskSpec::named("writer").mm(MmId(2)),
            Box::new(Script::new(vec![Op::write_after(
                5_000_000,
                pipe,
                Msg::tagged(9),
            )])),
        );
        let r = m.run().expect("completes");
        // The run can't end before the writer's compute phase.
        assert!(r.elapsed.get() >= 5_000_000);
        assert_eq!(r.messages_read, 1);
    }

    #[test]
    fn bounded_pipe_blocks_writer() {
        let mut m = up_machine();
        let pipe = m.create_pipe(1);
        // Writer floods a capacity-1 pipe; reader drains slowly.
        m.spawn(
            &TaskSpec::named("writer").mm(MmId(1)),
            Box::new(Script::new(
                (0..5)
                    .map(|i| Op::write_after(100, pipe, Msg::tagged(i)))
                    .collect(),
            )),
        );
        m.spawn(
            &TaskSpec::named("reader").mm(MmId(2)),
            Box::new(Script::new(
                (0..5).map(|_| Op::read_after(200_000, pipe)).collect(),
            )),
        );
        let r = m.run().expect("completes");
        assert_eq!(r.messages_read, 5);
    }

    #[test]
    fn sleep_delays_exit() {
        let mut m = up_machine();
        m.spawn(
            &TaskSpec::named("sleeper"),
            Box::new(Script::new(vec![Op::sleep_after(1_000, 8_000_000)])),
        );
        let r = m.run().expect("completes");
        assert!(r.elapsed.get() >= 8_000_000);
        assert!(r.stats.total().wakeups >= 1);
    }

    #[test]
    fn spawn_syscall_creates_running_child() {
        let mut m = up_machine();
        m.spawn(
            &TaskSpec::named("parent").mm(MmId(1)),
            Box::new(Script::new(vec![Op::compute(
                1_000,
                Syscall::Spawn(crate::behavior::SpawnReq {
                    spec: TaskSpec::named("child").mm(MmId(2)),
                    behavior: Box::new(Script::new(vec![Op::compute(50_000, Syscall::Nop)])),
                }),
            )])),
        );
        let r = m.run().expect("completes");
        assert_eq!(r.tasks_spawned, 2);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut m = up_machine();
        let pipe = m.create_pipe(1);
        // A reader on a pipe nobody ever writes.
        m.spawn(
            &TaskSpec::named("stuck"),
            Box::new(Script::new(vec![Op::read_after(1_000, pipe)])),
        );
        match m.run() {
            Err(RunError::Deadlock { live, .. }) => assert_eq!(live, 1),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_fires_on_endless_work() {
        let cfg = MachineConfig::up().with_max_secs(0.05);
        let mut m = Machine::new(cfg, Box::new(elsc_sched_linux::LinuxScheduler::new()));
        m.spawn(
            &TaskSpec::named("forever"),
            Box::new(crate::behavior::Spinner { burst: 1_000_000 }),
        );
        match m.run() {
            Err(RunError::Watchdog { .. }) => {}
            other => panic!("expected watchdog, got {other:?}"),
        }
    }

    #[test]
    fn yield_ping_pong_alternates_tasks() {
        let mut m = up_machine();
        for name in ["a", "b"] {
            m.spawn(
                &TaskSpec::named(name).mm(MmId(1)),
                Box::new(Script::new(
                    (0..10).map(|_| Op::yield_after(1_000)).collect(),
                )),
            );
        }
        let r = m.run().expect("completes");
        let t = r.stats.total();
        assert_eq!(t.yields, 20);
        // Yields force schedule() calls.
        assert!(t.sched_calls >= 20);
    }

    #[test]
    fn deterministic_across_runs() {
        let run_once = || {
            let mut m = elsc_machine(2, true);
            let pipe = m.create_pipe(4);
            m.spawn(
                &TaskSpec::named("w").mm(MmId(1)),
                Box::new(Script::new(
                    (0..20)
                        .map(|i| Op::write_after(5_000, pipe, Msg::tagged(i)))
                        .collect(),
                )),
            );
            m.spawn(
                &TaskSpec::named("r").mm(MmId(2)),
                Box::new(Script::new(
                    (0..20).map(|_| Op::read_after(3_000, pipe)).collect(),
                )),
            );
            let r = m.run().expect("completes");
            (r.elapsed, r.stats.total().sched_calls, r.messages_read)
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn elsc_machine_runs_same_workload() {
        let mut m = elsc_machine(1, false);
        let pipe = m.create_pipe(4);
        m.spawn(
            &TaskSpec::named("w").mm(MmId(1)),
            Box::new(Script::new(
                (0..5)
                    .map(|i| Op::write_after(2_000, pipe, Msg::tagged(i)))
                    .collect(),
            )),
        );
        m.spawn(
            &TaskSpec::named("r").mm(MmId(2)),
            Box::new(Script::new(
                (0..5).map(|_| Op::read_after(2_000, pipe)).collect(),
            )),
        );
        let r = m.run().expect("completes");
        assert_eq!(r.scheduler, "elsc");
        assert_eq!(r.messages_read, 5);
    }

    #[test]
    fn migration_penalty_charged_once() {
        // A 2-CPU machine with one task that blocks and wakes: if it gets
        // placed on the other CPU, picked_new_cpu increments. We at least
        // verify the counter stays consistent (no negative logic).
        let mut m = smp_machine(2);
        let pipe = m.create_pipe(1);
        m.spawn(
            &TaskSpec::named("a").mm(MmId(1)),
            Box::new(Script::new(vec![
                Op::write_after(10_000, pipe, Msg::tagged(1)),
                Op::compute(50_000, Syscall::Nop),
            ])),
        );
        m.spawn(
            &TaskSpec::named("b").mm(MmId(2)),
            Box::new(Script::new(vec![Op::read_after(10_000, pipe)])),
        );
        let r = m.run().expect("completes");
        let t = r.stats.total();
        assert!(t.picked_new_cpu <= t.sched_calls);
    }

    #[test]
    fn work_and_idle_cycles_are_accounted() {
        let mut m = up_machine();
        m.spawn(
            &TaskSpec::named("worker"),
            Box::new(Script::new(vec![Op::compute(1_000_000, Syscall::Nop)])),
        );
        let r = m.run().expect("completes");
        let t = r.stats.total();
        assert!(t.work_cycles >= 1_000_000, "work {}", t.work_cycles);
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use crate::behavior::Script;
    use elsc_chaos::FaultPlan;
    use elsc_ktask::MmId;

    /// A small mixed workload: pipe traffic plus compute, enough to
    /// exercise wakeups, preemptions, and many `schedule()` decisions.
    fn load(m: &mut Machine) {
        let pipe = m.create_pipe(2);
        m.spawn(
            &TaskSpec::named("w").mm(MmId(1)),
            Box::new(Script::new(
                (0..15)
                    .map(|i| Op::write_after(20_000, pipe, Msg::tagged(i)))
                    .collect(),
            )),
        );
        m.spawn(
            &TaskSpec::named("r").mm(MmId(2)),
            Box::new(Script::new(
                (0..15).map(|_| Op::read_after(10_000, pipe)).collect(),
            )),
        );
        for i in 0..2u32 {
            m.spawn(
                &TaskSpec::named("c").mm(MmId(3 + i)),
                Box::new(Script::new(vec![Op::compute(9_000_000, Syscall::Nop)])),
            );
        }
    }

    fn machine_with(cfg: MachineConfig, sched: Box<dyn Scheduler>) -> Result<RunReport, RunError> {
        let mut m = Machine::new(cfg.with_max_secs(50.0), sched);
        load(&mut m);
        m.run()
    }

    #[test]
    fn oracle_reports_clean_equivalence_on_up() {
        for sched in ["elsc", "reg"] {
            let s: Box<dyn Scheduler> = match sched {
                "elsc" => Box::new(elsc::ElscScheduler::new()),
                _ => Box::new(elsc_sched_linux::LinuxScheduler::new()),
            };
            let r = machine_with(MachineConfig::up().with_oracle(true), s).expect("completes");
            let chaos = r.chaos.as_ref().expect("oracle enables the summary");
            let o = chaos.oracle.as_ref().expect("oracle report present");
            assert!(
                o.decisions > 10,
                "{sched}: judged {} decisions",
                o.decisions
            );
            assert!(
                o.clean(),
                "{sched}: {} unexplained / {} violations (first: {:?})",
                o.unexplained,
                o.invariant_violations,
                o.first_unexplained.as_ref().or(o.first_violation.as_ref())
            );
        }
    }

    #[test]
    fn oracle_is_pure_observation() {
        let with = machine_with(
            MachineConfig::up().with_oracle(true),
            Box::new(elsc::ElscScheduler::new()),
        )
        .expect("completes");
        let without = machine_with(MachineConfig::up(), Box::new(elsc::ElscScheduler::new()))
            .expect("completes");
        assert_eq!(
            with.elapsed, without.elapsed,
            "judging must never change the schedule"
        );
        assert!(without.chaos.is_none(), "clean runs carry no chaos summary");
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let run = |fault_seed| {
            machine_with(
                MachineConfig::up()
                    .with_faults(Some(FaultPlan::heavy()))
                    .with_fault_seed(fault_seed),
                Box::new(elsc::ElscScheduler::new()),
            )
            .expect("heavy faults stay completion-safe")
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.to_json(), b.to_json(), "same fault seed, same bytes");
        let counts = a.chaos.as_ref().expect("summary").counts;
        assert!(counts.total() > 0, "heavy plan must inject something");
        let c = run(8);
        assert_ne!(
            a.to_json(),
            c.to_json(),
            "different fault seeds must perturb differently"
        );
    }

    #[test]
    fn dropped_ipis_are_recovered_by_ticks() {
        // Drop *every* reschedule IPI on a 2-CPU machine: need_resched
        // stays set and the next timer tick performs the reschedule, so
        // the workload still completes.
        let r = machine_with(
            MachineConfig::smp(2)
                .with_faults(Some("ipi_drop=1.0".parse().unwrap()))
                .with_fault_seed(3),
            Box::new(elsc_sched_linux::LinuxScheduler::new()),
        )
        .expect("tick recovery must rescue every lost IPI");
        let counts = r.chaos.as_ref().expect("summary").counts;
        assert!(counts.ipi_dropped > 0, "the plan must actually drop IPIs");
    }

    #[test]
    fn faulted_run_keeps_cycle_conservation() {
        let r = machine_with(
            MachineConfig::smp(2)
                .with_faults(Some(FaultPlan::heavy()))
                .with_fault_seed(11)
                .with_oracle(true),
            Box::new(elsc::ElscScheduler::new()),
        )
        .expect("completes");
        assert!(
            r.conservation_ok,
            "lock-hold charging must stay conservative"
        );
    }

    #[test]
    fn exit_recalc_charges_live_tasks_only() {
        // Spawn-exit-recalc cost conservation: a hog exhausts its
        // quantum, then the exiter runs and exits — and the
        // recalculation triggered by that very exit's `schedule()` call
        // fires while the corpse is still in the TaskTable (zombies are
        // reaped only after `schedule()` returns). The walk must count
        // the hog and the idle task, never the zombie, and the
        // RecalcPerTask cycles charged must match that count (the
        // conservation check ties the meter to the profiler).
        for sched in ["elsc", "reg"] {
            let s: Box<dyn Scheduler> = match sched {
                "elsc" => Box::new(elsc::ElscScheduler::new()),
                _ => Box::new(elsc_sched_linux::LinuxScheduler::new()),
            };
            let mut m = Machine::new(MachineConfig::up().with_max_secs(50.0), s);
            let hog = Box::new(Script::new(vec![Op::compute(100_000_000, Syscall::Nop)]));
            let exiter = Box::new(Script::new(vec![Op::compute(12_000_000, Syscall::Nop)]));
            // The hog must run first so its quantum is exhausted by the
            // time the exiter dies. elsc's run queue inserts at the
            // front (reverse spawn order) while the baseline scans in
            // table order, so the spawn order differs per scheduler.
            if sched == "elsc" {
                m.spawn(&TaskSpec::named("exiter").mm(MmId(1)), exiter);
                m.spawn(&TaskSpec::named("hog").mm(MmId(2)), hog);
            } else {
                m.spawn(&TaskSpec::named("hog").mm(MmId(2)), hog);
                m.spawn(&TaskSpec::named("exiter").mm(MmId(1)), exiter);
            }
            let r = m.run().expect("completes");
            let t = r.stats.total();
            assert_eq!(t.recalc_entries, 1, "{sched}: exactly one recalc");
            assert_eq!(t.recalc_tasks, 2, "{sched}: hog + idle, never the zombie");
            assert!(r.conservation_ok, "{sched}: recalc charging must conserve");
        }
    }

    #[test]
    fn close_wakes_parked_reader_and_writer() {
        // Regression: a reader parked on an empty pipe and a writer
        // parked on a full one; closing both must wake *both* tasks so
        // they observe `Closed` instead of wedging until the deadlock
        // detector trips.
        let cfg = MachineConfig::up().with_max_secs(50.0).with_poll_yields(0);
        let mut m = Machine::new(cfg, Box::new(elsc_sched_linux::LinuxScheduler::new()));
        let empty = m.create_pipe(1);
        let full = m.create_pipe(1);
        // add_to_runqueue inserts at the front, so tasks run in reverse
        // spawn order: reader parks, writer parks, then the closer runs.
        m.spawn(
            &TaskSpec::named("closer").mm(MmId(3)),
            Box::new(Script::new(vec![
                Op::close_after(2_000_000, empty),
                Op::close_after(1_000, full),
            ])),
        );
        m.spawn(
            &TaskSpec::named("writer").mm(MmId(2)),
            Box::new(Script::new(vec![
                Op::write_after(1_000, full, Msg::tagged(1)),
                Op::write_after(1_000, full, Msg::tagged(2)),
            ])),
        );
        m.spawn(
            &TaskSpec::named("reader").mm(MmId(1)),
            Box::new(Script::new(vec![Op::read_after(1_000, empty)])),
        );
        let r = m.run().expect("close must unwedge both parked tasks");
        assert_eq!(r.messages_read, 0, "nothing is ever read");
        assert!(
            r.stats.total().wakeups >= 2,
            "both parked tasks must be woken by the closes"
        );
    }

    #[test]
    fn spurious_wakeup_of_a_parked_reader_reparks_cleanly() {
        // Regression (found by the `net` chaos sweep): a spurious
        // `wake_up_process()` makes a parked pipe reader runnable without
        // removing it from the wait queue — real kernels leave the wait
        // entry queued until `finish_wait()`. The woken reader re-checks,
        // still sees an empty pipe, and blocks again: parking must be
        // idempotent (`prepare_to_wait()` semantics), not a double-park,
        // and the eventual real wakeup must still reach it.
        let cfg = MachineConfig::up()
            .with_max_secs(50.0)
            .with_poll_yields(0)
            .with_faults(Some("spurious_wakeup=1.0".parse().unwrap()))
            .with_fault_seed(5);
        let mut m = Machine::new(cfg, Box::new(elsc::ElscScheduler::new()));
        let pipe = m.create_pipe(1);
        // Reverse spawn order: the reader runs first and parks; the writer
        // then computes across several timer ticks (each tick aims a
        // spurious wakeup at a live task) before delivering the message.
        m.spawn(
            &TaskSpec::named("writer").mm(MmId(2)),
            Box::new(Script::new(vec![Op::write_after(
                20_000_000,
                pipe,
                Msg::tagged(1),
            )])),
        );
        m.spawn(
            &TaskSpec::named("reader").mm(MmId(1)),
            Box::new(Script::new(vec![Op::read_after(1_000, pipe)])),
        );
        let r = m.run().expect("the spuriously woken reader must re-park");
        assert_eq!(r.messages_read, 1, "the real wakeup still delivers");
        let counts = r.chaos.as_ref().expect("summary").counts;
        assert!(counts.spurious_wakeups > 0, "the fault must actually fire");
        assert!(r.conservation_ok);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::behavior::Script;
    use crate::trace::TraceEvent;
    use elsc_ktask::MmId;

    #[test]
    fn trace_captures_the_causal_chain() {
        let cfg = MachineConfig::up()
            .with_max_secs(50.0)
            .with_poll_yields(0)
            .with_trace(10_000);
        let mut m = Machine::new(cfg, Box::new(elsc::ElscScheduler::new()));
        let pipe = m.create_pipe(1);
        // Spawn the writer first: adds insert at the front of the list,
        // so the *reader* runs first and genuinely blocks.
        m.spawn(
            &TaskSpec::named("writer").mm(MmId(2)),
            Box::new(Script::new(vec![Op::write_after(
                2_000_000,
                pipe,
                Msg::tagged(1),
            )])),
        );
        let reader = m.spawn(
            &TaskSpec::named("reader").mm(MmId(1)),
            Box::new(Script::new(vec![Op::read_after(1_000, pipe)])),
        );
        let report = m.run().expect("completes");
        let trace = m.trace();
        trace.check_monotone();
        assert_eq!(trace.dropped(), 0);
        // The reader blocks, is woken, and exits — in that order.
        let block_at = trace
            .filter(|e| matches!(e, TraceEvent::Block { tid, .. } if *tid == reader))
            .next()
            .expect("reader blocked")
            .at;
        let wake_at = trace
            .filter(|e| matches!(e, TraceEvent::Wakeup { tid, .. } if *tid == reader))
            .next()
            .expect("reader woken")
            .at;
        let exit_at = trace
            .filter(|e| matches!(e, TraceEvent::Exit { tid } if *tid == reader))
            .next()
            .expect("reader exited")
            .at;
        assert!(block_at < wake_at && wake_at < exit_at);
        // Trace switch records match the stats counter.
        let switches = trace
            .filter(|e| matches!(e, TraceEvent::Switch { .. }))
            .count() as u64;
        assert_eq!(switches, report.stats.total().ctx_switches);
    }

    #[test]
    fn tracing_does_not_change_the_schedule() {
        let run = |trace_cap: usize| {
            let cfg = MachineConfig::smp(2)
                .with_max_secs(50.0)
                .with_trace(trace_cap);
            let mut m = Machine::new(cfg, Box::new(elsc_sched_linux::LinuxScheduler::new()));
            let pipe = m.create_pipe(2);
            for i in 0..3u32 {
                m.spawn(
                    &TaskSpec::named("w").mm(MmId(i + 1)),
                    Box::new(Script::new(
                        (0..10)
                            .map(|k| Op::write_after(10_000, pipe, Msg::tagged(k)))
                            .collect(),
                    )),
                );
            }
            m.spawn(
                &TaskSpec::named("r").mm(MmId(9)),
                Box::new(Script::new(
                    (0..30).map(|_| Op::read_after(5_000, pipe)).collect(),
                )),
            );
            m.run().expect("completes").elapsed
        };
        assert_eq!(run(0), run(100_000), "tracing must be observation-only");
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::behavior::Script;
    use crate::trace::TraceEvent;
    use elsc_ktask::MmId;
    use elsc_policy::PolicyScheduler;

    const REG_POL: &str = include_str!("../../../policies/reg.pol");
    const STARVE_POL: &str = include_str!("../../../policies/starve.pol");

    fn policy(src: &str, nr_cpus: usize) -> Box<PolicyScheduler> {
        Box::new(PolicyScheduler::load_str(src, nr_cpus).expect("bundled policy loads"))
    }

    fn workload(m: &mut Machine) {
        let pipe = m.create_pipe(2);
        for i in 0..3u32 {
            m.spawn(
                &TaskSpec::named("w").mm(MmId(i + 1)),
                Box::new(Script::new(
                    (0..6)
                        .map(|k| Op::write_after(30_000, pipe, Msg::tagged(k)))
                        .collect(),
                )),
            );
        }
        m.spawn(
            &TaskSpec::named("r").mm(MmId(9)),
            Box::new(Script::new(
                (0..18).map(|_| Op::read_after(10_000, pipe)).collect(),
            )),
        );
    }

    #[test]
    fn reg_policy_survives_the_strict_oracle_end_to_end() {
        let cfg = MachineConfig::up().with_max_secs(50.0).with_oracle(true);
        let mut m = Machine::new(cfg, policy(REG_POL, 1));
        workload(&mut m);
        let r = m.run().expect("completes");
        assert_eq!(r.scheduler, "policy:reg");
        let p = r.policy.as_ref().expect("policy summary present");
        assert!(!p.ejected, "reg.pol must never trip the watchdog");
        assert!(p.insns_executed > 0, "the interpreter actually ran");
        let o = r.chaos.as_ref().unwrap().oracle.as_ref().unwrap();
        assert_eq!(
            o.unexplained, 0,
            "policy:reg is judged strictly and must match the native scan: {o:?}"
        );
        assert_eq!(o.invariant_violations, 0);
        assert!(r.conservation_ok);
    }

    #[test]
    fn starving_policy_is_ejected_and_the_run_still_completes() {
        let cfg = MachineConfig::smp(2).with_max_secs(50.0).with_trace(10_000);
        let mut m = Machine::new(cfg, policy(STARVE_POL, 2));
        workload(&mut m);
        let r = m.run().expect("the baseline takes over and finishes");
        let p = r.policy.as_ref().expect("policy summary present");
        assert!(p.ejected);
        assert_eq!(p.eject_reason, Some("starvation"));
        assert!(p.ejected_at.is_some());
        assert_eq!(
            r.scheduler, "policy:starve",
            "the run keeps the policy's name"
        );
        assert!(r.conservation_ok);
        // The trace carries the whole story: load, then ejection.
        let trace = m.trace();
        assert!(trace
            .filter(|e| matches!(e, TraceEvent::PolicyLoaded { .. }))
            .next()
            .is_some());
        let eject = trace
            .filter(|e| matches!(e, TraceEvent::PolicyEjected { .. }))
            .collect::<Vec<_>>();
        assert_eq!(eject.len(), 1, "ejection fires exactly once");
    }

    #[test]
    fn budget_blowout_is_ejected_with_the_budget_reason() {
        let src = "policy spin\nlists 1\nhook enqueue { enqueue_front(0) }\n\
                   hook pick_next {\n  repeat 1024 { let x = 1 }\n\
                   if runnable(prev) { pick prev }\n  pick idle\n}\n";
        let cfg = MachineConfig::up().with_max_secs(50.0);
        let sched = Box::new(
            PolicyScheduler::load_str(src, 1)
                .expect("loads")
                .with_budget(64),
        );
        let mut m = Machine::new(cfg, sched);
        workload(&mut m);
        let r = m.run().expect("completes after ejection");
        let p = r.policy.as_ref().expect("policy summary present");
        assert!(p.ejected);
        assert_eq!(p.eject_reason, Some("budget_exhausted"));
        assert_eq!(p.budget, 64);
    }

    #[test]
    fn backend_override_reaches_the_scheduler_and_the_report() {
        let cfg = MachineConfig::up()
            .with_max_secs(50.0)
            .with_policy_backend(Some(PolicyBackend::Interp));
        let mut m = Machine::new(cfg, policy(REG_POL, 1));
        workload(&mut m);
        let r = m.run().expect("completes");
        let p = r.policy.as_ref().expect("policy summary present");
        assert_eq!(p.backend, "interp");
        assert!(r.to_json().contains("\"backend\":\"interp\""));
        // The default (no override) is the bytecode VM.
        let cfg = MachineConfig::up().with_max_secs(50.0);
        let mut m = Machine::new(cfg, policy(REG_POL, 1));
        workload(&mut m);
        let r = m.run().expect("completes");
        assert_eq!(r.policy.as_ref().unwrap().backend, "vm");
    }

    /// The tentpole's machine-level contract: a whole run is
    /// byte-identical across backends once the report's `backend` label
    /// is normalized away — same schedule, same cycles, same
    /// `PolicyInsn` totals.
    #[test]
    fn full_runs_are_byte_identical_across_backends_modulo_the_label() {
        let json_for = |backend: PolicyBackend| {
            let cfg = MachineConfig::smp(2)
                .with_max_secs(50.0)
                .with_policy_backend(Some(backend));
            let mut m = Machine::new(cfg, policy(REG_POL, 2));
            workload(&mut m);
            m.run().expect("completes").to_json()
        };
        let vm = json_for(PolicyBackend::Vm);
        let interp = json_for(PolicyBackend::Interp);
        assert_ne!(vm, interp, "the backend label itself must be reported");
        assert_eq!(
            vm.replace("\"backend\":\"vm\"", "\"backend\":\"interp\""),
            interp,
            "backends must agree on every observable but the label"
        );
    }

    /// Budget exhaustion mid-`pick_next` on the VM path: the watchdog
    /// ejects at the same virtual instant, with the same frozen
    /// instruction count, as the reference interpreter.
    #[test]
    fn vm_budget_exhaustion_ejects_exactly_like_the_interp() {
        let src = "policy spin\nlists 1\nhook enqueue { enqueue_front(0) }\n\
                   hook pick_next {\n  repeat 1024 { let x = 1 }\n\
                   if runnable(prev) { pick prev }\n  pick idle\n}\n";
        let run = |backend: PolicyBackend| {
            let cfg = MachineConfig::up()
                .with_max_secs(50.0)
                .with_policy_backend(Some(backend));
            let sched = Box::new(
                PolicyScheduler::load_str(src, 1)
                    .expect("loads")
                    .with_budget(64),
            );
            let mut m = Machine::new(cfg, sched);
            workload(&mut m);
            m.run().expect("completes after ejection")
        };
        let vm = run(PolicyBackend::Vm);
        let interp = run(PolicyBackend::Interp);
        for r in [&vm, &interp] {
            let p = r.policy.as_ref().expect("policy summary present");
            assert!(p.ejected);
            assert_eq!(p.eject_reason, Some("budget_exhausted"));
        }
        let (vp, ip) = (vm.policy.as_ref().unwrap(), interp.policy.as_ref().unwrap());
        assert_eq!(
            vp.insns_executed, ip.insns_executed,
            "insns freeze at the same count on both backends"
        );
        assert_eq!(
            vp.ejected_at, ip.ejected_at,
            "ejection happens at the same virtual instant"
        );
    }

    #[test]
    fn ejection_is_deterministic_across_reruns() {
        let run = || {
            let cfg = MachineConfig::smp(2).with_max_secs(50.0).with_seed(77);
            let mut m = Machine::new(cfg, policy(STARVE_POL, 2));
            workload(&mut m);
            m.run().expect("completes").to_json()
        };
        assert_eq!(run(), run(), "same seed, byte-identical report");
    }

    #[test]
    fn native_reports_carry_no_policy_summary() {
        let mut m = {
            let cfg = MachineConfig::up().with_max_secs(50.0);
            Machine::new(cfg, Box::new(elsc_sched_linux::LinuxScheduler::new()))
        };
        workload(&mut m);
        let r = m.run().expect("completes");
        assert!(r.policy.is_none());
        assert!(!r.to_json().contains("\"policy\""));
    }
}

#[cfg(test)]
mod step_tests {
    use super::*;
    use crate::behavior::Script;
    use elsc_ktask::MmId;

    const EPOCH: u64 = 400_000; // 1 ms at 400 MHz

    fn machine(seed: u64) -> Machine {
        let cfg = MachineConfig::up()
            .with_max_secs(50.0)
            .with_seed(seed)
            .with_poll_yields(0);
        Machine::new(cfg, Box::new(elsc_sched_linux::LinuxScheduler::new()))
    }

    /// Two compute/pipe tasks — enough traffic to exercise wakeups,
    /// preemption, and pipe parking in both run modes.
    fn populate(m: &mut Machine) -> PipeId {
        let pipe = m.create_pipe(2);
        m.spawn(
            &TaskSpec::named("writer").mm(MmId(1)),
            Box::new(Script::new(vec![
                Op::write_after(50_000, pipe, Msg::tagged(1)),
                Op::write_after(50_000, pipe, Msg::tagged(2)),
                Op::write_after(50_000, pipe, Msg::tagged(3)),
                Op::compute(5_000_000, Syscall::Nop),
            ])),
        );
        m.spawn(
            &TaskSpec::named("reader").mm(MmId(2)),
            Box::new(Script::new(vec![
                Op::read_after(1_000, pipe),
                Op::read_after(1_000, pipe),
                Op::read_after(1_000, pipe),
            ])),
        );
        pipe
    }

    /// Drives a started machine to completion in fixed epochs.
    fn step_to_done(m: &mut Machine) -> RunReport {
        let mut barrier = Cycles::ZERO;
        loop {
            barrier += EPOCH;
            match m.step_until(barrier).expect("no watchdog") {
                StepStatus::Done => return m.finish(),
                StepStatus::Paused { .. } => {}
            }
        }
    }

    #[test]
    fn stepped_run_is_byte_identical_to_plain_run() {
        let mut plain = machine(0xC1_057E);
        populate(&mut plain);
        let want = plain.run().expect("completes").to_json();

        let mut stepped = machine(0xC1_057E);
        populate(&mut stepped);
        stepped.start();
        let got = step_to_done(&mut stepped).to_json();
        assert_eq!(want, got, "step_until must replay run() exactly");
    }

    #[test]
    fn start_after_run_panics() {
        let mut m = machine(1);
        populate(&mut m);
        let _ = m.run();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.start()));
        assert!(r.is_err());
    }

    #[test]
    fn idle_node_keeps_ticking_to_the_barrier() {
        let mut m = machine(2);
        let pipe = m.create_pipe(1);
        // A lone reader on an empty pipe: locally wedged, not dead.
        m.spawn(
            &TaskSpec::named("reader").mm(MmId(1)),
            Box::new(Script::new(vec![Op::read_after(1_000, pipe)])),
        );
        m.start();
        let tick = m.step_until(Cycles(10 * EPOCH)).unwrap();
        assert_eq!(tick, StepStatus::Paused { idle: true });
        // Virtual time advanced (ticks fired) even though no task ran.
        assert!(m.stats().total().ticks > 0);
        assert_eq!(m.live_users(), 1);
        // An inter-node arrival unwedges it.
        m.inject_external_msg(pipe, Msg::tagged(7), Cycles(10 * EPOCH + 1_000));
        let end = m.step_until(Cycles(20 * EPOCH)).unwrap();
        assert_eq!(end, StepStatus::Done);
        let r = m.finish();
        assert_eq!(r.messages_read, 1);
    }

    #[test]
    fn external_close_unblocks_a_parked_reader() {
        let mut m = machine(3);
        let pipe = m.create_pipe(1);
        m.spawn(
            &TaskSpec::named("reader").mm(MmId(1)),
            Box::new(Script::new(vec![Op::read_after(1_000, pipe)])),
        );
        m.start();
        assert_eq!(
            m.step_until(Cycles(EPOCH)).unwrap(),
            StepStatus::Paused { idle: true }
        );
        m.inject_external_close(pipe, Cycles(EPOCH));
        // The reader observes EOF and exits instead of wedging forever.
        assert_eq!(m.step_until(Cycles(2 * EPOCH)).unwrap(), StepStatus::Done);
        let r = m.finish();
        assert_eq!(r.messages_read, 0);
    }

    #[test]
    fn drain_external_pulls_backlog_and_wakes_writers() {
        let mut m = machine(4);
        let pipe = m.create_pipe(2);
        // Four writes through a two-slot egress: the writer must park.
        m.spawn(
            &TaskSpec::named("writer").mm(MmId(1)),
            Box::new(Script::new(vec![
                Op::write_after(10_000, pipe, Msg::tagged(1)),
                Op::write_after(10_000, pipe, Msg::tagged(2)),
                Op::write_after(10_000, pipe, Msg::tagged(3)),
                Op::write_after(10_000, pipe, Msg::tagged(4)),
            ])),
        );
        m.start();
        let mut barrier = Cycles::ZERO;
        let mut drained = Vec::new();
        loop {
            barrier += EPOCH;
            let status = m.step_until(barrier).expect("no watchdog");
            let (msgs, closed) = m.drain_external(pipe, barrier);
            drained.extend(msgs);
            assert!(!closed);
            if status == StepStatus::Done {
                break;
            }
        }
        let tags: Vec<u64> = drained.iter().map(|ms| ms.tag).collect();
        assert_eq!(tags, vec![1, 2, 3, 4]);
        m.finish();
    }

    #[test]
    fn pause_for_shifts_the_run_wholesale() {
        let run_with_pause = |pause: u64| {
            let mut m = machine(5);
            m.spawn(
                &TaskSpec::named("worker").mm(MmId(1)),
                Box::new(Script::new(vec![Op::compute(3_000_000, Syscall::Nop)])),
            );
            m.start();
            let mut barrier = Cycles(EPOCH);
            assert!(matches!(
                m.step_until(barrier).unwrap(),
                StepStatus::Paused { .. }
            ));
            if pause > 0 {
                m.pause_for(pause);
                m.note_fault("node_pause");
            }
            loop {
                barrier += EPOCH;
                if m.step_until(barrier).unwrap() == StepStatus::Done {
                    return m.finish();
                }
            }
        };
        let base = run_with_pause(0);
        let paused = run_with_pause(700_000);
        // Every pending event moved together: the exit lands exactly
        // `pause` later, and no work was lost.
        assert_eq!(paused.elapsed.get(), base.elapsed.get() + 700_000);
        assert_eq!(
            base.stats.total().ctx_switches,
            paused.stats.total().ctx_switches
        );
    }

    #[test]
    fn injection_into_a_running_node_is_deterministic() {
        let run = || {
            let mut m = machine(6);
            let ingress = m.create_pipe(4);
            m.spawn(
                &TaskSpec::named("consumer").mm(MmId(1)),
                Box::new(Script::new(vec![
                    Op::read_after(2_000, ingress),
                    Op::read_after(2_000, ingress),
                ])),
            );
            m.start();
            m.inject_external_msg(ingress, Msg::tagged(1), Cycles(EPOCH));
            m.inject_external_msg(ingress, Msg::tagged(2), Cycles(EPOCH));
            let mut barrier = Cycles::ZERO;
            loop {
                barrier += EPOCH;
                if m.step_until(barrier).unwrap() == StepStatus::Done {
                    return m.finish().to_json();
                }
            }
        };
        assert_eq!(run(), run());
    }
}
