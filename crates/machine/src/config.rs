//! Machine configuration.

use elsc_chaos::FaultPlan;
use elsc_sched_api::{LockPlan, PolicyBackend, SchedConfig};
use elsc_simcore::CostModel;

/// Full configuration of a simulated machine.
///
/// Defaults model the paper's testbeds: ~400 MHz Pentium II class CPUs
/// (IBM Netfinity 5500/7000) with the Linux 2.3 10 ms timer tick.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Scheduler-visible configuration (CPU count, SMP build, limits).
    pub sched: SchedConfig,
    /// Simulated clock frequency, cycles per second.
    pub cpu_hz: u64,
    /// Cycles per timer tick (10 ms at `cpu_hz` by default).
    pub tick_cycles: u64,
    /// Per-primitive cycle costs.
    pub costs: CostModel,
    /// Watchdog: abort the run if virtual time passes this (a workload
    /// bug such as a deadlock would otherwise spin forever).
    pub max_cycles: u64,
    /// Seed for all deterministic randomness in the run.
    pub seed: u64,
    /// How many times a blocking read/write poll-yields
    /// (`sched_yield()` + retry) before actually sleeping — the
    /// spin-then-block strategy of the era's JVM I/O and locking layers.
    /// This is what produces the paper's yield storms: during lulls the
    /// polling task is often *alone* on the run queue, and each of its
    /// yields sends the baseline scheduler into the system-wide counter
    /// recalculation loop (Figure 2).
    pub io_poll_yields: u32,
    /// Maximum scheduling-trace records to keep (0 disables tracing).
    pub trace_capacity: usize,
    /// Lock-plan override for ablations: `None` (the default) lets the
    /// scheduler declare its own regime via
    /// [`Scheduler::lock_plan`](elsc_sched_api::Scheduler::lock_plan);
    /// `Some(plan)` forces one (e.g. run the multi-queue scheduler under
    /// the global lock to isolate the locking regime's contribution).
    pub lock_plan: Option<LockPlan>,
    /// Deterministic fault injection: `None` (the default) runs a clean
    /// machine; `Some(plan)` perturbs it at the plan's rates, driven by
    /// [`MachineConfig::fault_seed`].
    pub faults: Option<FaultPlan>,
    /// Seed for the fault-injection decision streams — deliberately
    /// separate from [`MachineConfig::seed`] so the same workload can be
    /// replayed under different fault schedules (and vice versa).
    pub fault_seed: u64,
    /// Run the differential scheduler oracle beside every `schedule()`
    /// call. Pure observation: enabling it never changes the schedule.
    pub oracle: bool,
    /// Policy-runtime watchdog: eject an interpreted policy that picks
    /// idle this many *consecutive* decisions while a runnable,
    /// unclaimed task sits on the run queue. Ignored for native
    /// schedulers.
    pub policy_starve_k: u32,
    /// This machine's node id in a federated cluster (0 for the first
    /// node and for every standalone run). Purely an identity: it labels
    /// per-node sections of the merged cluster report and error
    /// messages, and never influences the schedule.
    pub node_id: u32,
    /// Execution backend for loaded `.pol` policies: `None` (the
    /// default) keeps the scheduler's own default (the bytecode VM);
    /// `Some(backend)` forces one. Ignored by native schedulers.
    pub policy_backend: Option<PolicyBackend>,
    /// Attach the engine-throughput summary (`events_dispatched`,
    /// `sim_events_per_sec`) to the run report. Off by default so
    /// pre-existing cells serialize exactly as before; the `mega` lab
    /// builtin turns it on. Every reported value derives from virtual
    /// time, so same-seed runs stay byte-identical.
    pub engine_metrics: bool,
    /// Emit per-decision `sched_candidate`/`sched_decision` trace events
    /// — the supervised dataset `elsc-learn` trains on. Off by default:
    /// tracing decisions roughly doubles trace volume and existing traces
    /// must stay byte-identical. Pure observation; never changes the
    /// schedule or the meter.
    pub decision_trace: bool,
    /// Learned-scheduler watchdog: eject a `learned:<model>` scheduler
    /// after this many *consecutive* mispredictions (the accuracy-
    /// collapse analogue of [`MachineConfig::policy_starve_k`]). Ignored
    /// for native and policy schedulers.
    pub learn_eject_k: u32,
    /// Wall-clock-only busy-work multiplier on the event dispatch loop,
    /// used by the CI engine job to prove the `wall_ratio` gate trips.
    /// `1` (the default) adds no work. Never touches virtual time, so
    /// reports stay byte-identical at any setting.
    pub engine_slowdown: u64,
}

impl MachineConfig {
    /// Default frequency: 400 MHz.
    pub const DEFAULT_HZ: u64 = 400_000_000;

    fn with_sched(sched: SchedConfig) -> Self {
        MachineConfig {
            sched,
            cpu_hz: Self::DEFAULT_HZ,
            tick_cycles: Self::DEFAULT_HZ / 100,
            costs: CostModel::default(),
            max_cycles: 4_000_000_000_000, // 10 000 simulated seconds
            seed: 0x5EED_CAFE,
            io_poll_yields: 2,
            trace_capacity: 0,
            lock_plan: None,
            faults: None,
            fault_seed: 0xFA17_5EED,
            oracle: false,
            policy_starve_k: 8,
            policy_backend: None,
            node_id: 0,
            engine_metrics: false,
            decision_trace: false,
            learn_eject_k: 8,
            engine_slowdown: 1,
        }
    }

    /// A uniprocessor machine running a non-SMP kernel build ("UP").
    pub fn up() -> Self {
        Self::with_sched(SchedConfig::up())
    }

    /// An SMP kernel build on `nr_cpus` processors ("1P", "2P", "4P").
    pub fn smp(nr_cpus: usize) -> Self {
        Self::with_sched(SchedConfig::smp(nr_cpus))
    }

    /// An SMP kernel build over a declared topology tree ("2N4C2T"); the
    /// CPU count follows the tree. A flat tree is byte-identical to
    /// [`MachineConfig::smp`] with the same CPU count.
    pub fn topo(topology: elsc_simcore::Topology) -> Self {
        Self::with_sched(SchedConfig::topo(topology))
    }

    /// Builder-style engine-throughput metrics toggle.
    pub fn with_engine_metrics(mut self, on: bool) -> Self {
        self.engine_metrics = on;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style cost-model override.
    pub fn with_costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Builder-style watchdog override (in simulated seconds).
    pub fn with_max_secs(mut self, secs: f64) -> Self {
        self.max_cycles = (secs * self.cpu_hz as f64) as u64;
        self
    }

    /// Builder-style override of the spin-then-block poll count.
    pub fn with_poll_yields(mut self, polls: u32) -> Self {
        self.io_poll_yields = polls;
        self
    }

    /// Builder-style trace enablement.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Builder-style lock-plan override (`None` restores the scheduler's
    /// own declared plan).
    pub fn with_lock_plan(mut self, plan: Option<LockPlan>) -> Self {
        self.lock_plan = plan;
        self
    }

    /// Builder-style fault-plan enablement (`None` disables injection).
    pub fn with_faults(mut self, plan: Option<FaultPlan>) -> Self {
        self.faults = plan;
        self
    }

    /// Builder-style fault-seed override.
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Builder-style oracle enablement.
    pub fn with_oracle(mut self, on: bool) -> Self {
        self.oracle = on;
        self
    }

    /// Builder-style override of the policy starvation-watchdog
    /// threshold (consecutive idle picks with runnable work queued).
    pub fn with_policy_starve_k(mut self, k: u32) -> Self {
        self.policy_starve_k = k.max(1);
        self
    }

    /// Builder-style policy-backend override (`None` keeps the
    /// scheduler's default backend, the bytecode VM).
    pub fn with_policy_backend(mut self, backend: Option<PolicyBackend>) -> Self {
        self.policy_backend = backend;
        self
    }

    /// Builder-style cluster node identity.
    pub fn with_node_id(mut self, node: u32) -> Self {
        self.node_id = node;
        self
    }

    /// Builder-style decision-trace enablement (requires
    /// [`MachineConfig::with_trace`] capacity to see the events).
    pub fn with_decision_trace(mut self, on: bool) -> Self {
        self.decision_trace = on;
        self
    }

    /// Builder-style override of the learned-scheduler ejection
    /// threshold (consecutive mispredictions).
    pub fn with_learn_eject_k(mut self, k: u32) -> Self {
        self.learn_eject_k = k.max(1);
        self
    }

    /// Builder-style engine-slowdown override (wall-clock only; `1`
    /// disables).
    pub fn with_engine_slowdown(mut self, factor: u64) -> Self {
        self.engine_slowdown = factor.max(1);
        self
    }

    /// Number of processors.
    pub fn nr_cpus(&self) -> usize {
        self.sched.nr_cpus
    }

    /// Report label ("UP", "2P", ...).
    pub fn label(&self) -> String {
        self.sched.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn up_defaults() {
        let c = MachineConfig::up();
        assert_eq!(c.nr_cpus(), 1);
        assert!(!c.sched.smp);
        assert_eq!(c.tick_cycles, c.cpu_hz / 100, "10 ms tick");
        assert_eq!(c.label(), "UP");
    }

    #[test]
    fn smp_labels_and_cpus() {
        let c = MachineConfig::smp(4);
        assert_eq!(c.nr_cpus(), 4);
        assert!(c.sched.smp);
        assert_eq!(c.label(), "4P");
    }

    #[test]
    fn builder_overrides() {
        let c = MachineConfig::up().with_seed(42).with_max_secs(2.0);
        assert_eq!(c.seed, 42);
        assert_eq!(c.max_cycles, 2 * MachineConfig::DEFAULT_HZ);
    }

    #[test]
    fn chaos_defaults_off() {
        let c = MachineConfig::up();
        assert!(c.faults.is_none());
        assert!(!c.oracle);
        let c = c
            .with_faults(Some(FaultPlan::light()))
            .with_fault_seed(7)
            .with_oracle(true);
        assert_eq!(c.faults.as_ref().unwrap().label(), "light");
        assert_eq!(c.fault_seed, 7);
        assert!(c.oracle);
    }

    #[test]
    fn topo_config_follows_the_tree() {
        let c = MachineConfig::topo("2N4C2T".parse().unwrap());
        assert_eq!(c.nr_cpus(), 16);
        assert!(c.sched.smp);
        assert_eq!(c.label(), "2N4C2T");
    }

    #[test]
    fn lock_plan_defaults_to_scheduler_choice() {
        assert_eq!(MachineConfig::smp(2).lock_plan, None);
        let c = MachineConfig::smp(2).with_lock_plan(Some(LockPlan::PerCpu));
        assert_eq!(c.lock_plan, Some(LockPlan::PerCpu));
    }
}
