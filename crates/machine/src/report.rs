//! Run reports and the workload metric ledger.

use std::collections::BTreeMap;
use std::fmt;

use elsc_chaos::ChaosSummary;
use elsc_obs::json::{array, num, Obj};
use elsc_obs::{stats_json, Percentiles, ProfileReport};
use elsc_simcore::{Cycles, DomainStats, Histogram};
use elsc_stats::SchedStats;

/// Named counters workloads increment from inside behaviours
/// (e.g. `"messages"` for VolanoMark throughput).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ledger {
    map: BTreeMap<&'static str, u64>,
}

/// Named sample distributions workloads record from inside behaviours
/// (e.g. `"response_latency"` for the httpd experiment). The machine adds
/// its own built-in distributions: `"wake_latency"` (wakeup to dispatch)
/// and `"runqueue_len"` (run-queue length sampled at every `schedule()`).
#[derive(Clone, Debug, Default)]
pub struct Distributions {
    map: BTreeMap<&'static str, Histogram>,
}

impl Distributions {
    /// Creates an empty bank.
    pub fn new() -> Distributions {
        Distributions::default()
    }

    /// Records a sample into distribution `key`.
    pub fn record(&mut self, key: &'static str, v: u64) {
        self.map.entry(key).or_default().record(v);
    }

    /// Reads a distribution; `None` if nothing was recorded under `key`.
    pub fn get(&self, key: &str) -> Option<&Histogram> {
        self.map.get(key)
    }

    /// Iterates over `(name, histogram)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.map.iter().map(|(&k, v)| (k, v))
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Adds `n` to counter `key`.
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.map.entry(key).or_insert(0) += n;
    }

    /// Reads counter `key` (0 if never written).
    pub fn get(&self, key: &str) -> u64 {
        self.map.get(key).copied().unwrap_or(0)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// Whether no counter was ever written.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Policy-runtime summary: load-time facts plus what the machine's
/// watchdog observed over the run. Present only when the run was driven
/// by an interpreted `.pol` scheduler, so native runs serialize exactly
/// as they did before the policy runtime existed.
#[derive(Clone, Debug)]
pub struct PolicySummary {
    /// The policy's reported name (`policy:<name>`).
    pub name: &'static str,
    /// Verifier's static worst-case instruction bound across all hooks.
    pub static_insns: u64,
    /// The per-decision runtime instruction budget in force.
    pub budget: u64,
    /// Which backend executed the policy: `"interp"` (reference
    /// tree-walker) or `"vm"` (register bytecode, the default).
    pub backend: &'static str,
    /// Total interpreter instructions executed over the run (frozen at
    /// ejection time if the watchdog fired).
    pub insns_executed: u64,
    /// Whether the watchdog ejected the policy mid-run.
    pub ejected: bool,
    /// Virtual time of the ejection, if any.
    pub ejected_at: Option<Cycles>,
    /// Why the watchdog fired (`"budget_exhausted"`, `"bad_pick"`,
    /// `"state_corrupt"`, `"starvation"`), if it did.
    pub eject_reason: Option<&'static str>,
}

impl PolicySummary {
    /// Renders the summary as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = Obj::new()
            .str("name", self.name)
            .u64("static_insns", self.static_insns)
            .u64("budget", self.budget)
            .str("backend", self.backend)
            .u64("insns_executed", self.insns_executed)
            .raw("ejected", bool_json(self.ejected));
        if let Some(at) = self.ejected_at {
            obj = obj.u64("ejected_at", at.get());
        }
        if let Some(r) = self.eject_reason {
            obj = obj.str("eject_reason", r);
        }
        obj.build()
    }
}

/// Learned-scheduler summary: model identity plus the prediction record
/// the machine's watchdog observed over the run. Present only when the
/// run was driven by a `learned:<model>` scheduler, so native and policy
/// runs serialize exactly as before the learned subsystem existed.
#[derive(Clone, Debug)]
pub struct LearnedSummary {
    /// The scheduler's reported name (`learned:<model>`).
    pub name: &'static str,
    /// Model architecture (`"logreg"` or `"mlp"`).
    pub arch: &'static str,
    /// Predictions the model made (one per non-idle decision; frozen at
    /// ejection time if the watchdog fired).
    pub predictions: u64,
    /// Predictions that survived the bounded goodness verification.
    pub hits: u64,
    /// Whether the watchdog ejected the model mid-run.
    pub ejected: bool,
    /// Virtual time of the ejection, if any.
    pub ejected_at: Option<Cycles>,
    /// Why the watchdog fired (`"accuracy_collapse"`), if it did.
    pub eject_reason: Option<&'static str>,
}

impl LearnedSummary {
    /// Verified predictions that failed (fell back to the native scan).
    pub fn mispredicts(&self) -> u64 {
        self.predictions - self.hits
    }

    /// Fraction of predictions that verified (1.0 when none were made,
    /// so an unexercised model doesn't read as broken).
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            self.hits as f64 / self.predictions as f64
        }
    }

    /// Renders the summary as a JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = Obj::new()
            .str("name", self.name)
            .str("arch", self.arch)
            .u64("predictions", self.predictions)
            .u64("hits", self.hits)
            .u64("mispredicts", self.mispredicts())
            .f64("accuracy", self.accuracy())
            .raw("ejected", bool_json(self.ejected));
        if let Some(at) = self.ejected_at {
            obj = obj.u64("ejected_at", at.get());
        }
        if let Some(r) = self.eject_reason {
            obj = obj.str("eject_reason", r);
        }
        obj.build()
    }
}

/// The outcome of one machine run.
///
/// A `RunReport` is plain owned data and therefore `Send`: the
/// experiment orchestrator (`elsc-lab`) runs each cell's machine on a
/// worker thread and ships the report back to its coordinator. The
/// [`Machine`](crate::Machine) itself is *not* `Send` (workload
/// behaviours may hold `Rc` state), which is why cells cross threads as
/// `(config in, report out)` pairs, never as machines.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Scheduler name ("reg", "elsc", ...).
    pub scheduler: &'static str,
    /// Machine label ("UP", "2P", ...).
    pub config: String,
    /// The seed the run was driven by (all randomness derives from it).
    pub seed: u64,
    /// Virtual time at which the last user task exited.
    pub elapsed: Cycles,
    /// Clock frequency, for second conversions.
    pub cpu_hz: u64,
    /// Scheduler statistics accumulated over the run.
    pub stats: SchedStats,
    /// Workload metrics.
    pub ledger: Ledger,
    /// Cycles CPUs spent spinning on the run-queue lock domain(s)
    /// (busy-interval waits, excluding cache-line transfer costs).
    pub lock_spin: Cycles,
    /// Run-queue lock-domain acquisitions.
    pub lock_acquisitions: u64,
    /// The locking regime the run used ("global", "percpu", "sharded:N").
    pub lock_plan: String,
    /// Per-domain lock statistics, in domain order. One entry under the
    /// global plan; one per CPU (or shard) under sharded plans. Spin
    /// cycles here sum exactly to [`RunReport::lock_spin`].
    pub lock_domains: Vec<DomainStats>,
    /// Tasks created over the run.
    pub tasks_spawned: u64,
    /// Total messages delivered through pipes.
    pub messages_read: u64,
    /// Sample distributions: machine built-ins (`wake_latency`,
    /// `runqueue_len`) plus whatever the workload recorded.
    pub dists: Distributions,
    /// Trace records dropped by the bounded ring sink (0 unless the ring
    /// overflowed; attached file/callback sinks never drop).
    pub trace_dropped: u64,
    /// Cycle-attribution profile: every metered kernel cycle broken down
    /// per CPU × scheduler phase × cost kind.
    pub profile: ProfileReport,
    /// Whether the cycle-attribution conservation invariant held at the
    /// end of the run: every kernel cycle the machine charged anywhere
    /// must appear in the profile (`kernel_cycles == profile.total()`).
    /// Debug builds assert this; release builds record it here so
    /// downstream gates (`elsc lab`) can fail runs that violate it.
    pub conservation_ok: bool,
    /// Chaos summary: fault-injection counts and oracle verdicts.
    /// `None` when neither faults nor the oracle were enabled, so clean
    /// runs serialize exactly as they did before chaos existed.
    pub chaos: Option<ChaosSummary>,
    /// Policy-runtime summary: `None` for native schedulers.
    pub policy: Option<PolicySummary>,
    /// Learned-scheduler summary: `None` unless the run was driven by a
    /// `learned:<model>` scheduler.
    pub learned: Option<LearnedSummary>,
    /// Engine-throughput summary: `None` unless the run was configured
    /// with `engine_metrics`, so pre-existing cells serialize exactly as
    /// they did before the mega-scale engine existed.
    pub engine: Option<EngineSummary>,
    /// Topology summary: `None` on flat trees (the classic model), so
    /// every pre-topology report serializes exactly as it did before.
    pub topology: Option<TopologySummary>,
}

/// The declared topology shape plus the distance breakdown of every task
/// migration the run performed. Only multi-level trees produce one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologySummary {
    /// The topology grammar string ("2N4C2T", "2P2N4C2T", ...).
    pub shape: String,
    /// NUMA nodes in the tree.
    pub nr_nodes: u64,
    /// SMT threads per core.
    pub threads_per_core: u64,
    /// Migrations between SMT siblings of one core (shared L1/L2).
    pub migrations_same_core: u64,
    /// Migrations within one NUMA node, across cores (shared LLC).
    pub migrations_same_node: u64,
    /// Migrations crossing a NUMA node boundary (the expensive kind the
    /// topology-aware schedulers exist to avoid).
    pub migrations_cross_node: u64,
}

impl TopologySummary {
    /// Renders the summary as a JSON object.
    pub fn to_json(&self) -> String {
        Obj::new()
            .str("shape", &self.shape)
            .u64("nr_nodes", self.nr_nodes)
            .u64("threads_per_core", self.threads_per_core)
            .u64("migrations_same_core", self.migrations_same_core)
            .u64("migrations_same_node", self.migrations_same_node)
            .u64("migrations_cross_node", self.migrations_cross_node)
            .build()
    }
}

/// Simulator-engine throughput for mega-scale runs.
///
/// Both values derive from deterministic counters and *virtual* time —
/// never the wall clock — so reports embedding this summary remain
/// byte-identical across machines, worker counts, and reruns. Wall-clock
/// throughput is available separately (and unserialized) via
/// `Machine::wall_seconds()`.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSummary {
    /// Discrete events the machine dispatched over the run.
    pub events_dispatched: u64,
    /// Events dispatched per elapsed *virtual* second.
    pub sim_events_per_sec: f64,
}

impl EngineSummary {
    /// Renders the summary as a JSON object.
    pub fn to_json(&self) -> String {
        Obj::new()
            .u64("events_dispatched", self.events_dispatched)
            .f64("sim_events_per_sec", self.sim_events_per_sec)
            .build()
    }
}

impl RunReport {
    /// Elapsed virtual seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed.as_secs(self.cpu_hz)
    }

    /// Throughput of a ledger counter in events per virtual second.
    pub fn per_sec(&self, key: &str) -> f64 {
        let secs = self.elapsed_secs();
        if secs == 0.0 {
            0.0
        } else {
            self.ledger.get(key) as f64 / secs
        }
    }

    /// Wakeup-to-dispatch latency percentiles (p50/p90/p99/p999), or
    /// `None` if nothing ever woke up.
    pub fn wake_latency(&self) -> Option<Percentiles> {
        self.dists.get("wake_latency").map(Percentiles::of)
    }

    /// Renders the whole report as one machine-readable JSON object:
    /// run metadata, scheduler statistics, the cycle-attribution profile,
    /// wakeup-latency percentiles, ledger counters, and distribution
    /// summaries. Deterministic: same-seed runs serialize byte-identically.
    pub fn to_json(&self) -> String {
        let ledger = Obj::new();
        let ledger = self
            .ledger
            .iter()
            .fold(ledger, |o, (k, v)| o.u64(k, v))
            .build();
        let dists = array(self.dists.iter().map(|(k, h)| {
            Obj::new()
                .str("name", k)
                .raw("percentiles", Percentiles::of(h).to_json())
                .build()
        }));
        let mut obj = Obj::new()
            .str("scheduler", self.scheduler)
            .str("config", &self.config)
            .u64("seed", self.seed)
            .raw("conservation_ok", bool_json(self.conservation_ok))
            .u64("elapsed_cycles", self.elapsed.get())
            .u64("cpu_hz", self.cpu_hz)
            .f64("elapsed_secs", self.elapsed_secs())
            .u64("lock_spin_cycles", self.lock_spin.get())
            .u64("lock_acquisitions", self.lock_acquisitions)
            .str("lock_plan", &self.lock_plan)
            .raw(
                "lock_domains",
                array(self.lock_domains.iter().enumerate().map(|(i, d)| {
                    Obj::new()
                        .u64("domain", i as u64)
                        .u64("spin_cycles", d.spin_cycles)
                        .u64("acquisitions", d.acquisitions)
                        .u64("contended", d.contended)
                        .u64("held_cycles", d.held_cycles)
                        .build()
                })),
            )
            .u64("tasks_spawned", self.tasks_spawned)
            .u64("messages_read", self.messages_read)
            .u64("trace_dropped", self.trace_dropped)
            .raw("stats", stats_json(&self.stats))
            .raw("profile", self.profile.to_json())
            .raw("ledger", ledger)
            .raw("distributions", dists);
        if let Some(p) = self.wake_latency() {
            obj = obj.raw("wake_latency", p.to_json());
        }
        if let Some(c) = &self.chaos {
            obj = obj.raw("chaos", c.to_json());
        }
        if let Some(p) = &self.policy {
            obj = obj.raw("policy", p.to_json());
        }
        if let Some(l) = &self.learned {
            obj = obj.raw("learned", l.to_json());
        }
        if let Some(e) = &self.engine {
            obj = obj.raw("engine", e.to_json());
        }
        if let Some(t) = &self.topology {
            obj = obj.raw("topology", t.to_json());
        }
        obj.build()
    }
}

/// Renders a bool as JSON.
fn bool_json(v: bool) -> &'static str {
    if v {
        "true"
    } else {
        "false"
    }
}

// Compile-time Send audit: cell configs go *into* lab workers and
// reports come *out*, so both ends of that channel must be `Send`.
// (`Machine` deliberately is not — behaviours may hold `Rc`.)
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<RunReport>();
    assert_send::<Ledger>();
    assert_send::<Distributions>();
    assert_send::<crate::config::MachineConfig>();
};

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{} / {}] elapsed {:.3}s ({} cycles)",
            self.scheduler,
            self.config,
            self.elapsed_secs(),
            self.elapsed
        )?;
        let t = self.stats.total();
        writeln!(
            f,
            "  sched: calls={} cyc/call={:.0} examined/call={:.2} recalcs={} new_cpu={}",
            t.sched_calls,
            t.cycles_per_schedule(),
            t.tasks_examined_per_schedule(),
            t.recalc_entries,
            t.picked_new_cpu
        )?;
        writeln!(
            f,
            "  lock: plan={} spin={} acq={}  tasks={}  msgs={}",
            self.lock_plan,
            self.lock_spin,
            self.lock_acquisitions,
            self.tasks_spawned,
            self.messages_read
        )?;
        if self.lock_domains.len() > 1 {
            for (i, d) in self.lock_domains.iter().enumerate() {
                writeln!(
                    f,
                    "    domain{i}: spin={} acq={} contended={} held={}",
                    d.spin_cycles, d.acquisitions, d.contended, d.held_cycles
                )?;
            }
        }
        for (k, v) in self.ledger.iter() {
            writeln!(f, "  {k} = {v}")?;
        }
        for (k, h) in self.dists.iter() {
            writeln!(f, "  {k}: {}", h.summary())?;
        }
        if self.trace_dropped > 0 {
            writeln!(
                f,
                "  warning: trace ring dropped {} records (raise trace capacity \
                 or attach a --trace-out sink)",
                self.trace_dropped
            )?;
        }
        if let Some(c) = &self.chaos {
            if let Some(plan) = &c.fault_plan {
                writeln!(
                    f,
                    "  chaos: plan={} fault_seed={:#x} injected={}",
                    plan,
                    c.fault_seed,
                    c.counts.total()
                )?;
            }
            if let Some(o) = &c.oracle {
                writeln!(
                    f,
                    "  oracle: decisions={} matches={} ties={} yield_reruns={} \
                     truncations={} affinity={} design={} unexplained={} violations={}",
                    o.decisions,
                    o.matches,
                    o.ties,
                    o.yield_reruns,
                    o.truncations,
                    o.affinity,
                    o.design,
                    o.unexplained,
                    o.invariant_violations
                )?;
                if o.topology > 0 {
                    writeln!(f, "    topology-motivated: {}", o.topology)?;
                }
                if let Some(d) = &o.first_unexplained {
                    writeln!(f, "    first unexplained: {d}")?;
                }
                if let Some(d) = &o.first_violation {
                    writeln!(f, "    first violation: {d}")?;
                }
            }
        }
        if let Some(p) = &self.policy {
            write!(
                f,
                "  policy: {} [{}] static_insns={} budget={} insns={}",
                p.name, p.backend, p.static_insns, p.budget, p.insns_executed
            )?;
            if p.ejected {
                write!(
                    f,
                    " EJECTED at {} ({})",
                    p.ejected_at.unwrap_or(Cycles::ZERO),
                    p.eject_reason.unwrap_or("?")
                )?;
            }
            writeln!(f)?;
        }
        if let Some(l) = &self.learned {
            write!(
                f,
                "  learned: {} [{}] predictions={} hits={} mispredicts={} accuracy={:.3}",
                l.name,
                l.arch,
                l.predictions,
                l.hits,
                l.mispredicts(),
                l.accuracy()
            )?;
            if l.ejected {
                write!(
                    f,
                    " EJECTED at {} ({})",
                    l.ejected_at.unwrap_or(Cycles::ZERO),
                    l.eject_reason.unwrap_or("?")
                )?;
            }
            writeln!(f)?;
        }
        if let Some(e) = &self.engine {
            writeln!(
                f,
                "  engine: events_dispatched={} sim_events_per_sec={}",
                e.events_dispatched,
                num(e.sim_events_per_sec)
            )?;
        }
        if let Some(t) = &self.topology {
            writeln!(
                f,
                "  topology: shape={} migrations same_core={} same_node={} cross_node={}",
                t.shape, t.migrations_same_core, t.migrations_same_node, t.migrations_cross_node
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let mut l = Ledger::new();
        assert_eq!(l.get("x"), 0);
        l.add("x", 3);
        l.add("x", 4);
        l.add("y", 1);
        assert_eq!(l.get("x"), 7);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![("x", 7), ("y", 1)]);
        assert!(!l.is_empty());
    }

    fn report() -> RunReport {
        let mut ledger = Ledger::new();
        ledger.add("messages", 4000);
        RunReport {
            scheduler: "elsc",
            config: "2P".into(),
            seed: 7,
            elapsed: Cycles(800_000_000),
            cpu_hz: 400_000_000,
            stats: SchedStats::new(2),
            ledger,
            lock_spin: Cycles(123),
            lock_acquisitions: 9,
            lock_plan: "global".into(),
            lock_domains: vec![DomainStats {
                spin_cycles: 123,
                acquisitions: 9,
                contended: 2,
                held_cycles: 400,
            }],
            tasks_spawned: 5,
            messages_read: 4000,
            dists: Distributions::new(),
            trace_dropped: 0,
            profile: ProfileReport::empty(2),
            conservation_ok: true,
            chaos: None,
            policy: None,
            learned: None,
            engine: None,
            topology: None,
        }
    }

    #[test]
    fn throughput_math() {
        let r = report();
        assert_eq!(r.elapsed_secs(), 2.0);
        assert_eq!(r.per_sec("messages"), 2000.0);
        assert_eq!(r.per_sec("missing"), 0.0);
    }

    #[test]
    fn distributions_record_and_iterate() {
        let mut d = Distributions::new();
        assert!(d.is_empty());
        d.record("lat", 10);
        d.record("lat", 30);
        d.record("other", 1);
        assert_eq!(d.get("lat").unwrap().count(), 2);
        assert_eq!(d.get("lat").unwrap().mean(), 20.0);
        assert!(d.get("missing").is_none());
        let names: Vec<_> = d.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["lat", "other"]);
    }

    #[test]
    fn display_includes_distributions() {
        let mut r = report();
        r.dists.record("wake_latency", 500);
        let text = r.to_string();
        assert!(text.contains("wake_latency"));
        assert!(text.contains("n=1"));
    }

    #[test]
    fn display_mentions_key_facts() {
        let text = report().to_string();
        assert!(text.contains("elsc"));
        assert!(text.contains("2P"));
        assert!(text.contains("messages = 4000"));
    }

    #[test]
    fn topology_summary_json_only_when_present() {
        let r = report();
        assert!(!r.to_json().contains("\"topology\""));
        let mut r = report();
        r.topology = Some(TopologySummary {
            shape: "2N4C2T".into(),
            nr_nodes: 2,
            threads_per_core: 2,
            migrations_same_core: 10,
            migrations_same_node: 5,
            migrations_cross_node: 1,
        });
        let j = r.to_json();
        assert!(j.contains(
            "\"topology\":{\"shape\":\"2N4C2T\",\"nr_nodes\":2,\
             \"threads_per_core\":2,\"migrations_same_core\":10,\
             \"migrations_same_node\":5,\"migrations_cross_node\":1}"
        ));
        assert!(r.to_string().contains("shape=2N4C2T"));
    }

    #[test]
    fn policy_summary_json_only_when_present() {
        let r = report();
        assert!(!r.to_json().contains("\"policy\""));
        let mut r = report();
        r.policy = Some(PolicySummary {
            name: "policy:starve",
            static_insns: 12,
            budget: 65_536,
            backend: "vm",
            insns_executed: 480,
            ejected: true,
            ejected_at: Some(Cycles(4_000_000)),
            eject_reason: Some("starvation"),
        });
        let j = r.to_json();
        assert!(j.contains(
            "\"policy\":{\"name\":\"policy:starve\",\"static_insns\":12,\
             \"budget\":65536,\"backend\":\"vm\",\"insns_executed\":480,\
             \"ejected\":true,\"ejected_at\":4000000,\
             \"eject_reason\":\"starvation\"}"
        ));
        let text = r.to_string();
        assert!(text.contains("EJECTED"));
        assert!(text.contains("starvation"));
    }

    #[test]
    fn learned_summary_json_only_when_present() {
        let r = report();
        assert!(!r.to_json().contains("\"learned\""));
        let mut r = report();
        r.learned = Some(LearnedSummary {
            name: "learned:volano-logreg",
            arch: "logreg",
            predictions: 100,
            hits: 80,
            ejected: false,
            ejected_at: None,
            eject_reason: None,
        });
        let j = r.to_json();
        assert!(j.contains(
            "\"learned\":{\"name\":\"learned:volano-logreg\",\
             \"arch\":\"logreg\",\"predictions\":100,\"hits\":80,\
             \"mispredicts\":20,\"accuracy\":0.8,\"ejected\":false}"
        ));
        assert!(r.to_string().contains("accuracy=0.800"));
    }

    #[test]
    fn learned_summary_accuracy_edge_cases() {
        let l = LearnedSummary {
            name: "learned:m",
            arch: "mlp",
            predictions: 0,
            hits: 0,
            ejected: true,
            ejected_at: Some(Cycles(5)),
            eject_reason: Some("accuracy_collapse"),
        };
        assert_eq!(l.accuracy(), 1.0);
        assert_eq!(l.mispredicts(), 0);
        assert!(l
            .to_json()
            .contains("\"eject_reason\":\"accuracy_collapse\""));
    }
}
