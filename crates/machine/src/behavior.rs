//! Task behaviours: the programs that run on the simulated machine.
//!
//! A behaviour is a coroutine-style state machine. Each time its task is
//! (re)dispatched with no work in flight, the machine calls
//! [`Behavior::resume`], which returns an [`Op`]: *compute this many
//! cycles, then perform this syscall*. Blocking syscalls suspend the task;
//! when it runs again the syscall is retried transparently, and its result
//! is visible through [`SysView`] on the next `resume`.

use elsc_ktask::{TaskSpec, Tid};
use elsc_netsim::{Msg, PipeId};
use elsc_simcore::{Cycles, SimRng};

use crate::report::{Distributions, Ledger};

/// A system call a task performs after its compute burst.
pub enum Syscall {
    /// No syscall: fetch the next op immediately (pure compute phases).
    Nop,
    /// `sys_sched_yield()`: set `SCHED_YIELD` and call `schedule()`.
    Yield,
    /// Terminate the task.
    Exit,
    /// Block for the given number of cycles (timer sleep).
    Sleep(u64),
    /// Blocking read of one message from a pipe.
    Read(PipeId),
    /// Blocking write of a message into a pipe.
    Write(PipeId, Msg),
    /// Close a pipe: every task parked on it (readers *and* writers) is
    /// woken immediately so it can observe `Closed` — tasks must never
    /// stay parked on a dead pipe until the deadlock detector trips.
    Close(PipeId),
    /// Fork a new task running the given behaviour.
    Spawn(SpawnReq),
}

impl core::fmt::Debug for Syscall {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Syscall::Nop => write!(f, "Nop"),
            Syscall::Yield => write!(f, "Yield"),
            Syscall::Exit => write!(f, "Exit"),
            Syscall::Sleep(d) => write!(f, "Sleep({d})"),
            Syscall::Read(p) => write!(f, "Read({p:?})"),
            Syscall::Write(p, m) => write!(f, "Write({p:?}, tag={})", m.tag),
            Syscall::Close(p) => write!(f, "Close({p:?})"),
            Syscall::Spawn(_) => write!(f, "Spawn(..)"),
        }
    }
}

/// A request to create a new task.
pub struct SpawnReq {
    /// Kernel-visible attributes of the new task.
    pub spec: TaskSpec,
    /// Its program.
    pub behavior: Box<dyn Behavior>,
}

/// One step of a behaviour: compute, then a syscall.
#[derive(Debug)]
pub struct Op {
    /// Cycles of CPU work before the syscall (clamped to at least 1).
    pub compute: u64,
    /// The syscall to perform afterwards.
    pub then: Syscall,
}

impl Op {
    /// Compute `cycles`, then perform `then`.
    pub fn compute(cycles: u64, then: Syscall) -> Op {
        Op {
            compute: cycles,
            then,
        }
    }

    /// Exit immediately (after a minimal teardown burst).
    pub fn exit() -> Op {
        Op {
            compute: 1,
            then: Syscall::Exit,
        }
    }

    /// Yield the processor after `cycles` of work.
    pub fn yield_after(cycles: u64) -> Op {
        Op {
            compute: cycles,
            then: Syscall::Yield,
        }
    }

    /// Read from `pipe` after `cycles` of work.
    pub fn read_after(cycles: u64, pipe: PipeId) -> Op {
        Op {
            compute: cycles,
            then: Syscall::Read(pipe),
        }
    }

    /// Write `msg` to `pipe` after `cycles` of work.
    pub fn write_after(cycles: u64, pipe: PipeId, msg: Msg) -> Op {
        Op {
            compute: cycles,
            then: Syscall::Write(pipe, msg),
        }
    }

    /// Close `pipe` after `cycles` of work.
    pub fn close_after(cycles: u64, pipe: PipeId) -> Op {
        Op {
            compute: cycles,
            then: Syscall::Close(pipe),
        }
    }

    /// Sleep for `dur` cycles after `cycles` of work.
    pub fn sleep_after(cycles: u64, dur: u64) -> Op {
        Op {
            compute: cycles,
            then: Syscall::Sleep(dur),
        }
    }
}

/// The view of the world a behaviour gets while deciding its next op.
pub struct SysView<'a> {
    /// This task's handle.
    pub tid: Tid,
    /// Current virtual time.
    pub now: Cycles,
    /// Result of the last completed `Read` (`None` after EOF/close).
    pub last_read: Option<Msg>,
    /// Handle of the last task this task spawned.
    pub last_spawned: Option<Tid>,
    /// This task's private deterministic random stream.
    pub rng: &'a mut SimRng,
    /// Shared named counters for workload-level metrics.
    pub ledger: &'a mut Ledger,
    /// Shared sample distributions (latencies, sizes, ...).
    pub dists: &'a mut Distributions,
}

/// A task's program.
pub trait Behavior {
    /// Produces the next op. Called when the task is dispatched with no
    /// compute or syscall in flight; the previous syscall's results are in
    /// `sys`.
    fn resume(&mut self, sys: &mut SysView<'_>) -> Op;
}

/// A behaviour that runs a fixed list of ops then exits — handy in tests.
pub struct Script {
    ops: std::vec::IntoIter<Op>,
}

impl Script {
    /// Creates a script from ops (an `Exit` is appended automatically).
    pub fn new(ops: Vec<Op>) -> Script {
        Script {
            ops: ops.into_iter(),
        }
    }
}

impl Behavior for Script {
    fn resume(&mut self, _sys: &mut SysView<'_>) -> Op {
        self.ops.next().unwrap_or_else(Op::exit)
    }
}

/// A behaviour that spins forever: compute bursts separated by yields.
/// Used by the synthetic stress workload to hold the run-queue length at
/// an exact value.
pub struct Spinner {
    /// Cycles per burst.
    pub burst: u64,
}

impl Behavior for Spinner {
    fn resume(&mut self, _sys: &mut SysView<'_>) -> Op {
        Op::yield_after(self.burst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_builders() {
        let op = Op::exit();
        assert!(matches!(op.then, Syscall::Exit));
        let op = Op::yield_after(5);
        assert_eq!(op.compute, 5);
        assert!(matches!(op.then, Syscall::Yield));
        let op = Op::read_after(3, PipeId(1));
        assert!(matches!(op.then, Syscall::Read(PipeId(1))));
        let op = Op::sleep_after(1, 100);
        assert!(matches!(op.then, Syscall::Sleep(100)));
    }

    #[test]
    fn script_plays_ops_then_exits() {
        let mut rng = SimRng::new(1);
        let mut ledger = Ledger::new();
        let mut dists = Distributions::new();
        let mut sys = SysView {
            tid: Tid::from_raw(0, 0),
            now: Cycles::ZERO,
            last_read: None,
            last_spawned: None,
            rng: &mut rng,
            ledger: &mut ledger,
            dists: &mut dists,
        };
        let mut s = Script::new(vec![Op::yield_after(1), Op::yield_after(2)]);
        assert!(matches!(s.resume(&mut sys).then, Syscall::Yield));
        assert_eq!(s.resume(&mut sys).compute, 2);
        assert!(matches!(s.resume(&mut sys).then, Syscall::Exit));
        assert!(matches!(s.resume(&mut sys).then, Syscall::Exit));
    }

    #[test]
    fn syscall_debug_formats() {
        assert_eq!(format!("{:?}", Syscall::Nop), "Nop");
        assert_eq!(format!("{:?}", Syscall::Sleep(9)), "Sleep(9)");
        assert!(format!("{:?}", Syscall::Write(PipeId(2), Msg::tagged(7))).contains("tag=7"));
    }
}
