//! Execution tracing — compatibility re-exports.
//!
//! The bounded trace log grew into the full observability subsystem in
//! `elsc-obs`: the event type gained recalc/lock/queue-depth variants,
//! and the bounded ring became one sink on an event bus that can also
//! stream JSON lines or feed callbacks. This module keeps the original
//! names alive so existing call sites (`machine.trace()`, pattern
//! matches on `TraceEvent::Switch { .. }`, ...) compile unchanged.
//!
//! * [`Trace`] is [`elsc_obs::RingSink`]: same API (`new(capacity)`,
//!   `enabled`, `record`, `records`, `dropped`, `filter`,
//!   `check_monotone`), same bounded-drop semantics.
//! * [`TraceEvent`] is [`elsc_obs::ObsEvent`]: a strict superset of the
//!   old event set.
//! * [`TraceRecord`] is [`elsc_obs::ObsRecord`].

pub use elsc_obs::{ObsEvent as TraceEvent, ObsRecord as TraceRecord, RingSink as Trace};
