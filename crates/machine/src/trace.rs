//! Execution tracing: a bounded log of scheduling events.
//!
//! Tracing answers "what actually happened" questions that aggregate
//! counters cannot: which task ran when, how a wakeup propagated, whether
//! a migration happened where expected. The trace is off by default
//! (capacity 0) and bounded — once full, further events are dropped and
//! counted, so a trace can never blow up a long run.

use elsc_ktask::{CpuId, Tid};
use elsc_simcore::Cycles;

/// One scheduling event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// `schedule()` switched `cpu` from `from` to `to`.
    Switch {
        /// The deciding CPU.
        cpu: CpuId,
        /// Outgoing task.
        from: Tid,
        /// Incoming task.
        to: Tid,
    },
    /// `wake_up_process()` made `tid` runnable.
    Wakeup {
        /// The woken task.
        tid: Tid,
        /// The CPU whose time paid for the wakeup.
        by_cpu: CpuId,
    },
    /// `tid` blocked (left the run queue voluntarily).
    Block {
        /// The blocking task.
        tid: Tid,
        /// The CPU it was running on.
        cpu: CpuId,
    },
    /// `tid` exited.
    Exit {
        /// The exiting task.
        tid: Tid,
    },
    /// A task was placed on a CPU different from its last one.
    Migrate {
        /// The migrating task.
        tid: Tid,
        /// Destination CPU.
        to_cpu: CpuId,
    },
}

/// A timestamped trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub at: Cycles,
    /// The event.
    pub event: TraceEvent,
}

/// A bounded event log.
#[derive(Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace holding at most `capacity` records (0 disables).
    pub fn new(capacity: usize) -> Trace {
        Trace {
            records: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    /// Whether recording is enabled at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an event (drops it if full or disabled).
    #[inline]
    pub fn record(&mut self, at: Cycles, event: TraceEvent) {
        if self.records.len() < self.capacity {
            self.records.push(TraceRecord { at, event });
        } else if self.capacity > 0 {
            self.dropped += 1;
        }
    }

    /// The recorded events, in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Events dropped after the trace filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over the events of one kind via a filter closure.
    pub fn filter<'a, F>(&'a self, f: F) -> impl Iterator<Item = &'a TraceRecord>
    where
        F: Fn(&TraceEvent) -> bool + 'a,
    {
        self.records.iter().filter(move |r| f(&r.event))
    }

    /// Verifies the fundamental trace invariant: timestamps are
    /// non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if time ran backwards anywhere in the log.
    pub fn check_monotone(&self) {
        for pair in self.records.windows(2) {
            assert!(
                pair[0].at <= pair[1].at,
                "trace time ran backwards: {:?} then {:?}",
                pair[0],
                pair[1]
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: u32) -> Tid {
        Tid::from_raw(i, 0)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(0);
        assert!(!t.enabled());
        t.record(Cycles(1), TraceEvent::Exit { tid: tid(1) });
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 0, "disabled is not 'full'");
    }

    #[test]
    fn bounded_capacity_drops_overflow() {
        let mut t = Trace::new(2);
        for i in 0..5 {
            t.record(Cycles(i), TraceEvent::Exit { tid: tid(i as u32) });
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn filter_selects_kinds() {
        let mut t = Trace::new(10);
        t.record(
            Cycles(1),
            TraceEvent::Wakeup {
                tid: tid(1),
                by_cpu: 0,
            },
        );
        t.record(
            Cycles(2),
            TraceEvent::Switch {
                cpu: 0,
                from: tid(0),
                to: tid(1),
            },
        );
        t.record(Cycles(3), TraceEvent::Exit { tid: tid(1) });
        let switches: Vec<_> = t
            .filter(|e| matches!(e, TraceEvent::Switch { .. }))
            .collect();
        assert_eq!(switches.len(), 1);
        assert_eq!(switches[0].at, Cycles(2));
    }

    #[test]
    fn monotone_check_passes_in_order() {
        let mut t = Trace::new(4);
        t.record(Cycles(1), TraceEvent::Exit { tid: tid(1) });
        t.record(Cycles(1), TraceEvent::Exit { tid: tid(2) });
        t.record(Cycles(5), TraceEvent::Exit { tid: tid(3) });
        t.check_monotone();
    }

    #[test]
    #[should_panic(expected = "ran backwards")]
    fn monotone_check_catches_regression() {
        let mut t = Trace::new(4);
        t.record(Cycles(5), TraceEvent::Exit { tid: tid(1) });
        t.record(Cycles(1), TraceEvent::Exit { tid: tid(2) });
        t.check_monotone();
    }
}
