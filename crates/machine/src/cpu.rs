//! Per-CPU simulation state.

use elsc_ktask::{CpuId, MmId, Tid};
use elsc_simcore::Cycles;

/// The machine-side state of one processor.
#[derive(Debug)]
pub struct CpuState {
    /// This CPU's id.
    pub id: CpuId,
    /// Its idle task (pid-0 equivalent; one per CPU, as in the kernel).
    pub idle: Tid,
    /// The task currently executing (the idle task when idle).
    pub current: Tid,
    /// The kernel's `need_resched` flag for this CPU.
    pub need_resched: bool,
    /// Generation of the outstanding `Resume` event; bumping it cancels
    /// the event (stale generations are dropped on arrival).
    pub gen: u64,
    /// When the current compute segment ends (meaningful while a user
    /// task is dispatched).
    pub busy_until: Cycles,
    /// When the current task was dispatched (for work accounting), or
    /// `None` while idle.
    pub running_since: Option<Cycles>,
    /// When the CPU last became idle (for idle accounting).
    pub idle_since: Cycles,
    /// The address space currently loaded (lazy TLB: the idle task
    /// borrows the previous task's mm, as `active_mm` does in the
    /// kernel, so idle transitions never flush).
    pub active_mm: MmId,
}

impl CpuState {
    /// Creates a CPU that starts idle at time zero.
    pub fn new(id: CpuId, idle: Tid) -> CpuState {
        CpuState {
            id,
            idle,
            current: idle,
            need_resched: true,
            gen: 0,
            busy_until: Cycles::ZERO,
            running_since: None,
            idle_since: Cycles::ZERO,
            active_mm: MmId::KERNEL,
        }
    }

    /// Whether the CPU is running its idle task.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.current == self.idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_idle_and_wanting_resched() {
        let idle = Tid::from_raw(0, 0);
        let c = CpuState::new(3, idle);
        assert_eq!(c.id, 3);
        assert!(c.is_idle());
        assert!(c.need_resched);
        assert_eq!(c.running_since, None);
    }

    #[test]
    fn idle_predicate_tracks_current() {
        let idle = Tid::from_raw(0, 0);
        let other = Tid::from_raw(1, 0);
        let mut c = CpuState::new(0, idle);
        c.current = other;
        assert!(!c.is_idle());
        c.current = idle;
        assert!(c.is_idle());
    }
}
