//! The simulated SMP machine.
//!
//! This crate ties the substrates together into the testbed the paper ran
//! on: processors with 10 ms timer ticks, a contended global run-queue
//! lock, context-switch and cache-migration costs, blocking socket
//! syscalls, and a pluggable scheduler behind the
//! [`elsc_sched_api::Scheduler`] trait.
//!
//! ## Execution model
//!
//! Tasks are coroutine-style [`behavior::Behavior`] state machines. When a
//! task runs, its behavior yields an [`behavior::Op`]: *compute N cycles,
//! then perform this syscall*. The machine advances a global discrete-event
//! clock; timer ticks decrement the running task's `counter` and trigger
//! preemption, blocking syscalls park tasks on wait queues, and wakeups
//! run the shared `reschedule_idle()` placement logic, sending IPIs to
//! idle CPUs.
//!
//! Crucially, **scheduler work is charged to the CPU's virtual clock**:
//! every cycle the scheduler spends scanning (metered through
//! [`elsc_simcore::CycleMeter`]) and every cycle spent spinning on the
//! run-queue lock delays the workload. That is the causal chain behind all
//! of the paper's throughput results.
//!
//! ## Example
//!
//! ```
//! use elsc_machine::behavior::{Behavior, Op, SysView};
//! use elsc_machine::{Machine, MachineConfig};
//! use elsc_ktask::TaskSpec;
//! use elsc_sched_linux::LinuxScheduler;
//!
//! /// Computes three bursts, then exits.
//! struct Bursts(u32);
//!
//! impl Behavior for Bursts {
//!     fn resume(&mut self, _sys: &mut SysView<'_>) -> Op {
//!         if self.0 == 0 {
//!             return Op::exit();
//!         }
//!         self.0 -= 1;
//!         Op::compute(10_000, elsc_machine::behavior::Syscall::Nop)
//!     }
//! }
//!
//! let mut m = Machine::new(MachineConfig::up(), Box::new(LinuxScheduler::new()));
//! m.spawn(&TaskSpec::named("worker"), Box::new(Bursts(3)));
//! let report = m.run().expect("run completes");
//! assert!(report.elapsed.get() >= 30_000);
//! ```
#![deny(missing_docs)]

pub mod behavior;
pub mod config;
pub mod cpu;
pub mod machine;
pub mod report;
pub mod trace;

pub use behavior::{Behavior, Op, SpawnReq, SysView, Syscall};
pub use config::MachineConfig;
pub use machine::{Machine, RunError, StepStatus};
pub use report::{Distributions, EngineSummary, Ledger, PolicySummary, RunReport, TopologySummary};
pub use trace::{Trace, TraceEvent, TraceRecord};

// Chaos types that appear in [`MachineConfig`] and [`RunReport`], so
// downstream users do not need a direct `elsc-chaos` dependency.
pub use elsc_chaos::{ChaosSummary, FaultPlan, OracleReport};
