//! `elsc-sim learn`: the offline half of learned scheduling.
//!
//! `learn train` replays a `--decision-trace` capture into supervised
//! rows and fits a model with the dependency-free `elsc-learn` trainer;
//! `learn eval` scores an existing model file against a trace. Both are
//! deterministic: the same `(--seed, --data)` pair always produces a
//! byte-identical model file, which is what the CI `learn` job checks
//! with a plain `cmp`.

use crate::args::Args;

use elsc_learn::{eval, parse_trace, train, Arch, Dataset, Model, TrainConfig};

/// A required option, with a `learn`-scoped diagnostic.
fn required<'a>(a: &'a Args, key: &str) -> Result<&'a str, String> {
    a.get(key)
        .ok_or_else(|| format!("learn: --{key} is required (see elsc-sim learn --help)"))
}

/// Reads and replays a decision trace; an unlabelled trace (no
/// `--decision-trace` when captured) is an error, not an empty model.
fn load_dataset(path: &str) -> Result<Dataset, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let data = parse_trace(&text);
    if data.decisions.is_empty() {
        return Err(format!(
            "{path}: no labelled decisions found (capture one with \
             elsc-sim <workload> --decision-trace --trace-out {path})"
        ));
    }
    Ok(data)
}

/// Renders `hits/total` as a percentage line.
fn accuracy_line(hits: u64, total: u64) -> String {
    let pct = if total == 0 {
        0.0
    } else {
        100.0 * hits as f64 / total as f64
    };
    format!("{hits}/{total} ({pct:.1}%)")
}

/// `elsc-sim learn <train|eval>` dispatch.
pub fn run_learn(a: &Args) -> Result<(), String> {
    match a.command.as_deref() {
        Some("train") => {
            let data_path = required(a, "data")?;
            let arch = Arch::parse(required(a, "arch")?).map_err(|e| format!("--arch: {e}"))?;
            let out = required(a, "model-out")?;
            let seed: u64 = a.get_or("seed", 23_062).map_err(|e| e.to_string())?;
            let mut cfg = TrainConfig::new(arch, seed);
            cfg.epochs = a.get_or("epochs", cfg.epochs).map_err(|e| e.to_string())?;
            let data = load_dataset(data_path)?;
            let model = train(&data, cfg);
            std::fs::write(out, model.to_text()).map_err(|e| format!("cannot write {out}: {e}"))?;
            if !a.flag("quiet") {
                let (hits, total) = eval(&model, &data);
                println!(
                    "learn train: {} decisions ({} candidate rows) from {data_path}",
                    data.decisions.len(),
                    data.rows()
                );
                println!(
                    "  arch={} seed={seed} epochs={} lr=2^-{}",
                    arch.name(),
                    cfg.epochs,
                    cfg.lr_shift
                );
                println!("  training accuracy = {}", accuracy_line(hits, total));
                println!("  model written to {out}");
            }
            Ok(())
        }
        Some("eval") => {
            let data_path = required(a, "data")?;
            let model_path = required(a, "model")?;
            let text = std::fs::read_to_string(model_path)
                .map_err(|e| format!("cannot read {model_path}: {e}"))?;
            let model = Model::parse(&text).map_err(|e| format!("{model_path}: {e}"))?;
            let data = load_dataset(data_path)?;
            let (hits, total) = eval(&model, &data);
            if !a.flag("quiet") {
                println!(
                    "learn eval: {model_path} ({}, seed {}) on {data_path}",
                    model.arch.name(),
                    model.seed
                );
                println!("  accuracy = {}", accuracy_line(hits, total));
            }
            Ok(())
        }
        other => Err(format!(
            "learn: unknown subcommand {:?} (want train or eval; see elsc-sim learn --help)",
            other.unwrap_or("")
        )),
    }
}

/// Help text for `elsc-sim learn --help`.
pub const LEARN_USAGE: &str = "\
elsc-sim learn: train and evaluate learned-scheduling models

usage: elsc-sim learn train --data TRACE.jsonl --arch ARCH
                            --model-out FILE.model [--seed N] [--epochs N]
       elsc-sim learn eval  --data TRACE.jsonl --model FILE.model

subcommands:
  train   fit a model to a decision trace and write it to --model-out.
          Deterministic: the same (--seed, --data) pair always writes a
          byte-identical model file.
  eval    report a model's pick accuracy over a decision trace.

options:
  --data P       decision trace captured with
                 elsc-sim <workload> --decision-trace --trace-out P
  --arch A       model architecture: logreg (linear scorer) or mlp
                 (one 8-unit ReLU hidden layer)
  --model-out P  where train writes the model (versioned text format)
  --model P      the model eval reads
  --seed N       weight-initialization seed              [23062]
  --epochs N     full SGD passes over the dataset        [30]
  --quiet        suppress the summary lines

Run the result with: elsc-sim <workload> --sched learned:FILE.model
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(list.iter().map(|s| s.to_string())).unwrap()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("elsc-cli-learn-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// A tiny hand-written labelled trace: two decisions, two candidates
    /// each, the higher-counter candidate always wins.
    fn fixture_trace(dir: &std::path::Path) -> String {
        let path = dir.join("trace.jsonl");
        let mut text = String::new();
        for (tid_a, tid_b, chosen) in [(4u64, 5u64, 5u64), (5, 6, 6)] {
            for (tid, counter) in [(tid_a, 1i64), (tid_b, 9)] {
                text.push_str(&format!(
                    "{{\"at\":1,\"event\":\"sched_candidate\",\"cpu\":0,\"tid\":{tid},\
                     \"counter\":{counter},\"priority\":20,\"rt\":0,\"mm_match\":0,\
                     \"affinity\":0,\"recency\":255}}\n"
                ));
            }
            text.push_str(&format!(
                "{{\"at\":2,\"event\":\"sched_decision\",\"cpu\":0,\"prev\":1,\
                 \"chosen\":{chosen},\"depth\":2}}\n"
            ));
        }
        std::fs::write(&path, text).unwrap();
        path.display().to_string()
    }

    #[test]
    fn train_then_eval_round_trips_and_is_byte_deterministic() {
        let dir = tmpdir("roundtrip");
        let trace = fixture_trace(&dir);
        let m1 = dir.join("a.model").display().to_string();
        let m2 = dir.join("b.model").display().to_string();
        for out in [&m1, &m2] {
            run_learn(&args(&[
                "train",
                "--data",
                &trace,
                "--arch",
                "logreg",
                "--model-out",
                out,
                "--seed",
                "7",
                "--quiet",
            ]))
            .unwrap();
        }
        let a = std::fs::read(&m1).unwrap();
        let b = std::fs::read(&m2).unwrap();
        assert_eq!(a, b, "same (seed, data) must be byte-identical");
        run_learn(&args(&[
            "eval", "--data", &trace, "--model", &m1, "--quiet",
        ]))
        .unwrap();
        // A different seed changes the bytes.
        run_learn(&args(&[
            "train",
            "--data",
            &trace,
            "--arch",
            "logreg",
            "--model-out",
            &m2,
            "--seed",
            "8",
            "--quiet",
        ]))
        .unwrap();
        assert_ne!(a, std::fs::read(&m2).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_options_and_empty_traces_are_diagnostics() {
        let dir = tmpdir("diag");
        let err = run_learn(&args(&["train", "--arch", "logreg"])).unwrap_err();
        assert!(err.contains("--data"), "{err}");
        let err = run_learn(&args(&["frobnicate"])).unwrap_err();
        assert!(err.contains("train or eval"), "{err}");
        // An unlabelled trace is an explicit error.
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "{\"event\":\"switch\"}\n").unwrap();
        let err = run_learn(&args(&[
            "train",
            "--data",
            &empty.display().to_string(),
            "--arch",
            "logreg",
            "--model-out",
            &dir.join("x.model").display().to_string(),
        ]))
        .unwrap_err();
        assert!(err.contains("no labelled decisions"), "{err}");
        let err = run_learn(&args(&[
            "train",
            "--data",
            &empty.display().to_string(),
            "--arch",
            "transformer",
            "--model-out",
            "x",
        ]))
        .unwrap_err();
        assert!(err.contains("--arch"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
