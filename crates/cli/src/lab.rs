//! The `lab` subcommand: drive `elsc-lab` sweeps from the shell.
//!
//! ```text
//! elsc-sim lab sweep   [--spec NAME | --spec-file PATH | --all-figures]
//!                      [--workers N] [--out PATH] [--cache-dir PATH] [--force]
//! elsc-sim lab compare --manifest PATH --baseline PATH [--threshold PCT]
//! elsc-sim lab ls
//! ```
//!
//! `sweep` expands the spec into cells, executes the dirty ones on a
//! worker pool (cache hits are loaded, not re-run), writes the manifest,
//! and exits non-zero if any cell failed. `compare` diffs two manifests
//! and exits non-zero on regressions or missing cells. `ls` lists the
//! builtin specs.

use std::path::PathBuf;

use elsc_lab::{compare, Cache, RunOptions, SweepSpec};

use crate::args::Args;

/// Default regression threshold, percent.
const DEFAULT_THRESHOLD_PCT: f64 = 5.0;

/// Entry point for `elsc-sim lab ...` (everything after the `lab`
/// token). Returns `Err` with a message for any failure; the caller maps
/// that to a non-zero exit code.
pub fn run_lab(a: &Args) -> Result<(), String> {
    match a.command.as_deref() {
        Some("sweep") => sweep(a),
        Some("compare") => run_compare(a),
        Some("ls") => {
            ls();
            Ok(())
        }
        Some(other) => Err(format!("unknown lab command '{other}' (sweep|compare|ls)")),
        None => {
            print!("{LAB_USAGE}");
            Ok(())
        }
    }
}

/// Resolves the specs a `sweep` invocation asks for.
fn specs(a: &Args) -> Result<Vec<SweepSpec>, String> {
    let mut chosen = Vec::new();
    if a.flag("all-figures") {
        for name in SweepSpec::BUILTINS {
            // `smoke` is a CI gate, `chaos` an oracle sweep, `topo` the
            // topology gate, `policy` a policy-runtime conformance
            // sweep, `cluster` the federation gate, `mega` the
            // engine-throughput gate, and `learn` the learned-scheduler
            // gate — none is a paper figure, so `--all-figures` skips
            // them all.
            if !matches!(
                name,
                "smoke" | "chaos" | "topo" | "policy" | "cluster" | "mega" | "learn"
            ) {
                chosen.push(SweepSpec::builtin(name).expect("builtin"));
            }
        }
    }
    if let Some(name) = a.get("spec") {
        chosen.push(
            SweepSpec::builtin(name)
                .ok_or_else(|| format!("no builtin spec '{name}' (try: elsc-sim lab ls)"))?,
        );
    }
    if let Some(path) = a.get("spec-file") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        chosen.push(text.parse().map_err(|e| format!("{path}: {e}"))?);
    }
    if chosen.is_empty() {
        return Err(
            "nothing to sweep: give --spec NAME, --spec-file PATH, or --all-figures".to_string(),
        );
    }
    Ok(chosen)
}

/// `lab sweep`: run the requested specs, write manifests, report stats.
fn sweep(a: &Args) -> Result<(), String> {
    let workers: usize = a
        .get_or(
            "workers",
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        )
        .map_err(|e| e.to_string())?;
    let opts = RunOptions {
        workers: workers.max(1),
        force: a.flag("force"),
    };
    let cache = Cache::new(
        a.get("cache-dir")
            .map_or_else(Cache::default_dir, PathBuf::from),
    );
    let specs = specs(a)?;
    let multi = specs.len() > 1;
    let mut failed = 0usize;
    for spec in &specs {
        let run = elsc_lab::run_sweep(spec, &cache, &opts);
        println!(
            "sweep {}: {} cells, {} executed, {} cached, {} failed ({} workers)",
            spec.name,
            run.outcomes.len() + run.failures.len(),
            run.executed,
            run.cached,
            run.failures.len(),
            opts.workers
        );
        for (cell, err) in &run.failures {
            eprintln!("  FAILED {cell}: {err}");
        }
        if let Some(manifest) = run.manifest() {
            let out = match a.get("out") {
                // With several specs one --out path would self-overwrite.
                Some(path) if !multi => PathBuf::from(path),
                _ => PathBuf::from("results/lab").join(format!("{}.json", spec.name)),
            };
            elsc_lab::write_manifest(&out, &manifest)
                .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
            println!("  manifest -> {}", out.display());
        }
        failed += run.failures.len();
    }
    if failed > 0 {
        return Err(format!("{failed} cell(s) failed"));
    }
    Ok(())
}

/// `lab compare`: gate a manifest against a baseline.
fn run_compare(a: &Args) -> Result<(), String> {
    let manifest = a
        .get("manifest")
        .ok_or("compare needs --manifest PATH (the current run)")?;
    let baseline = a
        .get("baseline")
        .ok_or("compare needs --baseline PATH (the committed reference)")?;
    let pct: f64 = a
        .get_or("threshold", DEFAULT_THRESHOLD_PCT)
        .map_err(|e| e.to_string())?;
    if pct.is_nan() || pct < 0.0 {
        return Err(format!(
            "--threshold must be a non-negative percent, got {pct}"
        ));
    }
    let threshold = pct / 100.0;
    let cur =
        std::fs::read_to_string(manifest).map_err(|e| format!("cannot read {manifest}: {e}"))?;
    let base =
        std::fs::read_to_string(baseline).map_err(|e| format!("cannot read {baseline}: {e}"))?;
    let report = compare(&cur, &base, threshold)?;
    print!("{}", report.render(threshold));
    if report.ok() {
        Ok(())
    } else {
        Err(format!(
            "regression gate failed ({} regression(s), {} missing cell(s))",
            report.regressions.len(),
            report.missing.len()
        ))
    }
}

/// `lab ls`: the builtin specs and their grid sizes.
fn ls() {
    println!("{:<14} {:>6}  axes", "spec", "cells");
    for name in SweepSpec::BUILTINS {
        let spec = SweepSpec::builtin(name).expect("builtin");
        let sweep_axes: Vec<String> = spec
            .params
            .iter()
            .filter(|(_, vals)| vals.len() > 1)
            .map(|(k, vals)| format!("{k}x{}", vals.len()))
            .collect();
        println!(
            "{:<14} {:>6}  {} | sched x{} shape x{} seed x{}{}",
            name,
            spec.cells().len(),
            spec.workload,
            spec.scheds.len(),
            spec.shapes.len(),
            spec.seeds.len(),
            if sweep_axes.is_empty() {
                String::new()
            } else {
                format!(" {}", sweep_axes.join(" "))
            }
        );
    }
}

/// Help text for `elsc-sim lab`.
pub const LAB_USAGE: &str = "\
elsc-sim lab: parallel experiment orchestrator (sweeps, cache, gate)

usage:
  elsc-sim lab sweep   [--spec NAME | --spec-file PATH | --all-figures]
                       [--workers N] [--out PATH] [--cache-dir PATH] [--force]
  elsc-sim lab compare --manifest PATH --baseline PATH [--threshold PCT]
  elsc-sim lab ls

sweep options:
  --spec NAME      a builtin spec (elsc-sim lab ls)
  --spec-file P    a spec file in the lab text format (see DESIGN.md sec. 7)
  --all-figures    every paper artifact: figure2..figure6, table2,
                   kernel_share (manifests under results/lab/; the
                   smoke, chaos, topo, policy, cluster, mega, and learn
                   gates are separate specs)
  --workers N      worker threads                  [host parallelism]
  --out PATH       manifest path (single spec only) [results/lab/<name>.json]
  --cache-dir P    result cache directory           [results/lab/cache]
  --force          ignore cache hits, re-execute every cell

compare options:
  --manifest P     the freshly produced manifest
  --baseline P     the committed reference (BENCH_baseline.json)
  --threshold PCT  fail on > PCT% growth in cycles_per_schedule or
                   sched_time_share, or > PCT% decline in
                   sim_events_per_sec or prediction_accuracy where both
                   manifests carry it [5]; wall_ratio gates separately
                   at a fixed 2x factor

environment: ELSC_MESSAGES (messages/user, default 20),
ELSC_ITERATIONS (seeds per cell, default 1; first discarded when > 1),
ELSC_MEGA_ROOMS (rooms list for the mega spec, default \"50, 250\").

exit status: 0 all cells ran and the gate passed; 1 any cell failed,
any regression, or any baseline cell missing; 2 bad usage.
";
