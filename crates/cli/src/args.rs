//! A small hand-rolled argument parser (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag` pairs.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// The first positional argument (the workload).
    pub command: Option<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Parse errors.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// `--key` given where a value was required but none followed.
    MissingValue(String),
    /// A positional argument after the command.
    UnexpectedPositional(String),
    /// A value failed to parse for its expected type.
    BadValue {
        /// The option name.
        key: String,
        /// The offending text.
        value: String,
    },
}

impl core::fmt::Display for ArgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::UnexpectedPositional(p) => write!(f, "unexpected argument '{p}'"),
            ArgError::BadValue { key, value } if *value == format!("--{key}") => {
                write!(f, "unknown option --{key}")
            }
            ArgError::BadValue { key, value } => {
                write!(f, "invalid value '{value}' for --{key}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Option names that are boolean flags (no value).
const FLAGS: &[&str] = &[
    "up",
    "proc",
    "latency",
    "help",
    "quiet",
    "compare",
    "profile",
    "diff",
    "oracle",
    // learned-scheduler flags.
    "decision-trace",
    // `lab` subcommand flags.
    "force",
    "all-figures",
];

/// Option names that take a value. Anything not listed here or in
/// [`FLAGS`] is rejected instead of silently accepted.
const OPTIONS: &[&str] = &[
    "sched",
    "cpus",
    "topology",
    "seed",
    "trace",
    "rooms",
    "users",
    "messages",
    "jobs",
    "units",
    "clients",
    "workers",
    "requests",
    "tasks",
    "rounds",
    "burst",
    "trace-out",
    "report-json",
    "lock-plan",
    "faults",
    "fault-seed",
    // `cluster` subcommand options.
    "nodes",
    "dispatcher",
    "epoch",
    // policy runtime options.
    "policy-budget",
    "policy-backend",
    "policy-dir",
    // `learn` subcommand / learned-scheduler options.
    "data",
    "arch",
    "model-out",
    "model",
    "epochs",
    "learn-eject-k",
    // `lab` subcommand options.
    "workers",
    "spec",
    "spec-file",
    "out",
    "cache-dir",
    "manifest",
    "baseline",
    "threshold",
];

impl Args {
    /// Parses an iterator of raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut it = raw.into_iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                // `--key=value` or `--key [value]`.
                let (key, inline) = match key.split_once('=') {
                    Some((k, v)) => (k.to_string(), Some(v.to_string())),
                    None => (key.to_string(), None),
                };
                if FLAGS.contains(&key.as_str()) {
                    if let Some(v) = inline {
                        // A flag takes no value: `--quiet=yes` is an error.
                        return Err(ArgError::BadValue { key, value: v });
                    }
                    out.flags.push(key);
                } else if OPTIONS.contains(&key.as_str()) {
                    let value = match inline {
                        Some(v) => v,
                        None => it
                            .next()
                            .ok_or_else(|| ArgError::MissingValue(key.clone()))?,
                    };
                    out.options.insert(key, value);
                } else {
                    // Unknown option: reject instead of silently accepting.
                    return Err(ArgError::BadValue {
                        value: format!("--{key}"),
                        key,
                    });
                }
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else {
                return Err(ArgError::UnexpectedPositional(arg));
            }
        }
        Ok(out)
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(|s| s.as_str())
    }

    /// A parsed numeric (or other `FromStr`) option with a default.
    pub fn get_or<T: core::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: name.to_string(),
                value: v.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, ArgError> {
        Args::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn command_and_options() {
        let a = parse(&["volano", "--rooms", "10", "--cpus", "2"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("volano"));
        assert_eq!(a.get("rooms"), Some("10"));
        assert_eq!(a.get_or("cpus", 1usize).unwrap(), 2);
        assert_eq!(a.get_or("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn equals_syntax() {
        let a = parse(&["stress", "--tasks=500"]).unwrap();
        assert_eq!(a.get_or("tasks", 0usize).unwrap(), 500);
    }

    #[test]
    fn flags_take_no_value() {
        let a = parse(&["volano", "--up", "--proc"]).unwrap();
        assert!(a.flag("up"));
        assert!(a.flag("proc"));
        assert!(!a.flag("latency"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert_eq!(
            parse(&["volano", "--rooms"]).unwrap_err(),
            ArgError::MissingValue("rooms".into())
        );
    }

    #[test]
    fn extra_positional_is_an_error() {
        assert!(matches!(
            parse(&["volano", "oops"]).unwrap_err(),
            ArgError::UnexpectedPositional(_)
        ));
    }

    #[test]
    fn unknown_option_is_rejected() {
        let err = parse(&["volano", "--frobnicate", "3"]).unwrap_err();
        assert_eq!(
            err,
            ArgError::BadValue {
                key: "frobnicate".into(),
                value: "--frobnicate".into(),
            }
        );
        assert_eq!(err.to_string(), "unknown option --frobnicate");
    }

    #[test]
    fn profile_is_a_registered_flag() {
        let a = parse(&["volano", "--profile"]).unwrap();
        assert!(a.flag("profile"));
    }

    #[test]
    fn new_output_options_take_values() {
        let a = parse(&["volano", "--trace-out", "t.jsonl", "--report-json=r.json"]).unwrap();
        assert_eq!(a.get("trace-out"), Some("t.jsonl"));
        assert_eq!(a.get("report-json"), Some("r.json"));
    }

    #[test]
    fn lock_plan_takes_a_value() {
        let a = parse(&["volano", "--lock-plan", "percpu"]).unwrap();
        assert_eq!(a.get("lock-plan"), Some("percpu"));
    }

    #[test]
    fn chaos_flags_are_registered() {
        let a = parse(&["stress", "--oracle", "--faults", "light", "--fault-seed=9"]).unwrap();
        assert!(a.flag("oracle"));
        assert_eq!(a.get("faults"), Some("light"));
        assert_eq!(a.get_or("fault-seed", 0u64).unwrap(), 9);
    }

    #[test]
    fn policy_options_are_registered() {
        let a = parse(&["stress", "--policy-budget", "4096"]).unwrap();
        assert_eq!(a.get_or("policy-budget", 0u64).unwrap(), 4096);
        let a = parse(&["ls", "--policy-dir=policies"]).unwrap();
        assert_eq!(a.get("policy-dir"), Some("policies"));
    }

    #[test]
    fn learn_options_are_registered() {
        let a = parse(&[
            "train",
            "--data",
            "t.jsonl",
            "--arch=mlp",
            "--model-out",
            "m.model",
            "--epochs",
            "5",
        ])
        .unwrap();
        assert_eq!(a.get("data"), Some("t.jsonl"));
        assert_eq!(a.get("arch"), Some("mlp"));
        assert_eq!(a.get("model-out"), Some("m.model"));
        assert_eq!(a.get_or("epochs", 0u32).unwrap(), 5);
        let a = parse(&["volano", "--decision-trace", "--learn-eject-k", "4"]).unwrap();
        assert!(a.flag("decision-trace"));
        assert_eq!(a.get_or("learn-eject-k", 8u32).unwrap(), 4);
    }

    #[test]
    fn flag_with_a_value_is_rejected() {
        assert!(matches!(
            parse(&["volano", "--quiet=yes"]).unwrap_err(),
            ArgError::BadValue { .. }
        ));
    }

    #[test]
    fn bad_numeric_value() {
        let a = parse(&["volano", "--rooms", "many"]).unwrap();
        assert!(matches!(
            a.get_or::<usize>("rooms", 1).unwrap_err(),
            ArgError::BadValue { .. }
        ));
    }
}
