//! `elsc-sim`: run any workload under any scheduler from the shell.
//!
//! ```text
//! elsc-sim <workload> [options]
//!
//! workloads:
//!   volano    VolanoMark chat benchmark (paper §4/§6)
//!   kbuild    kernel compile, make -jN (paper Table 2)
//!   httpd     Apache-like web server (paper §8)
//!   stress    synthetic run-queue stress
//!   cluster   federated VolanoMark across N simulated machines
//!
//! common options:
//!   --sched LIST   comma list of reg,elsc,heap,aheap,mq and/or
//!                  policy:FILE.pol, learned:FILE.model   [reg,elsc]
//!   --cpus N       processors                            [1]
//!   --up           non-SMP kernel build (forces 1 CPU)
//!   --seed N       simulation seed                       [23062]
//!   --proc         print the /proc-style statistics table
//!   --latency      print latency/queue-length distributions
//!   --trace N      keep and summarize up to N trace records
//!   --lock-plan P  force the run-queue locking regime
//!                  (global | percpu | sharded:N)
//!
//! volano: --rooms N --users N --messages N
//! kbuild: --jobs N --units N
//! httpd:  --clients N --workers N --requests N
//! stress: --tasks N --rounds N --burst CYCLES
//! ```

mod args;
mod lab;
mod learn;

use args::Args;

use std::fs::File;
use std::io::BufWriter;

use elsc::ElscScheduler;
use elsc_cluster::{volano, ClusterConfig, ClusterFaultPlan, DispatcherId};
use elsc_machine::{FaultPlan, Machine, MachineConfig, RunReport, TraceRecord};
use elsc_obs::{first_divergence, JsonLinesSink};
use elsc_policy::PolicyScheduler;
use elsc_sched_api::{LockPlan, PolicyBackend, Scheduler};
use elsc_sched_ext::{
    AffinityHeapScheduler, BubbleScheduler, HeapScheduler, LearnedScheduler, MultiQueueScheduler,
};
use elsc_sched_linux::LinuxScheduler;
use elsc_simcore::Topology;
use elsc_stats::render::render_proc;
use elsc_workloads::{httpd, kbuild, rtmix, stress, volanomark};
use elsc_workloads::{HttpdConfig, KbuildConfig, RtMixConfig, StressConfig, VolanoConfig};

/// Builds one scheduler by name. `policy:<file>` loads an interpreted
/// `.pol` program through the verifying loader; a rejected program
/// surfaces as `file:line:col: message`, never a panic. `learned:<file>`
/// loads a trained `elsc-learn` model (see `elsc-sim learn`). The
/// declared topology sizes the structural schedulers (`mq` per CPU,
/// `bubble` per NUMA node).
fn scheduler(
    name: &str,
    topo: Topology,
    policy_budget: Option<u64>,
) -> Result<Box<dyn Scheduler>, String> {
    let nr_cpus = topo.nr_cpus();
    if let Some(path) = name.strip_prefix("learned:") {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("--sched learned: {path}: {e}"))?;
        let stem = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("model");
        let sched = LearnedScheduler::from_text(stem, &src).map_err(|e| format!("{path}: {e}"))?;
        return Ok(Box::new(sched));
    }
    if let Some(path) = name.strip_prefix("policy:") {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("--sched policy: {path}: {e}"))?;
        let mut sched =
            PolicyScheduler::load_str(&src, nr_cpus).map_err(|e| format!("{path}:{e}"))?;
        if let Some(budget) = policy_budget {
            sched = sched.with_budget(budget);
        }
        return Ok(Box::new(sched));
    }
    Ok(match name {
        "reg" => Box::new(LinuxScheduler::new()),
        "elsc" => Box::new(ElscScheduler::new()),
        "heap" => Box::new(HeapScheduler::new()),
        "aheap" => Box::new(AffinityHeapScheduler::new()),
        "mq" => Box::new(MultiQueueScheduler::new(nr_cpus)),
        "bubble" => Box::new(BubbleScheduler::new(topo)),
        other => return Err(format!("unknown scheduler '{other}'")),
    })
}

/// The declared machine shape: `--topology` when given (checked against
/// `--cpus` if both appear), otherwise the flat tree of `--cpus`.
fn declared_topology(a: &Args) -> Result<Topology, String> {
    match a.get("topology") {
        Some(text) => {
            if a.flag("up") {
                return Err("--topology conflicts with --up (a UP machine is flat)".into());
            }
            let topo: Topology = text.parse().map_err(|e| format!("--topology: {e}"))?;
            let cpus: usize = a
                .get_or("cpus", topo.nr_cpus())
                .map_err(|e| e.to_string())?;
            if cpus != topo.nr_cpus() {
                return Err(format!(
                    "--cpus {cpus} disagrees with --topology {topo} ({} CPUs)",
                    topo.nr_cpus()
                ));
            }
            Ok(topo)
        }
        None => {
            let cpus: usize = a.get_or("cpus", 1).map_err(|e| e.to_string())?;
            Ok(Topology::flat(if a.flag("up") { 1 } else { cpus.max(1) }))
        }
    }
}

/// Reads `--policy-budget` (per-decision interpreter instruction cap).
fn policy_budget(a: &Args) -> Result<Option<u64>, String> {
    match a.get("policy-budget") {
        None => Ok(None),
        Some(text) => text
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("--policy-budget: invalid value '{text}'")),
    }
}

/// Builds the machine configuration from the common options.
fn machine_cfg(a: &Args) -> Result<MachineConfig, String> {
    let seed: u64 = a.get_or("seed", 23_062).map_err(|e| e.to_string())?;
    // `--diff` needs the in-memory ring populated; give it a generous
    // default capacity unless the user chose one.
    let trace_default = if a.flag("diff") { 200_000 } else { 0 };
    let trace: usize = a
        .get_or("trace", trace_default)
        .map_err(|e| e.to_string())?;
    let mut cfg = if a.flag("up") {
        MachineConfig::up()
    } else {
        // A declared flat tree builds the exact same config as --cpus N:
        // `--topology 1N4C1T` and `--cpus 4` are byte-identical runs.
        MachineConfig::topo(declared_topology(a)?)
    };
    cfg = cfg
        .with_seed(seed)
        .with_trace(trace)
        .with_max_secs(20_000.0);
    if let Some(text) = a.get("lock-plan") {
        // `pernode` alone resolves against the declared topology; the
        // explicit `pernode:K` spelling is handled by the parser.
        let plan: LockPlan = if text == "pernode" {
            LockPlan::PerNode(cfg.sched.topology.cpus_per_node())
        } else {
            text.parse().map_err(|e| format!("--lock-plan: {e}"))?
        };
        cfg = cfg.with_lock_plan(Some(plan));
    }
    if let Some(text) = a.get("faults") {
        let plan: FaultPlan = text.parse().map_err(|e| format!("--faults: {e}"))?;
        cfg = cfg.with_faults(Some(plan));
    }
    if let Some(text) = a.get("fault-seed") {
        let seed: u64 = text
            .parse()
            .map_err(|_| format!("--fault-seed: invalid value '{text}'"))?;
        cfg = cfg.with_fault_seed(seed);
    }
    if a.flag("oracle") {
        cfg = cfg.with_oracle(true);
    }
    if let Some(text) = a.get("policy-backend") {
        let backend = PolicyBackend::from_name(text)
            .ok_or_else(|| format!("--policy-backend: unknown backend '{text}' (interp, vm)"))?;
        cfg = cfg.with_policy_backend(Some(backend));
    }
    if a.flag("decision-trace") {
        cfg = cfg.with_decision_trace(true);
    }
    if let Some(text) = a.get("learn-eject-k") {
        let k: u32 = text
            .parse()
            .map_err(|_| format!("--learn-eject-k: invalid value '{text}'"))?;
        if k == 0 {
            return Err("--learn-eject-k must be at least 1".into());
        }
        cfg = cfg.with_learn_eject_k(k);
    }
    Ok(cfg)
}

/// Everything one simulation run produces.
struct RunOutcome {
    /// The machine's report.
    report: RunReport,
    /// Name of the headline throughput metric, if the workload has one.
    metric: Option<String>,
    /// Human-readable trace summary when `--trace N` was given.
    trace_text: Option<String>,
    /// The in-memory trace ring (empty unless tracing was enabled).
    records: Vec<TraceRecord>,
}

/// Runs one workload on one machine; `trace_out` streams the full event
/// trace to a JSON-lines file as the run executes.
fn run_one(
    a: &Args,
    sched: Box<dyn Scheduler>,
    trace_out: Option<&str>,
) -> Result<RunOutcome, String> {
    let cfg = machine_cfg(a)?;
    let mut machine = Machine::new(cfg, sched);
    if let Some(path) = trace_out {
        let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        machine.add_sink(Box::new(JsonLinesSink::new(BufWriter::new(file))));
    }
    let metric = match a.command.as_deref().unwrap_or("") {
        // `volanomark` is the benchmark's proper name; accept both.
        "volano" | "volanomark" => {
            let w = VolanoConfig {
                rooms: a.get_or("rooms", 5).map_err(|e| e.to_string())?,
                users_per_room: a.get_or("users", 20).map_err(|e| e.to_string())?,
                messages_per_user: a.get_or("messages", 10).map_err(|e| e.to_string())?,
                ..VolanoConfig::default()
            };
            volanomark::build(&mut machine, &w);
            Some("messages".to_string())
        }
        "kbuild" => {
            let w = KbuildConfig {
                jobs: a.get_or("jobs", 4).map_err(|e| e.to_string())?,
                translation_units: a.get_or("units", 160).map_err(|e| e.to_string())?,
                ..KbuildConfig::default()
            };
            kbuild::build(&mut machine, &w);
            None
        }
        "httpd" => {
            let w = HttpdConfig {
                clients: a.get_or("clients", 64).map_err(|e| e.to_string())?,
                workers: a.get_or("workers", 8).map_err(|e| e.to_string())?,
                requests_per_client: a.get_or("requests", 10).map_err(|e| e.to_string())?,
                ..HttpdConfig::default()
            };
            httpd::build(&mut machine, &w);
            Some("requests_served".to_string())
        }
        "stress" => {
            let w = StressConfig {
                tasks: a.get_or("tasks", 100).map_err(|e| e.to_string())?,
                rounds: a.get_or("rounds", 50).map_err(|e| e.to_string())?,
                burst: a.get_or("burst", 20_000).map_err(|e| e.to_string())?,
                ..StressConfig::default()
            };
            stress::build(&mut machine, &w);
            None
        }
        "rtmix" => {
            rtmix::build(&mut machine, &RtMixConfig::default());
            None
        }
        other => return Err(format!("unknown workload '{other}' (see --help)")),
    };
    let report = machine.run().map_err(|e| e.to_string())?;
    let trace_text = if machine.trace().enabled() {
        let mut out = String::new();
        for r in machine.trace().records().iter().take(40) {
            out.push_str(&format!("    {:>14} {:?}\n", r.at.get(), r.event));
        }
        let total = machine.trace().records().len();
        out.push_str(&format!(
            "    ({} records kept, {} dropped)\n",
            total,
            machine.trace().dropped()
        ));
        Some(out)
    } else {
        None
    };
    let records = machine.trace().records().to_vec();
    Ok(RunOutcome {
        report,
        metric,
        trace_text,
        records,
    })
}

/// When several schedulers share one output path, suffix each file with
/// the scheduler name so they do not overwrite each other. Policy specs
/// (`policy:policies/rr.pol`) are flattened to a path-safe tag.
fn per_sched_path(base: &str, name: &str, multi: bool) -> String {
    if multi {
        format!("{base}.{}", name.replace(['/', ':', '\\'], "_"))
    } else {
        base.to_string()
    }
}

/// Full run across the requested schedulers.
fn run(a: &Args) -> Result<(), String> {
    let topo = declared_topology(a)?;
    let scheds = a.get("sched").unwrap_or("reg,elsc");
    if a.flag("compare") {
        return run_compare(a, scheds, topo);
    }
    if a.flag("diff") {
        return run_diff(a, scheds, topo);
    }
    let names: Vec<&str> = scheds
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let multi = names.len() > 1;
    let budget = policy_budget(a)?;
    // `--oracle` turns the §5 equivalence claim into the exit code:
    // any unexplained divergence or invariant violation fails the run.
    let mut oracle_failures: Vec<String> = Vec::new();
    for name in names {
        let sched = scheduler(name, topo, budget)?;
        let trace_out = a.get("trace-out").map(|p| per_sched_path(p, name, multi));
        let out = run_one(a, sched, trace_out.as_deref())?;
        let report = &out.report;
        if !a.flag("quiet") {
            println!("{report}");
            if let Some(metric) = &out.metric {
                println!("  {} = {:.0}/s", metric, report.per_sec(metric));
            }
        }
        if a.flag("profile") {
            println!("{}", report.profile);
        }
        if a.flag("proc") {
            println!("{}", render_proc(&report.stats));
        }
        if a.flag("latency") {
            for (k, h) in report.dists.iter() {
                println!("  {k}: {}", h.summary());
            }
        }
        if let Some(trace) = &out.trace_text {
            println!("  trace (first 40 events):");
            print!("{trace}");
        }
        if let Some(path) = a.get("report-json") {
            let path = per_sched_path(path, name, multi);
            std::fs::write(&path, out.report.to_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            if !a.flag("quiet") {
                println!("  report written to {path}");
            }
        }
        if let Some(o) = report.chaos.as_ref().and_then(|c| c.oracle.as_ref()) {
            if !o.clean() {
                oracle_failures.push(format!(
                    "{name}: {} unexplained divergence(s), {} invariant violation(s){}",
                    o.unexplained,
                    o.invariant_violations,
                    o.first_unexplained
                        .as_ref()
                        .or(o.first_violation.as_ref())
                        .map(|d| format!(" (first: {d})"))
                        .unwrap_or_default()
                ));
            }
        }
    }
    if !oracle_failures.is_empty() {
        return Err(format!("oracle: {}", oracle_failures.join("; ")));
    }
    Ok(())
}

/// `--diff`: run the same workload and seed under two schedulers and
/// report where their event traces first diverge.
fn run_diff(a: &Args, scheds: &str, topo: Topology) -> Result<(), String> {
    let names: Vec<&str> = scheds
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if names.len() != 2 {
        return Err(format!(
            "--diff compares exactly two schedulers (got '{scheds}'; try --sched reg,elsc)"
        ));
    }
    let budget = policy_budget(a)?;
    let first = run_one(a, scheduler(names[0], topo, budget)?, None)?;
    let second = run_one(a, scheduler(names[1], topo, budget)?, None)?;
    println!("trace diff: {} vs {}", names[0], names[1]);
    println!("{}", first_divergence(&first.records, &second.records));
    Ok(())
}

/// One-line-per-scheduler comparison table.
fn run_compare(a: &Args, scheds: &str, topo: Topology) -> Result<(), String> {
    println!(
        "{:<7} {:>10} {:>10} {:>12} {:>10} {:>9} {:>9}",
        "sched", "elapsed_s", "cyc/sched", "exam/sched", "recalcs", "new_cpu", "metric/s"
    );
    let budget = policy_budget(a)?;
    for name in scheds.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let sched = scheduler(name, topo, budget)?;
        let RunOutcome { report, metric, .. } = run_one(a, sched, None)?;
        let t = report.stats.total();
        let rate = metric.as_deref().map(|m| report.per_sec(m)).unwrap_or(0.0);
        println!(
            "{:<7} {:>10.3} {:>10.0} {:>12.2} {:>10} {:>9} {:>9.0}",
            name,
            report.elapsed_secs(),
            t.cycles_per_schedule(),
            t.tasks_examined_per_schedule(),
            t.recalc_entries,
            t.picked_new_cpu,
            rate
        );
    }
    Ok(())
}

/// `elsc-sim cluster`: run the federated VolanoMark cluster (the
/// two-level scheduler of `elsc-cluster`) under each requested kernel
/// scheduler and print the merged report.
///
/// `--faults` here takes *cluster* fault classes (partition, slow_link,
/// node_pause, or the light/heavy presets), not the machine classes.
fn run_cluster(a: &Args) -> Result<(), String> {
    let topo = declared_topology(a)?;
    let seed: u64 = a.get_or("seed", 23_062).map_err(|e| e.to_string())?;
    let nodes: usize = a.get_or("nodes", 2).map_err(|e| e.to_string())?;
    if nodes == 0 {
        return Err("--nodes must be at least 1".to_string());
    }
    let dispatcher: DispatcherId = match a.get("dispatcher") {
        None => DispatcherId::LeastLoaded,
        Some(text) => text.parse().map_err(|e| format!("--dispatcher: {e}"))?,
    };
    let mut node_cfg = if a.flag("up") {
        MachineConfig::up()
    } else {
        MachineConfig::topo(topo)
    }
    .with_seed(seed)
    .with_max_secs(20_000.0);
    if let Some(text) = a.get("lock-plan") {
        let plan: LockPlan = if text == "pernode" {
            LockPlan::PerNode(topo.cpus_per_node())
        } else {
            text.parse().map_err(|e| format!("--lock-plan: {e}"))?
        };
        node_cfg = node_cfg.with_lock_plan(Some(plan));
    }
    if a.flag("oracle") {
        node_cfg = node_cfg.with_oracle(true);
    }
    let mut ccfg = ClusterConfig::new(nodes, dispatcher, node_cfg);
    if let Some(text) = a.get("epoch") {
        ccfg.epoch_cycles = text
            .parse()
            .map_err(|_| format!("--epoch: invalid cycle count '{text}'"))?;
        if ccfg.epoch_cycles == 0 {
            return Err("--epoch must be a positive cycle count".into());
        }
    }
    if let Some(text) = a.get("faults") {
        let plan: ClusterFaultPlan = text
            .parse()
            .map_err(|e| format!("--faults (cluster classes): {e}"))?;
        ccfg = ccfg.with_faults(Some(plan));
    }
    if let Some(text) = a.get("fault-seed") {
        let fseed: u64 = text
            .parse()
            .map_err(|_| format!("--fault-seed: invalid value '{text}'"))?;
        ccfg = ccfg.with_fault_seed(fseed);
    }
    let w = VolanoConfig {
        rooms: a.get_or("rooms", 5).map_err(|e| e.to_string())?,
        users_per_room: a.get_or("users", 20).map_err(|e| e.to_string())?,
        messages_per_user: a.get_or("messages", 10).map_err(|e| e.to_string())?,
        ..VolanoConfig::default()
    };
    let budget = policy_budget(a)?;
    let scheds = a.get("sched").unwrap_or("reg,elsc");
    let names: Vec<&str> = scheds
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let multi = names.len() > 1;
    let mut oracle_failures: Vec<String> = Vec::new();
    for name in &names {
        // Validate once so a bad name fails before any simulation; the
        // per-node closure then builds a fresh instance per machine.
        scheduler(name, topo, budget)?;
        let report = volano::run(
            ccfg.clone(),
            |_node| scheduler(name, topo, budget).expect("validated above"),
            &w,
        )
        .map_err(|e| e.to_string())?;
        if !a.flag("quiet") {
            println!(
                "cluster: {} nodes, dispatcher={}, sched={}, seed={}",
                nodes, dispatcher, name, seed
            );
            println!(
                "  elapsed = {:.3}s (makespan)   messages = {} ({:.0}/s)",
                report.elapsed_secs(),
                report.ledger_total("messages"),
                report.per_sec("messages")
            );
            println!("  tasks per node = {:?}", report.node_tasks());
            for l in &report.links {
                println!(
                    "  link {}->{}: {} msgs, {} bytes, {} held by faults",
                    l.from, l.to, l.stats.msgs, l.stats.bytes, l.stats.held
                );
            }
            if report.links.is_empty() {
                println!("  (no cross-node traffic: every room is self-contained)");
            }
            if report.fault_counts.total() > 0 {
                println!("  cluster faults: {:?}", report.fault_counts);
            }
        }
        if a.flag("proc") {
            for (n, node) in report.nodes.iter().enumerate() {
                println!("node {n}:\n{}", render_proc(&node.stats));
            }
        }
        if let Some(path) = a.get("report-json") {
            let path = per_sched_path(path, name, multi);
            std::fs::write(&path, report.to_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            if !a.flag("quiet") {
                println!("  report written to {path}");
            }
        }
        for (n, node) in report.nodes.iter().enumerate() {
            if let Some(o) = node.chaos.as_ref().and_then(|c| c.oracle.as_ref()) {
                if !o.clean() {
                    oracle_failures.push(format!(
                        "{name} node {n}: {} unexplained divergence(s), {} invariant violation(s)",
                        o.unexplained, o.invariant_violations
                    ));
                }
            }
        }
    }
    if !oracle_failures.is_empty() {
        return Err(format!("oracle: {}", oracle_failures.join("; ")));
    }
    Ok(())
}

/// `elsc-sim ls`: enumerate everything runnable — the native schedulers,
/// every `.pol` policy discovered on disk, and the workloads. The policy
/// column shows load-time facts (or the first diagnostic) so a glance
/// tells you what `--sched policy:<file>` would accept.
fn run_ls(a: &Args) -> Result<(), String> {
    println!("native schedulers (--sched NAME):");
    for (name, what) in [
        ("reg", "vanilla Linux 2.2/2.3 scheduler (paper sec. 3)"),
        ("elsc", "30-list static-goodness table (paper sec. 5)"),
        ("heap", "goodness-ordered heap prototype (paper sec. 8)"),
        ("aheap", "affinity-aware heap prototype (paper sec. 8)"),
        ("mq", "per-CPU multi-queue prototype (paper sec. 8)"),
        ("bubble", "NUMA-node bubble scheduler (topology tree)"),
    ] {
        println!("  {name:<10} {what}");
    }
    let dir = a.get("policy-dir").unwrap_or("policies");
    println!("\npolicies ({dir}/*.pol, run with --sched policy:<file>):");
    let mut entries: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "pol"))
            .collect(),
        Err(e) => {
            println!("  (cannot read {dir}: {e})");
            Vec::new()
        }
    };
    entries.sort();
    for path in &entries {
        let shown = path.display();
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|src| elsc_policy::load_str(&src).map_err(|e| e.to_string()))
        {
            Ok(prog) => {
                let lists = match prog.lists {
                    elsc_policy::ListsDecl::Fixed(n) => n.to_string(),
                    elsc_policy::ListsDecl::PerCpu => "percpu".to_string(),
                };
                println!(
                    "  {shown:<28} policy:{:<8} lists={lists:<7} static_insns={}",
                    prog.name,
                    prog.total_static_insns()
                );
            }
            Err(e) => println!("  {shown:<28} INVALID: {e}"),
        }
    }
    if entries.is_empty() {
        println!("  (none found)");
    }
    println!("\nlearned models (models/*.model, run with --sched learned:<file>):");
    let mut models: Vec<std::path::PathBuf> = match std::fs::read_dir("models") {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "model"))
            .collect(),
        Err(e) => {
            println!("  (cannot read models: {e})");
            Vec::new()
        }
    };
    models.sort();
    for path in &models {
        let shown = path.display();
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|src| elsc_learn::Model::parse(&src))
        {
            Ok(m) => println!("  {shown:<28} arch={:<7} seed={}", m.arch.name(), m.seed),
            Err(e) => println!("  {shown:<28} INVALID: {e}"),
        }
    }
    if models.is_empty() {
        println!("  (none found; train one with elsc-sim learn train)");
    }
    println!("\nworkloads:");
    for (name, what) in [
        ("volano", "VolanoMark chat benchmark (paper sec. 4/6)"),
        ("kbuild", "kernel compile, make -jN (paper Table 2)"),
        ("httpd", "Apache-like web server (paper sec. 8)"),
        ("stress", "synthetic run-queue stress"),
        ("rtmix", "mixed SCHED_FIFO/SCHED_RR/SCHED_OTHER criticality"),
        (
            "cluster",
            "federated VolanoMark over netsim links (elsc-cluster)",
        ),
    ] {
        println!("  {name:<10} {what}");
    }
    println!("\ncluster dispatchers (elsc-sim cluster --dispatcher NAME):");
    for d in DispatcherId::ALL {
        println!("  {:<16} {}", d.label(), d.describe());
    }
    println!("\nlab builtins (elsc-sim lab sweep --spec NAME; elsc-sim lab ls for sizes):");
    println!("  {}", elsc_lab::SweepSpec::BUILTINS.join(", "));
    Ok(())
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    // `lab` and `learn` are command families with their own
    // sub-subcommand (sweep/compare/ls, train/eval), so they are peeled
    // off before the flat workload parser.
    let is_lab = raw.first().map(String::as_str) == Some("lab");
    let is_learn = !is_lab && raw.first().map(String::as_str) == Some("learn");
    if is_lab || is_learn {
        raw.remove(0);
    }
    let a = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if is_lab {
        if a.flag("help") {
            print!("{}", lab::LAB_USAGE);
            return;
        }
        if let Err(e) = lab::run_lab(&a) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    if is_learn {
        if a.flag("help") {
            print!("{}", learn::LEARN_USAGE);
            return;
        }
        if let Err(e) = learn::run_learn(&a) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    if a.flag("help") || a.command.is_none() {
        // The module doc at the top of this file is the manual.
        print!("{}", USAGE);
        return;
    }
    if a.command.as_deref() == Some("ls") {
        if let Err(e) = run_ls(&a) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    if a.command.as_deref() == Some("cluster") {
        if let Err(e) = run_cluster(&a) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    if let Err(e) = run(&a) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// Help text.
const USAGE: &str = "\
elsc-sim: scheduler simulator for 'Scalable Linux Scheduling' (CITI TR 01-7)

usage: elsc-sim <workload> [options]
       elsc-sim cluster [options]                  (federated multi-node
                                                    simulation)
       elsc-sim ls [--policy-dir DIR]              (list schedulers,
                                                    policies, workloads)
       elsc-sim lab <sweep|compare|ls> [options]   (elsc-sim lab --help)
       elsc-sim learn <train|eval> [options]       (elsc-sim learn --help)

workloads:
  volano    VolanoMark chat benchmark (paper sec. 4/6; alias: volanomark)
  kbuild    kernel compile, make -jN (paper Table 2)
  httpd     Apache-like web server (paper sec. 8)
  stress    synthetic run-queue stress
  rtmix     mixed SCHED_FIFO/SCHED_RR/SCHED_OTHER criticality

common options:
  --sched LIST   comma list of reg,elsc,heap,aheap,mq,bubble, and/or
                 policy:FILE.pol (interpreted policy) or
                 learned:FILE.model (trained model)     [reg,elsc]
  --cpus N       processors                            [1]
  --topology T   declared NUMA/SMT tree, e.g. 2N4C2T (2 nodes x 4 cores
                 x 2 threads = 16 CPUs) or 2P2N4C2T with packages; CPU
                 count follows the tree. 1N{P}C1T is byte-identical to
                 --cpus P. Shapes goodness affinity bonuses, migration
                 costs, mq steal locality, and the bubble scheduler
  --up           non-SMP kernel build (forces 1 CPU)
  --seed N       simulation seed                       [23062]
  --proc         print the /proc-style statistics table
  --latency      print latency/queue-length distributions
  --trace N      keep up to N scheduling-trace records
  --lock-plan P  force the run-queue locking regime: global, percpu,
                 sharded:N, pernode:K, or plain pernode to size domains
                 from the declared topology (default: whatever the
                 scheduler declares)
  --compare      one summary row per scheduler instead of full reports
  --quiet        suppress the standard report

policy runtime (loadable .pol schedulers):
  --sched policy:FILE.pol  load a text policy through the verifying
                 loader; rejects malformed programs with file:line:col
  --policy-budget N  per-decision policy instruction cap [65536];
                 blowing it (or a bad pick, or starving the queue) gets
                 the policy watchdog-ejected mid-run: the vanilla reg
                 scheduler takes over and the run completes
  --policy-backend B  execution backend: vm (compiled register
                 bytecode, the default) or interp (the reference
                 tree-walking interpreter); both are decision- and
                 charge-identical, so this only changes wall-clock speed

learned scheduling (offline-trained pick predictor, elsc-sim learn):
  --sched learned:FILE.model  score candidates with a trained model;
                 every pick is verified by a bounded goodness check,
                 a misprediction charges Mispredict cycles and falls
                 back to the native scan
  --learn-eject-k K  consecutive mispredictions before the watchdog
                 ejects the model (reg takes over, the run
                 completes)                            [8]
  --decision-trace  emit per-decision candidate/label events into the
                 trace; capture with --trace-out, then train with
                 elsc-sim learn train

observability:
  --profile        print the cycle-attribution profile (per CPU x phase
                   x cost kind; the paper sec. 4 scheduler-share figure)
  --trace-out P    stream the full event trace to P as JSON lines
                   (deterministic: same seed => byte-identical file);
                   with several schedulers, P gets a .<sched> suffix
  --report-json P  write the whole run report to P as JSON
  --diff           run exactly two schedulers (--sched A,B) on the same
                   seed and report where their traces first diverge

chaos (fault injection & the differential oracle):
  --faults PLAN    inject deterministic faults: a preset (light, heavy,
                   net) or a comma list of key=rate pairs (ipi_delay,
                   ipi_drop, spurious_wakeup, tick_jitter, lock_hold,
                   short_write, peer_reset)
  --fault-seed N   RNG seed for the fault streams; the same seed gives a
                   byte-identical run and report        [0xFA175EED]
  --oracle         replay an O(n) reference goodness() scan beside every
                   schedule() decision; any unexplained divergence or
                   run-queue invariant violation makes the run exit
                   non-zero (the paper's sec. 5 equivalence claim)

cluster (federated VolanoMark across N simulated machines):
  --nodes N        machines in the federation            [2]
  --dispatcher D   placement policy: round-robin, least-loaded,
                   consistent-hash, or locality          [least-loaded]
  --epoch CYCLES   exchange-epoch length                 [400000]
  --faults PLAN    *cluster* fault classes: a preset (light, heavy) or
                   key=rate pairs (partition, slow_link, node_pause)
  --rooms/--users/--messages as for volano; per-node machine options
  (--cpus, --up, --seed, --lock-plan, --oracle) apply to every node

volano: --rooms N --users N --messages N
kbuild: --jobs N --units N
httpd:  --clients N --workers N --requests N
stress: --tasks N --rounds N --burst CYCLES
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(list.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn scheduler_factory_knows_all_names() {
        for name in ["reg", "elsc", "heap", "aheap", "mq", "bubble"] {
            assert_eq!(
                scheduler(name, Topology::flat(2), None).unwrap().name(),
                name
            );
        }
        assert!(scheduler("cfs", Topology::flat(2), None).is_err());
    }

    #[test]
    fn declared_topology_follows_the_flags() {
        let topo = declared_topology(&args(&["volano", "--topology", "2N4C2T"])).unwrap();
        assert_eq!(topo.to_string(), "2N4C2T");
        assert_eq!(topo.nr_cpus(), 16);
        // Consistent --cpus is accepted, disagreement is an error.
        assert!(
            declared_topology(&args(&["volano", "--topology", "2N4C2T", "--cpus", "16"])).is_ok()
        );
        let err = declared_topology(&args(&["volano", "--topology", "2N4C2T", "--cpus", "4"]))
            .unwrap_err();
        assert!(err.contains("disagrees"), "{err}");
        let err =
            declared_topology(&args(&["volano", "--topology", "2N4C2T", "--up"])).unwrap_err();
        assert!(err.contains("--up"), "{err}");
        // No --topology: the flat tree of --cpus.
        let topo = declared_topology(&args(&["volano", "--cpus", "3"])).unwrap();
        assert_eq!(topo, Topology::flat(3));
    }

    #[test]
    fn machine_cfg_flat_topology_matches_plain_cpus() {
        // The CI flat-equivalence gate in config form: a declared flat
        // tree is *the same configuration* as --cpus N.
        let a = machine_cfg(&args(&["volano", "--topology", "1N4C1T"])).unwrap();
        let b = machine_cfg(&args(&["volano", "--cpus", "4"])).unwrap();
        assert_eq!(a.sched.topology, b.sched.topology);
        assert_eq!(a.sched.label(), b.sched.label());
        assert_eq!(a.nr_cpus(), b.nr_cpus());
    }

    #[test]
    fn pernode_lock_plan_resolves_against_the_topology() {
        let cfg = machine_cfg(&args(&[
            "volano",
            "--topology",
            "2N4C2T",
            "--lock-plan",
            "pernode",
        ]))
        .unwrap();
        assert_eq!(cfg.lock_plan, Some(LockPlan::PerNode(8)));
        let cfg = machine_cfg(&args(&[
            "volano",
            "--lock-plan",
            "pernode:2",
            "--cpus",
            "4",
        ]))
        .unwrap();
        assert_eq!(cfg.lock_plan, Some(LockPlan::PerNode(2)));
    }

    #[test]
    fn machine_cfg_respects_up_flag() {
        let cfg = machine_cfg(&args(&["volano", "--up", "--cpus", "4"])).unwrap();
        assert!(!cfg.sched.smp);
        assert_eq!(cfg.nr_cpus(), 1);
        let cfg = machine_cfg(&args(&["volano", "--cpus", "4"])).unwrap();
        assert!(cfg.sched.smp);
        assert_eq!(cfg.nr_cpus(), 4);
    }

    #[test]
    fn machine_cfg_parses_lock_plan() {
        let cfg = machine_cfg(&args(&["volano", "--lock-plan", "percpu"])).unwrap();
        assert_eq!(cfg.lock_plan, Some(LockPlan::PerCpu));
        let cfg = machine_cfg(&args(&["volano", "--lock-plan", "sharded:3"])).unwrap();
        assert_eq!(cfg.lock_plan, Some(LockPlan::Sharded(3)));
        let cfg = machine_cfg(&args(&["volano"])).unwrap();
        assert_eq!(cfg.lock_plan, None);
        let err = machine_cfg(&args(&["volano", "--lock-plan", "banana"])).unwrap_err();
        assert!(err.contains("--lock-plan"), "{err}");
    }

    #[test]
    fn lock_plan_override_reaches_the_report() {
        let a = args(&[
            "stress",
            "--tasks",
            "8",
            "--rounds",
            "3",
            "--cpus",
            "2",
            "--lock-plan",
            "percpu",
            "--quiet",
        ]);
        let out = run_one(&a, scheduler("reg", Topology::flat(2), None).unwrap(), None).unwrap();
        assert_eq!(out.report.lock_plan, "percpu");
        assert_eq!(out.report.lock_domains.len(), 2);
    }

    #[test]
    fn machine_cfg_parses_chaos_options() {
        let cfg = machine_cfg(&args(&[
            "stress",
            "--faults",
            "light",
            "--fault-seed",
            "41",
            "--oracle",
        ]))
        .unwrap();
        assert!(cfg.faults.is_some());
        assert_eq!(cfg.fault_seed, 41);
        assert!(cfg.oracle);
        let cfg = machine_cfg(&args(&["stress"])).unwrap();
        assert!(cfg.faults.is_none());
        assert!(!cfg.oracle);
        let err = machine_cfg(&args(&["stress", "--faults", "banana"])).unwrap_err();
        assert!(err.contains("--faults"), "{err}");
    }

    #[test]
    fn oracle_run_is_clean_and_reported() {
        let a = args(&[
            "stress", "--tasks", "8", "--rounds", "3", "--oracle", "--quiet",
        ]);
        let out = run_one(
            &a,
            scheduler("elsc", Topology::flat(1), None).unwrap(),
            None,
        )
        .unwrap();
        let o = out
            .report
            .chaos
            .as_ref()
            .and_then(|c| c.oracle.as_ref())
            .expect("oracle report");
        assert!(o.decisions > 0);
        assert!(o.clean(), "stress under elsc must match the reference");
    }

    #[test]
    fn small_volano_runs_end_to_end() {
        let a = args(&[
            "volano",
            "--rooms",
            "1",
            "--users",
            "3",
            "--messages",
            "2",
            "--quiet",
        ]);
        let out = run_one(
            &a,
            scheduler("elsc", Topology::flat(1), None).unwrap(),
            None,
        )
        .unwrap();
        assert_eq!(out.metric.as_deref(), Some("messages"));
        assert_eq!(out.report.ledger.get("messages"), 3 * 3 * 2);
        assert!(out.trace_text.is_none(), "tracing is off by default");
    }

    #[test]
    fn small_stress_runs_end_to_end() {
        let a = args(&["stress", "--tasks", "4", "--rounds", "3"]);
        let out = run_one(&a, scheduler("reg", Topology::flat(1), None).unwrap(), None).unwrap();
        assert_eq!(out.report.ledger.get("spins"), 12);
    }

    #[test]
    fn trace_flag_produces_a_summary() {
        let a = args(&["stress", "--tasks", "2", "--rounds", "2", "--trace", "100"]);
        let out = run_one(
            &a,
            scheduler("elsc", Topology::flat(1), None).unwrap(),
            None,
        )
        .unwrap();
        let text = out.trace_text.expect("trace requested");
        assert!(text.contains("Switch"));
        assert!(text.contains("records kept"));
        assert!(!out.records.is_empty());
    }

    #[test]
    fn compare_mode_runs_all_schedulers() {
        let a = args(&[
            "stress",
            "--tasks",
            "4",
            "--rounds",
            "2",
            "--compare",
            "--sched",
            "reg,elsc,heap,aheap,mq",
        ]);
        assert!(run(&a).is_ok());
    }

    #[test]
    fn rtmix_runs_end_to_end() {
        let a = args(&["rtmix", "--quiet"]);
        let out = run_one(
            &a,
            scheduler("elsc", Topology::flat(1), None).unwrap(),
            None,
        )
        .unwrap();
        assert!(out.report.ledger.get("fifo_activations") > 0);
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let a = args(&["beleaguer"]);
        assert!(run(&a).is_err());
    }

    #[test]
    fn cluster_subcommand_runs_end_to_end() {
        let a = args(&[
            "cluster",
            "--nodes",
            "2",
            "--dispatcher",
            "round-robin",
            "--cpus",
            "2",
            "--rooms",
            "2",
            "--users",
            "4",
            "--messages",
            "2",
            "--sched",
            "elsc",
            "--quiet",
        ]);
        assert!(run_cluster(&a).is_ok());
    }

    #[test]
    fn cluster_subcommand_rejects_bad_axes() {
        let err =
            run_cluster(&args(&["cluster", "--dispatcher", "psychic", "--quiet"])).unwrap_err();
        assert!(err.contains("--dispatcher"), "{err}");
        let err = run_cluster(&args(&["cluster", "--nodes", "0", "--quiet"])).unwrap_err();
        assert!(err.contains("--nodes"), "{err}");
        // Machine fault classes are not cluster fault classes.
        let err =
            run_cluster(&args(&["cluster", "--faults", "ipi_drop=0.5", "--quiet"])).unwrap_err();
        assert!(err.contains("cluster classes"), "{err}");
        // A zero-cycle exchange epoch must be a CLI error, not a panic
        // from the federation's own assert.
        let err = run_cluster(&args(&["cluster", "--epoch", "0", "--quiet"])).unwrap_err();
        assert!(err.contains("--epoch"), "{err}");
    }

    #[test]
    fn cluster_subcommand_gates_on_the_oracle() {
        // Oracle on, light cluster faults: must stay clean and succeed.
        let a = args(&[
            "cluster",
            "--nodes",
            "2",
            "--rooms",
            "2",
            "--users",
            "4",
            "--messages",
            "2",
            "--faults",
            "light",
            "--oracle",
            "--sched",
            "elsc",
            "--quiet",
        ]);
        assert!(run_cluster(&a).is_ok());
    }

    fn pol(file: &str) -> String {
        format!(
            "policy:{}/../../policies/{file}",
            env!("CARGO_MANIFEST_DIR")
        )
    }

    #[test]
    fn policy_factory_loads_pol_files() {
        let s = scheduler(&pol("reg.pol"), Topology::flat(2), None).unwrap();
        assert_eq!(s.name(), "policy:reg");
        let err = scheduler("policy:/no/such/file.pol", Topology::flat(1), None)
            .err()
            .unwrap();
        assert!(err.contains("/no/such/file.pol"), "{err}");
    }

    #[test]
    fn malformed_policy_is_a_diagnostic_not_a_panic() {
        let err = scheduler(&pol("bad/undefined_var.pol"), Topology::flat(1), None)
            .err()
            .unwrap();
        // file:line:col: message — clickable, never a panic.
        assert!(err.contains("undefined_var.pol:"), "{err}");
        assert!(err.contains("winner"), "{err}");
    }

    #[test]
    fn learned_factory_loads_model_files() {
        let dir = std::env::temp_dir().join(format!("elsc-cli-learned-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("zero.model");
        let model = elsc_learn::Model::zeroed(elsc_learn::Arch::LogReg);
        std::fs::write(&path, model.to_text()).unwrap();
        let spec = format!("learned:{}", path.display());
        let s = scheduler(&spec, Topology::flat(2), None).unwrap();
        assert_eq!(s.name(), "learned:zero");
        // Missing file and garbage bytes are diagnostics, not panics.
        let err = scheduler("learned:/no/such.model", Topology::flat(1), None)
            .err()
            .unwrap();
        assert!(err.contains("/no/such.model"), "{err}");
        std::fs::write(&path, "not a model").unwrap();
        let err = scheduler(&spec, Topology::flat(1), None).err().unwrap();
        assert!(err.contains("zero.model"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn machine_cfg_parses_learned_options() {
        let cfg = machine_cfg(&args(&[
            "volano",
            "--decision-trace",
            "--learn-eject-k",
            "3",
        ]))
        .unwrap();
        assert!(cfg.decision_trace);
        assert_eq!(cfg.learn_eject_k, 3);
        let cfg = machine_cfg(&args(&["volano"])).unwrap();
        assert!(!cfg.decision_trace);
        assert_eq!(cfg.learn_eject_k, 8);
        let err = machine_cfg(&args(&["volano", "--learn-eject-k", "0"])).unwrap_err();
        assert!(err.contains("--learn-eject-k"), "{err}");
    }

    #[test]
    fn decision_trace_feeds_the_trainer_end_to_end() {
        // The full loop at CLI level: capture a labelled trace, train a
        // model on it, run the workload again under the trained model.
        let dir = std::env::temp_dir().join(format!("elsc-cli-loop-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("volano.jsonl").display().to_string();
        let a = args(&[
            "volano",
            "--rooms",
            "1",
            "--users",
            "4",
            "--messages",
            "2",
            "--decision-trace",
            "--quiet",
        ]);
        run_one(
            &a,
            scheduler("reg", Topology::flat(1), None).unwrap(),
            Some(&trace),
        )
        .unwrap();
        let data = elsc_learn::parse_trace(&std::fs::read_to_string(&trace).unwrap());
        assert!(!data.decisions.is_empty(), "the trace must be labelled");
        let model = dir.join("volano.model").display().to_string();
        learn::run_learn(&args(&[
            "train",
            "--data",
            &trace,
            "--arch",
            "logreg",
            "--model-out",
            &model,
            "--quiet",
        ]))
        .unwrap();
        let out = run_one(
            &a,
            scheduler(&format!("learned:{model}"), Topology::flat(1), None).unwrap(),
            None,
        )
        .unwrap();
        assert_eq!(out.report.ledger.get("messages"), 4 * 4 * 2);
        let l = out.report.learned.as_ref().expect("learned summary");
        assert!(l.predictions > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_budget_flag_is_parsed() {
        let a = args(&["stress", "--policy-budget", "128"]);
        assert_eq!(policy_budget(&a).unwrap(), Some(128));
        assert_eq!(policy_budget(&args(&["stress"])).unwrap(), None);
        let err = policy_budget(&args(&["stress", "--policy-budget", "lots"])).unwrap_err();
        assert!(err.contains("--policy-budget"), "{err}");
    }

    #[test]
    fn reg_policy_survives_the_strict_oracle_from_the_cli() {
        let a = args(&[
            "stress", "--tasks", "6", "--rounds", "3", "--oracle", "--quiet",
        ]);
        let out = run_one(
            &a,
            scheduler(&pol("reg.pol"), Topology::flat(1), None).unwrap(),
            None,
        )
        .unwrap();
        assert_eq!(out.report.scheduler, "policy:reg");
        let o = out
            .report
            .chaos
            .as_ref()
            .and_then(|c| c.oracle.as_ref())
            .expect("oracle report");
        assert!(o.clean(), "policy:reg must match the reference scan: {o:?}");
        let p = out.report.policy.as_ref().expect("policy summary");
        assert!(!p.ejected);
    }

    #[test]
    fn policy_backend_flag_selects_the_backend() {
        let run = |extra: &[&str]| {
            let mut v = vec!["stress", "--tasks", "6", "--rounds", "3", "--quiet"];
            v.extend_from_slice(extra);
            let a = args(&v);
            run_one(
                &a,
                scheduler(&pol("reg.pol"), Topology::flat(1), None).unwrap(),
                None,
            )
            .unwrap()
            .report
        };
        assert_eq!(run(&[]).policy.unwrap().backend, "vm", "default");
        assert_eq!(
            run(&["--policy-backend", "interp"]).policy.unwrap().backend,
            "interp"
        );
        assert_eq!(
            run(&["--policy-backend", "vm"]).policy.unwrap().backend,
            "vm"
        );
        let a = args(&["stress", "--policy-backend", "jit"]);
        let err = machine_cfg(&a).unwrap_err();
        assert!(err.contains("--policy-backend"), "{err}");
    }

    #[test]
    fn starving_policy_is_ejected_but_the_cli_run_succeeds() {
        let a = args(&["stress", "--tasks", "6", "--rounds", "3", "--quiet"]);
        let out = run_one(
            &a,
            scheduler(&pol("starve.pol"), Topology::flat(1), None).unwrap(),
            None,
        )
        .unwrap();
        let p = out.report.policy.as_ref().expect("policy summary");
        assert!(p.ejected, "the watchdog must fire");
        assert_eq!(p.eject_reason, Some("starvation"));
    }
}
