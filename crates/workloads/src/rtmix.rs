//! A mixed real-time / time-sharing workload.
//!
//! The paper keeps the baseline's real-time semantics intact ("if the
//! current scheduler always selects a real-time task over a SCHED_OTHER
//! task, even if it has a zero counter, then the ELSC scheduler should do
//! the same", §5 footnote 2). This workload exercises that end-to-end: a
//! periodic `SCHED_FIFO` task and a `SCHED_RR` pair compete with a crowd
//! of ordinary background tasks, and the report records how promptly the
//! real-time work ran.

use elsc_ktask::{MmId, SchedClass, TaskSpec};
use elsc_machine::{Behavior, Machine, MachineConfig, Op, RunReport, SysView};
use elsc_sched_api::Scheduler;

/// Mixed-criticality workload parameters.
#[derive(Clone, Debug)]
pub struct RtMixConfig {
    /// Ordinary background tasks (CPU-bound with small sleeps).
    pub background_tasks: usize,
    /// Activations of the periodic FIFO task.
    pub fifo_activations: usize,
    /// FIFO period in cycles.
    pub fifo_period: u64,
    /// FIFO compute per activation.
    pub fifo_work: u64,
    /// Bursts each RR task performs.
    pub rr_bursts: usize,
    /// Cycles per RR burst.
    pub rr_work: u64,
    /// Background compute per phase.
    pub background_work: u64,
    /// Background phases.
    pub background_phases: usize,
}

impl Default for RtMixConfig {
    fn default() -> Self {
        RtMixConfig {
            background_tasks: 40,
            fifo_activations: 50,
            fifo_period: 2_000_000,
            fifo_work: 200_000,
            rr_bursts: 30,
            rr_work: 500_000,
            background_work: 1_000_000,
            background_phases: 10,
        }
    }
}

/// Periodic hard-priority task: wake, compute, sleep until next period.
struct PeriodicFifo {
    left: usize,
    period: u64,
    work: u64,
    last_activation: Option<elsc_simcore::Cycles>,
}

impl Behavior for PeriodicFifo {
    fn resume(&mut self, sys: &mut SysView<'_>) -> Op {
        if self.left == 0 {
            return Op::exit();
        }
        self.left -= 1;
        sys.ledger.add("fifo_activations", 1);
        // Inter-activation gap is the real-time metric: anything beyond
        // work + period is scheduling delay.
        if let Some(prev) = self.last_activation.replace(sys.now) {
            sys.dists
                .record("fifo_gap", sys.now.saturating_sub(prev).get());
        }
        Op::sleep_after(self.work, self.period)
    }
}

/// Round-robin CPU hog: long bursts, preempted by quantum expiry.
struct RrHog {
    left: usize,
    work: u64,
}

impl Behavior for RrHog {
    fn resume(&mut self, sys: &mut SysView<'_>) -> Op {
        if self.left == 0 {
            return Op::exit();
        }
        self.left -= 1;
        sys.ledger.add("rr_bursts", 1);
        Op::compute(self.work, elsc_machine::Syscall::Nop)
    }
}

/// Ordinary background task: compute then briefly sleep.
struct Background {
    phases: usize,
    work: u64,
}

impl Behavior for Background {
    fn resume(&mut self, sys: &mut SysView<'_>) -> Op {
        if self.phases == 0 {
            return Op::exit();
        }
        self.phases -= 1;
        sys.ledger.add("background_phases", 1);
        let work = sys.rng.jitter(self.work, 0.3);
        Op::sleep_after(work, 100_000)
    }
}

/// Populates a machine with the mixed workload.
pub fn build(m: &mut Machine, cfg: &RtMixConfig) {
    m.spawn(
        &TaskSpec::named("fifo")
            .mm(MmId::KERNEL)
            .realtime(SchedClass::Fifo, 50),
        Box::new(PeriodicFifo {
            left: cfg.fifo_activations,
            period: cfg.fifo_period,
            work: cfg.fifo_work,
            last_activation: None,
        }),
    );
    for _ in 0..2 {
        m.spawn(
            &TaskSpec::named("rr")
                .mm(MmId::KERNEL)
                .realtime(SchedClass::Rr, 10),
            Box::new(RrHog {
                left: cfg.rr_bursts,
                work: cfg.rr_work,
            }),
        );
    }
    for i in 0..cfg.background_tasks {
        m.spawn(
            &TaskSpec::named("bg").mm(MmId(1 + (i % 4) as u32)),
            Box::new(Background {
                phases: cfg.background_phases,
                work: cfg.background_work,
            }),
        );
    }
}

/// Builds and runs the workload on a fresh machine.
///
/// # Panics
///
/// Panics if the simulation deadlocks or times out (a harness bug).
pub fn run(machine_cfg: MachineConfig, sched: Box<dyn Scheduler>, cfg: &RtMixConfig) -> RunReport {
    let mut m = Machine::new(machine_cfg, sched);
    build(&mut m, cfg);
    m.run().expect("rtmix run must complete")
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsc::ElscScheduler;
    use elsc_sched_linux::LinuxScheduler;

    fn tiny() -> RtMixConfig {
        RtMixConfig {
            background_tasks: 6,
            fifo_activations: 8,
            fifo_period: 500_000,
            fifo_work: 50_000,
            rr_bursts: 5,
            rr_work: 100_000,
            background_work: 200_000,
            background_phases: 4,
        }
    }

    #[test]
    fn all_work_completes_under_both_schedulers() {
        for sched in [
            Box::new(LinuxScheduler::new()) as Box<dyn Scheduler>,
            Box::new(ElscScheduler::new()),
        ] {
            let cfg = tiny();
            let r = run(MachineConfig::up().with_max_secs(200.0), sched, &cfg);
            assert_eq!(r.ledger.get("fifo_activations"), 8);
            assert_eq!(r.ledger.get("rr_bursts"), 10);
            assert_eq!(r.ledger.get("background_phases"), 24);
        }
    }

    #[test]
    fn realtime_preempts_background_promptly() {
        // The FIFO task's inter-activation gap must stay near
        // work + period: it preempts the background crowd instead of
        // queueing behind it. (Preemption granularity on this machine is
        // a background compute phase, so allow a couple of those.)
        let cfg = tiny();
        let bound = cfg.fifo_work + cfg.fifo_period + 3 * cfg.background_work;
        for sched in [
            Box::new(LinuxScheduler::new()) as Box<dyn Scheduler>,
            Box::new(ElscScheduler::new()),
        ] {
            let name = sched.name();
            let r = run(MachineConfig::up().with_max_secs(200.0), sched, &cfg);
            let gap = r.dists.get("fifo_gap").expect("gaps recorded");
            assert!(
                gap.percentile(95.0) < bound,
                "{name}: p95 activation gap {} exceeds {bound}",
                gap.percentile(95.0)
            );
        }
    }

    #[test]
    fn rr_hogs_share_via_quantum_expiry() {
        // Two equal-priority SCHED_RR hogs must alternate: quantum expiry
        // moves the exhausted one behind the other (move_last semantics).
        let mut cfg = tiny();
        // Bursts far longer than the 10ms RR quantum so expiry happens.
        cfg.rr_work = 500_000_000;
        cfg.rr_bursts = 1;
        cfg.background_tasks = 1;
        cfg.background_phases = 1;
        cfg.fifo_activations = 1;
        let r = run(
            MachineConfig::up().with_max_secs(200.0),
            Box::new(ElscScheduler::new()),
            &cfg,
        );
        // Both hogs ran to completion, and quantum expiries forced many
        // context switches between them.
        assert_eq!(r.ledger.get("rr_bursts"), 2);
        assert!(
            r.stats.total().ctx_switches > 10,
            "RR hogs must alternate, saw {} switches",
            r.stats.total().ctx_switches
        );
    }
}
