//! Synthetic run-queue stress.
//!
//! Holds the run-queue length at an exact value so the microbenchmarks
//! can sweep "cycles per `schedule()` vs. number of runnable threads" —
//! the paper's core scalability claim — without workload noise.

use elsc_ktask::{MmId, TaskSpec};
use elsc_machine::{Behavior, Machine, MachineConfig, Op, RunReport, SysView};
use elsc_sched_api::Scheduler;

/// Stress parameters.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Number of always-runnable spinner tasks.
    pub tasks: usize,
    /// Compute cycles between yields.
    pub burst: u64,
    /// Yields each task performs before exiting.
    pub rounds: usize,
    /// Whether tasks share one address space (affects the +1 mm bonus).
    pub shared_mm: bool,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            tasks: 100,
            burst: 20_000,
            rounds: 50,
            shared_mm: true,
        }
    }
}

/// A spinner: `rounds` bursts separated by `sched_yield()`, then exit.
struct FiniteSpinner {
    burst: u64,
    rounds: usize,
}

impl Behavior for FiniteSpinner {
    fn resume(&mut self, sys: &mut SysView<'_>) -> Op {
        if self.rounds == 0 {
            return Op::exit();
        }
        self.rounds -= 1;
        sys.ledger.add("spins", 1);
        Op::yield_after(self.burst)
    }
}

/// Populates a machine with the stress tasks.
pub fn build(m: &mut Machine, cfg: &StressConfig) {
    for i in 0..cfg.tasks {
        let mm = if cfg.shared_mm {
            MmId(1)
        } else {
            MmId(1 + i as u32)
        };
        m.spawn(
            &TaskSpec::named("spin").mm(mm),
            Box::new(FiniteSpinner {
                burst: cfg.burst,
                rounds: cfg.rounds,
            }),
        );
    }
}

/// Builds and runs the stress workload on a fresh machine.
///
/// # Panics
///
/// Panics if the simulation deadlocks or times out (a harness bug).
pub fn run(machine_cfg: MachineConfig, sched: Box<dyn Scheduler>, cfg: &StressConfig) -> RunReport {
    let mut m = Machine::new(machine_cfg, sched);
    build(&mut m, cfg);
    m.run().expect("stress run must complete")
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsc::ElscScheduler;
    use elsc_sched_linux::LinuxScheduler;

    fn tiny() -> StressConfig {
        StressConfig {
            tasks: 8,
            burst: 10_000,
            rounds: 5,
            shared_mm: true,
        }
    }

    #[test]
    fn every_spin_happens() {
        let cfg = tiny();
        let r = run(
            MachineConfig::up().with_max_secs(60.0),
            Box::new(LinuxScheduler::new()),
            &cfg,
        );
        assert_eq!(r.ledger.get("spins"), (cfg.tasks * cfg.rounds) as u64);
        assert_eq!(r.stats.total().yields, (cfg.tasks * cfg.rounds) as u64);
    }

    #[test]
    fn reg_cost_grows_with_tasks_elsc_does_not() {
        // The headline claim, end-to-end: average cycles per schedule().
        let cost = |sched: Box<dyn Scheduler>, tasks: usize| -> f64 {
            let cfg = StressConfig {
                tasks,
                burst: 10_000,
                rounds: 5,
                shared_mm: true,
            };
            let r = run(MachineConfig::up().with_max_secs(600.0), sched, &cfg);
            r.stats.total().cycles_per_schedule()
        };
        let reg_small = cost(Box::new(LinuxScheduler::new()), 10);
        let reg_big = cost(Box::new(LinuxScheduler::new()), 200);
        let elsc_small = cost(Box::new(ElscScheduler::new()), 10);
        let elsc_big = cost(Box::new(ElscScheduler::new()), 200);
        assert!(
            reg_big > reg_small * 3.0,
            "reg should degrade: {reg_small} -> {reg_big}"
        );
        assert!(
            elsc_big < elsc_small * 2.0,
            "elsc should stay flat: {elsc_small} -> {elsc_big}"
        );
        assert!(elsc_big < reg_big, "elsc must beat reg at scale");
    }

    #[test]
    fn smp_stress_completes() {
        let r = run(
            MachineConfig::smp(4).with_max_secs(60.0),
            Box::new(ElscScheduler::new()),
            &tiny(),
        );
        assert_eq!(r.ledger.get("spins"), 40);
    }
}
