//! Workload generators for the scheduler experiments.
//!
//! * [`volanomark`] — the paper's stress test (§4, §6): a chat-room
//!   benchmark with four threads per connection over blocking loopback
//!   sockets, including the JVM's `sched_yield()`-based locking behaviour.
//! * [`kbuild`] — the paper's light-load test (Table 2): `make -jN` over a
//!   DAG of compile processes with fork/exec/exit and I/O blocking.
//! * [`httpd`] — the §8 future-work scenario: an Apache-like worker-pool
//!   web server with many concurrent clients.
//! * [`rtmix`] — mixed `SCHED_FIFO`/`SCHED_RR`/`SCHED_OTHER` criticality
//!   (the real-time semantics the paper promises to preserve, §5).
//! * [`stress`] — synthetic run-queue-length stress for microbenchmarks.
//!
//! Each module exposes a config struct, a `build` function that populates
//! a [`elsc_machine::Machine`], and a convenience `run` wrapper.
#![warn(missing_docs)]

pub mod httpd;
pub mod kbuild;
pub mod rtmix;
pub mod stress;
pub mod volanomark;

pub use httpd::HttpdConfig;
pub use kbuild::KbuildConfig;
pub use rtmix::RtMixConfig;
pub use stress::StressConfig;
pub use volanomark::VolanoConfig;
