//! The kernel-compile workload (paper Table 2).
//!
//! Models `make -jN bzImage`: a coordinator process keeps up to `jobs`
//! compile processes in flight. Each compile is a fresh process (its own
//! address space — exec) alternating CPU bursts with I/O waits, then
//! reports completion and exits; a final serial link step closes the run.
//!
//! This is the paper's *light-load* control experiment: the run queue
//! rarely exceeds `jobs` tasks, so both schedulers should finish in
//! essentially the same time, with ELSC's UP advantage coming from its
//! shared-mm early-exit in the search loop.

use elsc_ktask::{MmId, TaskSpec};
use elsc_machine::{Behavior, Machine, MachineConfig, Op, RunReport, SpawnReq, SysView, Syscall};
use elsc_netsim::{Msg, PipeId};
use elsc_sched_api::Scheduler;

/// Kernel-compile parameters.
#[derive(Clone, Debug)]
pub struct KbuildConfig {
    /// Parallelism (`make -j`); the paper used `-j4`.
    pub jobs: usize,
    /// Number of translation units to compile.
    pub translation_units: usize,
    /// Mean CPU cycles to compile one unit.
    pub compile_cycles: u64,
    /// I/O waits per unit (header reads, object writes).
    pub io_blocks_per_unit: usize,
    /// Mean cycles per I/O wait.
    pub io_block_cycles: u64,
    /// Cycles for the final serial link.
    pub link_cycles: u64,
    /// Jitter fraction on compile and I/O durations.
    pub jitter: f64,
}

impl Default for KbuildConfig {
    fn default() -> Self {
        KbuildConfig {
            jobs: 4,
            translation_units: 160,
            compile_cycles: 24_000_000,
            io_blocks_per_unit: 3,
            io_block_cycles: 1_200_000,
            link_cycles: 120_000_000,
            jitter: 0.3,
        }
    }
}

impl KbuildConfig {
    /// Expected serial CPU demand (for sanity checks), in cycles.
    pub fn serial_compute(&self) -> u64 {
        self.translation_units as u64 * self.compile_cycles + self.link_cycles
    }
}

/// One compile process: alternating compute and I/O, then a completion
/// token, then exit.
struct Compile {
    phases_left: usize,
    compute_per_phase: u64,
    io_cycles: u64,
    jitter: f64,
    done_pipe: PipeId,
    reported: bool,
}

impl Behavior for Compile {
    fn resume(&mut self, sys: &mut SysView<'_>) -> Op {
        if self.phases_left > 0 {
            self.phases_left -= 1;
            let compute = sys.rng.jitter(self.compute_per_phase, self.jitter);
            let io = sys.rng.jitter(self.io_cycles, self.jitter).max(1);
            return Op::sleep_after(compute, io);
        }
        if !self.reported {
            self.reported = true;
            sys.ledger.add("units_compiled", 1);
            return Op::write_after(2_000, self.done_pipe, Msg::tagged(0));
        }
        Op::exit()
    }
}

/// The `make` coordinator: keeps `jobs` compiles in flight, then links.
struct Make {
    cfg: KbuildConfig,
    remaining: usize,
    in_flight: usize,
    next_mm: u32,
    done_pipe: PipeId,
    linked: bool,
}

impl Make {
    fn compile_req(&mut self) -> SpawnReq {
        let phases = self.cfg.io_blocks_per_unit.max(1);
        let mm = MmId(self.next_mm);
        self.next_mm += 1;
        SpawnReq {
            spec: TaskSpec::named("cc1").mm(mm),
            behavior: Box::new(Compile {
                phases_left: phases,
                compute_per_phase: self.cfg.compile_cycles / phases as u64,
                io_cycles: self.cfg.io_block_cycles,
                jitter: self.cfg.jitter,
                done_pipe: self.done_pipe,
                reported: false,
            }),
        }
    }
}

impl Behavior for Make {
    fn resume(&mut self, sys: &mut SysView<'_>) -> Op {
        if sys.last_read.is_some() {
            self.in_flight -= 1;
        }
        if self.remaining > 0 && self.in_flight < self.cfg.jobs {
            self.remaining -= 1;
            self.in_flight += 1;
            return Op::compute(20_000, Syscall::Spawn(self.compile_req()));
        }
        if self.in_flight > 0 {
            return Op::read_after(5_000, self.done_pipe);
        }
        if !self.linked {
            self.linked = true;
            sys.ledger.add("linked", 1);
            return Op::compute(self.cfg.link_cycles, Syscall::Nop);
        }
        Op::exit()
    }
}

/// Populates a machine with the kbuild workload.
pub fn build(m: &mut Machine, cfg: &KbuildConfig) {
    assert!(cfg.jobs > 0 && cfg.translation_units > 0);
    let done_pipe = m.create_pipe(cfg.jobs.max(1));
    m.spawn(
        &TaskSpec::named("make").mm(MmId(1000)),
        Box::new(Make {
            cfg: cfg.clone(),
            remaining: cfg.translation_units,
            in_flight: 0,
            next_mm: 1001,
            done_pipe,
            linked: false,
        }),
    );
}

/// Builds and runs the compile on a fresh machine.
///
/// # Panics
///
/// Panics if the simulation deadlocks or times out (a harness bug).
pub fn run(machine_cfg: MachineConfig, sched: Box<dyn Scheduler>, cfg: &KbuildConfig) -> RunReport {
    let mut m = Machine::new(machine_cfg, sched);
    build(&mut m, cfg);
    m.run().expect("kbuild run must complete")
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsc::ElscScheduler;
    use elsc_sched_linux::LinuxScheduler;

    fn tiny() -> KbuildConfig {
        KbuildConfig {
            jobs: 2,
            translation_units: 6,
            compile_cycles: 600_000,
            io_blocks_per_unit: 2,
            io_block_cycles: 100_000,
            link_cycles: 1_000_000,
            jitter: 0.2,
        }
    }

    #[test]
    fn compiles_every_unit_then_links() {
        let r = run(
            MachineConfig::up().with_max_secs(60.0),
            Box::new(LinuxScheduler::new()),
            &tiny(),
        );
        assert_eq!(r.ledger.get("units_compiled"), 6);
        assert_eq!(r.ledger.get("linked"), 1);
        // make + 6 compiles.
        assert_eq!(r.tasks_spawned, 7);
    }

    #[test]
    fn elapsed_at_least_serial_compute_up() {
        let cfg = tiny();
        let r = run(
            MachineConfig::up().with_max_secs(60.0),
            Box::new(ElscScheduler::new()),
            &cfg,
        );
        assert!(r.elapsed.get() >= cfg.serial_compute());
    }

    #[test]
    fn two_cpus_beat_one() {
        let cfg = KbuildConfig {
            jobs: 4,
            translation_units: 12,
            compile_cycles: 4_000_000,
            io_blocks_per_unit: 2,
            io_block_cycles: 200_000,
            link_cycles: 1_000_000,
            jitter: 0.2,
        };
        let one = run(
            MachineConfig::smp(1).with_max_secs(120.0),
            Box::new(LinuxScheduler::new()),
            &cfg,
        );
        let two = run(
            MachineConfig::smp(2).with_max_secs(120.0),
            Box::new(LinuxScheduler::new()),
            &cfg,
        );
        assert!(
            two.elapsed.get() < one.elapsed.get(),
            "2P {} !< 1P {}",
            two.elapsed,
            one.elapsed
        );
    }

    #[test]
    fn parallelism_is_bounded_by_jobs() {
        // With jobs=1 the elapsed time is at least the full serial demand
        // even on many CPUs.
        let cfg = KbuildConfig {
            jobs: 1,
            translation_units: 5,
            compile_cycles: 2_000_000,
            io_blocks_per_unit: 1,
            io_block_cycles: 50_000,
            link_cycles: 500_000,
            jitter: 0.0,
        };
        let r = run(
            MachineConfig::smp(4).with_max_secs(60.0),
            Box::new(LinuxScheduler::new()),
            &cfg,
        );
        assert!(r.elapsed.get() >= cfg.serial_compute());
    }
}
