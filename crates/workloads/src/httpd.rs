//! An Apache-like web server (the paper's §8 future work).
//!
//! "In the future, we would like to see how the ELSC scheduler performs in
//! other multithreaded environments. One such example is a web server
//! running Apache."
//!
//! Model: a pool of worker tasks blocks on a shared accept queue; client
//! tasks issue requests (write to the accept queue, read their private
//! response pipe) with think times in between. After every client
//! finishes, a coordinator feeds the workers poison pills so the run
//! terminates cleanly.

use elsc_ktask::{MmId, TaskSpec};
use elsc_machine::{Behavior, Machine, MachineConfig, Op, RunReport, SysView};
use elsc_netsim::{Msg, PipeId};
use elsc_sched_api::Scheduler;

/// Tag marking a worker shutdown message.
const POISON: u64 = u64::MAX;

/// Web-server workload parameters.
#[derive(Clone, Debug)]
pub struct HttpdConfig {
    /// Worker pool size (Apache `MaxClients` style).
    pub workers: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Server cycles to handle one request.
    pub handle_work: u64,
    /// Client cycles to build a request / consume a response.
    pub client_work: u64,
    /// Mean client think time between requests (sleep, cycles).
    pub think_cycles: u64,
    /// Accept-queue capacity.
    pub backlog: usize,
    /// Jitter fraction.
    pub jitter: f64,
}

impl Default for HttpdConfig {
    fn default() -> Self {
        HttpdConfig {
            workers: 8,
            clients: 64,
            requests_per_client: 10,
            handle_work: 150_000,
            client_work: 20_000,
            think_cycles: 2_000_000,
            backlog: 32,
            jitter: 0.3,
        }
    }
}

impl HttpdConfig {
    /// Total requests the run serves.
    pub fn total_requests(&self) -> u64 {
        (self.clients * self.requests_per_client) as u64
    }
}

/// A client: think, request, await response; finally report completion.
struct Client {
    accept: PipeId,
    response: PipeId,
    done: PipeId,
    id: u64,
    left: usize,
    awaiting: bool,
    reported: bool,
    work: u64,
    think: u64,
    jitter: f64,
    /// When the in-flight request was issued, for response latency.
    sent_at: Option<elsc_simcore::Cycles>,
}

impl Behavior for Client {
    fn resume(&mut self, sys: &mut SysView<'_>) -> Op {
        if self.awaiting {
            // A response just arrived.
            debug_assert!(sys.last_read.is_some());
            self.awaiting = false;
            sys.ledger.add("responses", 1);
            if let Some(sent) = self.sent_at.take() {
                sys.dists
                    .record("response_latency", sys.now.saturating_sub(sent).get());
            }
            let think = sys.rng.exp(self.think as f64) as u64;
            return Op::sleep_after(sys.rng.jitter(self.work, self.jitter), think.max(1));
        }
        if self.left > 0 {
            self.left -= 1;
            self.awaiting = true;
            self.sent_at = Some(sys.now);
            let work = sys.rng.jitter(self.work, self.jitter);
            // Request, then (next resume is triggered by the read below
            // completing; issue write now, read chained via pending).
            return Op::write_after(work, self.accept, Msg::tagged(self.id));
        }
        if !self.reported {
            self.reported = true;
            return Op::write_after(1_000, self.done, Msg::tagged(self.id));
        }
        Op::exit()
    }
}

/// After a request write completes the client must read its response;
/// that chaining needs a second step, so `Client` alternates via the
/// `awaiting` flag and this helper behavior is not needed — but the write
/// completion resumes the behavior *before* the response exists. To keep
/// the state machine honest the client reads immediately after writing:
/// the read blocks until a worker responds.
struct ClientRead {
    inner: Client,
}

impl Behavior for ClientRead {
    fn resume(&mut self, sys: &mut SysView<'_>) -> Op {
        if self.inner.awaiting && sys.last_read.is_none() {
            // The request write completed; now wait for the response.
            return Op::read_after(1_000, self.inner.response);
        }
        self.inner.resume(sys)
    }
}

/// A worker: serve requests from the accept queue until poisoned.
struct Worker {
    accept: PipeId,
    responses: Vec<PipeId>,
    work: u64,
    jitter: f64,
    /// Response to send, if a request was just read.
    serving: Option<u64>,
}

impl Behavior for Worker {
    fn resume(&mut self, sys: &mut SysView<'_>) -> Op {
        if let Some(msg) = sys.last_read {
            if msg.tag == POISON {
                return Op::exit();
            }
            self.serving = Some(msg.tag);
        }
        if let Some(client) = self.serving.take() {
            sys.ledger.add("requests_served", 1);
            let work = sys.rng.jitter(self.work, self.jitter);
            return Op::write_after(work, self.responses[client as usize], Msg::tagged(client));
        }
        Op::read_after(2_000, self.accept)
    }
}

/// Waits for all clients, then poisons the workers.
struct Coordinator {
    done: PipeId,
    accept: PipeId,
    clients_left: usize,
    poisons_left: usize,
}

impl Behavior for Coordinator {
    fn resume(&mut self, _sys: &mut SysView<'_>) -> Op {
        if self.clients_left > 0 {
            self.clients_left -= 1;
            return Op::read_after(1_000, self.done);
        }
        if self.poisons_left > 0 {
            self.poisons_left -= 1;
            return Op::write_after(500, self.accept, Msg::tagged(POISON));
        }
        Op::exit()
    }
}

/// Address spaces: one server process, one per client.
const HTTPD_MM: MmId = MmId(1);

/// Populates a machine with the web-server workload.
pub fn build(m: &mut Machine, cfg: &HttpdConfig) {
    assert!(cfg.workers > 0 && cfg.clients > 0);
    let accept = m.create_pipe(cfg.backlog);
    let done = m.create_pipe(cfg.clients.max(1));
    let responses: Vec<PipeId> = (0..cfg.clients).map(|_| m.create_pipe(4)).collect();
    for _ in 0..cfg.workers {
        m.spawn(
            &TaskSpec::named("httpd").mm(HTTPD_MM),
            Box::new(Worker {
                accept,
                responses: responses.clone(),
                work: cfg.handle_work,
                jitter: cfg.jitter,
                serving: None,
            }),
        );
    }
    for (id, &response) in responses.iter().enumerate() {
        m.spawn(
            &TaskSpec::named("client").mm(MmId(100 + id as u32)),
            Box::new(ClientRead {
                inner: Client {
                    accept,
                    response,
                    done,
                    id: id as u64,
                    left: cfg.requests_per_client,
                    awaiting: false,
                    reported: false,
                    work: cfg.client_work,
                    think: cfg.think_cycles,
                    jitter: cfg.jitter,
                    sent_at: None,
                },
            }),
        );
    }
    m.spawn(
        &TaskSpec::named("apachectl").mm(HTTPD_MM),
        Box::new(Coordinator {
            done,
            accept,
            clients_left: cfg.clients,
            poisons_left: cfg.workers,
        }),
    );
}

/// Builds and runs the web server on a fresh machine.
///
/// # Panics
///
/// Panics if the simulation deadlocks or times out (a harness bug).
pub fn run(machine_cfg: MachineConfig, sched: Box<dyn Scheduler>, cfg: &HttpdConfig) -> RunReport {
    let mut m = Machine::new(machine_cfg, sched);
    build(&mut m, cfg);
    m.run().expect("httpd run must complete")
}

/// Requests served per simulated second.
pub fn throughput(report: &RunReport) -> f64 {
    report.per_sec("requests_served")
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsc::ElscScheduler;
    use elsc_sched_linux::LinuxScheduler;

    fn tiny() -> HttpdConfig {
        HttpdConfig {
            workers: 2,
            clients: 4,
            requests_per_client: 3,
            handle_work: 50_000,
            client_work: 10_000,
            think_cycles: 100_000,
            backlog: 4,
            jitter: 0.2,
        }
    }

    #[test]
    fn serves_every_request_reg() {
        let cfg = tiny();
        let r = run(
            MachineConfig::up().with_max_secs(60.0),
            Box::new(LinuxScheduler::new()),
            &cfg,
        );
        assert_eq!(r.ledger.get("requests_served"), cfg.total_requests());
        assert_eq!(r.ledger.get("responses"), cfg.total_requests());
    }

    #[test]
    fn serves_every_request_elsc_smp() {
        let cfg = tiny();
        let r = run(
            MachineConfig::smp(2).with_max_secs(60.0),
            Box::new(ElscScheduler::new()),
            &cfg,
        );
        assert_eq!(r.ledger.get("requests_served"), cfg.total_requests());
    }

    #[test]
    fn worker_pool_terminates_via_poison() {
        let cfg = tiny();
        let r = run(
            MachineConfig::up().with_max_secs(60.0),
            Box::new(LinuxScheduler::new()),
            &cfg,
        );
        // workers + clients + coordinator all exited.
        assert_eq!(r.tasks_spawned as usize, cfg.workers + cfg.clients + 1);
    }

    #[test]
    fn response_latency_is_recorded() {
        let cfg = tiny();
        let r = run(
            MachineConfig::up().with_max_secs(60.0),
            Box::new(LinuxScheduler::new()),
            &cfg,
        );
        let lat = r.dists.get("response_latency").expect("latency recorded");
        assert_eq!(lat.count(), cfg.total_requests());
        assert!(lat.mean() > 0.0);
        // Built-in machine distributions exist as well.
        assert!(r.dists.get("wake_latency").is_some());
        assert!(r.dists.get("runqueue_len").is_some());
    }

    #[test]
    fn throughput_positive() {
        let r = run(
            MachineConfig::smp(2).with_max_secs(60.0),
            Box::new(ElscScheduler::new()),
            &tiny(),
        );
        assert!(throughput(&r) > 0.0);
    }
}
