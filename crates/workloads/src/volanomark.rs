//! The VolanoMark-style chat benchmark (paper §4).
//!
//! Topology per simulated user:
//!
//! ```text
//!  client JVM (mm=2)                server JVM (mm=1)
//!  ┌───────────┐  c2s pipe   ┌───────────┐
//!  │ client_tx ├────────────►│ server_rx ├──┐ fan-out to every room
//!  └───────────┘             └───────────┘  │ member's outbox
//!  ┌───────────┐  s2c pipe   ┌───────────┐◄─┘
//!  │ client_rx │◄────────────┤ server_tx │   (outbox pipe)
//!  └───────────┘             └───────────┘
//! ```
//!
//! Four threads per connection ("Because Java does not provide
//! non-blocking read and write, VolanoMark uses a pair of threads on each
//! end of each socket connection"), so a room of 20 users contributes 80
//! threads. Each user sends `messages_per_user` messages; the server
//! broadcasts each to all room members (sender included), so every user
//! receives `users_per_room * messages_per_user` messages.
//!
//! The IBM JVM's thread library of the era spun on locks with
//! `sched_yield()`; `yield_prob` injects those yields, which is what makes
//! the baseline scheduler's recalculation storm visible (Figure 2).
//!
//! The benchmark metric is message *throughput*: delivered messages per
//! simulated second, counted in the ledger under `"messages"`.

use std::cell::Cell;
use std::rc::Rc;

use elsc_ktask::{MmId, TaskSpec};
use elsc_machine::{Behavior, Machine, MachineConfig, Op, RunReport, SysView, Syscall};
use elsc_netsim::{Msg, PipeId};
use elsc_sched_api::Scheduler;

/// Server JVM address space.
pub const SERVER_MM: MmId = MmId(1);

/// Client JVM address space.
pub const CLIENT_MM: MmId = MmId(2);

/// VolanoMark parameters.
#[derive(Clone, Debug)]
pub struct VolanoConfig {
    /// Number of chat rooms (the paper sweeps 5, 10, 15, 20).
    pub rooms: usize,
    /// Users per room (paper: 20).
    pub users_per_room: usize,
    /// Messages each user sends (paper: 100; smaller values shorten the
    /// measurement without changing rates).
    pub messages_per_user: usize,
    /// Socket buffer capacity in messages.
    pub pipe_capacity: usize,
    /// Client-side cycles to produce a message (JVM serialization etc.).
    pub client_send_work: u64,
    /// Client-side cycles to consume a received message.
    pub client_recv_work: u64,
    /// Server-side cycles to parse/route an incoming message.
    pub server_route_work: u64,
    /// Server-side cycles per fan-out recipient.
    pub fanout_work: u64,
    /// Server-side cycles to push one message to a socket.
    pub server_send_work: u64,
    /// Probability that a thread spins on a JVM lock (one
    /// `sched_yield()`) between socket operations.
    pub yield_prob: f64,
    /// Mean client think time between sends (exponentially distributed,
    /// cycles; 0 disables). Chat clients pause between messages, which
    /// produces the quiet moments where a lone polling thread spins on
    /// `sched_yield()` — the baseline's recalculation storm (Figure 2).
    pub think_cycles: u64,
    /// Uniform jitter fraction applied to all work amounts.
    pub jitter: f64,
}

impl Default for VolanoConfig {
    /// Calibrated so a 5-room UP run lands near the paper's ~4 500
    /// messages/second (see `EXPERIMENTS.md`).
    fn default() -> Self {
        VolanoConfig {
            rooms: 5,
            users_per_room: 20,
            messages_per_user: 10,
            pipe_capacity: 16,
            client_send_work: 60_000,
            client_recv_work: 25_000,
            server_route_work: 30_000,
            fanout_work: 4_000,
            server_send_work: 20_000,
            yield_prob: 0.02,
            think_cycles: 60_000_000,
            jitter: 0.25,
        }
    }
}

impl VolanoConfig {
    /// Paper-style config for `rooms` rooms.
    pub fn rooms(rooms: usize) -> Self {
        VolanoConfig {
            rooms,
            ..VolanoConfig::default()
        }
    }

    /// Total threads this config creates (4 per user).
    pub fn total_threads(&self) -> usize {
        self.rooms * self.users_per_room * 4
    }

    /// Total message deliveries the run will perform.
    pub fn total_deliveries(&self) -> u64 {
        (self.rooms * self.users_per_room * self.users_per_room * self.messages_per_user) as u64
    }
}

/// JVM-style lock spinning: `sched_yield()` in a streak until the "lock"
/// is free. Returns the yield op while a streak is active.
struct YieldSpin {
    prob: f64,
    pending: u32,
}

impl YieldSpin {
    fn new(prob: f64) -> YieldSpin {
        YieldSpin { prob, pending: 0 }
    }

    /// Consults the spin state; `Some(op)` means yield now.
    fn maybe(&mut self, rng: &mut elsc_simcore::SimRng) -> Option<Op> {
        if self.pending > 0 {
            self.pending -= 1;
            return Some(Op::yield_after(300));
        }
        if rng.chance(self.prob) {
            // The era's JVM thread library spun on contended locks with
            // a burst of sched_yield() calls.
            self.pending = rng.range(2, 12) as u32;
            return Some(Op::yield_after(300));
        }
        None
    }
}

/// Client-side sender thread: produce and write `left` messages.
struct ClientTx {
    c2s: PipeId,
    left: u32,
    work: u64,
    think: u64,
    thought: bool,
    spin: YieldSpin,
    jitter: f64,
    tag: u64,
}

impl Behavior for ClientTx {
    fn resume(&mut self, sys: &mut SysView<'_>) -> Op {
        if self.left == 0 {
            return Op::exit();
        }
        if self.think > 0 && !self.thought {
            // The user composes the next message.
            self.thought = true;
            return Op::sleep_after(200, sys.rng.exp(self.think as f64) as u64);
        }
        if let Some(op) = self.spin.maybe(sys.rng) {
            return op;
        }
        self.thought = false;
        self.left -= 1;
        let work = sys.rng.jitter(self.work, self.jitter);
        Op::write_after(work, self.c2s, Msg::tagged(self.tag))
    }
}

/// Client-side receiver thread: consume `expected` broadcasts.
struct ClientRx {
    s2c: PipeId,
    expected: u32,
    work: u64,
    jitter: f64,
    /// Whether the previous `resume` issued a read (so a `None`
    /// `last_read` now means the socket died, not "first resume").
    awaiting: bool,
}

impl Behavior for ClientRx {
    fn resume(&mut self, sys: &mut SysView<'_>) -> Op {
        if self.awaiting {
            self.awaiting = false;
            match sys.last_read {
                Some(_) => sys.ledger.add("messages", 1),
                // The connection was reset under the read (chaos
                // `peer_reset`): a real chat client sees EOF/ECONNRESET
                // and gives up rather than re-reading a dead socket.
                None => return Op::exit(),
            }
        }
        if self.expected == 0 {
            return Op::exit();
        }
        self.expected -= 1;
        self.awaiting = true;
        let work = sys.rng.jitter(self.work, self.jitter);
        Op::read_after(work, self.s2c)
    }
}

/// A VolanoChat room object's Java monitor. The era's JVM spun on
/// contended monitors with `sched_yield()` — with no bound — so a holder
/// that blocks mid-broadcast leaves its contenders yielding in a loop.
/// When such a spinner is the only runnable task, each of those yields
/// drives the baseline scheduler through the system-wide counter
/// recalculation (Figure 2's storm).
///
/// Public so the cluster federation can build a room's server side
/// through [`spawn_server_pair`]: every reader thread of a room shares
/// one monitor, so the builder owns it and threads it through.
pub type RoomMonitor = Rc<Cell<bool>>;

/// Creates a fresh (unlocked) room monitor for [`spawn_server_pair`].
pub fn new_room_monitor() -> RoomMonitor {
    Rc::new(Cell::new(false))
}

/// Server-side reader thread for one connection: read each message from
/// its client and broadcast it to every room member's outbox.
struct ServerRx {
    c2s: PipeId,
    outboxes: Vec<PipeId>,
    to_read: u32,
    route_work: u64,
    fanout_work: u64,
    monitor: RoomMonitor,
    /// Consecutive sched_yield() spins on the monitor so far.
    spins: u32,
    jitter: f64,
    phase: SrvPhase,
    /// Whether the previous `resume` issued a read — see [`ClientRx`].
    awaiting: bool,
}

/// Where a server reader thread is in its read/route/broadcast cycle.
enum SrvPhase {
    /// Waiting for the next message from its client.
    Reading,
    /// Message in hand; trying to take the room monitor.
    Acquire(u64),
    /// Holding the monitor while routing (building the recipient
    /// snapshot under the room's synchronized block).
    Routing(u64),
    /// Monitor released; writing the message to each outbox.
    Fanout(u64, usize),
    /// Connection reset observed: closing every room outbox (index of the
    /// next one to close), so the server writers and — transitively — the
    /// clients unwedge instead of waiting for broadcasts that will never
    /// arrive.
    Teardown(usize),
}

impl Behavior for ServerRx {
    fn resume(&mut self, sys: &mut SysView<'_>) -> Op {
        if let Some(msg) = sys.last_read {
            debug_assert!(matches!(self.phase, SrvPhase::Reading));
            self.awaiting = false;
            self.to_read -= 1;
            self.phase = SrvPhase::Acquire(msg.tag);
        } else if self.awaiting {
            // The client connection was reset under our read (chaos
            // `peer_reset`). Re-issuing the read would return `Closed`
            // immediately, forever — the wedge the `net` chaos sweep
            // caught (`to_read` never advances, so the thread spins until
            // the watchdog). A real server drops the connection and tears
            // the room down: without that, every other member of the room
            // waits forever for this client's remaining broadcasts.
            self.awaiting = false;
            self.phase = SrvPhase::Teardown(0);
        }
        loop {
            match self.phase {
                SrvPhase::Acquire(tag) => {
                    if self.monitor.get() {
                        // Spin-then-block, as the era's JVM monitors did:
                        // a few sched_yield() spins, then a short sleep.
                        if self.spins < 3 {
                            self.spins += 1;
                            sys.ledger.add("monitor_spins", 1);
                            return Op::yield_after(300);
                        }
                        self.spins = 0;
                        return Op::sleep_after(200, sys.rng.jitter(80_000, 0.5));
                    }
                    self.spins = 0;
                    self.monitor.set(true);
                    self.phase = SrvPhase::Routing(tag);
                    // Route under the monitor: parse and snapshot the
                    // room's member list.
                    let work = sys.rng.jitter(self.route_work, self.jitter);
                    return Op::compute(work, Syscall::Nop);
                }
                SrvPhase::Routing(tag) => {
                    self.monitor.set(false);
                    self.phase = SrvPhase::Fanout(tag, 0);
                }
                SrvPhase::Fanout(tag, idx) => {
                    if idx < self.outboxes.len() {
                        self.phase = SrvPhase::Fanout(tag, idx + 1);
                        let work = sys.rng.jitter(self.fanout_work, self.jitter);
                        return Op::write_after(work, self.outboxes[idx], Msg::tagged(tag));
                    }
                    self.phase = SrvPhase::Reading;
                }
                SrvPhase::Reading => {
                    if self.to_read == 0 {
                        return Op::exit();
                    }
                    self.awaiting = true;
                    return Op::read_after(2_000, self.c2s);
                }
                SrvPhase::Teardown(idx) => {
                    if idx < self.outboxes.len() {
                        self.phase = SrvPhase::Teardown(idx + 1);
                        return Op::close_after(200, self.outboxes[idx]);
                    }
                    return Op::exit();
                }
            }
        }
    }
}

/// Server-side writer thread for one connection: forward everything from
/// the user's outbox onto the socket.
struct ServerTx {
    outbox: PipeId,
    s2c: PipeId,
    expected: u32,
    work: u64,
    jitter: f64,
    forward: Option<Msg>,
    /// True while a read on the outbox is outstanding, so a `None`
    /// `last_read` on resume means "outbox closed", not "first resume".
    awaiting: bool,
    /// Set once the outbox died and we've issued the `s2c` close; the
    /// next resume just exits.
    dying: bool,
}

impl Behavior for ServerTx {
    fn resume(&mut self, sys: &mut SysView<'_>) -> Op {
        if self.dying {
            return Op::exit();
        }
        if self.awaiting {
            self.awaiting = false;
            match sys.last_read {
                Some(msg) => self.forward = Some(msg),
                None => {
                    // The outbox was closed under our read: the room is
                    // tearing down after a connection reset (chaos
                    // `peer_reset`). Propagate the shutdown to our client
                    // socket so ClientRx — parked on `s2c` — unwedges and
                    // exits instead of deadlocking the whole room.
                    self.dying = true;
                    return Op::close_after(200, self.s2c);
                }
            }
        }
        if let Some(msg) = self.forward.take() {
            let work = sys.rng.jitter(self.work, self.jitter);
            return Op::write_after(work, self.s2c, msg);
        }
        if self.expected == 0 {
            return Op::exit();
        }
        self.expected -= 1;
        self.awaiting = true;
        Op::read_after(200, self.outbox)
    }
}

/// Spawns one connection's client side (`client_tx` then `client_rx`)
/// onto `m`: the sender writes `messages_per_user` tagged messages into
/// `c2s`, the receiver consumes the full room broadcast volume from
/// `s2c`.
///
/// [`build`] calls this for every user; the cluster federation calls it
/// on whichever node the dispatcher placed the client, with `c2s`/`s2c`
/// being that node's local pipe endpoints (bridged when the room's
/// server lives elsewhere).
pub fn spawn_client_pair(m: &mut Machine, cfg: &VolanoConfig, c2s: PipeId, s2c: PipeId, tag: u64) {
    let per_user_expected = (cfg.users_per_room * cfg.messages_per_user) as u32;
    m.spawn(
        &TaskSpec::named("client_tx").mm(CLIENT_MM),
        Box::new(ClientTx {
            c2s,
            left: cfg.messages_per_user as u32,
            work: cfg.client_send_work,
            think: cfg.think_cycles,
            thought: false,
            spin: YieldSpin::new(cfg.yield_prob),
            jitter: cfg.jitter,
            tag,
        }),
    );
    m.spawn(
        &TaskSpec::named("client_rx").mm(CLIENT_MM),
        Box::new(ClientRx {
            s2c,
            expected: per_user_expected,
            work: cfg.client_recv_work,
            jitter: cfg.jitter,
            awaiting: false,
        }),
    );
}

/// Spawns one connection's server side (`server_rx` then `server_tx`)
/// onto `m`: the reader routes this client's messages from `c2s` into
/// every room `outbox` under the shared room `monitor`, the writer
/// forwards this user's `outbox` onto `s2c`.
///
/// All pipes must live on `m`'s pipe table, and every reader of a room
/// must share the room's `outboxes` slice (same order) and `monitor` —
/// [`build`] is the single-machine reference caller.
pub fn spawn_server_pair(
    m: &mut Machine,
    cfg: &VolanoConfig,
    c2s: PipeId,
    s2c: PipeId,
    outbox: PipeId,
    outboxes: &[PipeId],
    monitor: &RoomMonitor,
) {
    let per_user_expected = (cfg.users_per_room * cfg.messages_per_user) as u32;
    m.spawn(
        &TaskSpec::named("server_rx").mm(SERVER_MM),
        Box::new(ServerRx {
            c2s,
            outboxes: outboxes.to_vec(),
            to_read: cfg.messages_per_user as u32,
            route_work: cfg.server_route_work,
            fanout_work: cfg.fanout_work,
            monitor: Rc::clone(monitor),
            spins: 0,
            jitter: cfg.jitter,
            phase: SrvPhase::Reading,
            awaiting: false,
        }),
    );
    m.spawn(
        &TaskSpec::named("server_tx").mm(SERVER_MM),
        Box::new(ServerTx {
            outbox,
            s2c,
            expected: per_user_expected,
            work: cfg.server_send_work,
            jitter: cfg.jitter,
            forward: None,
            awaiting: false,
            dying: false,
        }),
    );
}

/// Populates a machine with the VolanoMark topology.
pub fn build(m: &mut Machine, cfg: &VolanoConfig) {
    assert!(cfg.rooms > 0 && cfg.users_per_room > 0 && cfg.messages_per_user > 0);
    let users = cfg.users_per_room;
    for room in 0..cfg.rooms {
        let outboxes: Vec<PipeId> = (0..users)
            .map(|_| m.create_pipe(cfg.pipe_capacity))
            .collect();
        let monitor = new_room_monitor();
        for user in 0..users {
            let c2s = m.create_pipe(cfg.pipe_capacity);
            let s2c = m.create_pipe(cfg.pipe_capacity);
            let tag = (room * users + user) as u64;
            spawn_client_pair(m, cfg, c2s, s2c, tag);
            spawn_server_pair(m, cfg, c2s, s2c, outboxes[user], &outboxes, &monitor);
        }
    }
}

/// Builds and runs VolanoMark on a fresh machine.
///
/// # Panics
///
/// Panics if the simulation deadlocks or exceeds its watchdog — both
/// indicate a bug, not a measurement.
pub fn run(machine_cfg: MachineConfig, sched: Box<dyn Scheduler>, cfg: &VolanoConfig) -> RunReport {
    let mut m = Machine::new(machine_cfg, sched);
    build(&mut m, cfg);
    m.run().expect("VolanoMark run must complete")
}

/// The benchmark metric: delivered messages per simulated second.
pub fn throughput(report: &RunReport) -> f64 {
    report.per_sec("messages")
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsc::ElscScheduler;
    use elsc_sched_linux::LinuxScheduler;

    fn tiny() -> VolanoConfig {
        VolanoConfig {
            rooms: 1,
            users_per_room: 4,
            messages_per_user: 3,
            ..VolanoConfig::default()
        }
    }

    #[test]
    fn all_messages_are_delivered_reg_up() {
        let cfg = tiny();
        let r = run(
            MachineConfig::up().with_max_secs(100.0),
            Box::new(LinuxScheduler::new()),
            &cfg,
        );
        assert_eq!(r.ledger.get("messages"), cfg.total_deliveries());
        assert!(throughput(&r) > 0.0);
    }

    #[test]
    fn all_messages_are_delivered_elsc_smp() {
        let cfg = tiny();
        let r = run(
            MachineConfig::smp(2).with_max_secs(100.0),
            Box::new(ElscScheduler::new()),
            &cfg,
        );
        assert_eq!(r.ledger.get("messages"), cfg.total_deliveries());
    }

    #[test]
    fn thread_count_matches_paper_formula() {
        let cfg = VolanoConfig::rooms(5);
        // "each room creates a total of 80 threads"
        assert_eq!(cfg.total_threads(), 5 * 80);
        let r = run(
            MachineConfig::up().with_max_secs(400.0),
            Box::new(ElscScheduler::new()),
            &VolanoConfig {
                rooms: 1,
                users_per_room: 2,
                messages_per_user: 1,
                ..VolanoConfig::default()
            },
        );
        assert_eq!(r.tasks_spawned, 8);
    }

    #[test]
    fn yields_occur() {
        let mut cfg = tiny();
        cfg.yield_prob = 0.5;
        cfg.messages_per_user = 5;
        let r = run(
            MachineConfig::up().with_max_secs(200.0),
            Box::new(LinuxScheduler::new()),
            &cfg,
        );
        assert!(r.stats.total().yields > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let one = run(
            MachineConfig::up().with_seed(7).with_max_secs(100.0),
            Box::new(LinuxScheduler::new()),
            &tiny(),
        );
        let two = run(
            MachineConfig::up().with_seed(7).with_max_secs(100.0),
            Box::new(LinuxScheduler::new()),
            &tiny(),
        );
        assert_eq!(one.elapsed, two.elapsed);
        assert_eq!(one.stats.total().sched_calls, two.stats.total().sched_calls);
    }

    #[test]
    fn different_seeds_change_schedule() {
        let one = run(
            MachineConfig::up().with_seed(1).with_max_secs(100.0),
            Box::new(LinuxScheduler::new()),
            &tiny(),
        );
        let two = run(
            MachineConfig::up().with_seed(2).with_max_secs(100.0),
            Box::new(LinuxScheduler::new()),
            &tiny(),
        );
        assert_ne!(one.elapsed, two.elapsed);
    }
}
