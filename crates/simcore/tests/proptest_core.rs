//! Property tests for the simulation core: event ordering, histogram
//! consistency, and spinlock accounting.

#![cfg(feature = "proptest")]
// Property-based suites need the external `proptest` crate, which is
// unavailable in offline builds; enable the `proptest` feature after
// restoring the dev-dependency (see CONTRIBUTING.md).
use proptest::prelude::*;

use elsc_simcore::{Cycles, EventQueue, Histogram, SimRng, SimSpinLock};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in prop::collection::vec(0u64..1_000, 1..200)
    ) {
        // Model: sort by (time, insertion index) — the queue must agree.
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycles(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().copied().zip(0..).map(|(t, i)| (t, i)).collect();
        expected.sort();
        for (t, i) in expected {
            let (got_t, got_i) = q.pop().expect("queue has the element");
            prop_assert_eq!(got_t, Cycles(t));
            prop_assert_eq!(got_i, i);
        }
        prop_assert!(q.pop().is_none());
    }

    #[test]
    fn event_queue_interleaved_pops_never_regress(
        ops in prop::collection::vec((0u64..1_000, any::<bool>()), 1..200)
    ) {
        // Pops may interleave with pushes; popped times must never go
        // below the previous pop when pushes respect current time.
        let mut q = EventQueue::new();
        let mut now = 0u64;
        for &(dt, push) in &ops {
            if push || q.is_empty() {
                q.push(Cycles(now + dt), ());
            } else if let Some((t, ())) = q.pop() {
                prop_assert!(t.get() >= now, "time went backwards");
                now = t.get();
            }
        }
    }

    #[test]
    fn histogram_count_and_bounds_match_inputs(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..300)
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-6 * mean.max(1.0));
        // Percentile approximation: within one power-of-two bucket of the
        // exact percentile, and never above the max.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact_p50 = sorted[(sorted.len() - 1) / 2];
        let approx = h.percentile(50.0);
        prop_assert!(approx <= h.max());
        prop_assert!(approx.saturating_mul(2) + 1 >= exact_p50);
    }

    #[test]
    fn histogram_merge_equals_combined_recording(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let mut ha = Histogram::new();
        for &s in &a { ha.record(s); }
        let mut hb = Histogram::new();
        for &s in &b { hb.record(s); }
        ha.merge(&hb);
        let mut hc = Histogram::new();
        for &s in a.iter().chain(&b) { hc.record(s); }
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.sum(), hc.sum());
        prop_assert_eq!(ha.min(), hc.min());
        prop_assert_eq!(ha.max(), hc.max());
        prop_assert_eq!(ha.percentile(90.0), hc.percentile(90.0));
    }

    #[test]
    fn spinlock_serializes_and_accounts(
        holds in prop::collection::vec((0u64..500, 1u64..500), 1..100)
    ) {
        // Acquire/release with arbitrary arrival gaps and hold times:
        // ownership intervals must never overlap and spin accounting must
        // equal the waiting implied by the serialization.
        let mut lock = SimSpinLock::new(0);
        let mut now = Cycles::ZERO;
        let mut last_release = Cycles::ZERO;
        let mut expected_spin = 0u64;
        for (i, &(gap, hold)) in holds.iter().enumerate() {
            now += gap;
            let acquired = lock.acquire(now, i % 3);
            prop_assert!(acquired >= last_release, "overlapping ownership");
            prop_assert!(acquired >= now);
            expected_spin += acquired.saturating_sub(now).get();
            last_release = acquired + hold;
            lock.release(last_release);
        }
        prop_assert_eq!(lock.total_spin().get(), expected_spin);
        prop_assert_eq!(lock.acquisitions(), holds.len() as u64);
    }

    #[test]
    fn rng_below_is_always_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
