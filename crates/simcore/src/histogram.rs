//! A log-bucketed histogram for latency and duration distributions.
//!
//! The §8 question — "Would the ELSC scheduler be more effective in
//! increasing throughput or decreasing the latency of an Apache web
//! server?" — needs latency *distributions*, not just means. This
//! histogram buckets by powers of two, which is plenty of resolution for
//! wakeup-to-dispatch latencies spanning seven orders of magnitude, with
//! O(1) recording and a fixed footprint.

/// Number of power-of-two buckets (covers 0 .. 2^63).
const BUCKETS: usize = 64;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// # Examples
///
/// ```
/// use elsc_simcore::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 100, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 1000);
/// assert!(h.mean() > 200.0);
/// assert!(h.percentile(50.0) <= 100);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a value: floor(log2(v)) + 1, with 0 in bucket 0.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Upper bound (inclusive) of a bucket.
fn bucket_limit(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v).min(BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile: the upper bound of the bucket containing
    /// the p-th sample (`p` in 0..=100).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_limit(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        *self = Histogram::new();
    }

    /// One-line summary, for reports.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.0} p50={} p95={} p99={} max={}",
            self.count,
            self.mean(),
            self.percentile(50.0),
            self.percentile(95.0),
            self.percentile(99.0),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_limit(0), 0);
        assert_eq!(bucket_limit(1), 1);
        assert_eq!(bucket_limit(2), 3);
        assert_eq!(bucket_limit(3), 7);
    }

    #[test]
    fn mean_min_max_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
        assert_eq!(h.sum(), 60);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p10 = h.percentile(10.0);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!(p10 <= p50 && p50 <= p99);
        assert!(p99 <= h.max());
    }

    #[test]
    fn percentile_100_is_max_bucket() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(1_000_000);
        assert_eq!(h.percentile(100.0), 1_000_000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_out_of_range_panics() {
        Histogram::new().percentile(101.0);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        a.record(100);
        b.record(50);
        b.record(10_000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 10_000);
        assert_eq!(a.sum(), 10_151);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(7);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.min(), before.min());
        assert_eq!(a.max(), before.max());
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn summary_mentions_fields() {
        let mut h = Histogram::new();
        h.record(10);
        let s = h.summary();
        assert!(s.contains("n=1"));
        assert!(s.contains("p99"));
    }

    #[test]
    fn zero_samples_go_to_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.max(), 0);
    }
}
