//! A bank of busy-interval spinlock domains — the pluggable locking
//! regime behind the run queue(s).
//!
//! Linux 2.3.99 guards *all* run-queue state with one global
//! `runqueue_lock`; the paper's 2P/4P results are shaped by that single
//! serialization point (§4, §8). Later schedulers (the O(1) scheduler,
//! the §8 multi-queue design) shard the state and its locks per CPU.
//! [`LockModel`] generalizes the single [`SimSpinLock`] into N
//! independent busy-interval domains so a scheduler can declare whichever
//! regime it is designed for: one global domain, one per CPU, or an
//! arbitrary shard count.
//!
//! The model stays analytic: the simulation is single-threaded and
//! processes events in global time order, so each domain records when it
//! next becomes free and an acquirer's spin time is the gap between its
//! arrival and that instant (plus a cache-line transfer cost when
//! ownership moves between CPUs).

use crate::clock::Cycles;
use crate::spinlock::{HolderId, SimSpinLock};

/// Statistics snapshot of one lock domain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DomainStats {
    /// Cycles acquirers spent spinning on this domain.
    pub spin_cycles: u64,
    /// Acquisitions of this domain.
    pub acquisitions: u64,
    /// Acquisitions that had to spin.
    pub contended: u64,
    /// Cycles the domain was held.
    pub held_cycles: u64,
}

/// N independent busy-interval spinlock domains.
///
/// Domain 0 with `nr_domains == 1` reproduces the single global
/// `runqueue_lock` exactly; more domains model sharded locking regimes.
///
/// # Examples
///
/// ```
/// use elsc_simcore::{Cycles, LockModel};
///
/// let mut m = LockModel::new(2, 100);
/// let a = m.acquire(0, Cycles(0), 0);
/// // Domain 1 is independent: no spin even while domain 0 is held.
/// let b = m.acquire(1, Cycles(10), 1);
/// assert_eq!(b, Cycles(10));
/// m.release(0, a + 500);
/// m.release(1, b + 500);
/// assert_eq!(m.total_spin(), Cycles::ZERO);
/// assert_eq!(m.total_acquisitions(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct LockModel {
    domains: Vec<SimSpinLock>,
}

impl LockModel {
    /// Creates `nr_domains` uncontended domains sharing one cache-line
    /// transfer cost.
    ///
    /// # Panics
    ///
    /// Panics if `nr_domains == 0`.
    pub fn new(nr_domains: usize, transfer_cost: u64) -> Self {
        assert!(nr_domains > 0, "a lock model has at least one domain");
        LockModel {
            domains: vec![SimSpinLock::new(transfer_cost); nr_domains],
        }
    }

    /// Number of domains.
    pub fn nr_domains(&self) -> usize {
        self.domains.len()
    }

    /// Acquires `domain` at time `now` on behalf of `holder`; returns the
    /// instant the acquirer owns it (see [`SimSpinLock::acquire`]).
    ///
    /// # Panics
    ///
    /// Panics if `domain` is out of range or currently held (a nested
    /// acquire of one domain means the machine forgot a release).
    pub fn acquire(&mut self, domain: usize, now: Cycles, holder: HolderId) -> Cycles {
        self.domains[domain].acquire(now, holder)
    }

    /// Releases `domain` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is out of range, not held, or `at` precedes its
    /// acquisition instant.
    pub fn release(&mut self, domain: usize, at: Cycles) {
        self.domains[domain].release(at);
    }

    /// Whether `domain` is currently held (assertions only).
    pub fn is_held(&self, domain: usize) -> bool {
        self.domains[domain].is_held()
    }

    /// Total spin cycles across all domains.
    pub fn total_spin(&self) -> Cycles {
        self.domains
            .iter()
            .fold(Cycles::ZERO, |a, d| a + d.total_spin().get())
    }

    /// Total acquisitions across all domains.
    pub fn total_acquisitions(&self) -> u64 {
        self.domains.iter().map(SimSpinLock::acquisitions).sum()
    }

    /// Total contended acquisitions across all domains.
    pub fn total_contended(&self) -> u64 {
        self.domains.iter().map(SimSpinLock::contended).sum()
    }

    /// Per-domain statistics snapshot, in domain order.
    pub fn domain_stats(&self) -> Vec<DomainStats> {
        self.domains
            .iter()
            .map(|d| DomainStats {
                spin_cycles: d.total_spin().get(),
                acquisitions: d.acquisitions(),
                contended: d.contended(),
                held_cycles: d.total_held().get(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_domain_matches_simspinlock() {
        let mut m = LockModel::new(1, 0);
        let mut l = SimSpinLock::new(0);
        let a = m.acquire(0, Cycles(0), 0);
        let b = l.acquire(Cycles(0), 0);
        assert_eq!(a, b);
        m.release(0, a + 1000);
        l.release(b + 1000);
        let a2 = m.acquire(0, Cycles(100), 1);
        let b2 = l.acquire(Cycles(100), 1);
        assert_eq!(a2, b2);
        m.release(0, a2 + 10);
        l.release(b2 + 10);
        assert_eq!(m.total_spin(), l.total_spin());
        assert_eq!(m.total_acquisitions(), l.acquisitions());
        assert_eq!(m.total_contended(), l.contended());
    }

    #[test]
    fn domains_are_independent() {
        let mut m = LockModel::new(4, 0);
        let a = m.acquire(0, Cycles(0), 0);
        m.release(0, a + 10_000);
        // A different domain sees no busy interval.
        let b = m.acquire(1, Cycles(5), 1);
        assert_eq!(b, Cycles(5));
        m.release(1, b + 1);
        assert_eq!(m.total_spin(), Cycles::ZERO);
        // The same domain does.
        let c = m.acquire(0, Cycles(20), 1);
        assert_eq!(c, Cycles(10_000));
        m.release(0, c + 1);
        assert_eq!(m.total_spin(), Cycles(10_000 - 20));
    }

    #[test]
    fn per_domain_stats_sum_to_totals() {
        let mut m = LockModel::new(3, 50);
        for (d, t) in [(0usize, 0u64), (1, 10), (2, 20), (0, 30), (1, 40)] {
            let a = m.acquire(d, Cycles(t), d);
            m.release(d, a + 100);
        }
        let stats = m.domain_stats();
        assert_eq!(stats.len(), 3);
        let spin: u64 = stats.iter().map(|s| s.spin_cycles).sum();
        let acq: u64 = stats.iter().map(|s| s.acquisitions).sum();
        let cont: u64 = stats.iter().map(|s| s.contended).sum();
        assert_eq!(spin, m.total_spin().get());
        assert_eq!(acq, m.total_acquisitions());
        assert_eq!(cont, m.total_contended());
        assert_eq!(acq, 5);
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn zero_domains_panics() {
        LockModel::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "acquire while held")]
    fn nested_acquire_of_one_domain_panics() {
        let mut m = LockModel::new(2, 0);
        m.acquire(1, Cycles(0), 0);
        m.acquire(1, Cycles(1), 1);
    }
}
