//! A small deterministic PRNG (xoshiro256**) for simulation use.
//!
//! The machine model and workload generators need randomness whose entire
//! stream is determined by a single `u64` seed, so a run can be reproduced
//! exactly from its report. We implement xoshiro256** directly rather than
//! pulling `rand` into the runtime dependency graph; `rand` remains a
//! dev/workload-generation dependency elsewhere.

/// Deterministic xoshiro256** generator seeded via SplitMix64.
///
/// # Examples
///
/// ```
/// use elsc_simcore::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand the seed into the xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed is valid; SplitMix64 expansion guarantees a non-zero
    /// internal state even for seed 0.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift with rejection for unbiased output.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= (u64::MAX - n + 1) % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Samples an exponential distribution with the given mean.
    ///
    /// Used for think times and I/O latencies; returns at least 1.0 so a
    /// sampled duration can always be charged as a nonzero cycle count.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64(); // in (0, 1]
        (-mean * u.ln()).max(1.0)
    }

    /// Samples a value uniformly jittered around `mean` by ±`frac`
    /// (e.g. `frac = 0.2` gives `[0.8*mean, 1.2*mean)`).
    pub fn jitter(&mut self, mean: u64, frac: f64) -> u64 {
        if mean == 0 || frac <= 0.0 {
            return mean;
        }
        let spread = (mean as f64 * frac) as u64;
        if spread == 0 {
            return mean;
        }
        let lo = mean.saturating_sub(spread);
        self.range(lo, mean + spread + 1)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Splits off an independent generator (for per-task streams).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(12345);
        let mut b = SimRng::new(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(7);
        for n in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(r.below(n) < n);
            }
        }
    }

    #[test]
    fn below_covers_small_range() {
        let mut r = SimRng::new(99);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_endpoints() {
        let mut r = SimRng::new(3);
        for _ in 0..500 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::new(0).range(5, 5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(11);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(5);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn exp_mean_is_roughly_right() {
        let mut r = SimRng::new(6);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp(100.0)).sum();
        let mean = sum / n as f64;
        assert!((90.0..110.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn exp_is_at_least_one() {
        let mut r = SimRng::new(8);
        for _ in 0..1000 {
            assert!(r.exp(0.001) >= 1.0);
        }
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let v = r.jitter(1000, 0.2);
            assert!((800..=1200).contains(&v), "got {v}");
        }
        assert_eq!(r.jitter(0, 0.5), 0);
        assert_eq!(r.jitter(100, 0.0), 100);
        assert_eq!(r.jitter(1, 0.1), 1); // spread rounds to zero
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(10);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = SimRng::new(20);
        let mut f = a.fork();
        // Forked stream should not replay the parent's next values.
        let av: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let fv: Vec<u64> = (0..10).map(|_| f.next_u64()).collect();
        assert_ne!(av, fv);
    }
}
