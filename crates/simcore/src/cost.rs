//! The cycle cost model.
//!
//! Every primitive the simulated kernel performs — evaluating
//! `goodness()`, unlinking a run-queue node, recalculating one task's
//! counter, switching contexts — has a per-operation cycle cost drawn from
//! a [`CostModel`] table. Schedulers charge their work to a [`CycleMeter`];
//! the machine model then advances the CPU's virtual clock by the metered
//! amount, so scheduler overhead directly delays the workload, exactly the
//! causal chain the paper measures.
//!
//! Default values are calibrated for a ~400 MHz Pentium II class machine
//! (the paper's IBM Netfinity testbeds); `EXPERIMENTS.md` documents the
//! calibration.

use core::fmt;

/// Kinds of primitive operation that consume simulated CPU cycles.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[repr(usize)]
pub enum CostKind {
    /// Fixed `schedule()` entry overhead: bottom halves + administrative
    /// work common to both schedulers.
    SchedBase,
    /// Evaluating `goodness()` for one candidate task.
    GoodnessEval,
    /// One intrusive-list manipulation (link/unlink/move).
    ListOp,
    /// Computing an ELSC table index from priority/counter.
    TableIndex,
    /// Recalculating one task's `counter` in the recalculation loop.
    RecalcPerTask,
    /// A context switch between two tasks.
    CtxSwitch,
    /// Extra cost when the switch also changes the address space (TLB).
    MmSwitch,
    /// Cache-refill penalty charged to a task's first run after migrating
    /// to a different CPU.
    MigrationPenalty,
    /// One invocation of the `reschedule_idle()` wakeup placement logic.
    RescheduleIdle,
    /// Timer-tick interrupt handling.
    Tick,
    /// Fixed syscall entry/exit overhead.
    SyscallBase,
    /// Copying a message into or out of a socket buffer.
    PipeOp,
    /// Latency from sending an IPI to the target CPU acting on it.
    IpiLatency,
    /// Cache-line transfer when lock ownership moves between CPUs.
    LockTransfer,
    /// Process creation (fork + exec, for the kbuild workload).
    Fork,
    /// Process teardown.
    Exit,
    /// One interpreted policy-IR instruction (the `elsc-policy` runtime).
    ///
    /// Interpreted `.pol` schedulers charge one of these per executed IR
    /// node, so an interpreted policy pays a realistic interpretation tax
    /// in every figure instead of scheduling for free.
    PolicyInsn,
    /// A learned scheduler's prediction failed its bounded goodness
    /// verification (the `learned:<model>` scheduler, `elsc-learn`).
    ///
    /// Charged once per misprediction, on top of the native fallback
    /// scan the scheduler then performs — the branch-misprediction-style
    /// recovery cost of trusting a model and being wrong.
    Mispredict,
}

/// Number of cost kinds (size of the model table).
pub const COST_KINDS: usize = 18;

const ALL_KINDS: [CostKind; COST_KINDS] = [
    CostKind::SchedBase,
    CostKind::GoodnessEval,
    CostKind::ListOp,
    CostKind::TableIndex,
    CostKind::RecalcPerTask,
    CostKind::CtxSwitch,
    CostKind::MmSwitch,
    CostKind::MigrationPenalty,
    CostKind::RescheduleIdle,
    CostKind::Tick,
    CostKind::SyscallBase,
    CostKind::PipeOp,
    CostKind::IpiLatency,
    CostKind::LockTransfer,
    CostKind::Fork,
    CostKind::Exit,
    CostKind::PolicyInsn,
    CostKind::Mispredict,
];

impl CostKind {
    /// All cost kinds, in table order.
    pub fn all() -> &'static [CostKind; COST_KINDS] {
        &ALL_KINDS
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            CostKind::SchedBase => "sched_base",
            CostKind::GoodnessEval => "goodness_eval",
            CostKind::ListOp => "list_op",
            CostKind::TableIndex => "table_index",
            CostKind::RecalcPerTask => "recalc_per_task",
            CostKind::CtxSwitch => "ctx_switch",
            CostKind::MmSwitch => "mm_switch",
            CostKind::MigrationPenalty => "migration_penalty",
            CostKind::RescheduleIdle => "reschedule_idle",
            CostKind::Tick => "tick",
            CostKind::SyscallBase => "syscall_base",
            CostKind::PipeOp => "pipe_op",
            CostKind::IpiLatency => "ipi_latency",
            CostKind::LockTransfer => "lock_transfer",
            CostKind::Fork => "fork",
            CostKind::Exit => "exit",
            CostKind::PolicyInsn => "policy_insn",
            CostKind::Mispredict => "mispredict",
        }
    }
}

/// A table mapping each [`CostKind`] to a cycle cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    table: [u64; COST_KINDS],
}

impl Default for CostModel {
    /// The calibrated default model (~400 MHz Pentium II class; see
    /// `EXPERIMENTS.md` for how these were chosen).
    fn default() -> Self {
        let mut m = CostModel {
            table: [0; COST_KINDS],
        };
        m.set(CostKind::SchedBase, 1_200);
        m.set(CostKind::GoodnessEval, 60);
        m.set(CostKind::ListOp, 30);
        m.set(CostKind::TableIndex, 15);
        m.set(CostKind::RecalcPerTask, 80);
        m.set(CostKind::CtxSwitch, 1_200);
        m.set(CostKind::MmSwitch, 400);
        m.set(CostKind::MigrationPenalty, 8_000);
        m.set(CostKind::RescheduleIdle, 150);
        m.set(CostKind::Tick, 200);
        m.set(CostKind::SyscallBase, 300);
        m.set(CostKind::PipeOp, 250);
        m.set(CostKind::IpiLatency, 500);
        m.set(CostKind::LockTransfer, 600);
        m.set(CostKind::Fork, 30_000);
        m.set(CostKind::Exit, 10_000);
        // ~10 cycles per interpreted IR node: a dispatch + a couple of
        // loads on the paper's Pentium II class machine.
        m.set(CostKind::PolicyInsn, 10);
        // A mispredicted pick costs a pipeline-flush-class penalty before
        // the fallback scan even starts: discard the model's choice, fix
        // up the bookkeeping, re-enter the scan loop.
        m.set(CostKind::Mispredict, 150);
        m
    }
}

impl CostModel {
    /// A model where every primitive is free. Useful in unit tests that
    /// check algorithmic behaviour rather than timing.
    pub fn free() -> Self {
        CostModel {
            table: [0; COST_KINDS],
        }
    }

    /// Returns the cost of one operation of `kind`.
    #[inline]
    pub fn get(&self, kind: CostKind) -> u64 {
        self.table[kind as usize]
    }

    /// Overrides the cost of `kind`.
    pub fn set(&mut self, kind: CostKind, cycles: u64) -> &mut Self {
        self.table[kind as usize] = cycles;
        self
    }

    /// Builder-style override.
    pub fn with(mut self, kind: CostKind, cycles: u64) -> Self {
        self.set(kind, cycles);
        self
    }

    /// Scales every cost by `factor` (e.g. for sensitivity sweeps).
    pub fn scaled(mut self, factor: f64) -> Self {
        for v in &mut self.table {
            *v = (*v as f64 * factor).round() as u64;
        }
        self
    }
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cost model (cycles):")?;
        for &k in CostKind::all() {
            writeln!(f, "  {:<18} {}", k.name(), self.get(k))?;
        }
        Ok(())
    }
}

/// An accumulator of cycles charged during one operation (typically one
/// `schedule()` invocation).
///
/// Besides the total, the meter keeps a per-[`CostKind`] breakdown so the
/// observability layer can attribute every metered cycle to the primitive
/// that consumed it; [`CycleMeter::kind_cycles`] and
/// [`CycleMeter::raw_cycles`] always sum to [`CycleMeter::cycles`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleMeter {
    cycles: u64,
    charges: u64,
    by_kind: [u64; COST_KINDS],
    raw: u64,
}

impl Default for CycleMeter {
    fn default() -> Self {
        CycleMeter {
            cycles: 0,
            charges: 0,
            by_kind: [0; COST_KINDS],
            raw: 0,
        }
    }
}

impl CycleMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one operation of `kind` against `model`.
    #[inline]
    pub fn charge(&mut self, model: &CostModel, kind: CostKind) {
        let c = model.get(kind);
        self.cycles += c;
        self.by_kind[kind as usize] += c;
        self.charges += 1;
    }

    /// Charges `n` operations of `kind` against `model`.
    #[inline]
    pub fn charge_n(&mut self, model: &CostModel, kind: CostKind, n: u64) {
        let c = model.get(kind) * n;
        self.cycles += c;
        self.by_kind[kind as usize] += c;
        self.charges += n;
    }

    /// Charges a raw cycle amount (for workload compute, not primitives).
    #[inline]
    pub fn charge_raw(&mut self, cycles: u64) {
        self.cycles += cycles;
        self.raw += cycles;
    }

    /// Total cycles accumulated.
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of individual charges (for sanity checks).
    #[inline]
    pub fn charges(&self) -> u64 {
        self.charges
    }

    /// Per-kind cycle attribution (indexed by `CostKind as usize`).
    #[inline]
    pub fn kind_cycles(&self) -> &[u64; COST_KINDS] {
        &self.by_kind
    }

    /// Cycles charged raw, without a kind.
    #[inline]
    pub fn raw_cycles(&self) -> u64 {
        self.raw
    }

    /// Resets the meter to zero and returns the cycles it had accumulated.
    pub fn take(&mut self) -> u64 {
        let c = self.cycles;
        *self = CycleMeter::default();
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_nonzero() {
        let m = CostModel::default();
        for &k in CostKind::all() {
            assert!(m.get(k) > 0, "{} should have a default cost", k.name());
        }
    }

    #[test]
    fn free_model_is_all_zero() {
        let m = CostModel::free();
        for &k in CostKind::all() {
            assert_eq!(m.get(k), 0);
        }
    }

    #[test]
    fn set_and_with_override() {
        let m = CostModel::default().with(CostKind::GoodnessEval, 7);
        assert_eq!(m.get(CostKind::GoodnessEval), 7);
        let mut m2 = m.clone();
        m2.set(CostKind::ListOp, 3);
        assert_eq!(m2.get(CostKind::ListOp), 3);
        assert_eq!(m.get(CostKind::ListOp), 30);
    }

    #[test]
    fn scaling_applies_to_all_entries() {
        let m = CostModel::default().scaled(2.0);
        assert_eq!(m.get(CostKind::SchedBase), 2400);
        assert_eq!(m.get(CostKind::GoodnessEval), 120);
    }

    #[test]
    fn meter_accumulates_and_takes() {
        let m = CostModel::default();
        let mut meter = CycleMeter::new();
        meter.charge(&m, CostKind::SchedBase);
        meter.charge_n(&m, CostKind::GoodnessEval, 10);
        meter.charge_raw(5);
        assert_eq!(meter.cycles(), 1_200 + 60 * 10 + 5);
        assert_eq!(meter.charges(), 11);
        let taken = meter.take();
        assert_eq!(taken, 1805);
        assert_eq!(meter.cycles(), 0);
        assert_eq!(meter.charges(), 0);
    }

    #[test]
    fn meter_attributes_per_kind() {
        let m = CostModel::default();
        let mut meter = CycleMeter::new();
        meter.charge(&m, CostKind::SchedBase);
        meter.charge_n(&m, CostKind::GoodnessEval, 10);
        meter.charge_raw(5);
        let kinds = meter.kind_cycles();
        assert_eq!(kinds[CostKind::SchedBase as usize], 1_200);
        assert_eq!(kinds[CostKind::GoodnessEval as usize], 600);
        assert_eq!(meter.raw_cycles(), 5);
        // The breakdown always sums to the total.
        assert_eq!(
            kinds.iter().sum::<u64>() + meter.raw_cycles(),
            meter.cycles()
        );
        meter.take();
        assert_eq!(meter.kind_cycles().iter().sum::<u64>(), 0);
        assert_eq!(meter.raw_cycles(), 0);
    }

    #[test]
    fn all_kinds_have_unique_indices() {
        let mut seen = [false; COST_KINDS];
        for &k in CostKind::all() {
            assert!(!seen[k as usize], "duplicate index for {}", k.name());
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_lists_every_kind() {
        let text = CostModel::default().to_string();
        for &k in CostKind::all() {
            assert!(text.contains(k.name()), "missing {}", k.name());
        }
    }
}
