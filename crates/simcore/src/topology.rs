//! A declared machine topology: packages → NUMA nodes → cores → SMT
//! siblings.
//!
//! The flat model every earlier PR used is the degenerate one-level tree
//! (one node, one thread per core); [`Topology::is_flat`] identifies it,
//! and every consumer of topology information is required to degrade to
//! the flat model's exact behaviour on such trees. The tree is uniform
//! (every package has the same number of nodes, and so on), which keeps
//! all structural queries pure arithmetic on the CPU id — no allocation,
//! no lookup tables, and `Copy` types all the way up the stack.
//!
//! CPU numbering is hierarchical: CPU ids enumerate threads within a
//! core, cores within a node, nodes within a package, packages last. So
//! on `2N4C2T`, CPUs 0–7 are node 0 and CPUs 8–15 are node 1, with
//! `{0,1}`, `{2,3}`, … the SMT sibling pairs.

use core::fmt;
use core::str::FromStr;

/// A uniform machine topology tree.
///
/// Parsed from / displayed as the compact grammar `[P]P<N>N<C>C<T>T`
/// (packages, NUMA nodes per package, cores per node, SMT threads per
/// core); the package level is omitted when there is a single package,
/// so the common spellings are `2N4C2T` and `1N8C1T`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Topology {
    packages: usize,
    nodes_per_package: usize,
    cores_per_node: usize,
    threads_per_core: usize,
}

impl Topology {
    /// Builds a topology tree. Every arity must be at least one.
    ///
    /// # Panics
    ///
    /// Panics if any level has zero children.
    pub fn new(
        packages: usize,
        nodes_per_package: usize,
        cores_per_node: usize,
        threads_per_core: usize,
    ) -> Topology {
        assert!(
            packages > 0 && nodes_per_package > 0 && cores_per_node > 0 && threads_per_core > 0,
            "every topology level needs at least one child"
        );
        Topology {
            packages,
            nodes_per_package,
            cores_per_node,
            threads_per_core,
        }
    }

    /// The one-level tree matching the pre-topology flat model: a single
    /// node of `nr_cpus` independent cores.
    pub fn flat(nr_cpus: usize) -> Topology {
        Topology::new(1, 1, nr_cpus, 1)
    }

    /// Total CPUs (threads) in the machine.
    pub fn nr_cpus(&self) -> usize {
        self.packages * self.nodes_per_package * self.cores_per_node * self.threads_per_core
    }

    /// Total NUMA nodes across all packages.
    pub fn nr_nodes(&self) -> usize {
        self.packages * self.nodes_per_package
    }

    /// Number of packages (sockets).
    pub fn packages(&self) -> usize {
        self.packages
    }

    /// SMT threads per physical core.
    pub fn threads_per_core(&self) -> usize {
        self.threads_per_core
    }

    /// CPUs per NUMA node (cores × threads).
    pub fn cpus_per_node(&self) -> usize {
        self.cores_per_node * self.threads_per_core
    }

    /// True for one-level trees: a single node with no SMT, i.e. exactly
    /// the flat per-CPU model of the original paper reproduction. All
    /// topology-aware code paths must be byte-identical to the flat
    /// model on such trees.
    pub fn is_flat(&self) -> bool {
        self.nr_nodes() == 1 && self.threads_per_core == 1
    }

    /// The global NUMA node index of `cpu`.
    pub fn node_of(&self, cpu: usize) -> usize {
        cpu / self.cpus_per_node()
    }

    /// The global physical core index of `cpu`.
    pub fn core_of(&self, cpu: usize) -> usize {
        cpu / self.threads_per_core
    }

    /// The package (socket) index of `cpu`.
    pub fn package_of(&self, cpu: usize) -> usize {
        self.node_of(cpu) / self.nodes_per_package
    }

    /// Whether two CPUs are SMT siblings on one physical core.
    pub fn same_core(&self, a: usize, b: usize) -> bool {
        self.core_of(a) == self.core_of(b)
    }

    /// Whether two CPUs share a NUMA node (and with it the LLC in this
    /// model).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Whether two CPUs sit in the same package.
    pub fn same_package(&self, a: usize, b: usize) -> bool {
        self.package_of(a) == self.package_of(b)
    }

    /// Scales a migration cost for a `from → to` task migration as a
    /// `(numerator, denominator)` pair. A level only discounts or
    /// inflates the cost when it is *informative* — shared by some but
    /// not all CPUs — so one-level (flat) trees always scale by `(1, 1)`
    /// and stay byte-identical to the pre-topology model:
    ///
    /// * SMT siblings share L1/L2: quarter cost.
    /// * Same NUMA node (shared LLC): half cost.
    /// * Cross-node within a package: 1.5×.
    /// * Cross-node across packages (or any cross-node move when there
    ///   is no intermediate package level): double cost.
    pub fn migration_scale(&self, from: usize, to: usize) -> (u64, u64) {
        if from == to {
            return (1, 1);
        }
        if self.threads_per_core > 1 && self.same_core(from, to) {
            return (1, 4);
        }
        if self.nr_nodes() > 1 {
            if self.same_node(from, to) {
                return (1, 2);
            }
            if self.nodes_per_package > 1 && self.packages > 1 && self.same_package(from, to) {
                return (3, 2);
            }
            return (2, 1);
        }
        (1, 1)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.packages > 1 {
            write!(f, "{}P", self.packages)?;
        }
        write!(
            f,
            "{}N{}C{}T",
            self.nodes_per_package, self.cores_per_node, self.threads_per_core
        )
    }
}

impl FromStr for Topology {
    type Err = String;

    /// Parses `[<packages>P]<nodes>N<cores>C<threads>T`, e.g. `2N4C2T`
    /// or `2P2N4C2T`.
    fn from_str(s: &str) -> Result<Topology, String> {
        let err = || format!("bad topology {s:?} (expected e.g. 2N4C2T or 2P2N4C2T)");
        let rest = s.strip_suffix('T').ok_or_else(err)?;
        let (rest, threads) = split_trailing_number(rest).ok_or_else(err)?;
        let rest = rest.strip_suffix('C').ok_or_else(err)?;
        let (rest, cores) = split_trailing_number(rest).ok_or_else(err)?;
        let rest = rest.strip_suffix('N').ok_or_else(err)?;
        let (rest, nodes) = split_trailing_number(rest).ok_or_else(err)?;
        let packages = if rest.is_empty() {
            1
        } else {
            let rest = rest.strip_suffix('P').ok_or_else(err)?;
            let (rest, p) = split_trailing_number(rest).ok_or_else(err)?;
            if !rest.is_empty() {
                return Err(err());
            }
            p
        };
        if packages == 0 || nodes == 0 || cores == 0 || threads == 0 {
            return Err(err());
        }
        Ok(Topology::new(packages, nodes, cores, threads))
    }
}

/// Splits a trailing decimal number off `s`, returning the prefix and
/// the parsed value. `None` when `s` does not end in a digit.
fn split_trailing_number(s: &str) -> Option<(&str, usize)> {
    let digits = s.len() - s.bytes().rev().take_while(u8::is_ascii_digit).count();
    if digits == s.len() {
        return None;
    }
    let n = s[digits..].parse().ok()?;
    Some((&s[..digits], n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_flat() {
        let t = Topology::flat(4);
        assert!(t.is_flat());
        assert_eq!(t.nr_cpus(), 4);
        assert_eq!(t.nr_nodes(), 1);
        for cpu in 0..4 {
            assert_eq!(t.node_of(cpu), 0);
            assert_eq!(t.core_of(cpu), cpu);
        }
    }

    #[test]
    fn numa_smt_layout() {
        let t: Topology = "2N4C2T".parse().unwrap();
        assert!(!t.is_flat());
        assert_eq!(t.nr_cpus(), 16);
        assert_eq!(t.nr_nodes(), 2);
        assert_eq!(t.cpus_per_node(), 8);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(7), 0);
        assert_eq!(t.node_of(8), 1);
        assert!(t.same_core(0, 1), "SMT siblings");
        assert!(!t.same_core(1, 2));
        assert!(t.same_node(1, 2));
        assert!(!t.same_node(7, 8));
    }

    #[test]
    fn packages_parse_and_round_trip() {
        let t: Topology = "2P2N4C2T".parse().unwrap();
        assert_eq!(t.packages(), 2);
        assert_eq!(t.nr_cpus(), 32);
        assert_eq!(t.nr_nodes(), 4);
        assert_eq!(t.package_of(0), 0);
        assert_eq!(t.package_of(15), 0);
        assert_eq!(t.package_of(16), 1);
        assert!(t.same_package(8, 15));
        assert!(!t.same_package(15, 16));
        assert_eq!(t.to_string(), "2P2N4C2T");
        assert_eq!("2N4C2T".parse::<Topology>().unwrap().to_string(), "2N4C2T");
        assert_eq!(Topology::flat(8).to_string(), "1N8C1T");
        assert_eq!("1N8C1T".parse::<Topology>().unwrap(), Topology::flat(8));
    }

    #[test]
    fn bad_spellings_are_rejected() {
        for bad in [
            "", "2N4C", "4C2T", "2X4C2T", "N4C2T", "0N4C2T", "2N4C0T", "x2N4C2T",
        ] {
            assert!(bad.parse::<Topology>().is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn migration_scale_is_identity_on_flat_trees() {
        let t = Topology::flat(8);
        for from in 0..8 {
            for to in 0..8 {
                assert_eq!(t.migration_scale(from, to), (1, 1));
            }
        }
    }

    #[test]
    fn migration_scale_grades_by_distance() {
        let t: Topology = "2N4C2T".parse().unwrap();
        assert_eq!(t.migration_scale(0, 1), (1, 4), "SMT sibling");
        assert_eq!(t.migration_scale(0, 2), (1, 2), "same node");
        assert_eq!(t.migration_scale(0, 8), (2, 1), "cross node");
        let p: Topology = "2P2N4C2T".parse().unwrap();
        assert_eq!(p.migration_scale(0, 8), (3, 2), "cross node, same package");
        assert_eq!(p.migration_scale(0, 16), (2, 1), "cross package");
        // SMT-only trees leave non-sibling moves at the flat cost: the
        // single node is shared by everyone, hence uninformative.
        let s: Topology = "1N4C2T".parse().unwrap();
        assert_eq!(s.migration_scale(0, 1), (1, 4));
        assert_eq!(s.migration_scale(0, 2), (1, 1));
    }
}
