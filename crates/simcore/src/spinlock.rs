//! A busy-interval model of a contended kernel spinlock.
//!
//! Linux 2.3.99 serializes all run-queue manipulation — including the whole
//! of `schedule()`'s goodness scan — under a single global `runqueue_lock`.
//! The paper's 2P/4P results are shaped by this: the longer the baseline
//! scheduler holds the lock, the longer other CPUs spin.
//!
//! The simulation is single-threaded and processes events in global time
//! order, so the lock can be modelled analytically: the lock records when
//! it next becomes free, an acquirer at time `t` obtains it at
//! `max(t, free_at) + transfer`, and the difference is the acquirer's spin
//! time. `transfer` models the cache-line migration cost of passing lock
//! ownership between CPUs.

use crate::clock::Cycles;

/// Identifier of the last lock holder, used to decide whether a cache-line
/// transfer cost applies.
pub type HolderId = usize;

/// Sentinel holder meaning "never held".
pub const NO_HOLDER: HolderId = usize::MAX;

/// Busy-interval spinlock model.
///
/// # Examples
///
/// ```
/// use elsc_simcore::{Cycles, SimSpinLock};
///
/// let mut lock = SimSpinLock::new(100); // 100-cycle line transfer
/// let a = lock.acquire(Cycles(0), 0);
/// lock.release(a + 500);
/// // CPU 1 arrives while CPU 0 still holds the lock: it spins.
/// let b = lock.acquire(Cycles(200), 1);
/// assert!(b.get() >= 500 + 100);
/// assert!(lock.total_spin().get() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SimSpinLock {
    free_at: Cycles,
    held: bool,
    last_holder: HolderId,
    transfer_cost: u64,
    total_spin: Cycles,
    acquisitions: u64,
    contended: u64,
    total_held: Cycles,
    acquired_at: Cycles,
}

impl SimSpinLock {
    /// Creates an uncontended lock with the given cache-line transfer cost
    /// (cycles charged when ownership moves between CPUs).
    pub fn new(transfer_cost: u64) -> Self {
        SimSpinLock {
            free_at: Cycles::ZERO,
            held: false,
            last_holder: NO_HOLDER,
            transfer_cost,
            total_spin: Cycles::ZERO,
            acquisitions: 0,
            contended: 0,
            total_held: Cycles::ZERO,
            acquired_at: Cycles::ZERO,
        }
    }

    /// Acquires the lock at time `now` on behalf of `holder`.
    ///
    /// Returns the instant at which the acquirer actually owns the lock
    /// (spin time plus any cache-line transfer already included). The
    /// caller must later call [`SimSpinLock::release`] with a time not
    /// before the returned instant.
    ///
    /// # Panics
    ///
    /// Panics if the lock is currently held: events are processed one at a
    /// time, so a nested acquire means the machine model forgot a release
    /// — a bug we want loud.
    pub fn acquire(&mut self, now: Cycles, holder: HolderId) -> Cycles {
        assert!(
            !self.held,
            "SimSpinLock: acquire while held (missing release)"
        );
        let ready = now.max(self.free_at);
        let spin = ready - now;
        if spin > Cycles::ZERO {
            self.contended += 1;
        }
        self.total_spin += spin;
        let transfer = if self.last_holder != holder && self.last_holder != NO_HOLDER {
            self.transfer_cost
        } else {
            0
        };
        let owned_at = ready + transfer;
        self.held = true;
        self.last_holder = holder;
        self.acquisitions += 1;
        self.acquired_at = owned_at;
        owned_at
    }

    /// Releases the lock at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if the lock is not held, or if `at` precedes the acquisition
    /// instant (time must not run backwards).
    pub fn release(&mut self, at: Cycles) {
        assert!(self.held, "SimSpinLock: release while not held");
        assert!(
            at >= self.acquired_at,
            "SimSpinLock: release at {at:?} before acquire at {:?}",
            self.acquired_at
        );
        self.held = false;
        self.free_at = at;
        self.total_held += at - self.acquired_at;
    }

    /// Total cycles all acquirers spent spinning.
    pub fn total_spin(&self) -> Cycles {
        self.total_spin
    }

    /// Total cycles the lock was held.
    pub fn total_held(&self) -> Cycles {
        self.total_held
    }

    /// Number of acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Number of acquisitions that had to spin.
    pub fn contended(&self) -> u64 {
        self.contended
    }

    /// Whether the lock is currently held (mainly for assertions).
    pub fn is_held(&self) -> bool {
        self.held
    }

    /// Resets statistics (not ownership state).
    pub fn reset_stats(&mut self) {
        self.total_spin = Cycles::ZERO;
        self.total_held = Cycles::ZERO;
        self.acquisitions = 0;
        self.contended = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_acquire_is_immediate() {
        let mut l = SimSpinLock::new(100);
        let a = l.acquire(Cycles(50), 0);
        assert_eq!(a, Cycles(50)); // first-ever acquire: no transfer
        l.release(Cycles(60));
        assert_eq!(l.total_spin(), Cycles::ZERO);
        assert_eq!(l.contended(), 0);
        assert_eq!(l.acquisitions(), 1);
    }

    #[test]
    fn same_holder_pays_no_transfer() {
        let mut l = SimSpinLock::new(100);
        let a = l.acquire(Cycles(0), 3);
        l.release(a + 10);
        let b = l.acquire(Cycles(20), 3);
        assert_eq!(b, Cycles(20));
    }

    #[test]
    fn different_holder_pays_transfer() {
        let mut l = SimSpinLock::new(100);
        let a = l.acquire(Cycles(0), 0);
        l.release(a + 10);
        let b = l.acquire(Cycles(50), 1);
        assert_eq!(b, Cycles(150));
    }

    #[test]
    fn contended_acquire_spins_until_release() {
        let mut l = SimSpinLock::new(0);
        let a = l.acquire(Cycles(0), 0);
        l.release(a + 1000);
        let b = l.acquire(Cycles(100), 1);
        assert_eq!(b, Cycles(1000));
        assert_eq!(l.total_spin(), Cycles(900));
        assert_eq!(l.contended(), 1);
    }

    #[test]
    fn held_time_accumulates() {
        let mut l = SimSpinLock::new(0);
        let a = l.acquire(Cycles(0), 0);
        l.release(a + 300);
        let b = l.acquire(Cycles(500), 0);
        l.release(b + 200);
        assert_eq!(l.total_held(), Cycles(500));
    }

    #[test]
    #[should_panic(expected = "acquire while held")]
    fn double_acquire_panics() {
        let mut l = SimSpinLock::new(0);
        l.acquire(Cycles(0), 0);
        l.acquire(Cycles(1), 1);
    }

    #[test]
    #[should_panic(expected = "release while not held")]
    fn release_unheld_panics() {
        let mut l = SimSpinLock::new(0);
        l.release(Cycles(5));
    }

    #[test]
    #[should_panic(expected = "before acquire")]
    fn release_before_acquire_panics() {
        let mut l = SimSpinLock::new(0);
        l.acquire(Cycles(100), 0);
        l.release(Cycles(50));
    }

    #[test]
    fn reset_stats_clears_counters_only() {
        let mut l = SimSpinLock::new(0);
        let a = l.acquire(Cycles(0), 0);
        l.release(a + 100);
        l.reset_stats();
        assert_eq!(l.acquisitions(), 0);
        assert_eq!(l.total_held(), Cycles::ZERO);
        // free_at is preserved: a later acquire still sees the busy window.
        let b = l.acquire(Cycles(0), 0);
        assert_eq!(b, Cycles(100));
    }
}
