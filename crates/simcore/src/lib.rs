//! Discrete-event simulation core for the ELSC scheduler reproduction.
//!
//! This crate holds the substrate every other simulation crate builds on:
//!
//! * [`clock::Cycles`] — the virtual time unit (CPU cycles).
//! * [`events::EventQueue`] — a stable, deterministic discrete-event queue.
//! * [`rng::SimRng`] — a small, fully deterministic xoshiro256** PRNG so
//!   that simulation runs are reproducible from a seed alone.
//! * [`spinlock::SimSpinLock`] — a busy-interval model of a contended
//!   kernel spinlock (the global `runqueue_lock` of Linux 2.3.99).
//! * [`lockdomain::LockModel`] — a bank of N independent spinlock
//!   domains, generalizing the single global lock into pluggable
//!   locking regimes (global, per-CPU, sharded).
//! * [`cost::CostModel`] / [`cost::CycleMeter`] — a table of per-primitive
//!   cycle costs and an accumulator used by the schedulers to charge their
//!   own work to the simulated CPU.
//! * [`topology::Topology`] — a declared machine topology tree
//!   (packages → NUMA nodes → cores → SMT siblings), with the flat
//!   per-CPU model as its one-level degenerate case.
//!
//! Nothing in this crate knows about tasks or scheduling; it is a generic
//! deterministic simulation toolkit.
#![deny(missing_docs)]

pub mod clock;
pub mod cost;
pub mod events;
pub mod histogram;
pub mod lockdomain;
pub mod rng;
pub mod spinlock;
pub mod topology;

pub use clock::Cycles;
pub use cost::{CostKind, CostModel, CycleMeter, COST_KINDS};
pub use events::{CalendarEventQueue, EventQueue, HeapEventQueue};
pub use histogram::Histogram;
pub use lockdomain::{DomainStats, LockModel};
pub use rng::SimRng;
pub use spinlock::SimSpinLock;
pub use topology::Topology;
