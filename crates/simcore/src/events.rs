//! A deterministic discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: events scheduled for the same
//! virtual instant pop in the order they were pushed. This tie-breaking is
//! what makes whole-machine simulations bit-for-bit reproducible, which the
//! determinism property tests rely on.

use core::cmp::Ordering;
use core::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::clock::Cycles;

/// An entry in the queue: payload plus its (time, seq) sort key.
struct Entry<E> {
    time: Cycles,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Only the key participates in ordering; payloads need not be Ord.
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A min-ordered event queue keyed by virtual time with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use elsc_simcore::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycles(10), "late");
/// q.push(Cycles(5), "early");
/// q.push(Cycles(5), "early-second");
/// assert_eq!(q.pop(), Some((Cycles(5), "early")));
/// assert_eq!(q.pop(), Some((Cycles(5), "early-second")));
/// assert_eq!(q.pop(), Some((Cycles(10), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    pushed: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Schedules `event` at virtual time `time`.
    ///
    /// Pushing an event in the past relative to already-popped events is
    /// not detected here; the machine model guards against it because a
    /// time-travelling event would corrupt causality silently.
    pub fn push(&mut self, time: Cycles, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.pushed += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.event))
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events pushed over the queue's lifetime (for reports).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events popped over the queue's lifetime (for reports).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Moves every pending event `delta` cycles later, preserving the
    /// FIFO tie-break: sequence numbers are untouched and all keys shift
    /// together, so the pop order is exactly the old order, delayed.
    ///
    /// This models a whole-machine stall (a virtualisation pause, an
    /// SMI): nothing is lost, everything simply happens later. Lifetime
    /// counters are unaffected.
    pub fn shift_pending(&mut self, delta: u64) {
        if delta == 0 || self.heap.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.heap).into_vec();
        self.heap = entries
            .into_iter()
            .map(|Reverse(mut e)| {
                e.time += delta;
                Reverse(e)
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycles(30), 3);
        q.push(Cycles(10), 1);
        q.push(Cycles(20), 2);
        assert_eq!(q.pop(), Some((Cycles(10), 1)));
        assert_eq!(q.pop(), Some((Cycles(20), 2)));
        assert_eq!(q.pop(), Some((Cycles(30), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycles(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles(7), i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Cycles(5), ());
        assert_eq!(q.peek_time(), Some(Cycles(5)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Cycles(5), ())));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Cycles(10), "a");
        q.push(Cycles(5), "b");
        assert_eq!(q.pop(), Some((Cycles(5), "b")));
        q.push(Cycles(7), "c");
        q.push(Cycles(7), "d");
        assert_eq!(q.pop(), Some((Cycles(7), "c")));
        assert_eq!(q.pop(), Some((Cycles(7), "d")));
        assert_eq!(q.pop(), Some((Cycles(10), "a")));
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(Cycles(1), ());
        q.push(Cycles(2), ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        q.clear();
        assert!(q.is_empty());
        // Clear drops pending events but preserves lifetime counters.
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn shift_pending_delays_everything_in_order() {
        let mut q = EventQueue::new();
        q.push(Cycles(10), "a");
        q.push(Cycles(10), "b"); // same instant: FIFO must survive
        q.push(Cycles(30), "c");
        q.shift_pending(5);
        assert_eq!(q.pop(), Some((Cycles(15), "a")));
        assert_eq!(q.pop(), Some((Cycles(15), "b")));
        assert_eq!(q.pop(), Some((Cycles(35), "c")));
        // Events pushed after a shift interleave normally.
        q.push(Cycles(40), "d");
        q.push(Cycles(38), "e");
        q.shift_pending(0); // no-op
        assert_eq!(q.pop(), Some((Cycles(38), "e")));
        assert_eq!(q.pop(), Some((Cycles(40), "d")));
    }

    #[test]
    fn shift_pending_keeps_counters() {
        let mut q = EventQueue::new();
        q.push(Cycles(1), ());
        q.shift_pending(100);
        assert_eq!(q.total_pushed(), 1);
        assert_eq!(q.total_popped(), 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn payload_need_not_be_ord() {
        // f64 is not Ord; ordering must come solely from the key.
        let mut q = EventQueue::new();
        q.push(Cycles(2), 2.0f64);
        q.push(Cycles(1), 1.0f64);
        assert_eq!(q.pop().unwrap().1, 1.0);
    }
}
