//! A deterministic discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: events scheduled for the same
//! virtual instant pop in the order they were pushed. This tie-breaking is
//! what makes whole-machine simulations bit-for-bit reproducible, which the
//! determinism property tests rely on.
//!
//! Two implementations share the contract:
//!
//! * [`CalendarEventQueue`] — the default. A hierarchical calendar queue
//!   (timing wheel): a sorted "spill" run holding the earliest events, a
//!   ring of [`NR_BUCKETS`] unsorted buckets of [`BUCKET_CYCLES`] cycles
//!   each covering the near horizon, and a `BTreeMap` overflow for events
//!   beyond it. Pushes and pops are O(1) amortised regardless of how many
//!   events are pending, which is what lets mega-scale sweeps (100k–1M
//!   tasks) run at full speed.
//! * [`HeapEventQueue`] — the original binary-heap implementation, kept as
//!   the executable reference. The differential tests below drive both
//!   with identical randomized traffic and demand identical pop streams,
//!   and the `heap-queue` cargo feature swaps it back in as [`EventQueue`]
//!   so whole-machine reports can be compared byte-for-byte against the
//!   calendar build.

use core::cmp::Ordering;
use core::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use crate::clock::Cycles;

/// Log2 of the wheel bucket width: 2^16 = 65,536 cycles per bucket
/// (~0.16 ms at 400 MHz).
const BUCKET_SHIFT: u32 = 16;

/// Width of one wheel bucket in cycles.
pub const BUCKET_CYCLES: u64 = 1 << BUCKET_SHIFT;

/// Number of buckets in the wheel: the near horizon spans
/// `NR_BUCKETS * BUCKET_CYCLES` ≈ 16.8M cycles (~42 ms at 400 MHz), which
/// comfortably covers timer ticks and wakeup latencies; sleeps and
/// think-time events land in the far overflow.
pub const NR_BUCKETS: usize = 256;

/// An entry in the queue: payload plus its (time, seq) sort key.
struct Entry<E> {
    time: Cycles,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// The total order all implementations agree on.
    #[inline]
    fn key(&self) -> (Cycles, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Only the key participates in ordering; payloads need not be Ord.
        self.key().cmp(&other.key())
    }
}

/// The event queue used by the machine model.
///
/// This is the calendar implementation by default; building with the
/// test-only `heap-queue` feature swaps in [`HeapEventQueue`] so that
/// same-seed whole-machine reports can be compared byte-for-byte between
/// the two.
///
/// # Examples
///
/// ```
/// use elsc_simcore::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycles(10), "late");
/// q.push(Cycles(5), "early");
/// q.push(Cycles(5), "early-second");
/// assert_eq!(q.pop(), Some((Cycles(5), "early")));
/// assert_eq!(q.pop(), Some((Cycles(5), "early-second")));
/// assert_eq!(q.pop(), Some((Cycles(10), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[cfg(not(feature = "heap-queue"))]
pub type EventQueue<E> = CalendarEventQueue<E>;

/// The event queue used by the machine model (`heap-queue` build: the
/// reference [`HeapEventQueue`]).
#[cfg(feature = "heap-queue")]
pub type EventQueue<E> = HeapEventQueue<E>;

/// A min-ordered event queue keyed by virtual time with FIFO tie-breaking,
/// implemented as a hierarchical calendar queue (timing wheel).
///
/// Three tiers, earliest to latest:
///
/// 1. `sorted` — the spill run: the contents of the last-drained bucket,
///    sorted *descending* by `(time, seq)` so pops are `Vec::pop` from the
///    end. Pushes at or before the wheel cursor (possible: the machine may
///    schedule an event for "now" while draining) binary-insert here.
/// 2. `wheel` — [`NR_BUCKETS`] unsorted buckets of [`BUCKET_CYCLES`]
///    cycles covering absolute bucket numbers
///    `[next_bucket, next_bucket + NR_BUCKETS)`. A push inside the horizon
///    is an O(1) `Vec::push`; a bucket is sorted only once, when the
///    cursor reaches it.
/// 3. `far` — everything beyond the horizon, keyed `(time, seq)` in a
///    `BTreeMap`; migrated into the wheel lazily as the cursor advances.
///
/// Every pop returns the globally earliest `(time, seq)` key, so the pop
/// stream is identical to [`HeapEventQueue`]'s for any push sequence.
pub struct CalendarEventQueue<E> {
    /// Earliest events, descending by key; popped from the end.
    sorted: Vec<Entry<E>>,
    /// The near-horizon ring; slot `b % NR_BUCKETS` holds bucket `b`.
    wheel: Vec<Vec<Entry<E>>>,
    /// Events currently in the wheel.
    in_wheel: usize,
    /// Absolute bucket number of the wheel cursor: all buckets below it
    /// have been drained into `sorted`.
    next_bucket: u64,
    /// Events beyond the wheel horizon.
    far: BTreeMap<(u64, u64), E>,
    seq: u64,
    pushed: u64,
    popped: u64,
}

impl<E> Default for CalendarEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn bucket_of(time: Cycles) -> u64 {
    time.0 >> BUCKET_SHIFT
}

impl<E> CalendarEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarEventQueue {
            sorted: Vec::new(),
            wheel: (0..NR_BUCKETS).map(|_| Vec::new()).collect(),
            in_wheel: 0,
            next_bucket: 0,
            far: BTreeMap::new(),
            seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Schedules `event` at virtual time `time`.
    ///
    /// Pushing an event in the past relative to already-popped events is
    /// not detected here; the machine model guards against it because a
    /// time-travelling event would corrupt causality silently.
    pub fn push(&mut self, time: Cycles, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.pushed += 1;
        self.insert(Entry { time, seq, event });
    }

    /// Places an entry in the tier its time belongs to. The FIFO contract
    /// is carried entirely by the `(time, seq)` key, so placement never
    /// reorders anything.
    fn insert(&mut self, e: Entry<E>) {
        let b = bucket_of(e.time);
        if b < self.next_bucket {
            // At or before the cursor. Everything in `sorted` came from
            // buckets below `next_bucket` too, so a binary insert keeps the
            // run exactly ordered (a later push always has a larger seq,
            // so equal keys cannot occur).
            let pos = self.sorted.partition_point(|x| x.key() > e.key());
            self.sorted.insert(pos, e);
        } else if b < self.next_bucket + NR_BUCKETS as u64 {
            self.wheel[(b % NR_BUCKETS as u64) as usize].push(e);
            self.in_wheel += 1;
        } else {
            self.far.insert((e.time.0, e.seq), e.event);
        }
    }

    /// Moves far-overflow events that now fall inside the wheel horizon
    /// into their buckets. Call whenever `next_bucket` has advanced.
    fn migrate_far(&mut self) {
        let horizon = self.next_bucket + NR_BUCKETS as u64;
        let in_window = |t: u64| (t >> BUCKET_SHIFT) < horizon;
        if !self
            .far
            .first_key_value()
            .is_some_and(|(&(t, _), _)| in_window(t))
        {
            return;
        }
        let boundary = horizon
            .checked_shl(BUCKET_SHIFT)
            .expect("event time beyond representable horizon");
        let rest = self.far.split_off(&(boundary, 0));
        for ((t, seq), event) in std::mem::replace(&mut self.far, rest) {
            self.wheel[((t >> BUCKET_SHIFT) % NR_BUCKETS as u64) as usize].push(Entry {
                time: Cycles(t),
                seq,
                event,
            });
            self.in_wheel += 1;
        }
    }

    /// Refills the empty spill run from the wheel (and the wheel from the
    /// far overflow), advancing the cursor to the next populated bucket.
    fn refill(&mut self) {
        debug_assert!(self.sorted.is_empty());
        if self.in_wheel == 0 {
            // Jump the cursor straight to the first far bucket; far keys
            // are always at or beyond the cursor (see `migrate_far`).
            match self.far.first_key_value() {
                Some((&(t, _), _)) => self.next_bucket = t >> BUCKET_SHIFT,
                None => return,
            }
        }
        self.migrate_far();
        loop {
            let slot = (self.next_bucket % NR_BUCKETS as u64) as usize;
            self.next_bucket += 1;
            if !self.wheel[slot].is_empty() {
                let mut bucket = std::mem::take(&mut self.wheel[slot]);
                self.in_wheel -= bucket.len();
                // Descending, so popping from the end walks the keys in
                // ascending `(time, seq)` order.
                bucket.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                self.sorted = bucket;
                return;
            }
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        if self.sorted.is_empty() {
            self.refill();
        }
        let e = self.sorted.pop()?;
        self.popped += 1;
        Some((e.time, e.event))
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Cycles> {
        if let Some(e) = self.sorted.last() {
            return Some(e.time);
        }
        let far_min = self.far.first_key_value().map(|(&(t, _), _)| Cycles(t));
        if self.in_wheel == 0 {
            return far_min;
        }
        for step in 0..NR_BUCKETS as u64 {
            let slot = &self.wheel[((self.next_bucket + step) % NR_BUCKETS as u64) as usize];
            if let Some(wheel_min) = slot.iter().map(|e| e.time).min() {
                // A pending far migration can hold an earlier bucket than
                // the first populated wheel slot; take the true minimum.
                return Some(match far_min {
                    Some(f) if f < wheel_min => f,
                    _ => wheel_min,
                });
            }
        }
        unreachable!("in_wheel > 0 but every wheel slot is empty")
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.sorted.len() + self.in_wheel + self.far.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events pushed over the queue's lifetime (for reports).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events popped over the queue's lifetime (for reports).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.sorted.clear();
        for slot in &mut self.wheel {
            slot.clear();
        }
        self.in_wheel = 0;
        self.far.clear();
        self.next_bucket = 0;
    }

    /// Moves every pending event `delta` cycles later, preserving the
    /// FIFO tie-break: sequence numbers are untouched and all keys shift
    /// together, so the pop order is exactly the old order, delayed.
    ///
    /// This models a whole-machine stall (a virtualisation pause, an
    /// SMI): nothing is lost, everything simply happens later. Lifetime
    /// counters are unaffected.
    pub fn shift_pending(&mut self, delta: u64) {
        if delta == 0 || self.is_empty() {
            return;
        }
        let mut all: Vec<Entry<E>> = Vec::with_capacity(self.len());
        all.append(&mut self.sorted);
        for slot in &mut self.wheel {
            all.append(slot);
        }
        self.in_wheel = 0;
        for ((t, seq), event) in std::mem::take(&mut self.far) {
            all.push(Entry {
                time: Cycles(t),
                seq,
                event,
            });
        }
        let min_time = all.iter().map(|e| e.time.0).min().unwrap() + delta;
        self.next_bucket = min_time >> BUCKET_SHIFT;
        for mut e in all {
            e.time += delta;
            self.insert(e);
        }
    }
}

/// The original `BinaryHeap` implementation, kept as the executable
/// reference for the calendar queue: same API, same `(time, seq)` FIFO
/// contract, O(log n) operations. The differential tests in this module
/// (and the machine-level byte-identity check in CI, via the `heap-queue`
/// feature) prove the two produce identical pop streams.
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    pushed: u64,
    popped: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Schedules `event` at virtual time `time`.
    pub fn push(&mut self, time: Cycles, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.pushed += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.event))
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events pushed over the queue's lifetime (for reports).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events popped over the queue's lifetime (for reports).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Moves every pending event `delta` cycles later, preserving the
    /// FIFO tie-break (see [`CalendarEventQueue::shift_pending`]).
    pub fn shift_pending(&mut self, delta: u64) {
        if delta == 0 || self.heap.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.heap).into_vec();
        self.heap = entries
            .into_iter()
            .map(|Reverse(mut e)| {
                e.time += delta;
                Reverse(e)
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycles(30), 3);
        q.push(Cycles(10), 1);
        q.push(Cycles(20), 2);
        assert_eq!(q.pop(), Some((Cycles(10), 1)));
        assert_eq!(q.pop(), Some((Cycles(20), 2)));
        assert_eq!(q.pop(), Some((Cycles(30), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycles(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles(7), i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Cycles(5), ());
        assert_eq!(q.peek_time(), Some(Cycles(5)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Cycles(5), ())));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Cycles(10), "a");
        q.push(Cycles(5), "b");
        assert_eq!(q.pop(), Some((Cycles(5), "b")));
        q.push(Cycles(7), "c");
        q.push(Cycles(7), "d");
        assert_eq!(q.pop(), Some((Cycles(7), "c")));
        assert_eq!(q.pop(), Some((Cycles(7), "d")));
        assert_eq!(q.pop(), Some((Cycles(10), "a")));
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(Cycles(1), ());
        q.push(Cycles(2), ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        q.clear();
        assert!(q.is_empty());
        // Clear drops pending events but preserves lifetime counters.
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn shift_pending_delays_everything_in_order() {
        let mut q = EventQueue::new();
        q.push(Cycles(10), "a");
        q.push(Cycles(10), "b"); // same instant: FIFO must survive
        q.push(Cycles(30), "c");
        q.shift_pending(5);
        assert_eq!(q.pop(), Some((Cycles(15), "a")));
        assert_eq!(q.pop(), Some((Cycles(15), "b")));
        assert_eq!(q.pop(), Some((Cycles(35), "c")));
        // Events pushed after a shift interleave normally.
        q.push(Cycles(40), "d");
        q.push(Cycles(38), "e");
        q.shift_pending(0); // no-op
        assert_eq!(q.pop(), Some((Cycles(38), "e")));
        assert_eq!(q.pop(), Some((Cycles(40), "d")));
    }

    #[test]
    fn shift_pending_keeps_counters() {
        let mut q = EventQueue::new();
        q.push(Cycles(1), ());
        q.shift_pending(100);
        assert_eq!(q.total_pushed(), 1);
        assert_eq!(q.total_popped(), 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn payload_need_not_be_ord() {
        // f64 is not Ord; ordering must come solely from the key.
        let mut q = EventQueue::new();
        q.push(Cycles(2), 2.0f64);
        q.push(Cycles(1), 1.0f64);
        assert_eq!(q.pop().unwrap().1, 1.0);
    }

    #[test]
    fn far_horizon_events_pop_in_order() {
        // Spans all three calendar tiers: spill, wheel, far overflow.
        let mut q = CalendarEventQueue::new();
        let far = NR_BUCKETS as u64 * BUCKET_CYCLES * 3;
        q.push(Cycles(far), "far");
        q.push(Cycles(BUCKET_CYCLES + 1), "wheel");
        q.push(Cycles(far), "far-second");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(Cycles(BUCKET_CYCLES + 1)));
        assert_eq!(q.pop(), Some((Cycles(BUCKET_CYCLES + 1), "wheel")));
        // A "past" push after the cursor advanced must still pop first.
        q.push(Cycles(7), "past");
        assert_eq!(q.peek_time(), Some(Cycles(7)));
        assert_eq!(q.pop(), Some((Cycles(7), "past")));
        assert_eq!(q.pop(), Some((Cycles(far), "far")));
        assert_eq!(q.pop(), Some((Cycles(far), "far-second")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn heap_reference_agrees_on_basics() {
        let mut q = HeapEventQueue::new();
        q.push(Cycles(9), "b");
        q.push(Cycles(9), "c");
        q.push(Cycles(1), "a");
        assert_eq!(q.peek_time(), Some(Cycles(1)));
        assert_eq!(q.pop(), Some((Cycles(1), "a")));
        assert_eq!(q.pop(), Some((Cycles(9), "b")));
        assert_eq!(q.pop(), Some((Cycles(9), "c")));
        assert_eq!(q.total_pushed(), 3);
        assert_eq!(q.total_popped(), 3);
    }

    /// Satellite: the FIFO tie-break must survive a million pushes at the
    /// same instant (one maximally overloaded calendar bucket).
    #[test]
    fn fifo_tie_break_under_one_million_same_time_pushes() {
        const N: u32 = 1_000_000;
        let mut q = EventQueue::new();
        for i in 0..N {
            q.push(Cycles(42), i);
        }
        assert_eq!(q.len(), N as usize);
        for i in 0..N {
            let (t, v) = q.pop().expect("queue drained early");
            assert_eq!(t, Cycles(42));
            assert_eq!(v, i, "FIFO order broken at element {i}");
        }
        assert!(q.is_empty());
        assert_eq!(q.total_popped(), u64::from(N));
    }

    /// Satellite: calendar-vs-heap equivalence on randomized seeded
    /// push/pop/shift sequences mixing near, far, and past times.
    #[test]
    fn calendar_matches_heap_on_random_sequences() {
        for seed in 0..8u64 {
            let mut rng = SimRng::new(0xD1FF ^ seed);
            let mut cal = CalendarEventQueue::new();
            let mut heap = HeapEventQueue::new();
            let mut now = 0u64;
            for step in 0..20_000u64 {
                match rng.next_u64() % 10 {
                    // Pops (biased so the queues drain and the cursor moves).
                    0..=3 => {
                        let a = cal.pop();
                        let b = heap.pop();
                        assert_eq!(a, b, "seed {seed} step {step}: pop diverged");
                        if let Some((t, _)) = a {
                            now = now.max(t.0);
                        }
                    }
                    // Near pushes: same tick, within the wheel.
                    4..=6 => {
                        let t = now + rng.next_u64() % (4 * BUCKET_CYCLES);
                        cal.push(Cycles(t), step);
                        heap.push(Cycles(t), step);
                    }
                    // Same-instant pushes: exercise the FIFO tie-break.
                    7 => {
                        for _ in 0..3 {
                            cal.push(Cycles(now), step);
                            heap.push(Cycles(now), step);
                        }
                    }
                    // Far pushes: beyond the wheel horizon.
                    8 => {
                        let t =
                            now + NR_BUCKETS as u64 * BUCKET_CYCLES + rng.next_u64() % (1 << 30);
                        cal.push(Cycles(t), step);
                        heap.push(Cycles(t), step);
                    }
                    // Whole-machine stall.
                    _ => {
                        let d = rng.next_u64() % (2 * BUCKET_CYCLES);
                        cal.shift_pending(d);
                        heap.shift_pending(d);
                    }
                }
                assert_eq!(cal.len(), heap.len(), "seed {seed} step {step}");
                assert_eq!(cal.peek_time(), heap.peek_time(), "seed {seed} step {step}");
            }
            // Drain both to the end.
            loop {
                let (a, b) = (cal.pop(), heap.pop());
                assert_eq!(a, b, "seed {seed} drain diverged");
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(cal.total_pushed(), heap.total_pushed());
            assert_eq!(cal.total_popped(), heap.total_popped());
        }
    }
}
