//! Virtual time measured in CPU cycles.
//!
//! All simulated time in this project is expressed in cycles of the
//! simulated processor. The paper's hardware was Pentium II class, so the
//! default frequency used by the machine model is 400 MHz; converting to
//! seconds only matters when rendering human-readable reports.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or span of) virtual time, measured in CPU cycles.
///
/// `Cycles` is deliberately a thin wrapper over `u64`: it exists to stop
/// cycle counts from being mixed up with other integers (task counts, list
/// indices, ...), not to provide arithmetic safety beyond overflow checks
/// in debug builds.
///
/// # Examples
///
/// ```
/// use elsc_simcore::Cycles;
///
/// let t = Cycles(4_000_000);
/// assert_eq!(t.as_secs(400_000_000), 0.01); // one 10 ms tick at 400 MHz
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero instant, the start of every simulation.
    pub const ZERO: Cycles = Cycles(0);

    /// The largest representable instant; used as an "infinitely far away"
    /// sentinel (e.g. the resume time of an idle CPU).
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Returns the raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Converts this span to seconds at the given clock frequency.
    #[inline]
    pub fn as_secs(self, hz: u64) -> f64 {
        self.0 as f64 / hz as f64
    }

    /// Converts this span to milliseconds at the given clock frequency.
    #[inline]
    pub fn as_millis(self, hz: u64) -> f64 {
        self.as_secs(hz) * 1_000.0
    }

    /// Saturating subtraction: returns `self - other`, or zero if `other`
    /// is later than `self`.
    #[inline]
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: Cycles) -> Cycles {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    #[inline]
    pub fn min(self, other: Cycles) -> Cycles {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;

    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycles {
    type Output = Cycles;

    #[inline]
    fn add(self, rhs: u64) -> Cycles {
        Cycles(self.0 + rhs)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl AddAssign<u64> for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycles {
    type Output = Cycles;

    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Cycles {
    #[inline]
    fn from(v: u64) -> Cycles {
        Cycles(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(Cycles::default(), Cycles::ZERO);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = Cycles(100);
        let b = Cycles(40);
        assert_eq!(a + b, Cycles(140));
        assert_eq!(a - b, Cycles(60));
        let mut c = a;
        c += b;
        assert_eq!(c, Cycles(140));
        c -= b;
        assert_eq!(c, a);
        c += 5u64;
        assert_eq!(c, Cycles(105));
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        assert_eq!(Cycles(5).saturating_sub(Cycles(10)), Cycles::ZERO);
        assert_eq!(Cycles(10).saturating_sub(Cycles(5)), Cycles(5));
    }

    #[test]
    fn seconds_conversion() {
        let hz = 400_000_000;
        assert_eq!(Cycles(hz).as_secs(hz), 1.0);
        assert_eq!(Cycles(hz / 2).as_millis(hz), 500.0);
    }

    #[test]
    fn min_max() {
        let a = Cycles(3);
        let b = Cycles(7);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.max(b), b);
    }

    #[test]
    fn ordering_matches_raw_value() {
        assert!(Cycles(1) < Cycles(2));
        assert!(Cycles::MAX > Cycles(u64::MAX - 1));
    }

    #[test]
    fn sum_of_spans() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Cycles(42)), "42");
        assert_eq!(format!("{:?}", Cycles(42)), "42cyc");
    }
}
