//! Differential backend fuzzing: the bytecode VM versus the reference
//! interpreter.
//!
//! The contract under test is the PR's central claim: **every** verified
//! `.pol` program produces identical decisions *and* identical
//! `PolicyInsn`-equivalent budget outcomes on both backends — same
//! picks, same violations (including the exact `insns` value at a
//! budget blowout), same examined-task counts, same virtual cycles.
//! The corpus is the bundled policies plus verifier-accepted mutants of
//! them (the PR 5 mutation corpus, regenerated deterministically from
//! the simulator's own [`SimRng`]), driven through a perturbed
//! scheduling scenario at both a generous and a deliberately tight
//! budget so mid-hook aborts are exercised on both sides.

use std::fs;
use std::path::PathBuf;

use elsc_ktask::{CpuId, TaskSpec, TaskState, TaskTable, Tid};
use elsc_policy::{load_str, PolicyScheduler, Program, DEFAULT_BUDGET};
use elsc_sched_api::{PolicyBackend, SchedConfig, SchedCtx, Scheduler};
use elsc_simcore::{CostModel, CycleMeter, SimRng};
use elsc_stats::SchedStats;

fn policies_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../policies")
}

fn read_corpus() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = fs::read_dir(policies_dir())
        .expect("policies dir")
        .filter_map(|e| {
            let p = e.ok()?.path();
            if p.extension().is_some_and(|x| x == "pol") {
                let name = p.file_name().unwrap().to_string_lossy().into_owned();
                Some((name, fs::read_to_string(&p).expect("readable corpus file")))
            } else {
                None
            }
        })
        .collect();
    out.sort();
    out
}

fn below(rng: &mut SimRng, n: usize) -> usize {
    rng.below(n as u64) as usize
}

/// One backend's full observable trace of a driven scenario.
#[derive(Debug, PartialEq)]
struct Trace {
    picks: Vec<usize>,
    violations: Vec<Option<&'static str>>,
    insns: u64,
    tasks_examined: u64,
    recalc_entries: u64,
    idle_scheduled: u64,
    cycles: u64,
}

/// Drives `prog` on `backend` through a deterministic perturbed
/// scenario (blocking, waking, yields, ticks) and records everything
/// the machine could observe.
fn drive(prog: &Program, backend: PolicyBackend, budget: u64, steps: u32) -> Trace {
    let cfg = SchedConfig::up();
    let mut sched = PolicyScheduler::new(prog.clone(), cfg.nr_cpus)
        .with_budget(budget)
        .with_backend(backend);
    let mut tasks = TaskTable::new();
    let mut stats = SchedStats::new(cfg.nr_cpus);
    let mut meter = CycleMeter::new();
    let costs = CostModel::default();
    let idle = tasks.spawn(&TaskSpec::named("idle").priority(1));
    tasks.task_mut(idle).counter = 0;
    tasks.task_mut(idle).has_cpu = true;

    let with = |sched: &mut PolicyScheduler,
                tasks: &mut TaskTable,
                stats: &mut SchedStats,
                meter: &mut CycleMeter,
                f: &mut dyn FnMut(&mut PolicyScheduler, &mut SchedCtx<'_>) -> Tid|
     -> Tid {
        let mut ctx = SchedCtx {
            tasks,
            stats,
            meter,
            costs: &costs,
            cfg: &cfg,
            probe: None,
            locks: None,
        };
        f(sched, &mut ctx)
    };

    let mut workers = Vec::new();
    for name in ["a", "b", "c"] {
        let tid = tasks.spawn(&TaskSpec::named(name));
        with(
            &mut sched,
            &mut tasks,
            &mut stats,
            &mut meter,
            &mut |s, ctx| {
                s.add_to_runqueue(ctx, tid);
                tid
            },
        );
        workers.push(tid);
    }

    let mut picks = Vec::new();
    let mut violations = Vec::new();
    let mut current = idle;
    for step in 0..steps {
        let r = u64::from(step)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407)
            >> 33;
        match r % 13 {
            0 => {
                if workers.contains(&current) {
                    tasks.task_mut(current).state = TaskState::Interruptible;
                }
            }
            1 => {
                for &t in &workers {
                    if tasks.task(t).state == TaskState::Interruptible {
                        tasks.task_mut(t).state = TaskState::Running;
                        with(
                            &mut sched,
                            &mut tasks,
                            &mut stats,
                            &mut meter,
                            &mut |s, ctx| {
                                s.add_to_runqueue(ctx, t);
                                t
                            },
                        );
                        break;
                    }
                }
            }
            2 => {
                if workers.contains(&current) {
                    tasks.task_mut(current).policy.yielded = true;
                }
            }
            3 => {
                let cur = current;
                with(
                    &mut sched,
                    &mut tasks,
                    &mut stats,
                    &mut meter,
                    &mut |s, ctx| {
                        s.on_tick(ctx, 0 as CpuId, cur);
                        cur
                    },
                );
            }
            _ => {
                if workers.contains(&current) && tasks.task(current).counter > 0 {
                    tasks.task_mut(current).counter -= 1;
                }
            }
        }
        let prev = current;
        current = with(
            &mut sched,
            &mut tasks,
            &mut stats,
            &mut meter,
            &mut |s, ctx| s.schedule(ctx, 0, prev, idle),
        );
        picks.push(current.index());
        violations.push(sched.take_violation().map(|v| v.label()));
    }
    let s = stats.cpu(0);
    Trace {
        picks,
        violations,
        insns: sched.policy_insns_executed(),
        tasks_examined: s.tasks_examined,
        recalc_entries: s.recalc_entries,
        idle_scheduled: s.idle_scheduled,
        cycles: meter.take(),
    }
}

fn assert_backends_agree(name: &str, prog: &Program, budget: u64, steps: u32) {
    let vm = drive(prog, PolicyBackend::Vm, budget, steps);
    let interp = drive(prog, PolicyBackend::Interp, budget, steps);
    assert_eq!(vm, interp, "{name}: backends diverged at budget {budget}");
}

#[test]
fn bundled_policies_are_backend_equivalent_at_generous_and_tight_budgets() {
    for (name, src) in &read_corpus() {
        let prog = load_str(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        for budget in [DEFAULT_BUDGET, 96, 7] {
            assert_backends_agree(name, &prog, budget, 120);
        }
    }
}

#[test]
fn verifier_accepted_mutants_are_backend_equivalent() {
    let corpus = read_corpus();
    let mut rng = SimRng::new(0x00D1_FFE2_E4C1_A11E);
    for (name, src) in &corpus {
        let mut accepted = 0u32;
        let mut attempts = 0u32;
        while accepted < 40 && attempts < 4000 {
            attempts += 1;
            let mut s: Vec<char> = src.chars().collect();
            match below(&mut rng, 4) {
                0 => {
                    let i = below(&mut rng, s.len());
                    s.remove(i);
                }
                1 => {
                    let i = below(&mut rng, s.len());
                    let j = below(&mut rng, s.len());
                    s.swap(i, j);
                }
                2 => s.truncate(below(&mut rng, s.len())),
                _ => {
                    let i = below(&mut rng, s.len());
                    let j = i + below(&mut rng, s.len() - i);
                    let dup: Vec<char> = s[i..j].to_vec();
                    s.extend(dup);
                }
            }
            let mutated: String = s.into_iter().collect();
            let Ok(prog) = load_str(&mutated) else {
                continue;
            };
            accepted += 1;
            // A tightish budget so some mutants abort mid-hook: the
            // violation (and its exact insns) must match too.
            let budget = [DEFAULT_BUDGET, 128][(accepted % 2) as usize];
            assert_backends_agree(&format!("{name} mutant #{accepted}"), &prog, budget, 60);
        }
        assert!(
            accepted >= 10,
            "{name}: mutation should yield verifier-accepted variants (got {accepted})"
        );
    }
}

/// Budget-exhaustion mid-hook on the VM path: the decision aborts, the
/// host substitutes its safe fallback, and the recorded violation is
/// byte-identical to the interpreter's.
#[test]
fn vm_budget_exhaustion_mid_hook_matches_interp_exactly() {
    let src = "policy hog\nlists 1\nhook pick_next {\n\
               let acc = 0\n\
               repeat 512 { acc = acc + counter(prev) }\n\
               pick idle }";
    let prog = load_str(src).unwrap();
    for budget in 1..=64u64 {
        assert_backends_agree("hog", &prog, budget, 24);
    }
}
