//! Corpus and robustness suites for the policy loader.
//!
//! Two corpora live under `policies/`: the bundled runnable programs
//! (every one must load) and `policies/bad/` (every one must be rejected
//! with a spanned diagnostic). On top of that, two property suites —
//! driven by the simulator's own deterministic [`SimRng`], no external
//! dependency — hammer the loader with random token soup and with
//! mutated copies of the real programs. The invariant under test is the
//! loader's contract: **every** input yields `Ok` or a `PolicyError`
//! with a 1-based span; nothing panics.

use std::fs;
use std::path::PathBuf;

use elsc_policy::{load_str, PolicyScheduler};
use elsc_sched_api::Scheduler;
use elsc_simcore::SimRng;

fn policies_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../policies")
}

fn read_corpus(sub: &str) -> Vec<(String, String)> {
    let dir = match sub {
        "" => policies_dir(),
        s => policies_dir().join(s),
    };
    let mut out: Vec<(String, String)> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .filter_map(|e| {
            let p = e.ok()?.path();
            if p.extension().is_some_and(|x| x == "pol") {
                let name = p.file_name().unwrap().to_string_lossy().into_owned();
                Some((name, fs::read_to_string(&p).expect("readable corpus file")))
            } else {
                None
            }
        })
        .collect();
    out.sort();
    out
}

#[test]
fn every_bundled_policy_loads_and_builds_a_scheduler() {
    let corpus = read_corpus("");
    assert!(corpus.len() >= 4, "reg/rr/table/starve must be bundled");
    for (name, src) in &corpus {
        let prog = load_str(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(prog.total_static_insns() > 0, "{name}: empty program?");
        for nr_cpus in [1usize, 2, 4] {
            let sched = PolicyScheduler::new(prog.clone(), nr_cpus);
            let info = sched.loaded_info().expect("policies report load info");
            assert!(info.name.starts_with("policy:"), "{name}");
            assert!(info.budget > 0, "{name}");
        }
    }
}

#[test]
fn every_malformed_fixture_is_rejected_with_a_span() {
    let corpus = read_corpus("bad");
    assert!(
        corpus.len() >= 6,
        "the malformed corpus must hold at least 6 fixtures, found {}",
        corpus.len()
    );
    for (name, src) in &corpus {
        let err = load_str(src)
            .err()
            .unwrap_or_else(|| panic!("{name}: must be rejected"));
        assert!(err.span.line >= 1, "{name}: spans are 1-based");
        assert!(err.span.col >= 1, "{name}: spans are 1-based");
        // The rendered diagnostic leads with line:col so the CLI can
        // prefix the file name.
        let text = err.to_string();
        assert!(
            text.starts_with(&format!("{}:{}:", err.span.line, err.span.col)),
            "{name}: diagnostic {text:?} must lead with its span"
        );
        assert!(!err.msg.is_empty(), "{name}: diagnostic has a message");
    }
}

// ---------------------------------------------------------------------
// Hand-rolled property suites (deterministic, dependency-free)
// ---------------------------------------------------------------------

/// The simulator's own deterministic generator drives the fuzzing
/// corpora too — one RNG for the whole workspace, same seeds, same
/// corpus forever. `usize` shim over [`SimRng::below`]'s `u64` surface.
fn below(rng: &mut SimRng, n: usize) -> usize {
    rng.below(n as u64) as usize
}

/// Vocabulary for random token soup: every keyword, function, and a few
/// literals/punctuators the language knows, so the soup regularly forms
/// *almost*-valid prefixes that reach deep into the parser.
const VOCAB: &[&str] = &[
    "policy",
    "lists",
    "hook",
    "enqueue",
    "pick_next",
    "tick",
    "on_fork",
    "let",
    "if",
    "else",
    "repeat",
    "foreach",
    "in",
    "break",
    "pick",
    "enqueue_front",
    "enqueue_back",
    "requeue_back",
    "set_counter",
    "recalc",
    "list",
    "counter",
    "priority",
    "goodness",
    "prev_goodness",
    "static_goodness",
    "is_rt",
    "rt_priority",
    "processor",
    "same_mm",
    "can_schedule",
    "runnable",
    "list_len",
    "list_head",
    "cpu",
    "prev",
    "idle",
    "task",
    "nil",
    "nr_cpus",
    "nr_lists",
    "nr_running",
    "{",
    "}",
    "(",
    ")",
    "=",
    "==",
    "!=",
    "<",
    "<=",
    ">",
    ">=",
    "+",
    "-",
    "*",
    "/",
    "%",
    ",",
    "0",
    "1",
    "7",
    "30",
    "1024",
    "9999999999999999999999",
    "x",
    "t",
    "g",
    "band",
    "percpu",
    "#",
    "\n",
];

#[test]
fn random_token_soup_never_panics_the_loader() {
    let mut rng = SimRng::new(0x0BAD_5EED_0BAD_5EED);
    for _ in 0..2000 {
        let len = 1 + below(&mut rng, 120);
        let mut src = String::new();
        // Half the soup starts with a plausible header so it survives the
        // first two lines and exercises the hook/statement grammar.
        if below(&mut rng, 2) == 0 {
            src.push_str("policy soup\nlists 4\n");
        }
        for _ in 0..len {
            src.push_str(VOCAB[below(&mut rng, VOCAB.len())]);
            src.push(' ');
        }
        // Contract: Ok or a spanned Err — never a panic.
        if let Err(e) = load_str(&src) {
            assert!(e.span.line >= 1 && e.span.col >= 1);
        }
    }
}

#[test]
fn random_byte_noise_never_panics_the_loader() {
    let mut rng = SimRng::new(0xFEED_FACE_CAFE_BEEF);
    for _ in 0..2000 {
        let len = below(&mut rng, 200);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        if let Err(e) = load_str(&src) {
            assert!(e.span.line >= 1 && e.span.col >= 1);
        }
    }
}

#[test]
fn mutated_real_programs_never_panic_the_loader() {
    let corpus = read_corpus("");
    let mut rng = SimRng::new(0x005E_ED0F_0BAD_CA5E);
    for (_, src) in &corpus {
        for _ in 0..400 {
            let mut s: Vec<char> = src.chars().collect();
            match below(&mut rng, 4) {
                // Delete a character.
                0 => {
                    let i = below(&mut rng, s.len());
                    s.remove(i);
                }
                // Swap two characters.
                1 => {
                    let i = below(&mut rng, s.len());
                    let j = below(&mut rng, s.len());
                    s.swap(i, j);
                }
                // Truncate.
                2 => s.truncate(below(&mut rng, s.len())),
                // Duplicate a random slice onto the end.
                _ => {
                    let i = below(&mut rng, s.len());
                    let j = i + below(&mut rng, s.len() - i);
                    let dup: Vec<char> = s[i..j].to_vec();
                    s.extend(dup);
                }
            }
            let mutated: String = s.into_iter().collect();
            // Ok (the mutation was benign — e.g. inside a comment) or a
            // spanned Err. Either way: no panic, and an accepted program
            // still carries verifier guarantees strong enough to build.
            match load_str(&mutated) {
                Ok(prog) => {
                    let _ = PolicyScheduler::new(prog, 2);
                }
                Err(e) => assert!(e.span.line >= 1 && e.span.col >= 1),
            }
        }
    }
}
