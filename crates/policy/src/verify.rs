//! The load-time verifier: the safety half of the policy runtime.
//!
//! A `.pol` program that passes [`verify`] is guaranteed to
//!
//! * be **well-typed**: every value is an int or a task handle, host
//!   functions are called with the right arity and argument types, and
//!   tasks are never used in arithmetic (only `==`/`!=` compare them);
//! * use only **hook-appropriate context**: `prev`/`goodness(..)` exist
//!   in `pick_next` only, `task` in `enqueue`/`tick`/`on_fork` only,
//!   `pick` cannot appear in `enqueue`, and so on;
//! * have **bounded execution**: `repeat` counts are literals (checked at
//!   parse), loop nesting is capped at [`MAX_LOOP_NESTING`], and each
//!   hook's *static* instruction count — with `repeat` bodies multiplied
//!   by their counts — fits [`MAX_HOOK_INSNS`]. (`foreach` is counted for
//!   one static iteration; the runtime per-decision budget covers the
//!   dynamic length.)
//! * **terminate usefully**: `pick_next` provably reaches a `pick` on
//!   every path, and a defined `enqueue` hook provably executes a
//!   placement, so the host never has to guess.
//!
//! Verification also fills [`Program::static_insns`], which the
//! interpreter reports through `PolicyLoadInfo` and the machine announces
//! on the observability bus.

use crate::ast::{BinOp, Block, Builtin, Expr, HookKind, HostFn, Program, Span, Stmt};
use crate::PolicyError;

/// Maximum loop (`repeat`/`foreach`) nesting depth.
pub const MAX_LOOP_NESTING: usize = 8;

/// Maximum static instruction count per hook (with `repeat` bodies
/// multiplied out).
pub const MAX_HOOK_INSNS: u64 = 4096;

/// A value's type: every expression is one of these two.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ty {
    /// A 64-bit signed integer.
    Int,
    /// A task handle (possibly `nil`).
    Task,
}

impl Ty {
    fn name(self) -> &'static str {
        match self {
            Ty::Int => "int",
            Ty::Task => "task",
        }
    }
}

/// Verifies `prog` and fills [`Program::static_insns`].
///
/// # Errors
///
/// The first violated rule as a spanned [`PolicyError`]; the program is
/// left unmodified on error except possibly partially-filled
/// `static_insns` (callers discard the program on `Err`).
pub fn verify(prog: &mut Program) -> Result<(), PolicyError> {
    if prog.hook(HookKind::PickNext).is_none() {
        return Err(PolicyError::new(
            Span::new(1, 1),
            "policy must define a 'pick_next' hook",
        ));
    }
    for hook in HookKind::ALL {
        let Some(block) = prog.hooks[hook.index()].clone() else {
            prog.static_insns[hook.index()] = 0;
            continue;
        };
        let mut cx = HookCx {
            hook,
            scopes: vec![Vec::new()],
            loop_depth: 0,
        };
        let cost = cx.block(&block)?;
        if cost > MAX_HOOK_INSNS {
            return Err(PolicyError::new(
                block.stmts.first().map_or(Span::new(1, 1), Stmt::span),
                format!(
                    "hook '{}' has a static cost of {cost} instructions, over the {MAX_HOOK_INSNS} cap",
                    hook.name()
                ),
            ));
        }
        prog.static_insns[hook.index()] = cost;
        match hook {
            HookKind::PickNext if !guarantees(&block, GuaranteeKind::Pick) => {
                return Err(PolicyError::new(
                    block.stmts.first().map_or(Span::new(1, 1), Stmt::span),
                    "'pick_next' must reach a 'pick' on every path \
                     (end the hook with an unconditional 'pick', e.g. 'pick idle')",
                ));
            }
            HookKind::Enqueue if !guarantees(&block, GuaranteeKind::Place) => {
                return Err(PolicyError::new(
                    block.stmts.first().map_or(Span::new(1, 1), Stmt::span),
                    "'enqueue' must execute an 'enqueue_front'/'enqueue_back' on every path",
                ));
            }
            _ => {}
        }
    }
    Ok(())
}

/// What a must-reach analysis is looking for.
#[derive(Clone, Copy, PartialEq, Eq)]
enum GuaranteeKind {
    Pick,
    Place,
}

/// Conservative must-reach analysis: does every execution of `block`
/// execute the wanted statement?
///
/// Only `Pick`/`Place` themselves and `if`/`else` pairs where *both*
/// branches guarantee count; loops never do (a `foreach` may iterate zero
/// times, a `repeat` body may `break`). Sound because `break` is only
/// legal inside loops, so the statements this analysis walks (top level
/// plus `if` branches, never loop bodies) are always reached in order.
fn guarantees(block: &Block, want: GuaranteeKind) -> bool {
    block.stmts.iter().any(|s| match s {
        Stmt::Pick { .. } => want == GuaranteeKind::Pick,
        Stmt::Place { .. } => want == GuaranteeKind::Place,
        Stmt::If {
            then,
            els: Some(els),
            ..
        } => guarantees(then, want) && guarantees(els, want),
        _ => false,
    })
}

/// Per-hook verification state: the scope stack and loop depth.
struct HookCx {
    hook: HookKind,
    /// Innermost scope last; each scope maps name -> type.
    scopes: Vec<Vec<(String, Ty)>>,
    loop_depth: usize,
}

impl HookCx {
    fn lookup(&self, name: &str) -> Option<Ty> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().rev().find(|(n, _)| n == name).map(|&(_, t)| t))
    }

    fn declare(&mut self, name: &str, ty: Ty, span: Span) -> Result<(), PolicyError> {
        if Builtin::from_name(name).is_some() || HostFn::from_name(name).is_some() {
            return Err(PolicyError::new(
                span,
                format!("'{name}' is a reserved name and cannot be redeclared"),
            ));
        }
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.iter().any(|(n, _)| n == name) {
            return Err(PolicyError::new(
                span,
                format!("'{name}' is already declared in this scope"),
            ));
        }
        scope.push((name.to_string(), ty));
        Ok(())
    }

    /// Checks a block, returning its static instruction cost.
    fn block(&mut self, block: &Block) -> Result<u64, PolicyError> {
        self.scopes.push(Vec::new());
        let mut cost: u64 = 0;
        for stmt in &block.stmts {
            cost = cost.saturating_add(self.stmt(stmt)?);
        }
        self.scopes.pop();
        Ok(cost)
    }

    /// Checks one statement, returning its static instruction cost
    /// (1 for the statement itself plus its sub-costs; `repeat` bodies
    /// are multiplied by the iteration count).
    fn stmt(&mut self, stmt: &Stmt) -> Result<u64, PolicyError> {
        match stmt {
            Stmt::Let { name, expr, span } => {
                let (ty, c) = self.expr(expr)?;
                self.declare(name, ty, *span)?;
                Ok(1 + c)
            }
            Stmt::Assign { name, expr, span } => {
                let Some(declared) = self.lookup(name) else {
                    return Err(PolicyError::new(
                        *span,
                        format!("assignment to undeclared variable '{name}' (use 'let')"),
                    ));
                };
                let (ty, c) = self.expr(expr)?;
                if ty != declared {
                    return Err(PolicyError::new(
                        *span,
                        format!(
                            "type mismatch: '{name}' is {} but the value is {}",
                            declared.name(),
                            ty.name()
                        ),
                    ));
                }
                Ok(1 + c)
            }
            Stmt::If {
                cond, then, els, ..
            } => {
                let (ty, c) = self.expr(cond)?;
                if ty != Ty::Int {
                    return Err(PolicyError::new(
                        cond.span(),
                        "'if' condition must be an int (use '== nil' to test tasks)",
                    ));
                }
                let ct = self.block(then)?;
                let ce = match els {
                    Some(b) => self.block(b)?,
                    None => 0,
                };
                Ok(1u64.saturating_add(c).saturating_add(ct).saturating_add(ce))
            }
            Stmt::Repeat { count, body, span } => {
                self.enter_loop(*span)?;
                let cb = self.block(body)?;
                self.loop_depth -= 1;
                Ok(1u64.saturating_add(u64::from(*count).saturating_mul(cb)))
            }
            Stmt::Foreach {
                var,
                list,
                body,
                span,
            } => {
                let (ty, c) = self.expr(list)?;
                if ty != Ty::Int {
                    return Err(PolicyError::new(
                        list.span(),
                        "'foreach' list index must be an int",
                    ));
                }
                self.enter_loop(*span)?;
                // The loop variable lives in the body's scope.
                self.scopes.push(Vec::new());
                self.declare(var, Ty::Task, *span)?;
                let mut cb: u64 = 0;
                for s in &body.stmts {
                    cb = cb.saturating_add(self.stmt(s)?);
                }
                self.scopes.pop();
                self.loop_depth -= 1;
                // Counted for one static iteration; the runtime budget
                // bounds the dynamic list length.
                Ok(1u64.saturating_add(c).saturating_add(cb))
            }
            Stmt::Break { span } => {
                if self.loop_depth == 0 {
                    return Err(PolicyError::new(*span, "'break' outside of a loop"));
                }
                Ok(1)
            }
            Stmt::Pick { expr, span } => {
                if self.hook != HookKind::PickNext {
                    return Err(PolicyError::new(
                        *span,
                        format!(
                            "'pick' is only allowed in 'pick_next' (this is '{}')",
                            self.hook.name()
                        ),
                    ));
                }
                let (ty, c) = self.expr(expr)?;
                if ty != Ty::Task {
                    return Err(PolicyError::new(
                        expr.span(),
                        "'pick' takes a task (e.g. 'pick idle'), not an int",
                    ));
                }
                Ok(1 + c)
            }
            Stmt::Place { list, span, .. } => {
                if self.hook != HookKind::Enqueue {
                    return Err(PolicyError::new(
                        *span,
                        format!(
                            "'enqueue_front'/'enqueue_back' are only allowed in 'enqueue' (this is '{}')",
                            self.hook.name()
                        ),
                    ));
                }
                let (ty, c) = self.expr(list)?;
                if ty != Ty::Int {
                    return Err(PolicyError::new(
                        list.span(),
                        "enqueue placement takes a list index (int)",
                    ));
                }
                Ok(1 + c)
            }
            Stmt::Requeue { task, span } => {
                if self.hook != HookKind::PickNext {
                    return Err(PolicyError::new(
                        *span,
                        format!(
                            "'requeue_back' is only allowed in 'pick_next' (this is '{}')",
                            self.hook.name()
                        ),
                    ));
                }
                let (ty, c) = self.expr(task)?;
                if ty != Ty::Task {
                    return Err(PolicyError::new(task.span(), "'requeue_back' takes a task"));
                }
                Ok(1 + c)
            }
            Stmt::SetCounter { task, value, span } => {
                if !matches!(self.hook, HookKind::Tick | HookKind::OnFork) {
                    return Err(PolicyError::new(
                        *span,
                        format!(
                            "'set_counter' is only allowed in 'tick'/'on_fork' (this is '{}')",
                            self.hook.name()
                        ),
                    ));
                }
                let (tt, ct) = self.expr(task)?;
                if tt != Ty::Task {
                    return Err(PolicyError::new(
                        task.span(),
                        "'set_counter' first argument must be a task",
                    ));
                }
                let (tv, cv) = self.expr(value)?;
                if tv != Ty::Int {
                    return Err(PolicyError::new(
                        value.span(),
                        "'set_counter' second argument must be an int",
                    ));
                }
                Ok(1 + ct + cv)
            }
            Stmt::Recalc { span } => {
                if self.hook != HookKind::PickNext {
                    return Err(PolicyError::new(
                        *span,
                        format!(
                            "'recalc' is only allowed in 'pick_next' (this is '{}')",
                            self.hook.name()
                        ),
                    ));
                }
                Ok(1)
            }
        }
    }

    fn enter_loop(&mut self, span: Span) -> Result<(), PolicyError> {
        if self.loop_depth >= MAX_LOOP_NESTING {
            return Err(PolicyError::new(
                span,
                format!("loop nesting deeper than {MAX_LOOP_NESTING}"),
            ));
        }
        self.loop_depth += 1;
        Ok(())
    }

    /// Checks one expression, returning its type and static cost (one per
    /// node).
    fn expr(&mut self, expr: &Expr) -> Result<(Ty, u64), PolicyError> {
        match expr {
            Expr::Int(..) => Ok((Ty::Int, 1)),
            Expr::Var(name, span) => match self.lookup(name) {
                Some(ty) => Ok((ty, 1)),
                None => Err(PolicyError::new(
                    *span,
                    format!("unknown variable '{name}'"),
                )),
            },
            Expr::Builtin(b, span) => {
                if !builtin_available(*b, self.hook) {
                    return Err(PolicyError::new(
                        *span,
                        format!(
                            "'{}' is not available in the '{}' hook",
                            b.name(),
                            self.hook.name()
                        ),
                    ));
                }
                Ok((builtin_ty(*b), 1))
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let (lt, lc) = self.expr(lhs)?;
                let (rt, rc) = self.expr(rhs)?;
                match op {
                    BinOp::Eq | BinOp::Ne => {
                        if lt != rt {
                            return Err(PolicyError::new(
                                *span,
                                format!("cannot compare {} with {}", lt.name(), rt.name()),
                            ));
                        }
                    }
                    _ => {
                        if lt != Ty::Int || rt != Ty::Int {
                            return Err(PolicyError::new(
                                *span,
                                "tasks support only '=='/'!=' (arithmetic and ordering are int-only)",
                            ));
                        }
                    }
                }
                Ok((Ty::Int, 1 + lc + rc))
            }
            Expr::Call { func, args, span } => {
                if pick_next_only(*func) && self.hook != HookKind::PickNext {
                    return Err(PolicyError::new(
                        *span,
                        format!(
                            "'{}' is only available in 'pick_next' (this is '{}')",
                            func.name(),
                            self.hook.name()
                        ),
                    ));
                }
                let params = fn_params(*func);
                if args.len() != params.len() {
                    return Err(PolicyError::new(
                        *span,
                        format!(
                            "'{}' takes {} argument{}, got {}",
                            func.name(),
                            params.len(),
                            if params.len() == 1 { "" } else { "s" },
                            args.len()
                        ),
                    ));
                }
                let mut cost: u64 = 1;
                for (arg, want) in args.iter().zip(params) {
                    let (ty, c) = self.expr(arg)?;
                    if ty != *want {
                        return Err(PolicyError::new(
                            arg.span(),
                            format!(
                                "'{}' expects a {} argument, got {}",
                                func.name(),
                                want.name(),
                                ty.name()
                            ),
                        ));
                    }
                    cost += c;
                }
                Ok((fn_ret(*func), cost))
            }
        }
    }
}

/// Which builtins each hook may read.
fn builtin_available(b: Builtin, hook: HookKind) -> bool {
    match b {
        Builtin::Nil | Builtin::NrCpus | Builtin::NrLists | Builtin::NrRunning => true,
        Builtin::Cpu => matches!(hook, HookKind::PickNext | HookKind::Tick),
        Builtin::Prev | Builtin::Idle => hook == HookKind::PickNext,
        Builtin::Task => matches!(hook, HookKind::Enqueue | HookKind::Tick | HookKind::OnFork),
    }
}

fn builtin_ty(b: Builtin) -> Ty {
    match b {
        Builtin::Prev | Builtin::Idle | Builtin::Task | Builtin::Nil => Ty::Task,
        Builtin::Cpu | Builtin::NrCpus | Builtin::NrLists | Builtin::NrRunning => Ty::Int,
    }
}

/// Host functions that only make sense during a `pick_next` decision
/// (they read `prev`/the deciding CPU).
fn pick_next_only(f: HostFn) -> bool {
    matches!(
        f,
        HostFn::Goodness | HostFn::PrevGoodness | HostFn::SameMm | HostFn::CanSchedule
    )
}

fn fn_params(f: HostFn) -> &'static [Ty] {
    match f {
        HostFn::PrevGoodness => &[],
        HostFn::ListLen | HostFn::ListHead => &[Ty::Int],
        _ => &[Ty::Task],
    }
}

fn fn_ret(f: HostFn) -> Ty {
    match f {
        HostFn::ListHead => Ty::Task,
        _ => Ty::Int,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn check(src: &str) -> Result<Program, PolicyError> {
        let mut p = parse(src)?;
        verify(&mut p)?;
        Ok(p)
    }

    #[test]
    fn minimal_program_verifies_and_costs_are_filled() {
        let p = check("policy p\nlists 1\nhook pick_next { pick idle }").unwrap();
        assert_eq!(p.static_insns[HookKind::PickNext.index()], 2); // pick + idle
        assert_eq!(p.static_insns[HookKind::Enqueue.index()], 0);
    }

    #[test]
    fn pick_next_is_mandatory() {
        let err = check("policy p\nlists 1\nhook enqueue { enqueue_front(0) }").unwrap_err();
        assert!(err.msg.contains("pick_next"), "{}", err.msg);
    }

    #[test]
    fn pick_next_without_guaranteed_pick_is_rejected() {
        let err = check("policy p\nlists 1\nhook pick_next { if 1 { pick idle } }").unwrap_err();
        assert!(err.msg.contains("every path"), "{}", err.msg);
    }

    #[test]
    fn if_else_both_picking_is_accepted() {
        check(
            "policy p\nlists 1\nhook pick_next { if nr_running > 0 { pick idle } else { pick prev } }",
        )
        .unwrap();
    }

    #[test]
    fn enqueue_must_place() {
        let err =
            check("policy p\nlists 1\nhook enqueue { let x = 1 }\nhook pick_next { pick idle }")
                .unwrap_err();
        assert!(err.msg.contains("enqueue_front"), "{}", err.msg);
    }

    #[test]
    fn pick_outside_pick_next_is_rejected() {
        let err =
            check("policy p\nlists 1\nhook enqueue { pick task }\nhook pick_next { pick idle }")
                .unwrap_err();
        assert!(
            err.msg.contains("only allowed in 'pick_next'"),
            "{}",
            err.msg
        );
    }

    #[test]
    fn place_outside_enqueue_is_rejected() {
        let err =
            check("policy p\nlists 1\nhook pick_next { enqueue_back(0) pick idle }").unwrap_err();
        assert!(err.msg.contains("only allowed in 'enqueue'"), "{}", err.msg);
    }

    #[test]
    fn goodness_outside_pick_next_is_rejected() {
        let err = check(
            "policy p\nlists 1\nhook enqueue { let g = goodness(task) enqueue_front(0) }\nhook pick_next { pick idle }",
        )
        .unwrap_err();
        assert!(err.msg.contains("goodness"), "{}", err.msg);
    }

    #[test]
    fn prev_is_pick_next_only() {
        let err = check(
            "policy p\nlists 1\nhook tick { set_counter(prev, 1) }\nhook pick_next { pick idle }",
        )
        .unwrap_err();
        assert!(err.msg.contains("not available"), "{}", err.msg);
    }

    #[test]
    fn unknown_variable_is_rejected() {
        let err = check("policy p\nlists 1\nhook pick_next { pick best }").unwrap_err();
        assert!(err.msg.contains("unknown variable"), "{}", err.msg);
    }

    #[test]
    fn assign_requires_let() {
        let err = check("policy p\nlists 1\nhook pick_next { x = 1 pick idle }").unwrap_err();
        assert!(err.msg.contains("undeclared"), "{}", err.msg);
    }

    #[test]
    fn assignment_type_must_match() {
        let err = check("policy p\nlists 1\nhook pick_next { let x = 1 x = idle pick idle }")
            .unwrap_err();
        assert!(err.msg.contains("type mismatch"), "{}", err.msg);
    }

    #[test]
    fn tasks_cannot_be_ordered_or_added() {
        let err = check("policy p\nlists 1\nhook pick_next { if prev < idle { } pick idle }")
            .unwrap_err();
        assert!(err.msg.contains("int-only"), "{}", err.msg);
        let err2 =
            check("policy p\nlists 1\nhook pick_next { let x = prev + 1 pick idle }").unwrap_err();
        assert!(err2.msg.contains("int-only"), "{}", err2.msg);
    }

    #[test]
    fn task_equality_is_fine_mixed_is_not() {
        check("policy p\nlists 1\nhook pick_next { if prev == idle { } pick idle }").unwrap();
        let err =
            check("policy p\nlists 1\nhook pick_next { if prev == 1 { } pick idle }").unwrap_err();
        assert!(err.msg.contains("cannot compare"), "{}", err.msg);
    }

    #[test]
    fn arity_and_argument_types_are_checked() {
        let err = check("policy p\nlists 1\nhook pick_next { let g = goodness() pick idle }")
            .unwrap_err();
        assert!(err.msg.contains("takes 1 argument"), "{}", err.msg);
        let err2 = check("policy p\nlists 1\nhook pick_next { let g = goodness(3) pick idle }")
            .unwrap_err();
        assert!(err2.msg.contains("expects a task"), "{}", err2.msg);
        let err3 = check("policy p\nlists 1\nhook pick_next { let h = list_head(prev) pick idle }")
            .unwrap_err();
        assert!(
            err3.msg.contains("expects a int") || err3.msg.contains("int argument"),
            "{}",
            err3.msg
        );
    }

    #[test]
    fn break_outside_loop_is_rejected() {
        let err = check("policy p\nlists 1\nhook pick_next { break pick idle }").unwrap_err();
        assert!(err.msg.contains("outside of a loop"), "{}", err.msg);
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let mut src = String::from("policy p\nlists 1\nhook pick_next { ");
        for _ in 0..9 {
            src.push_str("repeat 2 { ");
        }
        src.push_str("let x = 1 ");
        for _ in 0..9 {
            src.push_str("} ");
        }
        src.push_str("pick idle }");
        let err = check(&src).unwrap_err();
        assert!(err.msg.contains("nesting"), "{}", err.msg);
    }

    #[test]
    fn static_budget_blowout_is_rejected_without_overflow() {
        let src = "policy p\nlists 1\nhook pick_next {\n\
                   repeat 1024 { repeat 1024 { repeat 1024 { let x = 1 } } }\n\
                   pick idle }";
        let err = check(src).unwrap_err();
        assert!(err.msg.contains("static cost"), "{}", err.msg);
    }

    #[test]
    fn builtins_cannot_be_shadowed() {
        let err =
            check("policy p\nlists 1\nhook pick_next { let prev = idle pick idle }").unwrap_err();
        assert!(err.msg.contains("reserved"), "{}", err.msg);
        let err2 = check(
            "policy p\nlists 1\nhook pick_next { foreach goodness in list(0) { } pick idle }",
        )
        .unwrap_err();
        assert!(err2.msg.contains("reserved"), "{}", err2.msg);
    }

    #[test]
    fn set_counter_hook_gating() {
        check(
            "policy p\nlists 1\nhook tick { set_counter(task, 2) }\nhook pick_next { pick idle }",
        )
        .unwrap();
        let err = check("policy p\nlists 1\nhook pick_next { set_counter(idle, 2) pick idle }")
            .unwrap_err();
        assert!(err.msg.contains("tick"), "{}", err.msg);
    }

    #[test]
    fn repeat_cost_is_multiplied() {
        let p = check("policy p\nlists 1\nhook pick_next { repeat 10 { let x = 1 } pick idle }")
            .unwrap();
        // repeat(1) + 10 * (let(1) + int(1)) + pick(1) + idle(1) = 23
        assert_eq!(p.static_insns[HookKind::PickNext.index()], 23);
    }

    #[test]
    fn shadowing_in_inner_scope_is_allowed_same_scope_is_not() {
        check("policy p\nlists 1\nhook pick_next { let x = 1 if 1 { let x = 2 } pick idle }")
            .unwrap();
        let err = check("policy p\nlists 1\nhook pick_next { let x = 1 let x = 2 pick idle }")
            .unwrap_err();
        assert!(err.msg.contains("already declared"), "{}", err.msg);
    }
}
