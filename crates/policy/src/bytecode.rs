//! The register bytecode a verified `.pol` program compiles to.
//!
//! The compiler ([`crate::compile()`]) lowers each hook body to one
//! [`Chunk`]: a flat array of fixed-width instructions over a register
//! file sized at compile time, plus an `i64` constant pool. The VM
//! ([`crate::vm`]) executes chunks with exactly the tree-walking
//! interpreter's observable semantics — see the cost-model notes on
//! [`Insn::cost`] for how charge-for-charge parity is kept.
//!
//! Register-file layout: registers `0..8` are pre-loaded with the eight
//! context builtins in [`crate::ast::Builtin`] declaration order
//! (`cpu`, `prev`, `idle`, `task`, `nil`, `nr_cpus`, `nr_lists`,
//! `nr_running`) — they are invocation constants, so a builtin
//! reference compiles to a plain register read. Locals and expression
//! temporaries live above [`BUILTIN_REGS`].

use crate::ast::{BinOp, HookKind, HostFn};

/// Registers reserved for the pre-loaded context builtins.
pub const BUILTIN_REGS: u16 = 8;

/// Sentinel operand: "no argument register" (argless host calls).
pub const NO_ARG: u16 = u16::MAX;

/// One bytecode operation. Operand meaning is positional over the four
/// `u16` fields of [`Insn`] (`a`, `b`, `c`, `d`); see each variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// `r[a] = consts[b]` (an integer literal).
    Const,
    /// `r[a] = r[b]`.
    Mov,
    /// `r[a] = binop(BINOPS[d], r[b], r[c])`.
    Bin,
    /// Unconditional jump to code index `a`.
    Jmp,
    /// Jump to code index `b` when `r[a]` is integer zero.
    Jz,
    /// `r[a] = hostcall(HOSTFNS[d], r[b])`; `b == NO_ARG` for argless
    /// calls (`prev_goodness()`).
    Call,
    /// `r[a] = consts[b]` — initialise a `repeat` loop counter.
    RepeatInit,
    /// `r[a] -= 1`; jump back to code index `b` while `r[a] > 0`.
    RepeatNext,
    /// Snapshot run-queue list `r[b]` (index taken modulo `nr_lists`)
    /// into iterator slot `a`.
    ForBegin,
    /// Load the next snapshot task of iterator slot `a` into `r[b]`, or
    /// jump to code index `c` when the snapshot is exhausted.
    ForNext,
    /// End the hook picking `r[a]` (a task value).
    Pick,
    /// Record placement: list `r[a]` (modulo `nr_lists`), front when
    /// `b == 1`, back when `b == 0`. The last placement executed wins.
    Place,
    /// Append task `r[a]` to the deferred `requeue_back` set (`nil` is
    /// ignored, like the interpreter).
    Requeue,
    /// `set_counter(r[a], r[b])`, clamped to `[0, 2 * priority]`.
    SetCounter,
    /// Run the system-wide counter recalculation (stats + events +
    /// `RecalcPerTask` charges, exactly like the native schedulers).
    Recalc,
    /// End of the hook body (no pick executed).
    Halt,
    /// Superinstruction — fused scan-filter guard: evaluate the pure
    /// predicate `HOSTFNS[d]` (`can_schedule` or `runnable`) on task
    /// `r[a]` and jump to code index `b` when it is false. Lowered from
    /// `if can_schedule(t) { ... }` with no `else`.
    ScanFilter,
    /// Superinstruction — fused goodness-compare-update, lowered from
    /// `if X > Y { Y = X  Z = W }`: when `r[a] > r[b]` (both ints),
    /// charge 4 more instructions and set `r[b] = r[a]`, `r[c] = r[d]`.
    GtUpdate2,
    /// Superinstruction — fused conditional pick, lowered from
    /// `if C != 0 { pick B }`: when `r[a] != 0`, charge 2 more
    /// instructions and end the hook picking `r[b]`.
    PickIfNe0,
    /// Superinstruction — the entire hot `pick_next` selection loop
    /// (list-scan + compare-goodness + conditional-pick bookkeeping)
    /// fused into one native walk. Lowered from the exact shape
    ///
    /// ```text
    /// foreach t in list(L) {
    ///     if can_schedule(t) {        # or runnable(t)
    ///         let g = goodness(t)     # any one-arg host fn on t
    ///         if g > C { C = g  B = t }
    ///     }
    /// }
    /// ```
    ///
    /// Operands: `a` = list-index register, `b` = best-score register
    /// (`C`), `c` = winner register (`B`), `d` = filter fn index in the
    /// low byte and score fn index in the high byte (both [`HOSTFNS`]).
    /// Per examined task the VM charges 3 (filter), then 3 more before
    /// the score call, then 4 after it, then 4 when a new best is
    /// recorded — the interpreter's exact per-node schedule, with the
    /// budget checked at every side-effect boundary.
    ScanBest,
}

impl Op {
    /// Fixed-width disassembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Const => "const",
            Op::Mov => "mov",
            Op::Bin => "bin",
            Op::Jmp => "jmp",
            Op::Jz => "jz",
            Op::Call => "call",
            Op::RepeatInit => "repeat.init",
            Op::RepeatNext => "repeat.next",
            Op::ForBegin => "for.begin",
            Op::ForNext => "for.next",
            Op::Pick => "pick",
            Op::Place => "place",
            Op::Requeue => "requeue",
            Op::SetCounter => "set_counter",
            Op::Recalc => "recalc",
            Op::Halt => "halt",
            Op::ScanFilter => "scan.filter",
            Op::GtUpdate2 => "gt.update2",
            Op::PickIfNe0 => "pick.ifne0",
            Op::ScanBest => "scan.best",
        }
    }
}

/// Binary operators by bytecode index (the `d` operand of [`Op::Bin`]).
pub const BINOPS: [BinOp; 11] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Mod,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
];

/// Host functions by bytecode index (the `d` operand of [`Op::Call`]
/// and [`Op::ScanFilter`]).
pub const HOSTFNS: [HostFn; 14] = [
    HostFn::Goodness,
    HostFn::PrevGoodness,
    HostFn::StaticGoodness,
    HostFn::Counter,
    HostFn::Priority,
    HostFn::RtPriority,
    HostFn::IsRt,
    HostFn::Processor,
    HostFn::SameMm,
    HostFn::HasCpu,
    HostFn::Runnable,
    HostFn::CanSchedule,
    HostFn::ListLen,
    HostFn::ListHead,
];

/// Bytecode index of a binary operator (inverse of [`BINOPS`]).
pub(crate) fn binop_index(op: BinOp) -> u16 {
    BINOPS
        .iter()
        .position(|&o| o == op)
        .expect("all ops listed") as u16
}

/// Bytecode index of a host function (inverse of [`HOSTFNS`]).
pub(crate) fn hostfn_index(f: HostFn) -> u16 {
    HOSTFNS
        .iter()
        .position(|&o| o == f)
        .expect("all fns listed") as u16
}

/// One fixed-width instruction: an opcode, a batched instruction-budget
/// charge, and four positional operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Insn {
    /// The operation.
    pub op: Op,
    /// Interpreter-equivalent instruction charge for reaching this op:
    /// the number of IR nodes the tree-walking interpreter would have
    /// charged on the straight-line path since the previous emitted
    /// instruction, batched here. The VM adds `cost` to its instruction
    /// count *before* executing the op; because only whole instructions
    /// carry side effects, batching pure-node charges this way keeps
    /// the VM charge-for-charge identical to the interpreter at every
    /// observable point (including the exact decision where a budget
    /// blowout aborts the hook).
    pub cost: u16,
    /// First operand.
    pub a: u16,
    /// Second operand.
    pub b: u16,
    /// Third operand.
    pub c: u16,
    /// Fourth operand.
    pub d: u16,
}

/// The compiled form of one hook body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// The instruction stream; always ends with a reachable [`Op::Halt`].
    pub code: Vec<Insn>,
    /// Integer constant pool (literals and `repeat` counts, deduplicated).
    pub consts: Vec<i64>,
    /// Register-file size (builtin registers included).
    pub num_regs: u16,
    /// Foreach iterator slots needed (bounded by the verifier's loop
    /// nesting cap).
    pub num_iters: u8,
}

impl Chunk {
    /// Renders the chunk as human-readable assembly, one instruction
    /// per line: `index: mnemonic operands ; cost N`. The exact format
    /// is shown (and kept in sync by doctest) in
    /// `docs/POLICY.md` — see [`crate::compile()`] for a full example.
    pub fn disasm(&self) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        for (pc, i) in self.code.iter().enumerate() {
            let operands = match i.op {
                Op::Const | Op::RepeatInit => {
                    format!("r{} <- {}", i.a, self.consts[i.b as usize])
                }
                Op::Mov => format!("r{} <- r{}", i.a, i.b),
                Op::Bin => format!("r{} <- r{} {:?} r{}", i.a, i.b, BINOPS[i.d as usize], i.c),
                Op::Jmp => format!("-> {}", i.a),
                Op::Jz => format!("r{} -> {}", i.a, i.b),
                Op::Call => {
                    let f = HOSTFNS[i.d as usize].name();
                    if i.b == NO_ARG {
                        format!("r{} <- {f}()", i.a)
                    } else {
                        format!("r{} <- {f}(r{})", i.a, i.b)
                    }
                }
                Op::RepeatNext => format!("r{} -> {}", i.a, i.b),
                Op::ForBegin => format!("iter{} list r{}", i.a, i.b),
                Op::ForNext => format!("iter{} r{} else -> {}", i.a, i.b, i.c),
                Op::Pick | Op::Requeue => format!("r{}", i.a),
                Op::Place => format!("list r{} {}", i.a, if i.b == 1 { "front" } else { "back" }),
                Op::SetCounter => format!("r{} <- r{}", i.a, i.b),
                Op::Recalc | Op::Halt => String::new(),
                Op::ScanFilter => {
                    format!("{}(r{}) else -> {}", HOSTFNS[i.d as usize].name(), i.a, i.b)
                }
                Op::GtUpdate2 => format!(
                    "r{} > r{} ? r{} r{} <- r{} r{}",
                    i.a, i.b, i.b, i.c, i.a, i.d
                ),
                Op::PickIfNe0 => format!("r{} != 0 ? pick r{}", i.a, i.b),
                Op::ScanBest => format!(
                    "list r{} {}/{} best r{} win r{}",
                    i.a,
                    HOSTFNS[(i.d & 0xff) as usize].name(),
                    HOSTFNS[(i.d >> 8) as usize].name(),
                    i.b,
                    i.c
                ),
            };
            let _ = writeln!(
                out,
                "{pc:03}: {:<12} {:<28} ; cost {}",
                i.op.mnemonic(),
                operands,
                i.cost
            );
        }
        out
    }
}

/// A fully compiled policy: one chunk per defined hook.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledPolicy {
    /// Chunks indexed by [`HookKind::index`]; `None` = hook not defined.
    pub(crate) chunks: [Option<Chunk>; 4],
}

impl CompiledPolicy {
    /// The compiled body of `hook`, if the program defines it.
    pub fn chunk(&self, hook: HookKind) -> Option<&Chunk> {
        self.chunks[hook.index()].as_ref()
    }
}
