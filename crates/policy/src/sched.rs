//! The cycle-charged interpreter and the [`PolicyScheduler`] bridge.
//!
//! A verified [`Program`] runs behind the ordinary
//! [`Scheduler`] trait: the host performs the parts of `schedule()` the
//! kernel performs outside the selection loop (blocking `prev` leaves
//! the queue, `SCHED_RR` quantum refresh, `SCHED_YIELD` consumption,
//! the `has_cpu` hand-over), and the `.pol` hooks decide *ordering and
//! selection* only.
//!
//! Safety at run time rests on three mechanisms:
//!
//! * **Cycle charging** — every executed IR node charges one
//!   `CostKind::PolicyInsn` into the decision's cycle meter, so
//!   interpreted policies pay a realistic overhead in every figure.
//! * **The instruction budget** — even a verified hook is bounded by a
//!   per-decision budget ([`DEFAULT_BUDGET`] unless overridden). A
//!   blowout aborts the hook, substitutes a safe default decision, and
//!   records a [`PolicyViolation::BudgetExhausted`] for the machine's
//!   watchdog.
//! * **Pick validation** — whatever `pick_next` returns is checked
//!   against the kernel's legality rules (runnable, on the queue, not
//!   running elsewhere); an illegal pick becomes
//!   [`PolicyViolation::BadPick`] plus a safe fallback.
//!
//! The machine polls [`Scheduler::take_violation`] after every decision
//! and ejects a violating policy (see the machine crate's watchdog).

use elsc_ktask::recalc::recalculate_counters;
use elsc_ktask::{CpuId, Lists, MmId, SchedClass, TaskTable, Tid};
use elsc_obs::ObsEvent;
use elsc_sched_api::{
    goodness_ignoring_yield, PolicyBackend, PolicyLoadInfo, PolicyViolation, SchedCtx, Scheduler,
    IDLE_GOODNESS,
};
use elsc_simcore::CostKind;

use crate::ast::{BinOp, Block, Builtin, Expr, HookKind, HostFn, Program, Stmt};
use crate::bytecode::CompiledPolicy;
use crate::vm::{self, VmState};
use crate::PolicyError;

/// Default per-decision instruction budget: generous for real policies
/// (the bundled `reg.pol` uses a few dozen instructions per decision
/// plus a handful per scanned task) while still bounding a runaway
/// `foreach`-over-everything hook to something finite.
pub const DEFAULT_BUDGET: u64 = 65_536;

/// One runtime value: the IR is two-typed. Shared by the interpreter
/// and the bytecode VM (whose registers hold `Val`s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Val {
    /// A 64-bit integer.
    Int(i64),
    /// A task handle; `None` is `nil`.
    Task(Option<Tid>),
}

/// How a statement sequence ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Flow {
    /// Ran to completion.
    Normal,
    /// A `break` is unwinding to the innermost loop.
    Break,
    /// A `pick` ended the hook.
    Picked,
}

/// The per-invocation context a hook runs against. Shared by both
/// backends.
pub(crate) struct Env {
    pub(crate) cpu: CpuId,
    pub(crate) prev: Option<Tid>,
    pub(crate) idle: Option<Tid>,
    pub(crate) task: Option<Tid>,
    pub(crate) prev_mm: MmId,
    pub(crate) prev_yielded: bool,
    pub(crate) nr_running: usize,
    pub(crate) nr_cpus: usize,
}

/// What one hook invocation produced (either backend).
pub(crate) struct HookRun {
    /// IR nodes executed (also charged as `PolicyInsn` by the caller).
    pub(crate) insns: u64,
    /// `Some(t)` if a `pick` executed (`t == None` means `pick nil`).
    pub(crate) picked: Option<Option<Tid>>,
    /// Last `enqueue_front`/`enqueue_back` executed: (list, front).
    pub(crate) placed: Option<(usize, bool)>,
    /// Tasks to rotate to the back of their lists after the decision.
    pub(crate) requeued: Vec<Tid>,
    /// Why the hook aborted, if it did.
    pub(crate) violation: Option<PolicyViolation>,
}

impl HookRun {
    /// The no-op run of an undefined hook.
    pub(crate) fn empty() -> HookRun {
        HookRun {
            insns: 0,
            picked: None,
            placed: None,
            requeued: Vec::new(),
            violation: None,
        }
    }
}

/// Runs `hook` of `prog` on the selected backend (no-op if the hook is
/// not defined). The interpreter is the reference backend; the VM is
/// dispatched when a compiled form exists.
#[allow(clippy::too_many_arguments)]
fn run_hook(
    prog: &Program,
    compiled: Option<&CompiledPolicy>,
    backend: PolicyBackend,
    vm_state: &mut VmState,
    hook: HookKind,
    lists: &Lists,
    ctx: &mut SchedCtx<'_>,
    env: Env,
    budget: u64,
) -> HookRun {
    if backend == PolicyBackend::Vm {
        if let Some(cp) = compiled {
            // The compiler emits a chunk exactly for each defined hook.
            return match cp.chunk(hook) {
                Some(chunk) => vm::run_chunk(chunk, lists, ctx, env, budget, vm_state),
                None => HookRun::empty(),
            };
        }
    }
    let Some(block) = prog.hook(hook) else {
        return HookRun::empty();
    };
    let mut interp = Interp {
        ctx,
        lists,
        env,
        scopes: vec![Vec::new()],
        insns: 0,
        budget,
        picked: None,
        placed: None,
        requeued: Vec::new(),
    };
    let violation = interp.exec_block(block).err();
    HookRun {
        insns: interp.insns,
        picked: interp.picked,
        placed: interp.placed,
        requeued: interp.requeued,
        violation,
    }
}

/// The tree-walking interpreter for one hook invocation.
struct Interp<'a, 'p, 'c> {
    ctx: &'a mut SchedCtx<'c>,
    lists: &'a Lists,
    env: Env,
    /// Innermost scope last; names borrow from the program.
    scopes: Vec<Vec<(&'p str, Val)>>,
    insns: u64,
    budget: u64,
    picked: Option<Option<Tid>>,
    placed: Option<(usize, bool)>,
    requeued: Vec<Tid>,
}

impl<'a, 'p, 'c> Interp<'a, 'p, 'c> {
    /// Counts one executed IR node against the budget.
    fn charge(&mut self) -> Result<(), PolicyViolation> {
        self.insns += 1;
        if self.insns > self.budget {
            return Err(PolicyViolation::BudgetExhausted {
                insns: self.insns,
                budget: self.budget,
            });
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<Val> {
        self.scopes
            .iter()
            .rev()
            .find_map(|sc| sc.iter().rev().find(|(n, _)| *n == name).map(|&(_, v)| v))
    }

    fn assign(&mut self, name: &str, v: Val) -> Result<(), PolicyViolation> {
        for sc in self.scopes.iter_mut().rev() {
            if let Some(slot) = sc.iter_mut().rev().find(|(n, _)| *n == name) {
                slot.1 = v;
                return Ok(());
            }
        }
        // The verifier proved every assignment target exists; reaching
        // this means the interpreter's own state is wrong.
        Err(PolicyViolation::StateCorrupt)
    }

    fn exec_block(&mut self, block: &'p Block) -> Result<Flow, PolicyViolation> {
        self.scopes.push(Vec::new());
        let mut flow = Flow::Normal;
        for s in &block.stmts {
            flow = self.exec_stmt(s)?;
            if flow != Flow::Normal {
                break;
            }
        }
        self.scopes.pop();
        Ok(flow)
    }

    fn exec_stmt(&mut self, s: &'p Stmt) -> Result<Flow, PolicyViolation> {
        self.charge()?;
        match s {
            Stmt::Let { name, expr, .. } => {
                let v = self.eval(expr)?;
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .push((name.as_str(), v));
                Ok(Flow::Normal)
            }
            Stmt::Assign { name, expr, .. } => {
                let v = self.eval(expr)?;
                self.assign(name, v)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond, then, els, ..
            } => {
                let c = self.eval_int(cond)?;
                if c != 0 {
                    self.exec_block(then)
                } else if let Some(els) = els {
                    self.exec_block(els)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::Repeat { count, body, .. } => {
                for _ in 0..*count {
                    match self.exec_block(body)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        Flow::Picked => return Ok(Flow::Picked),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Foreach {
                var, list, body, ..
            } => {
                let h = {
                    let i = self.eval_int(list)?;
                    wrap_list(i, self.lists.nr_lists())
                };
                // Snapshot: hooks never mutate lists (placement and
                // rotation are deferred to the host), so the walk order
                // is the list order at hook entry.
                let snapshot: Vec<Tid> = self
                    .lists
                    .collect(self.ctx.tasks, h)
                    .into_iter()
                    .map(|i| self.ctx.tasks.by_index(i as usize).tid)
                    .collect();
                for tid in snapshot {
                    self.scopes.push(vec![(var.as_str(), Val::Task(Some(tid)))]);
                    let mut flow = Flow::Normal;
                    for s in &body.stmts {
                        flow = self.exec_stmt(s)?;
                        if flow != Flow::Normal {
                            break;
                        }
                    }
                    self.scopes.pop();
                    match flow {
                        Flow::Normal => {}
                        Flow::Break => return Ok(Flow::Normal),
                        Flow::Picked => return Ok(Flow::Picked),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Break { .. } => Ok(Flow::Break),
            Stmt::Pick { expr, .. } => {
                let v = self.eval_task(expr)?;
                self.picked = Some(v);
                Ok(Flow::Picked)
            }
            Stmt::Place { front, list, .. } => {
                let i = self.eval_int(list)?;
                // The last placement executed wins.
                self.placed = Some((wrap_list(i, self.lists.nr_lists()), *front));
                Ok(Flow::Normal)
            }
            Stmt::Requeue { task, .. } => {
                if let Some(tid) = self.eval_task(task)? {
                    self.requeued.push(tid);
                }
                Ok(Flow::Normal)
            }
            Stmt::SetCounter { task, value, .. } => {
                let t = self.eval_task(task)?;
                let v = self.eval_int(value)?;
                set_counter_effect(self.ctx, t, v);
                Ok(Flow::Normal)
            }
            Stmt::Recalc { .. } => {
                recalc_effect(self.ctx, &self.env);
                Ok(Flow::Normal)
            }
        }
    }

    fn eval_int(&mut self, e: &'p Expr) -> Result<i64, PolicyViolation> {
        match self.eval(e)? {
            Val::Int(n) => Ok(n),
            Val::Task(_) => Err(PolicyViolation::StateCorrupt),
        }
    }

    fn eval_task(&mut self, e: &'p Expr) -> Result<Option<Tid>, PolicyViolation> {
        match self.eval(e)? {
            Val::Task(t) => Ok(t),
            Val::Int(_) => Err(PolicyViolation::StateCorrupt),
        }
    }

    fn eval(&mut self, e: &'p Expr) -> Result<Val, PolicyViolation> {
        self.charge()?;
        match e {
            Expr::Int(n, _) => Ok(Val::Int(*n)),
            Expr::Var(name, _) => self.lookup(name).ok_or(PolicyViolation::StateCorrupt),
            Expr::Builtin(b, _) => Ok(self.builtin(*b)),
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                binop(*op, l, r)
            }
            Expr::Call { func, args, .. } => {
                let arg = match args.first() {
                    Some(a) => Some(self.eval(a)?),
                    None => None,
                };
                Ok(host_call(self.ctx, self.lists, &mut self.env, *func, arg))
            }
        }
    }

    fn builtin(&self, b: Builtin) -> Val {
        match b {
            Builtin::Cpu => Val::Int(self.env.cpu as i64),
            Builtin::Prev => Val::Task(self.env.prev),
            Builtin::Idle => Val::Task(self.env.idle),
            Builtin::Task => Val::Task(self.env.task),
            Builtin::Nil => Val::Task(None),
            Builtin::NrCpus => Val::Int(self.env.nr_cpus as i64),
            Builtin::NrLists => Val::Int(self.lists.nr_lists() as i64),
            Builtin::NrRunning => Val::Int(self.env.nr_running as i64),
        }
    }
}

/// Maps a list-index value into the bank (total semantics: modulo).
pub(crate) fn wrap_list(i: i64, nr_lists: usize) -> usize {
    i.rem_euclid(nr_lists as i64) as usize
}

/// The `set_counter(task, value)` effect, shared by both backends:
/// clamped to `[0, 2 * priority]`, `nil` ignored.
pub(crate) fn set_counter_effect(ctx: &mut SchedCtx<'_>, t: Option<Tid>, v: i64) {
    if let Some(tid) = t {
        let mut task = ctx.tasks.task_mut(tid);
        let cap = i64::from(task.priority).saturating_mul(2);
        task.counter = v.clamp(0, cap) as i32;
    }
}

/// The `recalc()` effect, shared by both backends. Mirrors the native
/// schedulers' recalculation loop decision-for-decision, including
/// stats and events.
pub(crate) fn recalc_effect(ctx: &mut SchedCtx<'_>, env: &Env) {
    let cpu = env.cpu;
    ctx.stats.cpu_mut(cpu).recalc_entries += 1;
    ctx.emit(ObsEvent::RecalcStart {
        cpu,
        nr_running: env.nr_running as u64,
    });
    let n = recalculate_counters(ctx.tasks);
    ctx.stats.cpu_mut(cpu).recalc_tasks += n as u64;
    ctx.meter
        .charge_n(ctx.costs, CostKind::RecalcPerTask, n as u64);
    ctx.emit(ObsEvent::RecalcEnd {
        cpu,
        updated: n as u64,
    });
}

/// The pure scan-filter predicates (`can_schedule` / `runnable`) on an
/// already-resolved task — the single implementation shared by
/// [`host_call`] and the VM's fused `scan.best` walk, so the two entry
/// points cannot drift. Any other `f` is treated as `runnable` (the
/// compiler only fuses these two).
#[inline]
pub(crate) fn scan_filter_pred(
    f: HostFn,
    smp: bool,
    t: &elsc_ktask::Task,
    tid: Tid,
    prev: Option<Tid>,
    idle: Option<Tid>,
) -> bool {
    match f {
        // The kernel's scan filter: SMP skips tasks running anywhere,
        // UP skips only `prev`.
        HostFn::CanSchedule => !(if smp { t.has_cpu } else { Some(tid) == prev }),
        _ => Some(tid) != idle && t.state.is_runnable(),
    }
}

/// The observable side effects of one `goodness(t)` evaluation (cycle
/// charge + scan statistics) — shared by [`host_call`] and the VM's
/// fused `scan.best` walk.
#[inline]
pub(crate) fn charge_goodness_eval(ctx: &mut SchedCtx<'_>, cpu: CpuId) {
    ctx.meter.charge(ctx.costs, CostKind::GoodnessEval);
    ctx.stats.cpu_mut(cpu).tasks_examined += 1;
}

/// Evaluates one host function — the single implementation both
/// backends dispatch to, so their observable semantics (meter charges,
/// stats, yield-bit consumption) cannot diverge. Total semantics
/// throughout: `nil` task arguments yield neutral values rather than
/// faulting.
pub(crate) fn host_call(
    ctx: &mut SchedCtx<'_>,
    lists: &Lists,
    env: &mut Env,
    f: HostFn,
    arg: Option<Val>,
) -> Val {
    let task_arg = || match arg {
        Some(Val::Task(t)) => t,
        _ => None,
    };
    let int_arg = || match arg {
        Some(Val::Int(n)) => n,
        _ => 0,
    };
    match f {
        HostFn::Goodness => match task_arg() {
            None => Val::Int(i64::from(IDLE_GOODNESS)),
            Some(tid) => {
                // Charged exactly like a native scan step.
                charge_goodness_eval(ctx, env.cpu);
                let t = ctx.tasks.task(tid);
                Val::Int(i64::from(goodness_ignoring_yield(t, env.cpu, env.prev_mm)))
            }
        },
        HostFn::PrevGoodness => match env.prev {
            Some(p) if Some(p) != env.idle && ctx.tasks.task(p).state.is_runnable() => {
                charge_goodness_eval(ctx, env.cpu);
                if env.prev_yielded {
                    // Consume the SCHED_YIELD bit: the yielder counts
                    // as goodness 0 exactly once.
                    env.prev_yielded = false;
                    Val::Int(0)
                } else {
                    Val::Int(i64::from(goodness_ignoring_yield(
                        ctx.tasks.task(p),
                        env.cpu,
                        env.prev_mm,
                    )))
                }
            }
            _ => Val::Int(i64::from(IDLE_GOODNESS)),
        },
        HostFn::StaticGoodness => match task_arg() {
            None => Val::Int(0),
            Some(tid) => Val::Int(i64::from(ctx.tasks.task(tid).static_goodness())),
        },
        HostFn::Counter => match task_arg() {
            None => Val::Int(0),
            Some(tid) => Val::Int(i64::from(ctx.tasks.task(tid).counter)),
        },
        HostFn::Priority => match task_arg() {
            None => Val::Int(0),
            Some(tid) => Val::Int(i64::from(ctx.tasks.task(tid).priority)),
        },
        HostFn::RtPriority => match task_arg() {
            None => Val::Int(0),
            Some(tid) => Val::Int(i64::from(ctx.tasks.task(tid).rt_priority)),
        },
        HostFn::IsRt => match task_arg() {
            None => Val::Int(0),
            Some(tid) => Val::Int(i64::from(ctx.tasks.task(tid).policy.class.is_realtime())),
        },
        HostFn::Processor => match task_arg() {
            None => Val::Int(0),
            Some(tid) => Val::Int(ctx.tasks.task(tid).processor as i64),
        },
        HostFn::SameMm => match task_arg() {
            None => Val::Int(0),
            Some(tid) => Val::Int(i64::from(ctx.tasks.task(tid).mm == env.prev_mm)),
        },
        HostFn::HasCpu => match task_arg() {
            None => Val::Int(0),
            Some(tid) => Val::Int(i64::from(ctx.tasks.task(tid).has_cpu)),
        },
        HostFn::Runnable | HostFn::CanSchedule => match task_arg() {
            None => Val::Int(0),
            Some(tid) => Val::Int(i64::from(scan_filter_pred(
                f,
                ctx.cfg.smp,
                ctx.tasks.task(tid),
                tid,
                env.prev,
                env.idle,
            ))),
        },
        HostFn::ListLen => {
            let h = wrap_list(int_arg(), lists.nr_lists());
            Val::Int(lists.len(ctx.tasks, h) as i64)
        }
        HostFn::ListHead => {
            let h = wrap_list(int_arg(), lists.nr_lists());
            Val::Task(lists.first(h).map(|i| ctx.tasks.by_index(i as usize).tid))
        }
    }
}

/// Pure binary-operator semantics (total: division/modulo by zero is 0,
/// arithmetic wraps). Shared by both backends.
pub(crate) fn binop(op: BinOp, l: Val, r: Val) -> Result<Val, PolicyViolation> {
    let v = match op {
        BinOp::Eq => Val::Int(i64::from(l == r)),
        BinOp::Ne => Val::Int(i64::from(l != r)),
        _ => {
            let (Val::Int(a), Val::Int(b)) = (l, r) else {
                return Err(PolicyViolation::StateCorrupt);
            };
            Val::Int(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        0
                    } else {
                        a.wrapping_div(b)
                    }
                }
                BinOp::Mod => {
                    if b == 0 {
                        0
                    } else {
                        a.wrapping_rem(b)
                    }
                }
                BinOp::Lt => i64::from(a < b),
                BinOp::Le => i64::from(a <= b),
                BinOp::Gt => i64::from(a > b),
                BinOp::Ge => i64::from(a >= b),
                BinOp::Eq | BinOp::Ne => unreachable!("handled above"),
            })
        }
    };
    Ok(v)
}

/// A verified `.pol` program running behind the [`Scheduler`] trait.
pub struct PolicyScheduler {
    prog: Program,
    /// `"policy:<name>"`, leaked once at load time.
    name: &'static str,
    /// Which backend hooks run on (default: the bytecode VM).
    backend: PolicyBackend,
    /// The bytecode form; `None` only if compilation failed, in which
    /// case the interpreter silently serves as the fallback backend.
    compiled: Option<CompiledPolicy>,
    /// Reusable VM register file and iterator frames, persisted across
    /// decisions so steady-state dispatch allocates nothing.
    vm_state: VmState,
    lists: Lists,
    /// Which list each task (by slab index) was inserted into.
    list_of: Vec<usize>,
    /// `generation + 1` of the last slab occupant whose `on_fork` ran;
    /// 0 = never. Detects the first enqueue of each task lifetime.
    forked: Vec<u32>,
    nr_cpus: usize,
    nr_running: usize,
    budget: u64,
    insns_total: u64,
    violation: Option<PolicyViolation>,
}

impl PolicyScheduler {
    /// Wraps an already-verified program.
    ///
    /// `nr_cpus` resolves a `lists percpu` declaration; the runtime
    /// budget starts at [`DEFAULT_BUDGET`].
    pub fn new(prog: Program, nr_cpus: usize) -> PolicyScheduler {
        let name: &'static str = Box::leak(format!("policy:{}", prog.name).into_boxed_str());
        let lists = Lists::new(prog.lists.count(nr_cpus).max(1));
        let compiled = crate::compile(&prog).ok();
        PolicyScheduler {
            prog,
            name,
            backend: PolicyBackend::default(),
            compiled,
            vm_state: VmState::default(),
            lists,
            list_of: Vec::new(),
            forked: Vec::new(),
            nr_cpus,
            nr_running: 0,
            budget: DEFAULT_BUDGET,
            insns_total: 0,
            violation: None,
        }
    }

    /// Parses, verifies, and wraps a `.pol` source string.
    ///
    /// # Errors
    ///
    /// The first load-time diagnostic, never a panic.
    pub fn load_str(src: &str, nr_cpus: usize) -> Result<PolicyScheduler, PolicyError> {
        Ok(PolicyScheduler::new(crate::load_str(src)?, nr_cpus))
    }

    /// Overrides the runtime per-decision instruction budget.
    pub fn with_budget(mut self, budget: u64) -> PolicyScheduler {
        self.budget = budget.max(1);
        self
    }

    /// Selects the execution backend: the bytecode VM (default) or the
    /// reference tree-walking interpreter. Both produce identical
    /// decisions, charges, and violations.
    pub fn with_backend(mut self, backend: PolicyBackend) -> PolicyScheduler {
        self.backend = backend;
        self
    }

    /// The backend hooks actually execute on: the configured one,
    /// downgraded to [`PolicyBackend::Interp`] if compilation failed.
    pub fn backend(&self) -> PolicyBackend {
        if self.compiled.is_some() {
            self.backend
        } else {
            PolicyBackend::Interp
        }
    }

    /// The compiled bytecode, when compilation succeeded (tests,
    /// tooling, and the `disasm` CLI verb).
    pub fn compiled(&self) -> Option<&CompiledPolicy> {
        self.compiled.as_ref()
    }

    /// The verified program.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Collects list `h` front to back (tests and examples).
    pub fn queue_order(&self, tasks: &TaskTable, h: usize) -> Vec<u32> {
        self.lists.collect(tasks, h)
    }

    fn env(&self, cpu: CpuId) -> Env {
        Env {
            cpu,
            prev: None,
            idle: None,
            task: None,
            prev_mm: MmId::KERNEL,
            prev_yielded: false,
            nr_running: self.nr_running,
            nr_cpus: self.nr_cpus,
        }
    }

    /// Records a violation (first one wins) and announces budget
    /// blowouts on the bus.
    fn note_violation(&mut self, ctx: &mut SchedCtx<'_>, cpu: CpuId, v: PolicyViolation) {
        if let PolicyViolation::BudgetExhausted { insns, budget } = v {
            ctx.emit(ObsEvent::PolicyBudget { cpu, insns, budget });
        }
        if self.violation.is_none() {
            self.violation = Some(v);
        }
    }

    fn remember_list(&mut self, tid: Tid, list: usize) {
        let idx = tid.index();
        if self.list_of.len() <= idx {
            self.list_of.resize(idx + 1, 0);
        }
        self.list_of[idx] = list;
    }

    fn list_of(&self, tid: Tid) -> usize {
        self.list_of.get(tid.index()).copied().unwrap_or(0)
    }

    /// Is `cand` a task `schedule()` may legally hand the CPU?
    fn pick_is_legal(ctx: &SchedCtx<'_>, cand: Tid, prev: Tid, idle: Tid) -> bool {
        if cand == idle {
            return true;
        }
        let Some(t) = ctx.tasks.get(cand) else {
            return false;
        };
        if !t.state.is_runnable() {
            return false;
        }
        if cand == prev {
            // A runnable prev keeps the CPU; its has_cpu is still set.
            return true;
        }
        t.on_runqueue() && !t.has_cpu
    }
}

impl core::fmt::Debug for PolicyScheduler {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PolicyScheduler")
            .field("name", &self.name)
            .field("backend", &self.backend().label())
            .field("nr_running", &self.nr_running)
            .field("budget", &self.budget)
            .field("insns_total", &self.insns_total)
            .finish_non_exhaustive()
    }
}

impl Scheduler for PolicyScheduler {
    fn name(&self) -> &'static str {
        self.name
    }

    fn add_to_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge(ctx.costs, CostKind::ListOp);
        debug_assert!(
            !ctx.tasks.task(tid).on_runqueue(),
            "double add to run queue"
        );
        // `on_fork`: runs once per task lifetime, before its first
        // enqueue. Generation-stamped so a recycled slab slot counts as
        // a new task.
        let idx = tid.index();
        if self.forked.len() <= idx {
            self.forked.resize(idx + 1, 0);
        }
        let stamp = tid.generation().wrapping_add(1);
        if self.forked[idx] != stamp {
            self.forked[idx] = stamp;
            if self.prog.hook(HookKind::OnFork).is_some() {
                let mut env = self.env(0);
                env.task = Some(tid);
                let run = run_hook(
                    &self.prog,
                    self.compiled.as_ref(),
                    self.backend,
                    &mut self.vm_state,
                    HookKind::OnFork,
                    &self.lists,
                    ctx,
                    env,
                    self.budget,
                );
                ctx.meter
                    .charge_n(ctx.costs, CostKind::PolicyInsn, run.insns);
                self.insns_total += run.insns;
                if let Some(v) = run.violation {
                    self.note_violation(ctx, 0, v);
                }
            }
        }
        // `enqueue` decides the placement; the host performs the
        // insert. Default (no hook, hook without a placement, or an
        // aborted hook): front of list 0, like the baseline.
        let (list, front) = if self.prog.hook(HookKind::Enqueue).is_some() {
            let mut env = self.env(0);
            env.task = Some(tid);
            let run = run_hook(
                &self.prog,
                self.compiled.as_ref(),
                self.backend,
                &mut self.vm_state,
                HookKind::Enqueue,
                &self.lists,
                ctx,
                env,
                self.budget,
            );
            ctx.meter
                .charge_n(ctx.costs, CostKind::PolicyInsn, run.insns);
            self.insns_total += run.insns;
            match run.violation {
                Some(v) => {
                    self.note_violation(ctx, 0, v);
                    (0, true)
                }
                None => run.placed.unwrap_or((0, true)),
            }
        } else {
            (0, true)
        };
        if front {
            self.lists.insert_front(ctx.tasks, list, tid);
        } else {
            self.lists.insert_back(ctx.tasks, list, tid);
        }
        self.remember_list(tid, list);
        self.nr_running += 1;
    }

    fn del_from_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge(ctx.costs, CostKind::ListOp);
        debug_assert!(
            ctx.tasks.task(tid).on_runqueue(),
            "del of task not on run queue"
        );
        self.lists.remove(ctx.tasks, tid);
        self.nr_running -= 1;
    }

    fn move_first_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge_n(ctx.costs, CostKind::ListOp, 2);
        let h = self.list_of(tid);
        self.lists.remove(ctx.tasks, tid);
        self.lists.insert_front(ctx.tasks, h, tid);
    }

    fn move_last_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
        ctx.meter.charge_n(ctx.costs, CostKind::ListOp, 2);
        let h = self.list_of(tid);
        self.lists.remove(ctx.tasks, tid);
        self.lists.insert_back(ctx.tasks, h, tid);
    }

    fn schedule(&mut self, ctx: &mut SchedCtx<'_>, cpu: CpuId, prev: Tid, idle: Tid) -> Tid {
        // --- Host-managed schedule() preamble, identical to the
        // baseline scheduler (bottom halves, queue exit, RR refresh,
        // yield consumption). Policies only replace the selection loop.
        ctx.meter.charge(ctx.costs, CostKind::SchedBase);
        ctx.stats.cpu_mut(cpu).sched_calls += 1;

        {
            let prev_task = ctx.tasks.task(prev);
            if prev != idle && !prev_task.state.is_runnable() && prev_task.on_runqueue() {
                self.del_from_runqueue(ctx, prev);
            }
        }
        {
            let mut prev_task = ctx.tasks.task_mut(prev);
            let requeue = if prev_task.policy.class == SchedClass::Rr && prev_task.counter == 0 {
                prev_task.counter = prev_task.priority;
                prev_task.on_runqueue()
            } else {
                false
            };
            drop(prev_task);
            if requeue {
                self.move_last_runqueue(ctx, prev);
            }
        }
        let prev_mm = ctx.tasks.task(prev).mm;
        let prev_yielded = {
            let mut prev_task = ctx.tasks.task_mut(prev);
            let y = prev_task.policy.yielded;
            prev_task.policy.yielded = false;
            y
        };

        // --- The interpreted selection loop.
        let mut env = self.env(cpu);
        env.prev = Some(prev);
        env.idle = Some(idle);
        env.prev_mm = prev_mm;
        env.prev_yielded = prev_yielded;
        let run = run_hook(
            &self.prog,
            self.compiled.as_ref(),
            self.backend,
            &mut self.vm_state,
            HookKind::PickNext,
            &self.lists,
            ctx,
            env,
            self.budget,
        );
        ctx.meter
            .charge_n(ctx.costs, CostKind::PolicyInsn, run.insns);
        self.insns_total += run.insns;

        let next = match run.violation {
            Some(v) => {
                self.note_violation(ctx, cpu, v);
                None
            }
            None => {
                // `pick nil` (and the verifier-impossible "no pick")
                // mean idle.
                let cand = run.picked.flatten().unwrap_or(idle);
                if Self::pick_is_legal(ctx, cand, prev, idle) {
                    Some(cand)
                } else {
                    self.note_violation(ctx, cpu, PolicyViolation::BadPick);
                    None
                }
            }
        };
        // Safe fallback after a violation: keep a runnable prev,
        // otherwise idle. Both are always legal.
        let next = next.unwrap_or_else(|| {
            if prev != idle && ctx.tasks.task(prev).state.is_runnable() {
                prev
            } else {
                idle
            }
        });

        // Deferred rotation requests (requeue_back): applied only to
        // tasks still linked, charged like a native move_last.
        for tid in run.requeued {
            if ctx.tasks.get(tid).is_some_and(|t| t.in_list()) {
                self.move_last_runqueue(ctx, tid);
            }
        }

        // --- Host-managed epilogue, identical to the baseline.
        if next == idle {
            ctx.stats.cpu_mut(cpu).idle_scheduled += 1;
        }
        if next != prev {
            ctx.tasks.task_mut(prev).has_cpu = false;
        }
        ctx.tasks.task_mut(next).has_cpu = true;
        next
    }

    fn nr_running(&self) -> usize {
        self.nr_running
    }

    fn debug_check(&self, tasks: &TaskTable) {
        let mut total = 0;
        for h in 0..self.lists.nr_lists() {
            self.lists.check(tasks, h);
            total += self.lists.len(tasks, h);
        }
        assert_eq!(
            total, self.nr_running,
            "nr_running out of sync with the list bank"
        );
    }

    fn loaded_info(&self) -> Option<PolicyLoadInfo> {
        Some(PolicyLoadInfo {
            name: self.name,
            static_insns: self.prog.total_static_insns(),
            budget: self.budget,
            backend: self.backend(),
        })
    }

    fn set_policy_backend(&mut self, backend: PolicyBackend) {
        self.backend = backend;
    }

    fn take_violation(&mut self) -> Option<PolicyViolation> {
        self.violation.take()
    }

    fn drain(&mut self, ctx: &mut SchedCtx<'_>) -> Vec<Tid> {
        let mut out = Vec::new();
        for h in 0..self.lists.nr_lists() {
            while let Some(i) = self.lists.first(h) {
                let tid = ctx.tasks.by_index(i as usize).tid;
                ctx.meter.charge(ctx.costs, CostKind::ListOp);
                self.lists.remove(ctx.tasks, tid);
                out.push(tid);
            }
        }
        self.nr_running = 0;
        out
    }

    fn policy_insns_executed(&self) -> u64 {
        self.insns_total
    }

    fn on_tick(&mut self, ctx: &mut SchedCtx<'_>, cpu: CpuId, current: Tid) {
        if self.prog.hook(HookKind::Tick).is_none() {
            return;
        }
        let mut env = self.env(cpu);
        env.task = Some(current);
        let run = run_hook(
            &self.prog,
            self.compiled.as_ref(),
            self.backend,
            &mut self.vm_state,
            HookKind::Tick,
            &self.lists,
            ctx,
            env,
            self.budget,
        );
        ctx.meter
            .charge_n(ctx.costs, CostKind::PolicyInsn, run.insns);
        self.insns_total += run.insns;
        if let Some(v) = run.violation {
            self.note_violation(ctx, cpu, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsc_ktask::{TaskSpec, TaskState};
    use elsc_sched_api::SchedConfig;
    use elsc_sched_linux::LinuxScheduler;
    use elsc_simcore::{CostModel, CycleMeter};
    use elsc_stats::SchedStats;

    const REG_POL: &str = include_str!("../../../policies/reg.pol");
    const RR_POL: &str = include_str!("../../../policies/rr.pol");
    const TABLE_POL: &str = include_str!("../../../policies/table.pol");
    const STARVE_POL: &str = include_str!("../../../policies/starve.pol");

    /// Test harness bundling the context pieces around any scheduler.
    struct Rig<S: Scheduler> {
        tasks: TaskTable,
        stats: SchedStats,
        meter: CycleMeter,
        costs: CostModel,
        cfg: SchedConfig,
        sched: S,
        idle: Tid,
    }

    impl<S: Scheduler> Rig<S> {
        fn new(cfg: SchedConfig, sched: S) -> Rig<S> {
            let mut tasks = TaskTable::new();
            let idle = tasks.spawn(&TaskSpec::named("idle").priority(1));
            tasks.task_mut(idle).counter = 0;
            tasks.task_mut(idle).has_cpu = true;
            Rig {
                tasks,
                stats: SchedStats::new(cfg.nr_cpus),
                meter: CycleMeter::new(),
                costs: CostModel::default(),
                cfg,
                sched,
                idle,
            }
        }

        fn with<R>(&mut self, f: impl FnOnce(&mut S, &mut SchedCtx<'_>) -> R) -> R {
            let mut ctx = SchedCtx {
                tasks: &mut self.tasks,
                stats: &mut self.stats,
                meter: &mut self.meter,
                costs: &self.costs,
                cfg: &self.cfg,
                probe: None,
                locks: None,
            };
            f(&mut self.sched, &mut ctx)
        }

        fn spawn(&mut self, name: &'static str) -> Tid {
            let tid = self.tasks.spawn(&TaskSpec::named(name));
            self.add(tid);
            tid
        }

        fn add(&mut self, tid: Tid) {
            self.with(|s, ctx| s.add_to_runqueue(ctx, tid));
        }

        fn schedule(&mut self, cpu: CpuId, prev: Tid) -> Tid {
            let idle = self.idle;
            let next = self.with(|s, ctx| s.schedule(ctx, cpu, prev, idle));
            self.sched.debug_check(&self.tasks);
            next
        }
    }

    fn policy(src: &str, nr_cpus: usize) -> PolicyScheduler {
        PolicyScheduler::load_str(src, nr_cpus).expect("bundled policy must verify")
    }

    /// Drives a deterministic mixed scenario (counter decay, blocking,
    /// waking, a yield) and records every decision plus final stats.
    fn drive<S: Scheduler>(mut rig: Rig<S>) -> (Vec<usize>, u64, u64, u64, u64) {
        let a = rig.spawn("a");
        let b = rig.spawn("b");
        let c = rig.spawn("c");
        let tids = [a, b, c];
        let mut picks = Vec::new();
        let mut current = rig.idle;
        for step in 0..120 {
            // Pseudo-random but identical perturbations for both rigs.
            let r = (step as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407)
                >> 33;
            match r % 11 {
                0 => {
                    // Block the current task (if it is a worker).
                    if tids.contains(&current) {
                        rig.tasks.task_mut(current).state = TaskState::Interruptible;
                    }
                }
                1 => {
                    // Wake any blocked worker.
                    for &t in &tids {
                        if rig.tasks.task(t).state == TaskState::Interruptible {
                            rig.tasks.task_mut(t).state = TaskState::Running;
                            rig.add(t);
                            break;
                        }
                    }
                }
                2 => {
                    if tids.contains(&current) {
                        rig.tasks.task_mut(current).policy.yielded = true;
                    }
                }
                _ => {
                    // A tick: the running task burns quantum.
                    if tids.contains(&current) && rig.tasks.task(current).counter > 0 {
                        rig.tasks.task_mut(current).counter -= 1;
                    }
                }
            }
            current = rig.schedule(0, current);
            picks.push(current.index());
        }
        let s = rig.stats.cpu(0);
        (
            picks,
            s.tasks_examined,
            s.recalc_entries,
            s.recalc_tasks,
            s.idle_scheduled,
        )
    }

    #[test]
    fn reg_pol_matches_native_reg_decision_for_decision() {
        let native = drive(Rig::new(SchedConfig::up(), LinuxScheduler::new()));
        let vm = drive(Rig::new(SchedConfig::up(), policy(REG_POL, 1)));
        assert_eq!(native, vm);
    }

    #[test]
    fn reg_pol_matches_native_reg_on_smp_config() {
        let native = drive(Rig::new(SchedConfig::smp(2), LinuxScheduler::new()));
        let vm = drive(Rig::new(SchedConfig::smp(2), policy(REG_POL, 2)));
        assert_eq!(native, vm);
    }

    #[test]
    fn default_backend_is_the_vm_for_compilable_programs() {
        let sched = policy(REG_POL, 1);
        assert_eq!(sched.backend(), PolicyBackend::Vm);
        assert!(sched.compiled().is_some());
        let interp = policy(REG_POL, 1).with_backend(PolicyBackend::Interp);
        assert_eq!(interp.backend(), PolicyBackend::Interp);
    }

    #[test]
    fn vm_and_interp_agree_on_every_bundled_policy() {
        for (src, nr_cpus, cfg) in [
            (REG_POL, 1, SchedConfig::up()),
            (REG_POL, 2, SchedConfig::smp(2)),
            (RR_POL, 1, SchedConfig::up()),
            (RR_POL, 2, SchedConfig::smp(2)),
            (TABLE_POL, 1, SchedConfig::up()),
            (TABLE_POL, 2, SchedConfig::smp(2)),
            (STARVE_POL, 1, SchedConfig::up()),
        ] {
            let vm = drive(Rig::new(cfg.clone(), policy(src, nr_cpus)));
            let interp = drive(Rig::new(
                cfg,
                policy(src, nr_cpus).with_backend(PolicyBackend::Interp),
            ));
            assert_eq!(vm, interp, "backends diverged on a bundled policy");
        }
    }

    #[test]
    fn vm_and_interp_charge_identical_policy_insns() {
        let mut vm = Rig::new(SchedConfig::up(), policy(REG_POL, 1));
        let mut interp = Rig::new(
            SchedConfig::up(),
            policy(REG_POL, 1).with_backend(PolicyBackend::Interp),
        );
        for rig in [&mut vm, &mut interp] {
            rig.spawn("a");
            rig.spawn("b");
            rig.meter.take();
        }
        let mut cv = vm.idle;
        let mut ci = interp.idle;
        for _ in 0..40 {
            cv = vm.schedule(0, cv);
            ci = interp.schedule(0, ci);
        }
        assert_eq!(cv, ci);
        assert_eq!(
            vm.sched.policy_insns_executed(),
            interp.sched.policy_insns_executed(),
            "PolicyInsn totals must match exactly"
        );
        assert_eq!(
            vm.meter.take(),
            interp.meter.take(),
            "virtual cycle charges must match exactly"
        );
    }

    /// The strongest abort-point pin: for every budget from 1 up to
    /// past one full decision, both backends must report the identical
    /// outcome — same pick, same violation (including the exact `insns`
    /// value), same examined-task count, same cycles.
    #[test]
    fn vm_and_interp_agree_at_every_budget_cutoff() {
        for src in [REG_POL, RR_POL, TABLE_POL] {
            for budget in 1..=160u64 {
                let mk = |backend| {
                    let nr = PolicyScheduler::load_str(src, 1).unwrap();
                    let mut rig = Rig::new(
                        SchedConfig::up(),
                        nr.with_budget(budget).with_backend(backend),
                    );
                    rig.spawn("a");
                    rig.spawn("b");
                    rig.meter.take();
                    let next = rig.schedule(0, rig.idle);
                    (
                        next.index(),
                        rig.sched.take_violation(),
                        rig.sched.policy_insns_executed(),
                        rig.stats.cpu(0).tasks_examined,
                        rig.meter.take(),
                    )
                };
                let vm = mk(PolicyBackend::Vm);
                let interp = mk(PolicyBackend::Interp);
                assert_eq!(vm, interp, "divergence at budget {budget}");
            }
        }
    }

    #[test]
    fn vm_budget_blowout_reports_exact_interp_insns() {
        let src = "policy spin\nlists 1\nhook pick_next {\n\
                   repeat 1024 { let x = 1 }\npick idle }";
        let mk = |backend| {
            let sched = PolicyScheduler::load_str(src, 1)
                .unwrap()
                .with_budget(64)
                .with_backend(backend);
            let mut rig = Rig::new(SchedConfig::up(), sched);
            rig.spawn("w");
            rig.schedule(0, rig.idle);
            rig.sched.take_violation()
        };
        let vm = mk(PolicyBackend::Vm);
        assert_eq!(
            vm,
            Some(PolicyViolation::BudgetExhausted {
                insns: 65,
                budget: 64
            }),
            "the VM normalizes batched charges to the interpreter's trip point"
        );
        assert_eq!(vm, mk(PolicyBackend::Interp));
    }

    #[test]
    fn policy_cycles_include_interpreter_overhead() {
        let mut native = Rig::new(SchedConfig::up(), LinuxScheduler::new());
        let mut interp = Rig::new(SchedConfig::up(), policy(REG_POL, 1));
        native.spawn("t");
        interp.spawn("t");
        native.meter.take();
        interp.meter.take();
        native.schedule(0, native.idle);
        interp.schedule(0, interp.idle);
        let nc = native.meter.take();
        let ic = interp.meter.take();
        assert!(
            ic > nc,
            "interpreted decision ({ic}) must cost more than native ({nc})"
        );
        assert!(interp.sched.policy_insns_executed() > 0);
    }

    #[test]
    fn rr_policy_rotates_fairly() {
        let mut rig = Rig::new(SchedConfig::up(), policy(RR_POL, 1));
        let a = rig.spawn("a");
        let b = rig.spawn("b");
        let c = rig.spawn("c");
        let mut current = rig.idle;
        let mut seen = [0usize; 3];
        for _ in 0..12 {
            current = rig.schedule(0, current);
            for (i, t) in [a, b, c].iter().enumerate() {
                if current == *t {
                    seen[i] += 1;
                }
            }
        }
        // requeue_back rotation: every task gets its turn.
        assert_eq!(seen, [4, 4, 4], "round-robin must serve all three");
    }

    #[test]
    fn starve_policy_picks_idle_and_reports_no_violation_per_decision() {
        let mut rig = Rig::new(SchedConfig::up(), policy(STARVE_POL, 1));
        rig.spawn("w");
        let next = rig.schedule(0, rig.idle);
        assert_eq!(next, rig.idle, "starve.pol always picks idle");
        // Per-decision it is legal; only the machine watchdog catches it.
        assert_eq!(rig.sched.take_violation(), None);
    }

    #[test]
    fn budget_blowout_aborts_hook_and_records_violation() {
        let src = "policy spin\nlists 1\nhook pick_next {\n\
                   repeat 1024 { let x = 1 }\npick idle }";
        let sched = PolicyScheduler::load_str(src, 1)
            .expect("verifies: static cost is under the cap")
            .with_budget(64);
        let mut rig = Rig::new(SchedConfig::up(), sched);
        let w = rig.spawn("w");
        let next = rig.schedule(0, rig.idle);
        // Fallback: prev (= idle here) not runnable as a worker → idle.
        assert_eq!(next, rig.idle);
        let v = rig.sched.take_violation();
        assert!(
            matches!(v, Some(PolicyViolation::BudgetExhausted { budget: 64, .. })),
            "expected budget violation, got {v:?}"
        );
        assert_eq!(rig.sched.take_violation(), None, "take clears it");
        let _ = w;
    }

    #[test]
    fn bad_pick_is_caught_and_replaced_with_fallback() {
        // Picks prev unconditionally — illegal when prev just blocked.
        let src = "policy badprev\nlists 1\nhook pick_next { pick prev }";
        let mut rig = Rig::new(SchedConfig::up(), policy(src, 1));
        let a = rig.spawn("a");
        let b = rig.spawn("b");
        rig.tasks.task_mut(a).has_cpu = true;
        rig.tasks.task_mut(a).state = TaskState::Interruptible;
        let next = rig.schedule(0, a);
        assert_eq!(next, rig.idle, "fallback for a blocked prev is idle");
        assert_eq!(rig.sched.take_violation(), Some(PolicyViolation::BadPick));
        let _ = b;
    }

    #[test]
    fn enqueue_hook_controls_placement() {
        let src = "policy backer\nlists 1\n\
                   hook enqueue { enqueue_back(0) }\n\
                   hook pick_next { pick idle }";
        let mut rig = Rig::new(SchedConfig::up(), policy(src, 1));
        let a = rig.spawn("a");
        let b = rig.spawn("b");
        assert_eq!(
            rig.sched.queue_order(&rig.tasks, 0),
            vec![a.index() as u32, b.index() as u32],
            "enqueue_back keeps FIFO order"
        );
    }

    #[test]
    fn default_placement_without_enqueue_hook_is_front() {
        let src = "policy minimal\nlists 1\nhook pick_next { pick idle }";
        let mut rig = Rig::new(SchedConfig::up(), policy(src, 1));
        let a = rig.spawn("a");
        let b = rig.spawn("b");
        assert_eq!(
            rig.sched.queue_order(&rig.tasks, 0),
            vec![b.index() as u32, a.index() as u32],
            "default placement matches the baseline (front)"
        );
    }

    #[test]
    fn on_fork_runs_once_per_task_lifetime() {
        let src = "policy fork\nlists 1\n\
                   hook on_fork { set_counter(task, 3) }\n\
                   hook enqueue { enqueue_front(0) }\n\
                   hook pick_next { pick idle }";
        let mut rig = Rig::new(SchedConfig::up(), policy(src, 1));
        let a = rig.spawn("a");
        assert_eq!(rig.tasks.task(a).counter, 3, "on_fork set the counter");
        // Re-enqueue after a block: on_fork must NOT run again.
        rig.tasks.task_mut(a).counter = 9;
        rig.with(|s, ctx| s.del_from_runqueue(ctx, a));
        rig.add(a);
        assert_eq!(rig.tasks.task(a).counter, 9, "on_fork ran only once");
    }

    #[test]
    fn set_counter_clamps_to_twice_priority() {
        let src = "policy clamp\nlists 1\n\
                   hook on_fork { set_counter(task, 100000) }\n\
                   hook pick_next { pick idle }";
        let mut rig = Rig::new(SchedConfig::up(), policy(src, 1));
        let a = rig.spawn("a");
        let t = rig.tasks.task(a);
        assert_eq!(t.counter, 2 * t.priority);
    }

    #[test]
    fn tick_hook_runs_via_on_tick() {
        let src = "policy ticky\nlists 1\n\
                   hook tick { set_counter(task, counter(task) + 2) }\n\
                   hook pick_next { pick idle }";
        let mut rig = Rig::new(SchedConfig::up(), policy(src, 1));
        let a = rig.spawn("a");
        let before = rig.tasks.task(a).counter;
        rig.with(|s, ctx| s.on_tick(ctx, 0, a));
        assert_eq!(rig.tasks.task(a).counter, before + 2);
        assert!(rig.sched.policy_insns_executed() > 0);
    }

    #[test]
    fn drain_empties_every_list_in_order() {
        let mut rig = Rig::new(SchedConfig::up(), policy(RR_POL, 2));
        let a = rig.tasks.spawn(&TaskSpec::named("a"));
        let b = rig.tasks.spawn(&TaskSpec::named("b"));
        rig.tasks.task_mut(b).processor = 1;
        rig.add(a);
        rig.add(b);
        assert_eq!(rig.sched.nr_running(), 2);
        let drained = rig.with(|s, ctx| s.drain(ctx));
        assert_eq!(drained, vec![a, b], "list 0 first, then list 1");
        assert_eq!(rig.sched.nr_running(), 0);
        assert!(!rig.tasks.task(a).on_runqueue());
        assert!(!rig.tasks.task(b).on_runqueue());
    }

    #[test]
    fn loaded_info_reports_name_and_budget() {
        let sched = policy(REG_POL, 1).with_budget(1234);
        let info = sched.loaded_info().unwrap();
        assert_eq!(info.name, "policy:reg");
        assert_eq!(info.budget, 1234);
        assert!(info.static_insns > 0);
    }

    #[test]
    fn percpu_lists_resolve_to_cpu_count() {
        let sched = policy(RR_POL, 4);
        assert_eq!(sched.lists.nr_lists(), 4);
        let up = policy(RR_POL, 1);
        assert_eq!(up.lists.nr_lists(), 1);
    }
}
