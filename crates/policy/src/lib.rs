//! `elsc-policy`: a verified, hot-swappable scheduling-policy runtime.
//!
//! The paper's thesis is that scheduling *policy* — the goodness split,
//! the 30-list table — is worth iterating on quickly. In this repo every
//! other policy is a compiled-in Rust struct; this crate makes new
//! policies **text files**. A `.pol` program defines up to four hooks
//! (`enqueue`, `pick_next`, `tick`, `on_fork`) over a bounded host API
//! (per-CPU list ops, static/dynamic goodness terms, counter access), in
//! the spirit of sched_ext/Ekiben's loadable, verified schedulers:
//!
//! ```text
//! policy rr
//! lists percpu
//!
//! hook enqueue {
//!     enqueue_back(processor(task))
//! }
//!
//! hook pick_next {
//!     foreach t in list(cpu) {
//!         if can_schedule(t) { pick t }
//!     }
//!     pick idle
//! }
//! ```
//!
//! Three guarantees make this safe to run inside the deterministic
//! machine:
//!
//! 1. **Load-time verification** ([`verify()`]): programs are type-checked
//!    (int vs. task-handle values), loops are bounded (`repeat` takes a
//!    literal count; nesting is capped), each hook's *static* instruction
//!    count must fit a budget, `pick_next` provably reaches a `pick`, and
//!    `enqueue` provably places the task. Malformed programs are rejected
//!    with a line/column diagnostic ([`PolicyError`]) — never a panic.
//! 2. **Cycle-charged execution** ([`sched`], [`mod@vm`]): every executed
//!    IR node charges one `CostKind::PolicyInsn` into the simcore cycle
//!    model, so loaded policies pay a realistic overhead in every
//!    figure. A runtime per-decision instruction budget bounds even
//!    verified programs; blowing it aborts the hook with a safe default.
//! 3. **Watchdog ejection** (machine-side): a policy that blows its
//!    budget, picks a non-runnable task, or starves a non-empty queue for
//!    K consecutive decisions is deterministically ejected — the machine
//!    swaps in the vanilla baseline scheduler mid-run and the run
//!    completes with conservation intact.
//!
//! Verified programs execute on one of two backends behind the same
//! budget model: the reference tree-walking interpreter, or (default)
//! the register bytecode VM produced by [`compile()`] — see
//! [`mod@bytecode`] for the instruction set and `docs/POLICY.md` at the
//! repository root for the full language reference (grammar, host API,
//! cost model, and the bytecode lowering appendix). The two backends
//! are decision-for-decision and charge-for-charge identical; the
//! machine's `--policy-backend {interp,vm}` switch selects one.
//!
//! The bundled `policies/reg.pol` is decision-for-decision identical to
//! the native baseline scheduler, proven by the chaos oracle in strict
//! mode (`elsc-sim ... --sched policy:policies/reg.pol --oracle`).
#![deny(missing_docs)]

pub mod ast;
pub mod bytecode;
pub mod compile;
pub mod lex;
pub mod parse;
pub mod sched;
pub mod verify;
pub mod vm;

pub use ast::{Block, Expr, HookKind, ListsDecl, Program, Span, Stmt};
pub use bytecode::{Chunk, CompiledPolicy, Insn, Op};
pub use compile::compile;
pub use parse::parse;
pub use sched::{PolicyScheduler, DEFAULT_BUDGET};
pub use verify::verify;

use core::fmt;

/// A load-time diagnostic: what is wrong with a `.pol` program and where.
///
/// Every lexer, parser, and verifier rejection carries the 1-based line
/// and column of the offending token, so the CLI can print
/// `reg.pol:12:5: unknown function 'godness'` instead of panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicyError {
    /// Where the problem is.
    pub span: Span,
    /// Human-readable description.
    pub msg: String,
}

impl PolicyError {
    /// Builds an error at `span`.
    pub fn new(span: Span, msg: impl Into<String>) -> Self {
        PolicyError {
            span,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.span.line, self.span.col, self.msg)
    }
}

impl std::error::Error for PolicyError {}

/// Parses **and** verifies a `.pol` source string: the single entry point
/// loaders should use. Returns the executable program or the first
/// diagnostic.
///
/// ```
/// let src = "policy demo\nlists 1\nhook pick_next { pick idle }\n";
/// let prog = elsc_policy::load_str(src).expect("valid program");
/// assert_eq!(prog.name, "demo");
/// let bad = elsc_policy::load_str("policy demo\nlists 1\nhook pick_next { }\n");
/// assert!(bad.is_err());
/// ```
pub fn load_str(src: &str) -> Result<Program, PolicyError> {
    let mut prog = parse::parse(src)?;
    verify::verify(&mut prog)?;
    Ok(prog)
}
