//! The `.pol` → bytecode compiler.
//!
//! [`compile`] lowers a parsed-and-verified [`Program`] to one
//! [`Chunk`] per hook (see [`crate::bytecode`] for the instruction
//! set). The lowering is a single pass over the AST with:
//!
//! * **watermark register allocation** — every statement's expression
//!   temporaries are allocated above a per-statement watermark and
//!   freed when the statement ends; `let` keeps exactly one register
//!   alive, and block exit frees everything the block declared. The
//!   resulting register-file size is recorded in [`Chunk::num_regs`].
//! * **builtin pre-loading** — the eight context builtins occupy
//!   registers `0..8` and compile to plain register reads (zero ops).
//! * **charge batching** — the interpreter charges one budget unit per
//!   AST node it touches; the compiler accumulates those charges in a
//!   `pending` counter and flushes them into the *next* emitted
//!   instruction's [`cost`](crate::bytecode::Insn::cost) field, so the
//!   VM's instruction count matches the interpreter's at every
//!   side-effecting op and at hook exit. Loop back-edges carry cost 0,
//!   exactly like the interpreter's free `repeat`/`foreach` iteration.
//! * **superinstruction fusion** — the three hot `pick_next` shapes
//!   (`if can_schedule(t)/runnable(t) { ... }`,
//!   `if g > c { c = g  best = t }`, `if c != 0 { pick best }`) fuse
//!   into single dispatches ([`Op::ScanFilter`], [`Op::GtUpdate2`],
//!   [`Op::PickIfNe0`]) with the conditional part of the interpreter
//!   charge applied only when the branch is taken — and the *entire*
//!   selection loop (list-scan + compare-goodness + best-tracking, the
//!   shape of every bundled `pick_next`) fuses into one native walk,
//!   [`Op::ScanBest`], which removes all per-task dispatch overhead
//!   while keeping the interpreter's per-node charge schedule.
//! * **constant pooling** — integer literals and `repeat` counts are
//!   deduplicated into [`Chunk::consts`].
//!
//! The compiler assumes nothing the verifier has not already proven;
//! on malformed input (unbound variables) it returns a spanned
//! [`PolicyError`] rather than panicking.
//!
//! # Example
//!
//! ```
//! use elsc_policy::{compile, load_str, HookKind};
//!
//! let prog = load_str(
//!     "policy spec_demo\n\
//!      lists 1\n\
//!      hook pick_next {\n\
//!        let best = idle\n\
//!        let c = 0 - 1000\n\
//!        foreach t in list(0) {\n\
//!          if can_schedule(t) {\n\
//!            let g = goodness(t)\n\
//!            if g > c { c = g  best = t }\n\
//!          }\n\
//!        }\n\
//!        if c != 0 { pick best }\n\
//!        pick best\n\
//!      }\n",
//! )
//! .unwrap();
//! let compiled = compile(&prog).unwrap();
//! let chunk = compiled.chunk(HookKind::PickNext).unwrap();
//! assert_eq!(
//!     chunk.disasm(),
//!     "\
//! 000: mov          r8 <- r2                     ; cost 2
//! 001: const        r10 <- 0                     ; cost 3
//! 002: const        r11 <- 1000                  ; cost 1
//! 003: bin          r9 <- r10 Sub r11            ; cost 0
//! 004: const        r10 <- 0                     ; cost 2
//! 005: scan.best    list r10 can_schedule/goodness best r9 win r8 ; cost 0
//! 006: pick.ifne0   r9 != 0 ? pick r8            ; cost 4
//! 007: pick         r8                           ; cost 2
//! 008: halt                                      ; cost 0
//! "
//! );
//! ```

use crate::ast::{BinOp, Block, Builtin, Expr, HookKind, HostFn, Program, Span, Stmt};
use crate::bytecode::{
    binop_index, hostfn_index, Chunk, CompiledPolicy, Insn, Op, BUILTIN_REGS, NO_ARG,
};
use crate::PolicyError;

/// Placeholder jump target, patched before the chunk is returned.
const PATCH: u16 = u16::MAX;

/// Compiles a verified program to register bytecode, one [`Chunk`] per
/// defined hook.
///
/// The compiled form preserves the interpreter's observable semantics
/// exactly: same decisions, same host-call order, and the same
/// instruction-budget count at every side effect (see
/// [`crate::bytecode::Insn::cost`]). Programs that fail verification
/// should not be compiled; on inputs with unbound names this returns a
/// spanned [`PolicyError`] like the verifier would.
///
/// ```
/// use elsc_policy::{compile, load_str, HookKind};
///
/// let prog = load_str(
///     "policy tiny\nlists 1\nhook pick_next { pick idle }\n",
/// )
/// .unwrap();
/// let compiled = compile(&prog).unwrap();
/// let chunk = compiled.chunk(HookKind::PickNext).unwrap();
/// // `pick idle`: 1 charge for the statement + 1 for the builtin node.
/// assert_eq!(chunk.code[0].cost, 2);
/// assert!(compiled.chunk(HookKind::Enqueue).is_none());
/// ```
pub fn compile(prog: &Program) -> Result<CompiledPolicy, PolicyError> {
    let mut chunks = [None, None, None, None];
    for hook in HookKind::ALL {
        if let Some(body) = prog.hook(hook) {
            chunks[hook.index()] = Some(compile_hook(body)?);
        }
    }
    Ok(CompiledPolicy { chunks })
}

/// Register index of a pre-loaded builtin (declaration order).
fn builtin_reg(b: Builtin) -> u16 {
    match b {
        Builtin::Cpu => 0,
        Builtin::Prev => 1,
        Builtin::Idle => 2,
        Builtin::Task => 3,
        Builtin::Nil => 4,
        Builtin::NrCpus => 5,
        Builtin::NrLists => 6,
        Builtin::NrRunning => 7,
    }
}

fn err(span: Span, msg: impl Into<String>) -> PolicyError {
    PolicyError {
        span,
        msg: msg.into(),
    }
}

/// Break targets of one loop under compilation.
struct LoopCtx {
    /// `Jmp` indices to patch to the loop's exit.
    breaks: Vec<usize>,
}

struct Compiler<'p> {
    code: Vec<Insn>,
    consts: Vec<i64>,
    /// Lexical scopes of named locals; lookups scan inner-to-outer,
    /// newest binding first (matching the interpreter's shadowing).
    scopes: Vec<Vec<(&'p str, u16)>>,
    /// Next free register.
    next_reg: u16,
    /// High-water mark for [`Chunk::num_regs`].
    max_reg: u16,
    /// Foreach nesting depth (iterator slot allocation).
    for_depth: u8,
    max_for_depth: u8,
    /// Interpreter charges accumulated since the last emitted op.
    pending: u16,
    loops: Vec<LoopCtx>,
    /// `Jmp` indices from loop-less `break`s, patched to the final halt.
    end_jumps: Vec<usize>,
}

fn compile_hook(body: &Block) -> Result<Chunk, PolicyError> {
    let mut c = Compiler {
        code: Vec::new(),
        consts: Vec::new(),
        scopes: vec![Vec::new()],
        next_reg: BUILTIN_REGS,
        max_reg: BUILTIN_REGS,
        for_depth: 0,
        max_for_depth: 0,
        pending: 0,
        loops: Vec::new(),
        end_jumps: Vec::new(),
    };
    for s in &body.stmts {
        c.stmt(s)?;
    }
    debug_assert_eq!(c.pending, 0, "statements always flush their charges");
    let halt = c.code.len();
    for j in std::mem::take(&mut c.end_jumps) {
        c.code[j].a = halt as u16;
    }
    c.emit(Op::Halt, 0, 0, 0, 0);
    debug_assert!(c.code.iter().all(|i| {
        !matches!(
            i.op,
            Op::Jmp | Op::Jz | Op::RepeatNext | Op::ForNext | Op::ScanFilter
        ) || (i.a != PATCH && i.b != PATCH && i.c != PATCH)
    }));
    Ok(Chunk {
        code: c.code,
        consts: c.consts,
        num_regs: c.max_reg,
        num_iters: c.max_for_depth,
    })
}

impl<'p> Compiler<'p> {
    fn emit(&mut self, op: Op, a: u16, b: u16, c: u16, d: u16) -> usize {
        let cost = std::mem::take(&mut self.pending);
        self.code.push(Insn {
            op,
            cost,
            a,
            b,
            c,
            d,
        });
        self.code.len() - 1
    }

    /// Emits with an explicit cost (loop back-edges: 0; fused ops keep
    /// their own accounting).
    fn emit_costed(&mut self, op: Op, cost: u16, a: u16, b: u16, c: u16, d: u16) -> usize {
        self.code.push(Insn {
            op,
            cost,
            a,
            b,
            c,
            d,
        });
        self.code.len() - 1
    }

    fn konst(&mut self, v: i64) -> u16 {
        if let Some(i) = self.consts.iter().position(|&k| k == v) {
            return i as u16;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u16
    }

    fn alloc(&mut self) -> u16 {
        let r = self.next_reg;
        self.next_reg += 1;
        self.max_reg = self.max_reg.max(self.next_reg);
        r
    }

    fn lookup(&self, name: &str) -> Option<u16> {
        for scope in self.scopes.iter().rev() {
            if let Some(&(_, r)) = scope.iter().rev().find(|(n, _)| *n == name) {
                return Some(r);
            }
        }
        None
    }

    /// The register an expression already lives in, if it is a variable
    /// or builtin reference. Purely structural — no charges, no code.
    fn resolved_reg(&self, e: &Expr) -> Option<u16> {
        match e {
            Expr::Var(name, _) => self.lookup(name),
            Expr::Builtin(b, _) => Some(builtin_reg(*b)),
            _ => None,
        }
    }

    /// Compiles an expression to *some* register: variable and builtin
    /// references resolve in place (charging their node, emitting no
    /// op); anything else lands in a fresh temporary.
    fn operand(&mut self, e: &'p Expr) -> Result<u16, PolicyError> {
        match e {
            Expr::Var(name, span) => {
                self.pending += 1;
                self.lookup(name)
                    .ok_or_else(|| err(*span, format!("unbound variable `{name}`")))
            }
            Expr::Builtin(b, _) => {
                self.pending += 1;
                Ok(builtin_reg(*b))
            }
            _ => {
                let dst = self.alloc();
                self.expr_into(e, dst)?;
                Ok(dst)
            }
        }
    }

    /// Compiles an expression into a specific register, charging each
    /// AST node exactly once (pre-order), as the interpreter does.
    fn expr_into(&mut self, e: &'p Expr, dst: u16) -> Result<(), PolicyError> {
        match e {
            Expr::Int(v, _) => {
                self.pending += 1;
                let k = self.konst(*v);
                self.emit(Op::Const, dst, k, 0, 0);
            }
            Expr::Var(name, span) => {
                self.pending += 1;
                let src = self
                    .lookup(name)
                    .ok_or_else(|| err(*span, format!("unbound variable `{name}`")))?;
                self.emit(Op::Mov, dst, src, 0, 0);
            }
            Expr::Builtin(b, _) => {
                self.pending += 1;
                self.emit(Op::Mov, dst, builtin_reg(*b), 0, 0);
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                self.pending += 1;
                let l = self.operand(lhs)?;
                let r = self.operand(rhs)?;
                self.emit(Op::Bin, dst, l, r, binop_index(*op));
            }
            Expr::Call { func, args, .. } => {
                self.pending += 1;
                // The interpreter evaluates (and charges) only the
                // first argument; the verifier has pinned the arity.
                let arg = match args.first() {
                    Some(a) => self.operand(a)?,
                    None => NO_ARG,
                };
                self.emit(Op::Call, dst, arg, 0, hostfn_index(*func));
            }
        }
        Ok(())
    }

    fn block(&mut self, b: &'p Block) -> Result<(), PolicyError> {
        let mark = self.next_reg;
        self.scopes.push(Vec::new());
        for s in &b.stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        self.next_reg = mark;
        Ok(())
    }

    fn stmt(&mut self, s: &'p Stmt) -> Result<(), PolicyError> {
        let mark = self.next_reg;
        match s {
            Stmt::Let { name, expr, .. } => {
                self.pending += 1;
                let dst = self.alloc();
                self.expr_into(expr, dst)?;
                // Bind after the initializer, like the interpreter: the
                // initializer cannot see the name it defines.
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .push((name, dst));
                self.next_reg = dst + 1; // free initializer temps, keep dst
                return Ok(());
            }
            Stmt::Assign { name, expr, span } => {
                self.pending += 1;
                let dst = self
                    .lookup(name)
                    .ok_or_else(|| err(*span, format!("unbound variable `{name}`")))?;
                self.expr_into(expr, dst)?;
            }
            Stmt::If {
                cond, then, els, ..
            } => {
                self.if_stmt(cond, then, els.as_ref())?;
            }
            Stmt::Repeat { count, body, .. } => {
                self.pending += 1;
                let ctr = self.alloc();
                let k = self.konst(i64::from(*count));
                self.emit(Op::RepeatInit, ctr, k, 0, 0);
                let head = self.code.len() as u16;
                self.loops.push(LoopCtx { breaks: Vec::new() });
                self.block(body)?;
                // Back-edge: iteration itself is free in the interpreter.
                self.emit_costed(Op::RepeatNext, 0, ctr, head, 0, 0);
                let exit = self.code.len() as u16;
                for j in self.loops.pop().expect("pushed above").breaks {
                    self.code[j].a = exit;
                }
            }
            Stmt::Foreach {
                var, list, body, ..
            } => {
                if self.try_fuse_scan(var, list, body)?.is_some() {
                    self.next_reg = mark;
                    return Ok(());
                }
                self.pending += 1;
                let list_reg = self.operand(list)?;
                let slot = self.for_depth;
                self.for_depth += 1;
                self.max_for_depth = self.max_for_depth.max(self.for_depth);
                self.emit(Op::ForBegin, u16::from(slot), list_reg, 0, 0);
                let var_reg = self.alloc();
                let head = self.code.len() as u16;
                let next = self.emit_costed(Op::ForNext, 0, u16::from(slot), var_reg, PATCH, 0);
                self.loops.push(LoopCtx { breaks: Vec::new() });
                // The loop variable and the body share one scope, as in
                // the interpreter's per-iteration frame.
                self.scopes.push(vec![(var.as_str(), var_reg)]);
                for st in &body.stmts {
                    self.stmt(st)?;
                }
                self.scopes.pop();
                self.emit_costed(Op::Jmp, 0, head, 0, 0, 0);
                let exit = self.code.len() as u16;
                self.code[next].c = exit;
                for j in self.loops.pop().expect("pushed above").breaks {
                    self.code[j].a = exit;
                }
                self.for_depth -= 1;
            }
            Stmt::Break { .. } => {
                self.pending += 1;
                let j = self.emit(Op::Jmp, PATCH, 0, 0, 0);
                match self.loops.last_mut() {
                    Some(l) => l.breaks.push(j),
                    // `break` outside any loop unwinds to the end of the
                    // hook in the interpreter; jump to the final halt.
                    None => self.end_jumps.push(j),
                }
            }
            Stmt::Pick { expr, .. } => {
                self.pending += 1;
                let r = self.operand(expr)?;
                self.emit(Op::Pick, r, 0, 0, 0);
            }
            Stmt::Place { front, list, .. } => {
                self.pending += 1;
                let r = self.operand(list)?;
                self.emit(Op::Place, r, u16::from(*front), 0, 0);
            }
            Stmt::Requeue { task, .. } => {
                self.pending += 1;
                let r = self.operand(task)?;
                self.emit(Op::Requeue, r, 0, 0, 0);
            }
            Stmt::SetCounter { task, value, .. } => {
                self.pending += 1;
                let t = self.operand(task)?;
                let v = self.operand(value)?;
                self.emit(Op::SetCounter, t, v, 0, 0);
            }
            Stmt::Recalc { .. } => {
                self.pending += 1;
                self.emit(Op::Recalc, 0, 0, 0, 0);
            }
        }
        self.next_reg = mark;
        Ok(())
    }

    fn if_stmt(
        &mut self,
        cond: &'p Expr,
        then: &'p Block,
        els: Option<&'p Block>,
    ) -> Result<(), PolicyError> {
        if els.is_none() {
            if let Some(()) = self.try_fuse(cond, then)? {
                return Ok(());
            }
        }
        self.pending += 1;
        let c = self.operand(cond)?;
        let jz = self.emit(Op::Jz, c, PATCH, 0, 0);
        self.block(then)?;
        match els {
            Some(e) => {
                let jend = self.emit_costed(Op::Jmp, 0, PATCH, 0, 0, 0);
                self.code[jz].b = self.code.len() as u16;
                self.block(e)?;
                self.code[jend].a = self.code.len() as u16;
            }
            None => {
                self.code[jz].b = self.code.len() as u16;
            }
        }
        Ok(())
    }

    /// Tries to fuse an entire selection loop into one [`Op::ScanBest`]
    /// dispatch — the shape every bundled `pick_next` scan takes:
    ///
    /// ```text
    /// foreach t in list(L) {
    ///     if can_schedule(t) {         # or runnable(t)
    ///         let g = goodness(t)      # any one-arg host fn on t
    ///         if g > C { C = g  B = t }
    ///     }
    /// }
    /// ```
    ///
    /// All name comparisons are syntactic so shadowing (`C` or `B`
    /// reusing the loop variable's or `g`'s name) falls back to the
    /// general lowering, where scoping is handled structurally.
    fn try_fuse_scan(
        &mut self,
        var: &'p str,
        list: &'p Expr,
        body: &'p Block,
    ) -> Result<Option<()>, PolicyError> {
        let [Stmt::If {
            cond,
            then,
            els: None,
            ..
        }] = body.stmts.as_slice()
        else {
            return Ok(None);
        };
        let Expr::Call {
            func: filter, args, ..
        } = cond
        else {
            return Ok(None);
        };
        if !matches!(filter, HostFn::CanSchedule | HostFn::Runnable) {
            return Ok(None);
        }
        let [Expr::Var(fa, _)] = args.as_slice() else {
            return Ok(None);
        };
        let [Stmt::Let {
            name: g, expr: ge, ..
        }, Stmt::If {
            cond: cmp,
            then: upd,
            els: None,
            ..
        }] = then.stmts.as_slice()
        else {
            return Ok(None);
        };
        let Expr::Call {
            func: score,
            args: sargs,
            ..
        } = ge
        else {
            return Ok(None);
        };
        let [Expr::Var(sa, _)] = sargs.as_slice() else {
            return Ok(None);
        };
        let Expr::Binary {
            op: BinOp::Gt,
            lhs,
            rhs,
            ..
        } = cmp
        else {
            return Ok(None);
        };
        let (Expr::Var(gl, _), Expr::Var(cn, _)) = (lhs.as_ref(), rhs.as_ref()) else {
            return Ok(None);
        };
        let [Stmt::Assign {
            name: a1, expr: e1, ..
        }, Stmt::Assign {
            name: a2, expr: e2, ..
        }] = upd.stmts.as_slice()
        else {
            return Ok(None);
        };
        let (Expr::Var(s1, _), Expr::Var(s2, _)) = (e1, e2) else {
            return Ok(None);
        };
        let shape = fa == var
            && sa == var
            && g != var
            && gl == g
            && cn != g
            && cn != var
            && a1 == cn
            && s1 == g
            && a2 != cn
            && a2 != g
            && a2 != var
            && s2 == var;
        if !shape {
            return Ok(None);
        }
        let (Some(c_reg), Some(b_reg)) = (self.lookup(cn), self.lookup(a2)) else {
            return Ok(None);
        };
        if c_reg == b_reg {
            return Ok(None);
        }
        // Committed: the foreach statement + the list-index expression
        // charge up front; the per-task schedule is the op's own.
        self.pending += 1;
        let list_reg = self.operand(list)?;
        let d = hostfn_index(*filter) | (hostfn_index(*score) << 8);
        self.emit(Op::ScanBest, list_reg, c_reg, b_reg, d);
        Ok(Some(()))
    }

    /// Tries the three superinstruction shapes on an else-less `if`.
    /// Returns `Ok(Some(()))` when one matched and was emitted.
    fn try_fuse(&mut self, cond: &'p Expr, then: &'p Block) -> Result<Option<()>, PolicyError> {
        // Shape 1: `if can_schedule(t) { ... }` / `if runnable(t) { ... }`
        // with a register-resident argument → ScanFilter guard.
        if let Expr::Call { func, args, .. } = cond {
            if matches!(func, HostFn::CanSchedule | HostFn::Runnable) && args.len() == 1 {
                if let Some(t) = self.resolved_reg(&args[0]) {
                    // Interpreter charge either way: if-stmt + call node
                    // + arg node = 3.
                    self.pending += 3;
                    let guard = self.emit(Op::ScanFilter, t, PATCH, 0, hostfn_index(*func));
                    self.block(then)?;
                    self.code[guard].b = self.code.len() as u16;
                    return Ok(Some(()));
                }
            }
        }
        // Shape 2: `if X > Y { Y = X  Z = W }`, all four register-resident
        // → GtUpdate2. Static charge 4 (if + Gt + X + Y); the taken
        // branch's 4 more (two assigns + two sources) are charged by the
        // VM only when the update fires.
        if let Expr::Binary {
            op: BinOp::Gt,
            lhs,
            rhs,
            ..
        } = cond
        {
            if let (Some(xr), Some(yr), [s1, s2]) = (
                self.resolved_reg(lhs),
                self.resolved_reg(rhs),
                then.stmts.as_slice(),
            ) {
                if let (
                    Stmt::Assign {
                        name: n1, expr: e1, ..
                    },
                    Stmt::Assign {
                        name: n2, expr: e2, ..
                    },
                ) = (s1, s2)
                {
                    if let (Some(t1), Some(src1), Some(t2), Some(src2)) = (
                        self.lookup(n1),
                        self.resolved_reg(e1),
                        self.lookup(n2),
                        self.resolved_reg(e2),
                    ) {
                        if t1 == yr && src1 == xr && t2 != yr && t2 != xr {
                            self.pending += 4;
                            self.emit(Op::GtUpdate2, xr, yr, t2, src2);
                            return Ok(Some(()));
                        }
                    }
                }
            }
        }
        // Shape 3: `if C != 0 { pick B }`, C and B register-resident
        // → PickIfNe0. Static charge 4 (if + Ne + C + literal); the
        // taken pick's 2 more (pick stmt + B) charge only on fire.
        if let Expr::Binary {
            op: BinOp::Ne,
            lhs,
            rhs,
            ..
        } = cond
        {
            if let (Some(c), Expr::Int(0, _), [Stmt::Pick { expr, .. }]) =
                (self.resolved_reg(lhs), rhs.as_ref(), then.stmts.as_slice())
            {
                if let Some(b) = self.resolved_reg(expr) {
                    self.pending += 4;
                    self.emit(Op::PickIfNe0, c, b, 0, 0);
                    return Ok(Some(()));
                }
            }
        }
        Ok(None)
    }
}
