//! Recursive-descent parser for `.pol` programs.
//!
//! Grammar (whitespace-insensitive, `#` comments):
//!
//! ```text
//! program  := "policy" ident "lists" (int | "percpu") hook*
//! hook     := "hook" hookname block
//! hookname := "enqueue" | "pick_next" | "tick" | "on_fork"
//! block    := "{" stmt* "}"
//! stmt     := "let" ident "=" expr
//!           | "if" expr block ("else" block)?
//!           | "repeat" int block
//!           | "foreach" ident "in" "list" "(" expr ")" block
//!           | "break" | "pick" expr
//!           | "enqueue_front" "(" expr ")" | "enqueue_back" "(" expr ")"
//!           | "requeue_back" "(" expr ")"
//!           | "set_counter" "(" expr "," expr ")" | "recalc" "(" ")"
//!           | ident "=" expr
//! expr     := add (cmpop add)?          cmpop := == != < <= > >=
//! add      := mul (("+" | "-") mul)*
//! mul      := unary (("*" | "/" | "%") unary)*
//! unary    := "-" unary | int | "(" expr ")" | fname "(" args ")" | ident
//! ```
//!
//! The parser resolves host-function names ([`HostFn`]) and builtin
//! value names ([`Builtin`]); anything else becomes a local-variable
//! reference for the verifier to check. All failures are spanned
//! [`PolicyError`]s — the parser never panics on any input.

use crate::ast::{BinOp, Block, Builtin, Expr, HookKind, HostFn, ListsDecl, Program, Span, Stmt};
use crate::lex::{lex, Tok, Token};
use crate::PolicyError;

/// Parses a `.pol` source string into an unverified [`Program`].
///
/// # Errors
///
/// A spanned [`PolicyError`] describing the first lexical or syntactic
/// problem.
pub fn parse(src: &str) -> Result<Program, PolicyError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, span: Span, msg: impl Into<String>) -> Result<T, PolicyError> {
        Err(PolicyError::new(span, msg))
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<Span, PolicyError> {
        let t = self.next();
        if t.tok == want {
            Ok(t.span)
        } else {
            self.err(
                t.span,
                format!("expected {what}, found {}", t.tok.describe()),
            )
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), PolicyError> {
        let t = self.next();
        match t.tok {
            Tok::Ident(s) => Ok((s, t.span)),
            other => self.err(
                t.span,
                format!("expected {what}, found {}", other.describe()),
            ),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<Span, PolicyError> {
        let (s, span) = self.expect_ident(&format!("'{kw}'"))?;
        if s == kw {
            Ok(span)
        } else {
            self.err(span, format!("expected '{kw}', found '{s}'"))
        }
    }

    fn program(&mut self) -> Result<Program, PolicyError> {
        self.expect_keyword("policy")?;
        let (name, name_span) = self.expect_ident("policy name")?;
        if name.len() > 32 {
            return self.err(name_span, "policy name longer than 32 characters");
        }
        self.expect_keyword("lists")?;
        let t = self.next();
        let lists = match t.tok {
            Tok::Int(n) => {
                if (1..=64).contains(&n) {
                    ListsDecl::Fixed(n as usize)
                } else {
                    return self.err(t.span, format!("list count {n} outside 1..=64"));
                }
            }
            Tok::Ident(ref s) if s == "percpu" => ListsDecl::PerCpu,
            other => {
                return self.err(
                    t.span,
                    format!(
                        "expected a list count or 'percpu', found {}",
                        other.describe()
                    ),
                )
            }
        };
        let mut hooks: [Option<Block>; 4] = [None, None, None, None];
        loop {
            let t = self.next();
            match t.tok {
                Tok::Eof => break,
                Tok::Ident(ref s) if s == "hook" => {
                    let (hname, hspan) = self.expect_ident("hook name")?;
                    let Some(kind) = HookKind::from_name(&hname) else {
                        return self.err(
                            hspan,
                            format!(
                                "unknown hook '{hname}' (expected enqueue, pick_next, tick, \
                                 or on_fork)"
                            ),
                        );
                    };
                    if hooks[kind.index()].is_some() {
                        return self.err(hspan, format!("hook '{hname}' defined twice"));
                    }
                    let block = self.block()?;
                    hooks[kind.index()] = Some(block);
                }
                other => {
                    return self.err(
                        t.span,
                        format!(
                            "expected 'hook' or end of input, found {}",
                            other.describe()
                        ),
                    )
                }
            }
        }
        Ok(Program {
            name,
            lists,
            hooks,
            static_insns: [0; 4],
        })
    }

    fn block(&mut self) -> Result<Block, PolicyError> {
        self.expect(Tok::LBrace, "'{'")?;
        let mut stmts = Vec::new();
        loop {
            if self.peek().tok == Tok::RBrace {
                self.next();
                break;
            }
            if self.peek().tok == Tok::Eof {
                let span = self.peek().span;
                return self.err(span, "unclosed block: expected '}'");
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, PolicyError> {
        let t = self.next();
        let span = t.span;
        let name = match t.tok {
            Tok::Ident(s) => s,
            other => {
                return self.err(
                    span,
                    format!("expected a statement, found {}", other.describe()),
                )
            }
        };
        match name.as_str() {
            "let" => {
                let (var, _) = self.expect_ident("variable name")?;
                self.expect(Tok::Assign, "'='")?;
                let expr = self.expr()?;
                Ok(Stmt::Let {
                    name: var,
                    expr,
                    span,
                })
            }
            "if" => {
                let cond = self.expr()?;
                let then = self.block()?;
                let els = if matches!(&self.peek().tok, Tok::Ident(s) if s == "else") {
                    self.next();
                    Some(self.block()?)
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then,
                    els,
                    span,
                })
            }
            "repeat" => {
                let t = self.next();
                let count = match t.tok {
                    Tok::Int(n) if (1..=1024).contains(&n) => n as u32,
                    Tok::Int(n) => {
                        return self.err(t.span, format!("repeat count {n} outside 1..=1024"))
                    }
                    other => {
                        return self.err(
                            t.span,
                            format!("repeat takes a literal count, found {}", other.describe()),
                        )
                    }
                };
                let body = self.block()?;
                Ok(Stmt::Repeat { count, body, span })
            }
            "foreach" => {
                let (var, _) = self.expect_ident("loop variable")?;
                self.expect_keyword("in")?;
                self.expect_keyword("list")?;
                self.expect(Tok::LParen, "'('")?;
                let list = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                let body = self.block()?;
                Ok(Stmt::Foreach {
                    var,
                    list,
                    body,
                    span,
                })
            }
            "break" => Ok(Stmt::Break { span }),
            "pick" => {
                let expr = self.expr()?;
                Ok(Stmt::Pick { expr, span })
            }
            "enqueue_front" | "enqueue_back" => {
                self.expect(Tok::LParen, "'('")?;
                let list = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(Stmt::Place {
                    front: name == "enqueue_front",
                    list,
                    span,
                })
            }
            "requeue_back" => {
                self.expect(Tok::LParen, "'('")?;
                let task = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(Stmt::Requeue { task, span })
            }
            "set_counter" => {
                self.expect(Tok::LParen, "'('")?;
                let task = self.expr()?;
                self.expect(Tok::Comma, "','")?;
                let value = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(Stmt::SetCounter { task, value, span })
            }
            "recalc" => {
                self.expect(Tok::LParen, "'('")?;
                self.expect(Tok::RParen, "')'")?;
                Ok(Stmt::Recalc { span })
            }
            _ => {
                // `x = expr` assignment.
                self.expect(Tok::Assign, "'=' (assignment)")?;
                let expr = self.expr()?;
                Ok(Stmt::Assign { name, expr, span })
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, PolicyError> {
        let lhs = self.add()?;
        let op = match self.peek().tok {
            Tok::EqEq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        let span = self.next().span;
        let rhs = self.add()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn add(&mut self) -> Result<Expr, PolicyError> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let span = self.next().span;
            let rhs = self.mul()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn mul(&mut self) -> Result<Expr, PolicyError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().tok {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            let span = self.next().span;
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, PolicyError> {
        let t = self.next();
        let span = t.span;
        match t.tok {
            Tok::Minus => {
                let inner = self.unary()?;
                Ok(Expr::Binary {
                    op: BinOp::Sub,
                    lhs: Box::new(Expr::Int(0, span)),
                    rhs: Box::new(inner),
                    span,
                })
            }
            Tok::Int(n) => Ok(Expr::Int(n, span)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.peek().tok == Tok::LParen {
                    // A call: must be a known host function.
                    let Some(func) = HostFn::from_name(&name) else {
                        return self.err(span, format!("unknown function '{name}'"));
                    };
                    self.next(); // consume '('
                    let mut args = Vec::new();
                    if self.peek().tok != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if self.peek().tok == Tok::Comma {
                                self.next();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "')'")?;
                    Ok(Expr::Call { func, args, span })
                } else if let Some(b) = Builtin::from_name(&name) {
                    Ok(Expr::Builtin(b, span))
                } else {
                    Ok(Expr::Var(name, span))
                }
            }
            other => self.err(
                span,
                format!("expected an expression, found {}", other.describe()),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse("policy p\nlists 1\nhook pick_next { pick idle }").unwrap();
        assert_eq!(p.name, "p");
        assert_eq!(p.lists, ListsDecl::Fixed(1));
        assert!(p.hook(HookKind::PickNext).is_some());
        assert!(p.hook(HookKind::Enqueue).is_none());
    }

    #[test]
    fn parses_percpu_and_all_hooks() {
        let src = "policy q\nlists percpu\n\
                   hook enqueue { enqueue_back(0) }\n\
                   hook pick_next { pick idle }\n\
                   hook tick { let x = 1 }\n\
                   hook on_fork { set_counter(task, 5) }";
        let p = parse(src).unwrap();
        assert_eq!(p.lists, ListsDecl::PerCpu);
        for h in HookKind::ALL {
            assert!(p.hook(h).is_some(), "missing {}", h.name());
        }
    }

    #[test]
    fn duplicate_hook_is_rejected() {
        let err = parse("policy p\nlists 1\nhook tick { }\nhook tick { }").unwrap_err();
        assert!(err.msg.contains("twice"), "{}", err.msg);
        assert_eq!(err.span.line, 4);
    }

    #[test]
    fn unknown_hook_is_rejected() {
        let err = parse("policy p\nlists 1\nhook dispatch { }").unwrap_err();
        assert!(err.msg.contains("unknown hook"));
    }

    #[test]
    fn unknown_function_is_rejected() {
        let err = parse("policy p\nlists 1\nhook pick_next { let g = godness(prev) pick idle }")
            .unwrap_err();
        assert!(err.msg.contains("unknown function 'godness'"));
    }

    #[test]
    fn unbalanced_block_is_rejected_with_span() {
        let err = parse("policy p\nlists 1\nhook pick_next { pick idle").unwrap_err();
        assert!(err.msg.contains("unclosed block"));
    }

    #[test]
    fn repeat_requires_literal_bounds() {
        assert!(parse("policy p\nlists 1\nhook tick { repeat 0 { } }").is_err());
        assert!(parse("policy p\nlists 1\nhook tick { repeat 2000 { } }").is_err());
        assert!(parse("policy p\nlists 1\nhook tick { repeat n { } }").is_err());
        assert!(parse("policy p\nlists 1\nhook tick { repeat 4 { } }").is_ok());
    }

    #[test]
    fn unary_minus_desugars_to_subtraction() {
        let p = parse("policy p\nlists 1\nhook pick_next { let c = -1000 pick idle }").unwrap();
        let b = p.hook(HookKind::PickNext).unwrap();
        match &b.stmts[0] {
            Stmt::Let { expr, .. } => match expr {
                Expr::Binary { op: BinOp::Sub, .. } => {}
                other => panic!("expected desugared subtraction, got {other:?}"),
            },
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn list_count_bounds() {
        assert!(parse("policy p\nlists 0\n").is_err());
        assert!(parse("policy p\nlists 65\n").is_err());
        assert!(parse("policy p\nlists 64\n").is_ok());
    }

    #[test]
    fn precedence_mul_over_add_over_cmp() {
        let p = parse("policy p\nlists 1\nhook tick { let x = 1 + 2 * 3 > 4 }").unwrap();
        let b = p.hook(HookKind::Tick).unwrap();
        let Stmt::Let { expr, .. } = &b.stmts[0] else {
            panic!()
        };
        let Expr::Binary { op: BinOp::Gt, .. } = expr else {
            panic!("top must be comparison, got {expr:?}")
        };
    }

    #[test]
    fn garbage_never_panics() {
        for src in [
            "",
            "policy",
            "policy p lists",
            "hook { }",
            "policy p\nlists 1\nhook pick_next pick",
            "policy p\nlists 1\nhook pick_next { pick }",
            "policy p\nlists 1\nhook pick_next { let = 3 }",
            "policy p\nlists 1\nhook pick_next { 3 = x }",
        ] {
            assert!(parse(src).is_err(), "{src:?} should fail");
        }
    }
}
