//! The policy IR: the abstract syntax the parser produces and the
//! verifier/interpreter consume.

/// A 1-based source position, carried by every token, statement, and
/// expression so diagnostics can point at the offending spot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Builds a span.
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }
}

/// The four hooks a policy may define (the kernel entry points the paper
/// changed, minus the two `move_*` bias ops, which stay host-managed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HookKind {
    /// Runs when a task is placed on the run queue; must decide a list
    /// and an end (`enqueue_front`/`enqueue_back`).
    Enqueue,
    /// Runs inside `schedule()`; must reach a `pick`.
    PickNext,
    /// Runs on each timer tick on a busy CPU (`task` = the running task).
    Tick,
    /// Runs once per task, before its first enqueue (`task` = the child).
    OnFork,
}

impl HookKind {
    /// All hooks, in fixed order (indexes into [`Program::hooks`]).
    pub const ALL: [HookKind; 4] = [
        HookKind::Enqueue,
        HookKind::PickNext,
        HookKind::Tick,
        HookKind::OnFork,
    ];

    /// The hook's source-level name.
    pub fn name(self) -> &'static str {
        match self {
            HookKind::Enqueue => "enqueue",
            HookKind::PickNext => "pick_next",
            HookKind::Tick => "tick",
            HookKind::OnFork => "on_fork",
        }
    }

    /// Index into [`Program::hooks`].
    pub fn index(self) -> usize {
        match self {
            HookKind::Enqueue => 0,
            HookKind::PickNext => 1,
            HookKind::Tick => 2,
            HookKind::OnFork => 3,
        }
    }

    /// Parses a hook name.
    pub fn from_name(s: &str) -> Option<HookKind> {
        HookKind::ALL.iter().copied().find(|h| h.name() == s)
    }
}

/// How many run-queue lists the policy wants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ListsDecl {
    /// A fixed bank of `n` lists (1..=64).
    Fixed(usize),
    /// One list per CPU (`nr_lists == nr_cpus` at load time).
    PerCpu,
}

impl ListsDecl {
    /// Resolves the declaration to a concrete list count.
    pub fn count(self, nr_cpus: usize) -> usize {
        match self {
            ListsDecl::Fixed(n) => n,
            ListsDecl::PerCpu => nr_cpus,
        }
    }
}

/// A parsed (not yet verified) policy program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Declared name (`policy <name>`), used in reports as
    /// `policy:<name>`.
    pub name: String,
    /// List-bank declaration.
    pub lists: ListsDecl,
    /// Hook bodies, indexed by [`HookKind::index`]; `None` = not defined.
    pub hooks: [Option<Block>; 4],
    /// Static instruction count per hook, filled in by the verifier
    /// (zero until verified).
    pub static_insns: [u64; 4],
}

impl Program {
    /// The body of `hook`, if defined.
    pub fn hook(&self, hook: HookKind) -> Option<&Block> {
        self.hooks[hook.index()].as_ref()
    }

    /// Total static instruction count across all hooks (after
    /// verification).
    pub fn total_static_insns(&self) -> u64 {
        self.static_insns.iter().sum()
    }
}

/// A `{ ... }` statement sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `let x = expr` — declares a local.
    Let {
        /// Variable name.
        name: String,
        /// Initializer.
        expr: Expr,
        /// Source position.
        span: Span,
    },
    /// `x = expr` — assigns an existing local.
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        expr: Expr,
        /// Source position.
        span: Span,
    },
    /// `if expr { ... } else { ... }` (condition is an int; nonzero =
    /// true).
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Block,
        /// Optional else-branch.
        els: Option<Block>,
        /// Source position.
        span: Span,
    },
    /// `repeat N { ... }` — a literal-bounded loop.
    Repeat {
        /// Literal iteration count (verifier: 1..=1024).
        count: u32,
        /// Loop body.
        body: Block,
        /// Source position.
        span: Span,
    },
    /// `foreach t in list(expr) { ... }` — iterate a snapshot of one
    /// run-queue list, front to back.
    Foreach {
        /// Loop variable (task-typed).
        var: String,
        /// List index expression (taken modulo `nr_lists`).
        list: Expr,
        /// Loop body.
        body: Block,
        /// Source position.
        span: Span,
    },
    /// `break` — leaves the innermost loop.
    Break {
        /// Source position.
        span: Span,
    },
    /// `pick expr` — ends `pick_next` with the chosen task.
    Pick {
        /// The chosen task.
        expr: Expr,
        /// Source position.
        span: Span,
    },
    /// `enqueue_front(expr)` / `enqueue_back(expr)` — decide the enqueue
    /// placement (list index, end). The host performs the actual insert
    /// after the hook completes; the last placement executed wins.
    Place {
        /// Front (true) or back (false) of the list.
        front: bool,
        /// List index expression (taken modulo `nr_lists`).
        list: Expr,
        /// Source position.
        span: Span,
    },
    /// `requeue_back(expr)` — ask the host to move a task to the back of
    /// its current list *after* the decision completes (`pick_next`
    /// only). This is how a policy expresses rotation: `pick` itself
    /// never reorders a list (the baseline keeps picked tasks in place),
    /// so a round-robin policy requeues the task it is about to pick.
    Requeue {
        /// The task to move.
        task: Expr,
        /// Source position.
        span: Span,
    },
    /// `set_counter(task, expr)` — overwrite a task's quantum counter,
    /// clamped to `[0, 2 * priority]` (`tick`/`on_fork` hooks only).
    SetCounter {
        /// The task.
        task: Expr,
        /// The new counter value.
        value: Expr,
        /// Source position.
        span: Span,
    },
    /// `recalc()` — run the system-wide counter-recalculation loop
    /// (charged per live task, exactly like the native schedulers).
    Recalc {
        /// Source position.
        span: Span,
    },
}

impl Stmt {
    /// The statement's source position.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Repeat { span, .. }
            | Stmt::Foreach { span, .. }
            | Stmt::Break { span }
            | Stmt::Pick { span, .. }
            | Stmt::Place { span, .. }
            | Stmt::Requeue { span, .. }
            | Stmt::SetCounter { span, .. }
            | Stmt::Recalc { span } => *span,
        }
    }
}

/// Binary operators (comparisons yield 0/1 ints).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (division by zero yields 0 — total semantics).
    Div,
    /// `%` (modulo zero yields 0 — total semantics).
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinOp {
    /// Whether this operator compares (operands may be tasks for
    /// `==`/`!=`; result is always an int).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// The host functions a policy may call. Signatures are fixed; the
/// verifier checks arity and argument types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostFn {
    /// `goodness(t)` — full dynamic goodness of `t` against the deciding
    /// CPU and `prev`'s mm; charges one `GoodnessEval` and counts one
    /// examined task (`pick_next` only).
    Goodness,
    /// `prev_goodness()` — goodness of `prev`, consuming its
    /// `SCHED_YIELD` bit on first call (returns 0 that once); charges
    /// like `goodness` (`pick_next` only).
    PrevGoodness,
    /// `static_goodness(t)` — `counter + priority` (free).
    StaticGoodness,
    /// `counter(t)` — remaining quantum ticks.
    Counter,
    /// `priority(t)` — static priority.
    Priority,
    /// `rt_priority(t)` — real-time priority.
    RtPriority,
    /// `is_rt(t)` — 1 for `SCHED_FIFO`/`SCHED_RR` tasks.
    IsRt,
    /// `processor(t)` — the CPU the task last ran on.
    Processor,
    /// `same_mm(t)` — 1 if `t` shares `prev`'s address space
    /// (`pick_next` only).
    SameMm,
    /// `has_cpu(t)` — 1 while `t` executes on a processor.
    HasCpu,
    /// `runnable(t)` — 1 if `t` is a live, runnable, non-idle task.
    Runnable,
    /// `can_schedule(t)` — the kernel's scan filter: SMP skips tasks
    /// running anywhere, UP skips only `prev` (`pick_next` only).
    CanSchedule,
    /// `list_len(i)` — tasks currently linked in list `i`.
    ListLen,
    /// `list_head(i)` — first task of list `i`, or `nil`.
    ListHead,
}

impl HostFn {
    /// Resolves a source name.
    pub fn from_name(s: &str) -> Option<HostFn> {
        Some(match s {
            "goodness" => HostFn::Goodness,
            "prev_goodness" => HostFn::PrevGoodness,
            "static_goodness" => HostFn::StaticGoodness,
            "counter" => HostFn::Counter,
            "priority" => HostFn::Priority,
            "rt_priority" => HostFn::RtPriority,
            "is_rt" => HostFn::IsRt,
            "processor" => HostFn::Processor,
            "same_mm" => HostFn::SameMm,
            "has_cpu" => HostFn::HasCpu,
            "runnable" => HostFn::Runnable,
            "can_schedule" => HostFn::CanSchedule,
            "list_len" => HostFn::ListLen,
            "list_head" => HostFn::ListHead,
            _ => return None,
        })
    }

    /// The function's source name.
    pub fn name(self) -> &'static str {
        match self {
            HostFn::Goodness => "goodness",
            HostFn::PrevGoodness => "prev_goodness",
            HostFn::StaticGoodness => "static_goodness",
            HostFn::Counter => "counter",
            HostFn::Priority => "priority",
            HostFn::RtPriority => "rt_priority",
            HostFn::IsRt => "is_rt",
            HostFn::Processor => "processor",
            HostFn::SameMm => "same_mm",
            HostFn::HasCpu => "has_cpu",
            HostFn::Runnable => "runnable",
            HostFn::CanSchedule => "can_schedule",
            HostFn::ListLen => "list_len",
            HostFn::ListHead => "list_head",
        }
    }
}

/// The context-provided named values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Builtin {
    /// The deciding CPU (`pick_next`, `tick`).
    Cpu,
    /// The outgoing task (`pick_next`).
    Prev,
    /// This CPU's idle task (`pick_next`); picking it idles the CPU.
    Idle,
    /// The subject task (`enqueue`, `tick`, `on_fork`).
    Task,
    /// The null task handle.
    Nil,
    /// Number of CPUs.
    NrCpus,
    /// Number of run-queue lists in this policy's bank.
    NrLists,
    /// Tasks currently accounted to the run queue.
    NrRunning,
}

impl Builtin {
    /// Resolves a source name.
    pub fn from_name(s: &str) -> Option<Builtin> {
        Some(match s {
            "cpu" => Builtin::Cpu,
            "prev" => Builtin::Prev,
            "idle" => Builtin::Idle,
            "task" => Builtin::Task,
            "nil" => Builtin::Nil,
            "nr_cpus" => Builtin::NrCpus,
            "nr_lists" => Builtin::NrLists,
            "nr_running" => Builtin::NrRunning,
            _ => return None,
        })
    }

    /// The builtin's source name.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Cpu => "cpu",
            Builtin::Prev => "prev",
            Builtin::Idle => "idle",
            Builtin::Task => "task",
            Builtin::Nil => "nil",
            Builtin::NrCpus => "nr_cpus",
            Builtin::NrLists => "nr_lists",
            Builtin::NrRunning => "nr_running",
        }
    }
}

/// One expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// An integer literal.
    Int(i64, Span),
    /// A local variable reference.
    Var(String, Span),
    /// A context-provided value.
    Builtin(Builtin, Span),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source position.
        span: Span,
    },
    /// A host-function call.
    Call {
        /// The function.
        func: HostFn,
        /// Arguments.
        args: Vec<Expr>,
        /// Source position.
        span: Span,
    },
}

impl Expr {
    /// The expression's source position.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s) | Expr::Var(_, s) | Expr::Builtin(_, s) => *s,
            Expr::Binary { span, .. } | Expr::Call { span, .. } => *span,
        }
    }
}
