//! The `.pol` tokenizer.
//!
//! Whitespace-insensitive; `#` starts a comment that runs to end of line.
//! Every token carries its 1-based line/column so later stages can point
//! diagnostics at it.

use crate::ast::Span;
use crate::PolicyError;

/// One token kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`policy`, `hook`, `let`, names, ...).
    Ident(String),
    /// A non-negative integer literal.
    Int(i64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// End of input.
    Eof,
}

impl Tok {
    /// Human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("'{s}'"),
            Tok::Int(n) => format!("integer {n}"),
            Tok::LBrace => "'{'".into(),
            Tok::RBrace => "'}'".into(),
            Tok::LParen => "'('".into(),
            Tok::RParen => "')'".into(),
            Tok::Comma => "','".into(),
            Tok::Assign => "'='".into(),
            Tok::EqEq => "'=='".into(),
            Tok::Ne => "'!='".into(),
            Tok::Lt => "'<'".into(),
            Tok::Le => "'<='".into(),
            Tok::Gt => "'>'".into(),
            Tok::Ge => "'>='".into(),
            Tok::Plus => "'+'".into(),
            Tok::Minus => "'-'".into(),
            Tok::Star => "'*'".into(),
            Tok::Slash => "'/'".into(),
            Tok::Percent => "'%'".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub span: Span,
}

/// Tokenizes a whole source string.
///
/// # Errors
///
/// [`PolicyError`] on an unexpected character or an integer literal that
/// does not fit `i64`.
pub fn lex(src: &str) -> Result<Vec<Token>, PolicyError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut chars = src.chars().peekable();
    macro_rules! push {
        ($tok:expr, $span:expr) => {
            out.push(Token {
                tok: $tok,
                span: $span,
            })
        };
    }
    while let Some(&c) = chars.peek() {
        let span = Span::new(line, col);
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                chars.next();
                col += 1;
            }
            '#' => {
                // Comment to end of line.
                while let Some(&c2) = chars.peek() {
                    if c2 == '\n' {
                        break;
                    }
                    chars.next();
                    col += 1;
                }
            }
            '{' => {
                chars.next();
                col += 1;
                push!(Tok::LBrace, span);
            }
            '}' => {
                chars.next();
                col += 1;
                push!(Tok::RBrace, span);
            }
            '(' => {
                chars.next();
                col += 1;
                push!(Tok::LParen, span);
            }
            ')' => {
                chars.next();
                col += 1;
                push!(Tok::RParen, span);
            }
            ',' => {
                chars.next();
                col += 1;
                push!(Tok::Comma, span);
            }
            '+' => {
                chars.next();
                col += 1;
                push!(Tok::Plus, span);
            }
            '-' => {
                chars.next();
                col += 1;
                push!(Tok::Minus, span);
            }
            '*' => {
                chars.next();
                col += 1;
                push!(Tok::Star, span);
            }
            '/' => {
                chars.next();
                col += 1;
                push!(Tok::Slash, span);
            }
            '%' => {
                chars.next();
                col += 1;
                push!(Tok::Percent, span);
            }
            '=' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(Tok::EqEq, span);
                } else {
                    push!(Tok::Assign, span);
                }
            }
            '!' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(Tok::Ne, span);
                } else {
                    return Err(PolicyError::new(span, "expected '=' after '!'"));
                }
            }
            '<' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(Tok::Le, span);
                } else {
                    push!(Tok::Lt, span);
                }
            }
            '>' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(Tok::Ge, span);
                } else {
                    push!(Tok::Gt, span);
                }
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if !d.is_ascii_digit() {
                        break;
                    }
                    chars.next();
                    col += 1;
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add((d as u8 - b'0') as i64))
                        .ok_or_else(|| {
                            PolicyError::new(span, "integer literal does not fit 64 bits")
                        })?;
                }
                push!(Tok::Int(n), span);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if !(d.is_ascii_alphanumeric() || d == '_') {
                        break;
                    }
                    chars.next();
                    col += 1;
                    s.push(d);
                }
                push!(Tok::Ident(s), span);
            }
            other => {
                return Err(PolicyError::new(
                    span,
                    format!("unexpected character '{}'", other.escape_default()),
                ));
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span::new(line, col),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_program_skeleton() {
        let toks = lex("policy p\nlists 1\nhook pick_next { pick idle }").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(matches!(kinds[0], Tok::Ident(s) if s == "policy"));
        assert!(matches!(kinds[3], Tok::Int(1)));
        assert_eq!(*kinds.last().unwrap(), &Tok::Eof);
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = lex("# header\npolicy p # trailing\nlists 2").unwrap();
        assert_eq!(toks[0].span, Span::new(2, 1));
        assert!(matches!(&toks[0].tok, Tok::Ident(s) if s == "policy"));
        assert_eq!(toks[2].span.line, 3);
    }

    #[test]
    fn two_char_operators() {
        let toks = lex("== != <= >= < > =").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert_eq!(
            kinds[..7],
            [
                &Tok::EqEq,
                &Tok::Ne,
                &Tok::Le,
                &Tok::Ge,
                &Tok::Lt,
                &Tok::Gt,
                &Tok::Assign
            ]
        );
    }

    #[test]
    fn bad_character_is_a_spanned_error() {
        let err = lex("policy p\n  @").unwrap_err();
        assert_eq!(err.span, Span::new(2, 3));
        assert!(err.msg.contains('@'));
    }

    #[test]
    fn bare_bang_is_rejected() {
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn huge_integer_is_rejected_not_panicking() {
        let err = lex("99999999999999999999999999").unwrap_err();
        assert!(err.msg.contains("64 bits"));
    }
}
