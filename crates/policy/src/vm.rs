//! The bytecode VM: the default execution backend for `.pol` hooks.
//!
//! `run_chunk` executes one compiled hook body ([`Chunk`]) with the
//! tree-walking interpreter's exact observable semantics:
//!
//! * **Same decisions** — picks, placements, and requeues are computed
//!   by the identical shared host semantics (`host_call`, `binop`, the
//!   `recalc`/`set_counter` effects in [`sched`](crate::sched)), so the
//!   two backends cannot drift.
//! * **Same charges** — each instruction's batched
//!   [`cost`](crate::bytecode::Insn::cost) is added to the instruction
//!   count *before* the op runs; a blowout reports `insns == budget+1`
//!   exactly like the interpreter's one-at-a-time `charge()`, and the
//!   aborted hook has performed precisely the side effects the
//!   interpreter would have performed (only pure register traffic can
//!   sit between the interpreter's true trip point and the VM's
//!   op-boundary trip).
//! * **Same watchdog surface** — violations are returned through the
//!   same `HookRun` the machine's ejection logic consumes.
//!
//! The register file and the foreach iterator frames live in a
//! `VmState` owned by the scheduler and reused across decisions, so
//! steady-state dispatch performs no heap allocation (list snapshots
//! walk `Lists::first`/`next_task` into retained buffers).

use elsc_ktask::{Lists, Tid};
use elsc_sched_api::{goodness_ignoring_yield, PolicyViolation, SchedCtx};

use crate::ast::HostFn;
use crate::bytecode::{Chunk, Op, BINOPS, BUILTIN_REGS, HOSTFNS, NO_ARG};
use crate::sched::{
    binop, charge_goodness_eval, host_call, recalc_effect, scan_filter_pred, set_counter_effect,
    wrap_list, Env, HookRun, Val,
};

/// One `foreach` nesting level: the snapshot taken at `for.begin` and
/// the walk cursor.
#[derive(Default)]
struct IterFrame {
    snap: Vec<Tid>,
    idx: usize,
}

/// Reusable VM execution state (register file + iterator frames),
/// persisted in the scheduler across hook invocations.
#[derive(Default)]
pub(crate) struct VmState {
    regs: Vec<Val>,
    iters: Vec<IterFrame>,
}

/// Executes one compiled hook body against the host context.
pub(crate) fn run_chunk(
    chunk: &Chunk,
    lists: &Lists,
    ctx: &mut SchedCtx<'_>,
    mut env: Env,
    budget: u64,
    state: &mut VmState,
) -> HookRun {
    debug_assert!(chunk.num_regs >= BUILTIN_REGS);
    if state.regs.len() < chunk.num_regs as usize {
        state.regs.resize(chunk.num_regs as usize, Val::Int(0));
    }
    if state.iters.len() < chunk.num_iters as usize {
        state
            .iters
            .resize_with(chunk.num_iters as usize, IterFrame::default);
    }
    // Builtins are invocation constants: pre-load them once so a
    // builtin reference costs one register read.
    state.regs[0] = Val::Int(env.cpu as i64);
    state.regs[1] = Val::Task(env.prev);
    state.regs[2] = Val::Task(env.idle);
    state.regs[3] = Val::Task(env.task);
    state.regs[4] = Val::Task(None);
    state.regs[5] = Val::Int(env.nr_cpus as i64);
    state.regs[6] = Val::Int(lists.nr_lists() as i64);
    state.regs[7] = Val::Int(env.nr_running as i64);

    let mut insns: u64 = 0;
    let mut picked: Option<Option<Tid>> = None;
    let mut placed: Option<(usize, bool)> = None;
    let mut requeued: Vec<Tid> = Vec::new();
    let mut pc: usize = 0;

    // Ends the run with `$v` as the violation (side effects performed
    // so far — placements, requeues, charges — are kept, exactly like
    // an interpreter abort).
    macro_rules! finish {
        ($v:expr) => {
            return HookRun {
                insns,
                picked,
                placed,
                requeued,
                violation: $v,
            }
        };
    }
    // A budget blowout: the interpreter charges one node at a time and
    // always trips at exactly `budget + 1`, so the batched count is
    // normalized to that same value.
    macro_rules! blown {
        () => {{
            insns = budget + 1;
            finish!(Some(PolicyViolation::BudgetExhausted {
                insns: budget + 1,
                budget,
            }));
        }};
    }
    macro_rules! int {
        ($v:expr) => {
            match $v {
                Val::Int(n) => n,
                Val::Task(_) => finish!(Some(PolicyViolation::StateCorrupt)),
            }
        };
    }
    macro_rules! task {
        ($v:expr) => {
            match $v {
                Val::Task(t) => t,
                Val::Int(_) => finish!(Some(PolicyViolation::StateCorrupt)),
            }
        };
    }

    loop {
        let i = chunk.code[pc];
        if i.cost != 0 {
            insns += u64::from(i.cost);
            if insns > budget {
                blown!();
            }
        }
        let a = i.a as usize;
        let b = i.b as usize;
        match i.op {
            Op::Const | Op::RepeatInit => {
                state.regs[a] = Val::Int(chunk.consts[b]);
            }
            Op::Mov => {
                state.regs[a] = state.regs[b];
            }
            Op::Bin => {
                let l = state.regs[b];
                let r = state.regs[i.c as usize];
                match binop(BINOPS[i.d as usize], l, r) {
                    Ok(v) => state.regs[a] = v,
                    Err(v) => finish!(Some(v)),
                }
            }
            Op::Jmp => {
                pc = a;
                continue;
            }
            Op::Jz => {
                if int!(state.regs[a]) == 0 {
                    pc = b;
                    continue;
                }
            }
            Op::Call => {
                let arg = (i.b != NO_ARG).then(|| state.regs[b]);
                state.regs[a] = host_call(ctx, lists, &mut env, HOSTFNS[i.d as usize], arg);
            }
            Op::RepeatNext => {
                let n = int!(state.regs[a]) - 1;
                state.regs[a] = Val::Int(n);
                if n > 0 {
                    pc = b;
                    continue;
                }
            }
            Op::ForBegin => {
                let h = wrap_list(int!(state.regs[b]), lists.nr_lists());
                let frame = &mut state.iters[a];
                // Snapshot: hooks never mutate lists (placement and
                // rotation are deferred to the host), so the walk order
                // is the list order at hook entry.
                frame.snap.clear();
                frame.idx = 0;
                let mut cur = lists.first(h);
                while let Some(idx) = cur {
                    frame.snap.push(ctx.tasks.by_index(idx as usize).tid);
                    cur = lists.next_task(ctx.tasks, idx);
                }
            }
            Op::ForNext => {
                let frame = &mut state.iters[a];
                if frame.idx < frame.snap.len() {
                    let tid = frame.snap[frame.idx];
                    frame.idx += 1;
                    state.regs[b] = Val::Task(Some(tid));
                } else {
                    pc = i.c as usize;
                    continue;
                }
            }
            Op::Pick => {
                picked = Some(task!(state.regs[a]));
                finish!(None);
            }
            Op::Place => {
                // The last placement executed wins.
                placed = Some((wrap_list(int!(state.regs[a]), lists.nr_lists()), i.b == 1));
            }
            Op::Requeue => {
                if let Some(tid) = task!(state.regs[a]) {
                    requeued.push(tid);
                }
            }
            Op::SetCounter => {
                let t = task!(state.regs[a]);
                let v = int!(state.regs[b]);
                set_counter_effect(ctx, t, v);
            }
            Op::Recalc => {
                recalc_effect(ctx, &env);
            }
            Op::Halt => {
                finish!(None);
            }
            Op::ScanFilter => {
                // Pure predicate (can_schedule/runnable): no meter
                // charges, so fusing it costs nothing observably.
                let v = host_call(
                    ctx,
                    lists,
                    &mut env,
                    HOSTFNS[i.d as usize],
                    Some(state.regs[a]),
                );
                if int!(v) == 0 {
                    pc = b;
                    continue;
                }
            }
            Op::GtUpdate2 => {
                let g = int!(state.regs[a]);
                let best = int!(state.regs[b]);
                if g > best {
                    // The taken branch's interpreter charge: two
                    // assignment statements + two source nodes.
                    insns += 4;
                    if insns > budget {
                        blown!();
                    }
                    state.regs[b] = Val::Int(g);
                    state.regs[i.c as usize] = state.regs[i.d as usize];
                }
            }
            Op::PickIfNe0 => {
                if int!(state.regs[a]) != 0 {
                    // The taken pick's interpreter charge: the pick
                    // statement + its operand node.
                    insns += 2;
                    if insns > budget {
                        blown!();
                    }
                    picked = Some(task!(state.regs[b]));
                    finish!(None);
                }
            }
            Op::ScanBest => {
                // The whole selection loop in one native walk. No
                // snapshot is needed: hooks defer every list mutation
                // to the host, and the filter/score host calls only
                // read. Charges follow the interpreter's per-node
                // schedule, with the budget checked before each
                // side-effecting host call (the score's meter charge
                // and examined-task count must not happen on a decision
                // the interpreter would already have aborted).
                let filter = HOSTFNS[(i.d & 0xff) as usize];
                let score = HOSTFNS[(i.d >> 8) as usize];
                let h = wrap_list(int!(state.regs[a]), lists.nr_lists());
                let mut cur = lists.first(h);
                if score == HostFn::Goodness {
                    // The hot shape (goodness scoring): filter,
                    // goodness, and the best-so-far compare are
                    // evaluated straight off the task slot, through
                    // the same shared predicate/charge helpers
                    // `host_call` itself uses. The best-so-far value
                    // is cached in a local after its first (lazily
                    // type-checked, like the interpreter) register
                    // read; the registers are updated on every new
                    // best, so a mid-scan budget blowout leaves them
                    // exactly where the interpreter would.
                    let smp = ctx.cfg.smp;
                    let cpu = env.cpu;
                    let prev_mm = env.prev_mm;
                    let mut best: Option<i64> = None;
                    while let Some(idx) = cur {
                        let t = ctx.tasks.by_index(idx as usize);
                        let tid = t.tid;
                        let pass = scan_filter_pred(filter, smp, t, tid, env.prev, env.idle);
                        // Pure, so safe to compute ahead of the
                        // pre-score budget check.
                        let g = if pass {
                            i64::from(goodness_ignoring_yield(t, cpu, prev_mm))
                        } else {
                            0
                        };
                        cur = lists.next_task(ctx.tasks, idx);
                        // Guard if-stmt + call node + arg node.
                        insns += 3;
                        if insns > budget {
                            blown!();
                        }
                        if !pass {
                            continue;
                        }
                        // let-stmt + call node + arg node, then the
                        // score's observable effects.
                        insns += 3;
                        if insns > budget {
                            blown!();
                        }
                        charge_goodness_eval(ctx, cpu);
                        // Inner if-stmt + Gt node + both operand nodes.
                        insns += 4;
                        if insns > budget {
                            blown!();
                        }
                        let best_val = match best {
                            Some(v) => v,
                            None => int!(state.regs[b]),
                        };
                        if g > best_val {
                            // Two assignments + their source nodes.
                            insns += 4;
                            if insns > budget {
                                blown!();
                            }
                            best = Some(g);
                            state.regs[b] = Val::Int(g);
                            state.regs[i.c as usize] = Val::Task(Some(tid));
                        } else {
                            best = Some(best_val);
                        }
                    }
                } else {
                    while let Some(idx) = cur {
                        let tid = ctx.tasks.by_index(idx as usize).tid;
                        cur = lists.next_task(ctx.tasks, idx);
                        // Guard if-stmt + call node + arg node.
                        insns += 3;
                        if insns > budget {
                            blown!();
                        }
                        let t = Some(Val::Task(Some(tid)));
                        if int!(host_call(ctx, lists, &mut env, filter, t)) == 0 {
                            continue;
                        }
                        // let-stmt + call node + arg node, then the score.
                        insns += 3;
                        if insns > budget {
                            blown!();
                        }
                        let g = host_call(ctx, lists, &mut env, score, t);
                        // Inner if-stmt + Gt node + both operand nodes.
                        insns += 4;
                        if insns > budget {
                            blown!();
                        }
                        let g = int!(g);
                        if g > int!(state.regs[b]) {
                            // Two assignments + their source nodes.
                            insns += 4;
                            if insns > budget {
                                blown!();
                            }
                            state.regs[b] = Val::Int(g);
                            state.regs[i.c as usize] = Val::Task(Some(tid));
                        }
                    }
                }
            }
        }
        pc += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{binop_index, hostfn_index, Insn};
    use crate::sched::PolicyScheduler;
    use elsc_ktask::{CpuId, MmId, TaskSpec, TaskTable};
    use elsc_sched_api::SchedConfig;
    use elsc_simcore::{CostModel, CycleMeter};
    use elsc_stats::SchedStats;

    use crate::ast::{BinOp, HostFn};

    /// A minimal host rig for driving hand-built chunks.
    struct Rig {
        tasks: TaskTable,
        stats: SchedStats,
        meter: CycleMeter,
        costs: CostModel,
        cfg: SchedConfig,
        lists: Lists,
        state: VmState,
    }

    impl Rig {
        fn new() -> Rig {
            Rig {
                tasks: TaskTable::new(),
                stats: SchedStats::new(1),
                meter: CycleMeter::new(),
                costs: CostModel::default(),
                cfg: SchedConfig::up(),
                lists: Lists::new(2),
                state: VmState::default(),
            }
        }

        fn spawn(&mut self, name: &'static str) -> Tid {
            self.tasks.spawn(&TaskSpec::named(name))
        }

        fn env(&self, cpu: CpuId) -> Env {
            Env {
                cpu,
                prev: None,
                idle: None,
                task: None,
                prev_mm: MmId::KERNEL,
                prev_yielded: false,
                nr_running: 0,
                nr_cpus: 1,
            }
        }

        fn run(&mut self, chunk: &Chunk, env: Env, budget: u64) -> HookRun {
            let mut ctx = SchedCtx {
                tasks: &mut self.tasks,
                stats: &mut self.stats,
                meter: &mut self.meter,
                costs: &self.costs,
                cfg: &self.cfg,
                probe: None,
                locks: None,
            };
            run_chunk(chunk, &self.lists, &mut ctx, env, budget, &mut self.state)
        }
    }

    fn insn(op: Op, cost: u16, a: u16, b: u16, c: u16, d: u16) -> Insn {
        Insn {
            op,
            cost,
            a,
            b,
            c,
            d,
        }
    }

    fn chunk(code: Vec<Insn>, consts: Vec<i64>, num_regs: u16, num_iters: u8) -> Chunk {
        Chunk {
            code,
            consts,
            num_regs,
            num_iters,
        }
    }

    #[test]
    fn const_mov_bin_compute_and_set_counter_applies() {
        // r8 = 20; r9 = 2; r11 = r9; r10 = r8 + r11; set_counter(task, r10)
        // (22 stays under the set_counter clamp of 2 * priority = 40.)
        let c = chunk(
            vec![
                insn(Op::Const, 1, 8, 0, 0, 0),
                insn(Op::Const, 1, 9, 1, 0, 0),
                insn(Op::Mov, 1, 11, 9, 0, 0),
                insn(Op::Bin, 1, 10, 8, 11, binop_index(BinOp::Add)),
                insn(Op::SetCounter, 1, 3, 10, 0, 0),
                insn(Op::Halt, 0, 0, 0, 0, 0),
            ],
            vec![20, 2],
            12,
            0,
        );
        let mut rig = Rig::new();
        let t = rig.spawn("t");
        let mut env = rig.env(0);
        env.task = Some(t);
        let run = rig.run(&c, env, 1000);
        assert_eq!(run.violation, None);
        assert_eq!(run.insns, 5);
        assert_eq!(rig.tasks.task(t).counter, 22);
    }

    #[test]
    fn jz_takes_the_zero_branch_and_jmp_skips() {
        // r8 = 0; jz r8 -> 4 (skips the bad set_counter); halt
        let c = chunk(
            vec![
                insn(Op::Const, 1, 8, 0, 0, 0),
                insn(Op::Jz, 1, 8, 4, 0, 0),
                insn(Op::Const, 1, 9, 1, 0, 0),
                insn(Op::SetCounter, 1, 3, 9, 0, 0),
                insn(Op::Halt, 0, 0, 0, 0, 0),
            ],
            vec![0, 7],
            10,
            0,
        );
        let mut rig = Rig::new();
        let t = rig.spawn("t");
        let before = rig.tasks.task(t).counter;
        let mut env = rig.env(0);
        env.task = Some(t);
        let run = rig.run(&c, env, 1000);
        assert_eq!(run.violation, None);
        assert_eq!(
            rig.tasks.task(t).counter,
            before,
            "branch skipped the write"
        );
    }

    #[test]
    fn repeat_ops_loop_the_declared_count() {
        // ctr = 5; body: r9 = r9 + 1 (r9 starts 0 via const); repeat.next
        let c = chunk(
            vec![
                insn(Op::Const, 1, 9, 0, 0, 0),
                insn(Op::RepeatInit, 1, 8, 1, 0, 0),
                insn(Op::Const, 1, 10, 2, 0, 0),
                insn(Op::Bin, 1, 9, 9, 10, binop_index(BinOp::Add)),
                insn(Op::RepeatNext, 0, 8, 2, 0, 0),
                insn(Op::SetCounter, 1, 3, 9, 0, 0),
                insn(Op::Halt, 0, 0, 0, 0, 0),
            ],
            vec![0, 5, 1],
            11,
            0,
        );
        let mut rig = Rig::new();
        let t = rig.spawn("t");
        let mut env = rig.env(0);
        env.task = Some(t);
        let run = rig.run(&c, env, 1000);
        assert_eq!(run.violation, None);
        assert_eq!(rig.tasks.task(t).counter, 5, "body ran exactly count times");
    }

    #[test]
    fn foreach_ops_walk_the_snapshot_in_list_order() {
        // foreach t in list(0) { requeue_back(t) } — observe the order.
        let c = chunk(
            vec![
                insn(Op::Const, 1, 8, 0, 0, 0),
                insn(Op::ForBegin, 1, 0, 8, 0, 0),
                insn(Op::ForNext, 0, 0, 9, 5, 0),
                insn(Op::Requeue, 1, 9, 0, 0, 0),
                insn(Op::Jmp, 0, 2, 0, 0, 0),
                insn(Op::Halt, 0, 0, 0, 0, 0),
            ],
            vec![0],
            10,
            1,
        );
        let mut rig = Rig::new();
        let a = rig.spawn("a");
        let b = rig.spawn("b");
        rig.lists.insert_back(&mut rig.tasks, 0, a);
        rig.lists.insert_back(&mut rig.tasks, 0, b);
        let env = rig.env(0);
        let run = rig.run(&c, env, 1000);
        assert_eq!(run.violation, None);
        assert_eq!(run.requeued, vec![a, b], "front-to-back walk");
    }

    #[test]
    fn pick_halts_and_place_last_wins() {
        // place back 0; place front 1; pick task
        let c = chunk(
            vec![
                insn(Op::Const, 1, 8, 0, 0, 0),
                insn(Op::Place, 1, 8, 0, 0, 0),
                insn(Op::Const, 1, 8, 1, 0, 0),
                insn(Op::Place, 1, 8, 1, 0, 0),
                insn(Op::Pick, 1, 3, 0, 0, 0),
                insn(Op::SetCounter, 1, 3, 8, 0, 0), // unreachable
                insn(Op::Halt, 0, 0, 0, 0, 0),
            ],
            vec![0, 1],
            9,
            0,
        );
        let mut rig = Rig::new();
        let t = rig.spawn("t");
        let before = rig.tasks.task(t).counter;
        let mut env = rig.env(0);
        env.task = Some(t);
        let run = rig.run(&c, env, 1000);
        assert_eq!(run.violation, None);
        assert_eq!(run.picked, Some(Some(t)));
        assert_eq!(run.placed, Some((1, true)), "last placement wins");
        assert_eq!(run.insns, 5, "nothing after pick executes");
        assert_eq!(rig.tasks.task(t).counter, before);
    }

    #[test]
    fn call_dispatches_host_functions_and_counts_charges() {
        // r8 = counter(task); set_counter(task, r8 + 1)
        let c = chunk(
            vec![
                insn(Op::Call, 2, 8, 3, 0, hostfn_index(HostFn::Counter)),
                insn(Op::Const, 1, 9, 0, 0, 0),
                insn(Op::Bin, 1, 10, 8, 9, binop_index(BinOp::Add)),
                insn(Op::SetCounter, 1, 3, 10, 0, 0),
                insn(Op::Halt, 0, 0, 0, 0, 0),
            ],
            vec![1],
            11,
            0,
        );
        let mut rig = Rig::new();
        let t = rig.spawn("t");
        let before = rig.tasks.task(t).counter;
        let mut env = rig.env(0);
        env.task = Some(t);
        let run = rig.run(&c, env, 1000);
        assert_eq!(run.violation, None);
        assert_eq!(rig.tasks.task(t).counter, before + 1);
    }

    #[test]
    fn budget_blowout_normalizes_to_budget_plus_one() {
        // An infinite loop of cost-1 ops must trip at exactly budget+1
        // even though the batch boundaries don't align with the budget.
        let c = chunk(
            vec![insn(Op::Const, 3, 8, 0, 0, 0), insn(Op::Jmp, 0, 0, 0, 0, 0)],
            vec![0],
            9,
            0,
        );
        let mut rig = Rig::new();
        let env = rig.env(0);
        let run = rig.run(&c, env, 10);
        assert_eq!(
            run.violation,
            Some(PolicyViolation::BudgetExhausted {
                insns: 11,
                budget: 10
            })
        );
        assert_eq!(
            run.insns, 11,
            "insns normalized exactly like the interpreter"
        );
    }

    #[test]
    fn reg_pol_compiles_to_fused_superinstructions() {
        let sched =
            PolicyScheduler::load_str(include_str!("../../../policies/reg.pol"), 1).unwrap();
        let chunk = sched
            .compiled()
            .expect("bundled policy compiles")
            .chunk(crate::ast::HookKind::PickNext)
            .expect("reg.pol defines pick_next");
        let has = |op: Op| chunk.code.iter().any(|i| i.op == op);
        assert!(has(Op::ScanFilter), "prev-check guard fused");
        assert!(has(Op::ScanBest), "the whole selection loop fused");
        assert!(has(Op::PickIfNe0), "conditional pick fused");
        assert!(
            !has(Op::ForBegin) && !has(Op::GtUpdate2),
            "the scan loop is absorbed into scan.best"
        );
    }

    /// The fused selection loop picks the same winner, charges the same
    /// instruction schedule, and aborts at the same budget cutoffs as
    /// the unfused path (which the differential suite pins against the
    /// interpreter).
    #[test]
    fn scan_best_walks_the_list_and_tracks_the_max() {
        // r8 = list 0; r9 = best (-1000); r10 = winner (nil);
        // scan.best; halt — then inspect r9/r10 via set_counter/requeue.
        let c = chunk(
            vec![
                insn(Op::Const, 1, 8, 0, 0, 0),
                insn(
                    Op::ScanBest,
                    2,
                    8,
                    9,
                    10,
                    hostfn_index(HostFn::CanSchedule) | (hostfn_index(HostFn::Counter) << 8),
                ),
                insn(Op::Requeue, 1, 10, 0, 0, 0),
                insn(Op::Halt, 0, 0, 0, 0, 0),
            ],
            vec![0],
            11,
            0,
        );
        let mut rig = Rig::new();
        let a = rig.spawn("a");
        let b = rig.spawn("b");
        rig.tasks.task_mut(a).counter = 3;
        rig.tasks.task_mut(b).counter = 9;
        rig.lists.insert_back(&mut rig.tasks, 0, a);
        rig.lists.insert_back(&mut rig.tasks, 0, b);
        let mut env = rig.env(0);
        env.nr_running = 2;
        // Seed best below both counters so each item updates it once.
        rig.state.regs.resize(11, Val::Int(0));
        rig.state.regs[9] = Val::Int(-1000);
        let run = rig.run(&c, env, 1000);
        assert_eq!(run.violation, None);
        assert_eq!(run.requeued, vec![b], "highest counter wins");
        // 1 (const) + 2 (scan entry) + per item 3+3+4, +4 on each new
        // best (both items beat the seed), + 1 (requeue).
        assert_eq!(run.insns, 1 + 2 + 2 * (3 + 3 + 4 + 4) + 1);

        // Budget cutoffs abort mid-walk with insns == budget + 1.
        for budget in 1..(1 + 2 + 2 * 14) {
            let mut rig2 = Rig::new();
            let a2 = rig2.spawn("a");
            rig2.tasks.task_mut(a2).counter = 3;
            rig2.lists.insert_back(&mut rig2.tasks, 0, a2);
            let env2 = rig2.env(0);
            let run = rig2.run(&c, env2, budget as u64);
            if let Some(PolicyViolation::BudgetExhausted { insns, .. }) = run.violation {
                assert_eq!(insns, budget as u64 + 1);
            }
        }
    }
}
