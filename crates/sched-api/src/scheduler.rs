//! The `Scheduler` trait: the kernel's scheduling entry points.
//!
//! The paper changed exactly five functions (§5.1): the four run-queue
//! manipulators and `schedule()` itself. This trait is that surface, so
//! the baseline and ELSC (and the §8 future-work designs) plug into the
//! same machine unchanged — the paper's design goal 1.

use elsc_ktask::{CpuId, TaskTable, Tid};
use elsc_obs::{EventBus, ObsEvent};
use elsc_simcore::{CostModel, CycleMeter};
use elsc_stats::SchedStats;

use crate::config::SchedConfig;
use crate::lockplan::{DomainLocker, LockPlan};

/// Everything a scheduler may touch during one call.
///
/// Bundling the borrows keeps trait method signatures stable and mirrors
/// the kernel, where all of this is ambient global state guarded by
/// `runqueue_lock`.
pub struct SchedCtx<'a> {
    /// All tasks in the system (`for_each_task` domain).
    pub tasks: &'a mut TaskTable,
    /// Statistics counters (the paper's proc-exported instrumentation).
    pub stats: &'a mut SchedStats,
    /// Cycle accumulator: every primitive the scheduler performs is
    /// charged here and later advances the CPU's virtual clock.
    pub meter: &'a mut CycleMeter,
    /// Per-primitive cycle costs.
    pub costs: &'a CostModel,
    /// Machine configuration.
    pub cfg: &'a SchedConfig,
    /// Observability probe: when attached, schedulers emit structured
    /// events (recalc entry/exit, ...) into it. `None` in unit tests and
    /// microbenches, where emission would be noise.
    pub probe: Option<&'a mut EventBus>,
    /// Lock-domain surface: when attached (SMP machine runs), a scheduler
    /// that is about to touch *another* CPU's run-queue state must first
    /// call [`SchedCtx::lock_queue_domain`] for that CPU. `None` in unit
    /// tests, microbenches, and UP builds, where locking is free anyway.
    pub locks: Option<&'a mut dyn DomainLocker>,
}

impl SchedCtx<'_> {
    /// Emits an observability event if a probe is attached; free
    /// otherwise.
    #[inline]
    pub fn emit(&mut self, event: ObsEvent) {
        if let Some(bus) = self.probe.as_deref_mut() {
            bus.emit(event);
        }
    }

    /// Ensures the lock domain guarding `queue_cpu`'s run queue is held
    /// before the scheduler touches that queue (a multi-queue steal, for
    /// example). No-op when the domain is already held, when no locking
    /// layer is attached, or under a [`LockPlan::Global`] plan (where the
    /// home domain already covers everything).
    ///
    /// The call reads `self.meter` to place the acquisition on the
    /// call's timeline, so charge all work *preceding* the queue access
    /// to the meter before calling this.
    #[inline]
    pub fn lock_queue_domain(&mut self, queue_cpu: CpuId) {
        let elapsed = self.meter.cycles();
        if let Some(l) = self.locks.as_deref_mut() {
            l.acquire_for_cpu(queue_cpu, elapsed);
        }
    }
}

/// Which execution engine runs a loaded `.pol` policy's hooks.
///
/// Both backends are charge-for-charge and decision-for-decision
/// equivalent (the policy crate's differential suite and the CI
/// cross-backend oracle sweep pin this); they differ only in wall-clock
/// speed. The enum lives here — not in the policy crate — so the
/// machine and the lab can configure a backend without depending on the
/// interpreter itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PolicyBackend {
    /// The PR 5 tree-walking interpreter: the reference semantics.
    Interp,
    /// The register-bytecode VM (compiled from the verified AST).
    #[default]
    Vm,
}

impl PolicyBackend {
    /// Static label used in reports, cell ids, and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            PolicyBackend::Interp => "interp",
            PolicyBackend::Vm => "vm",
        }
    }

    /// Parses a CLI/spec name (`interp` or `vm`).
    pub fn from_name(s: &str) -> Option<PolicyBackend> {
        match s {
            "interp" => Some(PolicyBackend::Interp),
            "vm" => Some(PolicyBackend::Vm),
            _ => None,
        }
    }
}

/// Metadata a loaded (interpreted) policy reports to the machine, so the
/// machine can announce it on the observability bus at boot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolicyLoadInfo {
    /// The policy's declared name (leaked to `'static` at load time).
    pub name: &'static str,
    /// Static instruction count across all hooks (the verifier's budget
    /// accounting).
    pub static_insns: u64,
    /// The runtime per-decision instruction budget in force.
    pub budget: u64,
    /// The execution backend the policy's hooks run on.
    pub backend: PolicyBackend,
}

/// Metadata a learned scheduler (`learned:<model>`, see `elsc-learn`)
/// reports to the machine, so the machine can announce the model at boot
/// and run the accuracy watchdog over it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LearnedInfo {
    /// The scheduler's reported name (`learned:<model stem>`, leaked to
    /// `'static` at load time).
    pub name: &'static str,
    /// Model architecture label (`"logreg"` or `"mlp"`).
    pub arch: &'static str,
}

/// A safety violation an interpreted policy committed, reported to the
/// machine's watchdog.
///
/// Native schedulers never produce these; the defaulted
/// [`Scheduler::take_violation`] returns `None`. The machine reacts by
/// *ejecting* the policy: swapping in the vanilla baseline scheduler and
/// emitting `PolicyEjected` on the observability bus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyViolation {
    /// A hook exceeded the per-decision instruction budget and was
    /// aborted; the interpreter substituted a safe default.
    BudgetExhausted {
        /// Instructions executed when the budget tripped.
        insns: u64,
        /// The budget that was in force.
        budget: u64,
    },
    /// `pick_next` chose a task that is not legally runnable on this CPU
    /// (not on the run queue, blocked, or running elsewhere).
    BadPick,
    /// The policy corrupted its own bookkeeping (host-side list state
    /// desynchronized); the interpreter recovered but the program is
    /// untrustworthy.
    StateCorrupt,
}

impl PolicyViolation {
    /// Static label used in obs events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyViolation::BudgetExhausted { .. } => "budget_exhausted",
            PolicyViolation::BadPick => "bad_pick",
            PolicyViolation::StateCorrupt => "state_corrupt",
        }
    }
}

/// A pluggable scheduler: the baseline, ELSC, or an experimental design.
///
/// # Contract
///
/// * `add_to_runqueue(t)` — `t` is runnable and not on the run queue;
///   afterwards `t.on_runqueue()` holds.
/// * `del_from_runqueue(t)` — `t` is on the run queue (possibly in the
///   ELSC "marked on-queue but off-list" state); afterwards
///   `t.on_runqueue()` is false.
/// * `move_first_runqueue` / `move_last_runqueue` — bias `t` within its
///   goodness ties (paper §5.1); `t` must be on the run queue *and*
///   currently linked in a list.
/// * `schedule(cpu, prev, idle)` — `prev` is the task leaving the CPU
///   (its `state` already reflects whether it remains runnable; its
///   `has_cpu` is still true). Returns the next task to run, which may be
///   `prev` or `idle`. On return the chosen task has `has_cpu == true`,
///   every other task has had a fair evaluation per the design's rules,
///   and all cycles consumed were charged to `ctx.meter`. The machine
///   sets `processor` afterwards (so it can detect migrations).
pub trait Scheduler {
    /// Human-readable name ("reg", "elsc", ...), used in reports.
    fn name(&self) -> &'static str;

    /// Places a newly-runnable task on the run queue.
    fn add_to_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid);

    /// Removes a task from the run queue.
    fn del_from_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid);

    /// Moves a task to the front of its goodness tie-break region.
    fn move_first_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid);

    /// Moves a task to the back of its goodness tie-break region.
    fn move_last_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid);

    /// Picks the next task to run on `cpu`.
    fn schedule(&mut self, ctx: &mut SchedCtx<'_>, cpu: CpuId, prev: Tid, idle: Tid) -> Tid;

    /// Number of runnable tasks currently accounted to the run queue
    /// (including tasks running on CPUs).
    fn nr_running(&self) -> usize;

    /// Declares the locking regime this scheduler's run-queue state
    /// needs. The machine sizes its lock-domain bank from this (unless
    /// overridden for an ablation). Default: the paper's single global
    /// `runqueue_lock`, so existing schedulers are unchanged.
    fn lock_plan(&self, _nr_cpus: usize) -> LockPlan {
        LockPlan::Global
    }

    /// Verifies internal invariants (tests/debug only). Default: no-op.
    fn debug_check(&self, _tasks: &TaskTable) {}

    /// If this scheduler is an interpreted policy, its load metadata.
    /// Native schedulers return `None` (the default).
    fn loaded_info(&self) -> Option<PolicyLoadInfo> {
        None
    }

    /// Selects the execution backend for an interpreted policy's hooks.
    /// The machine calls this before the run starts when
    /// `MachineConfig::policy_backend` is set; native schedulers keep
    /// the no-op default.
    fn set_policy_backend(&mut self, _backend: PolicyBackend) {}

    /// Takes (and clears) the most recent safety violation, if any.
    ///
    /// The machine polls this after every `schedule()` call; a `Some`
    /// triggers watchdog ejection. Native schedulers never violate and
    /// keep the `None` default.
    fn take_violation(&mut self) -> Option<PolicyViolation> {
        None
    }

    /// Removes every task from the run queue and returns them in queue
    /// order (front to back, highest-priority list first), leaving each
    /// task detached (`!on_runqueue()`). Used by the machine's watchdog to
    /// migrate run-queue state into a replacement scheduler during
    /// ejection. Native schedulers are never ejected; the default panics
    /// to catch misuse.
    fn drain(&mut self, _ctx: &mut SchedCtx<'_>) -> Vec<Tid> {
        unreachable!("drain() called on a scheduler that cannot be ejected")
    }

    /// Cumulative interpreted instructions executed (policy schedulers
    /// only; native schedulers report 0).
    fn policy_insns_executed(&self) -> u64 {
        0
    }

    /// If this scheduler drives its picks from a trained model, its
    /// load metadata. Native schedulers return `None` (the default).
    fn learned_info(&self) -> Option<LearnedInfo> {
        None
    }

    /// Takes (and clears) the outcome of the model prediction the last
    /// `schedule()` call made: `Some(true)` for a verified hit,
    /// `Some(false)` for a misprediction (the scheduler fell back to the
    /// native scan), `None` when no prediction was attempted (no
    /// candidates, or not a learned scheduler — the default).
    ///
    /// The machine polls this after every `schedule()` call on learned
    /// runs; a streak of `Some(false)` long enough to trip
    /// `MachineConfig::learn_eject_k` ejects the model.
    fn take_prediction(&mut self) -> Option<bool> {
        None
    }

    /// Cumulative `(predictions, verified hits)` the model has made
    /// (learned schedulers only; native schedulers report zeros).
    fn prediction_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Timer-tick hook: runs once per tick on a busy CPU, *after* the
    /// machine's own quantum bookkeeping, with `current` the running
    /// task. Interpreted policies use this to run their `tick` hook;
    /// native schedulers keep the no-op default (the machine only calls
    /// it for schedulers that report [`Scheduler::loaded_info`], so
    /// native runs stay byte-identical).
    fn on_tick(&mut self, _ctx: &mut SchedCtx<'_>, _cpu: CpuId, _current: Tid) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsc_ktask::TaskSpec;

    /// A trivial scheduler used to exercise the trait object surface.
    struct NullSched {
        n: usize,
    }

    impl Scheduler for NullSched {
        fn name(&self) -> &'static str {
            "null"
        }

        fn add_to_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
            let mut t = ctx.tasks.task_mut(tid);
            t.run_list.next = elsc_ktask::Link::Head(0);
            t.run_list.prev = elsc_ktask::Link::Head(0);
            self.n += 1;
        }

        fn del_from_runqueue(&mut self, ctx: &mut SchedCtx<'_>, tid: Tid) {
            let mut t = ctx.tasks.task_mut(tid);
            t.run_list = elsc_ktask::ListNode::detached();
            self.n -= 1;
        }

        fn move_first_runqueue(&mut self, _ctx: &mut SchedCtx<'_>, _tid: Tid) {}

        fn move_last_runqueue(&mut self, _ctx: &mut SchedCtx<'_>, _tid: Tid) {}

        fn schedule(&mut self, _ctx: &mut SchedCtx<'_>, _cpu: CpuId, prev: Tid, _idle: Tid) -> Tid {
            prev
        }

        fn nr_running(&self) -> usize {
            self.n
        }
    }

    #[test]
    fn trait_is_object_safe_and_usable() {
        let mut tasks = TaskTable::new();
        let tid = tasks.spawn(&TaskSpec::default());
        let mut stats = SchedStats::new(1);
        let mut meter = CycleMeter::new();
        let costs = CostModel::free();
        let cfg = SchedConfig::up();
        let mut ctx = SchedCtx {
            tasks: &mut tasks,
            stats: &mut stats,
            meter: &mut meter,
            costs: &costs,
            cfg: &cfg,
            probe: None,
            locks: None,
        };
        let mut sched: Box<dyn Scheduler> = Box::new(NullSched { n: 0 });
        assert_eq!(sched.name(), "null");
        assert_eq!(sched.lock_plan(4), LockPlan::Global);
        sched.add_to_runqueue(&mut ctx, tid);
        assert_eq!(sched.nr_running(), 1);
        assert!(ctx.tasks.task(tid).on_runqueue());
        let next = sched.schedule(&mut ctx, 0, tid, tid);
        assert_eq!(next, tid);
        sched.del_from_runqueue(&mut ctx, tid);
        assert_eq!(sched.nr_running(), 0);
        sched.debug_check(ctx.tasks);
    }
}
