//! The `goodness()` heuristic (paper §3.3.1).
//!
//! For real-time tasks goodness is `1000 + rt_priority`, putting them above
//! every `SCHED_OTHER` task. For ordinary tasks, a zero `counter` means
//! "runnable but out of quantum" (goodness 0); otherwise goodness is
//! `counter + priority` plus two *dynamic* bonuses that depend on the
//! calling context: +15 for last having run on the deciding CPU
//! (`PROC_CHANGE_PENALTY`) and +1 for sharing the previous task's address
//! space (cheap context switch).
//!
//! ELSC's key observation (§5): `counter + priority` is *static* while a
//! task waits on the run queue, so the run queue can be kept sorted by it;
//! only the two small bonuses need evaluating at decision time.

use elsc_ktask::{CpuId, HotLanes, MmId, Task};
use elsc_simcore::Topology;

/// Goodness floor for real-time tasks (`SCHED_FIFO`/`SCHED_RR`).
pub const RT_GOODNESS_BASE: i32 = 1000;

/// Goodness assigned to the idle task: `schedule()` seeds its search with
/// `c = -1000` (`kernel/sched.c`), below every runnable task — including
/// out-of-quantum and yielded tasks, which evaluate to 0 — so anything
/// runnable beats going idle.
pub const IDLE_GOODNESS: i32 = -1000;

/// Affinity bonus for tasks whose last run was on the deciding CPU.
pub const PROC_CHANGE_PENALTY: i32 = 15;

/// Bonus for sharing the previous task's memory map.
pub const MM_BONUS: i32 = 1;

/// Affinity bonus for a task that last ran on an SMT sibling of the
/// deciding CPU (shared L1/L2; nearly as warm as the CPU itself).
pub const SMT_AFFINITY_BONUS: i32 = 12;

/// Affinity bonus for a task that last ran on the deciding CPU's NUMA
/// node (shared last-level cache; warm-ish).
pub const LLC_AFFINITY_BONUS: i32 = 6;

/// Affinity bonus for a task that last ran in the deciding CPU's package
/// but on another node (shared socket interconnect only).
pub const PACKAGE_AFFINITY_BONUS: i32 = 2;

/// The distance-graded affinity bonus under a declared topology.
///
/// The full `PROC_CHANGE_PENALTY` still applies on an exact CPU match;
/// below that, each level of the tree contributes a smaller bonus — but
/// only when the level is *informative* (shared by some CPUs and not by
/// all). On a flat one-level tree no sub-level is informative, so the
/// function degrades to the classic `{+15 on match, else 0}` rule
/// exactly — the keystone of the flat byte-identity guarantee.
///
/// ```
/// use elsc_simcore::Topology;
/// use elsc_sched_api::goodness::{topo_affinity_bonus, PROC_CHANGE_PENALTY};
///
/// let numa: Topology = "2N4C2T".parse().unwrap();
/// assert_eq!(topo_affinity_bonus(&numa, 0, 0), PROC_CHANGE_PENALTY);
/// assert_eq!(topo_affinity_bonus(&numa, 0, 1), 12); // SMT sibling
/// assert_eq!(topo_affinity_bonus(&numa, 0, 6), 6); // same node
/// assert_eq!(topo_affinity_bonus(&numa, 0, 8), 0); // cross node
///
/// let flat = Topology::flat(4);
/// assert_eq!(topo_affinity_bonus(&flat, 2, 2), PROC_CHANGE_PENALTY);
/// assert_eq!(topo_affinity_bonus(&flat, 2, 3), 0);
/// ```
#[inline]
pub fn topo_affinity_bonus(topo: &Topology, this_cpu: CpuId, last_cpu: CpuId) -> i32 {
    if last_cpu == this_cpu {
        return PROC_CHANGE_PENALTY;
    }
    if topo.threads_per_core() > 1 && topo.same_core(this_cpu, last_cpu) {
        return SMT_AFFINITY_BONUS;
    }
    if topo.nr_nodes() > 1 && topo.same_node(this_cpu, last_cpu) {
        return LLC_AFFINITY_BONUS;
    }
    if topo.packages() > 1 && topo.same_package(this_cpu, last_cpu) {
        return PACKAGE_AFFINITY_BONUS;
    }
    0
}

/// Goodness of a real-time task.
///
/// ```
/// use elsc_ktask::{SchedClass, TaskSpec, TaskTable};
/// use elsc_sched_api::goodness::{rt_goodness, RT_GOODNESS_BASE};
///
/// let mut table = TaskTable::new();
/// let tid = table.spawn(&TaskSpec::default().realtime(SchedClass::Fifo, 55));
/// assert_eq!(rt_goodness(table.task(tid)), RT_GOODNESS_BASE + 55);
/// ```
#[inline]
pub fn rt_goodness(task: &Task) -> i32 {
    debug_assert!(task.policy.class.is_realtime());
    RT_GOODNESS_BASE + task.rt_priority
}

/// Full `goodness()` as the baseline scheduler computes it, *ignoring* the
/// `SCHED_YIELD` bit (the caller handles yield specially, as `schedule()`
/// does for the previous task).
///
/// ```
/// use elsc_ktask::{MmId, TaskSpec, TaskTable};
/// use elsc_sched_api::goodness::goodness_ignoring_yield;
///
/// let mut table = TaskTable::new();
/// let tid = table.spawn(&TaskSpec::default().priority(20).mm(MmId(1)));
/// table.task_mut(tid).counter = 7;
/// table.task_mut(tid).policy.yielded = true; // ignored by this variant
/// assert_eq!(goodness_ignoring_yield(table.task(tid), 0, MmId(2)), 7 + 20 + 15);
/// ```
#[inline]
pub fn goodness_ignoring_yield(task: &Task, this_cpu: CpuId, prev_mm: MmId) -> i32 {
    if task.policy.class.is_realtime() {
        return rt_goodness(task);
    }
    if task.counter == 0 {
        // Runnable, but its time slice is used up.
        return 0;
    }
    let mut weight = task.counter + task.priority;
    if task.processor == this_cpu {
        weight += PROC_CHANGE_PENALTY;
    }
    if task.mm == prev_mm {
        weight += MM_BONUS;
    }
    weight
}

/// [`goodness_ignoring_yield`] computed from the [`HotLanes`] mirror.
///
/// The scan loops evaluate goodness per run-queue candidate; reading the
/// dense lanes instead of the full `Task` struct keeps a 100k-task scan
/// inside a handful of cache lines per candidate. Must agree with
/// [`goodness_ignoring_yield`] on every input — the struct variant stays
/// the specification (and the oracle's reference).
#[inline]
pub fn lane_goodness_ignoring_yield(
    lanes: &HotLanes,
    idx: usize,
    this_cpu: CpuId,
    prev_mm: MmId,
) -> i32 {
    if lanes.is_realtime(idx) {
        return RT_GOODNESS_BASE + lanes.rt_priority(idx);
    }
    let counter = lanes.counter(idx);
    if counter == 0 {
        // Runnable, but its time slice is used up.
        return 0;
    }
    let mut weight = counter + lanes.priority(idx);
    if lanes.processor(idx) == this_cpu {
        weight += PROC_CHANGE_PENALTY;
    }
    if lanes.mm(idx) == prev_mm {
        weight += MM_BONUS;
    }
    weight
}

/// [`goodness_ignoring_yield`] under a declared topology: the flat
/// `+15`-on-CPU-match affinity bonus generalizes to the distance-graded
/// [`topo_affinity_bonus`]. On flat trees this equals
/// [`goodness_ignoring_yield`] on every input (pinned by test).
#[inline]
pub fn goodness_ignoring_yield_on(
    topo: &Topology,
    task: &Task,
    this_cpu: CpuId,
    prev_mm: MmId,
) -> i32 {
    if task.policy.class.is_realtime() {
        return rt_goodness(task);
    }
    if task.counter == 0 {
        // Runnable, but its time slice is used up.
        return 0;
    }
    let mut weight = task.counter + task.priority;
    weight += topo_affinity_bonus(topo, this_cpu, task.processor);
    if task.mm == prev_mm {
        weight += MM_BONUS;
    }
    weight
}

/// [`goodness_ignoring_yield_on`] computed from the [`HotLanes`] mirror;
/// the lane-reading twin, as [`lane_goodness_ignoring_yield`] is to
/// [`goodness_ignoring_yield`].
#[inline]
pub fn lane_goodness_ignoring_yield_on(
    topo: &Topology,
    lanes: &HotLanes,
    idx: usize,
    this_cpu: CpuId,
    prev_mm: MmId,
) -> i32 {
    if lanes.is_realtime(idx) {
        return RT_GOODNESS_BASE + lanes.rt_priority(idx);
    }
    let counter = lanes.counter(idx);
    if counter == 0 {
        // Runnable, but its time slice is used up.
        return 0;
    }
    let mut weight = counter + lanes.priority(idx);
    weight += topo_affinity_bonus(topo, this_cpu, lanes.processor(idx));
    if lanes.mm(idx) == prev_mm {
        weight += MM_BONUS;
    }
    weight
}

/// Full `goodness()` including the yield rule: a task that called
/// `sys_sched_yield()` evaluates to 0 once (paper §3.3.2).
///
/// ```
/// use elsc_ktask::{MmId, TaskSpec, TaskTable};
/// use elsc_sched_api::goodness::{goodness, MM_BONUS, PROC_CHANGE_PENALTY};
///
/// let mut table = TaskTable::new();
/// let tid = table.spawn(&TaskSpec::default().priority(20).mm(MmId(1)));
/// table.task_mut(tid).counter = 7;
/// table.task_mut(tid).processor = 3;
/// // Deciding on CPU 0 against a different mm: counter + priority only.
/// assert_eq!(goodness(table.task(tid), 0, MmId(2)), 27);
/// // Same CPU, same mm: both dynamic bonuses stack.
/// assert_eq!(
///     goodness(table.task(tid), 3, MmId(1)),
///     27 + PROC_CHANGE_PENALTY + MM_BONUS
/// );
/// // Out of quantum: runnable, but goodness 0.
/// table.task_mut(tid).counter = 0;
/// assert_eq!(goodness(table.task(tid), 3, MmId(1)), 0);
/// ```
#[inline]
pub fn goodness(task: &Task, this_cpu: CpuId, prev_mm: MmId) -> i32 {
    if task.policy.yielded {
        return 0;
    }
    goodness_ignoring_yield(task, this_cpu, prev_mm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsc_ktask::{SchedClass, TaskSpec, TaskTable, Tid};

    fn other_task(counter: i32, priority: i32, processor: CpuId, mm: MmId) -> Task {
        let mut t = Task::new(
            Tid::from_raw(0, 0),
            &TaskSpec::default().priority(priority).mm(mm),
        );
        t.counter = counter;
        t.processor = processor;
        t
    }

    #[test]
    fn zero_counter_means_zero_goodness() {
        let t = other_task(0, 20, 0, MmId(1));
        assert_eq!(goodness(&t, 0, MmId(1)), 0);
    }

    #[test]
    fn base_weight_is_counter_plus_priority() {
        let t = other_task(7, 20, 5, MmId(1));
        // CPU 0 deciding, task last ran on CPU 5, different mm: no bonus.
        assert_eq!(goodness(&t, 0, MmId(2)), 27);
    }

    #[test]
    fn affinity_bonus_is_fifteen() {
        let t = other_task(7, 20, 3, MmId(1));
        assert_eq!(goodness(&t, 3, MmId(2)), 27 + PROC_CHANGE_PENALTY);
    }

    #[test]
    fn mm_bonus_is_one() {
        let t = other_task(7, 20, 5, MmId(1));
        assert_eq!(goodness(&t, 0, MmId(1)), 27 + MM_BONUS);
    }

    #[test]
    fn both_bonuses_stack() {
        let t = other_task(7, 20, 0, MmId(1));
        assert_eq!(
            goodness(&t, 0, MmId(1)),
            27 + PROC_CHANGE_PENALTY + MM_BONUS
        );
    }

    #[test]
    fn realtime_beats_any_other() {
        let mut table = TaskTable::new();
        let rt = table.spawn(&TaskSpec::default().realtime(SchedClass::Fifo, 0));
        let best_other = other_task(80, 40, 0, MmId(1));
        let g_rt = goodness(table.task(rt), 0, MmId(1));
        let g_other = goodness(&best_other, 0, MmId(1));
        assert_eq!(g_rt, RT_GOODNESS_BASE);
        assert!(g_rt > g_other);
    }

    #[test]
    fn realtime_goodness_adds_rt_priority() {
        let mut table = TaskTable::new();
        let rt = table.spawn(&TaskSpec::default().realtime(SchedClass::Rr, 55));
        assert_eq!(goodness(table.task(rt), 0, MmId::KERNEL), 1055);
    }

    #[test]
    fn realtime_ignores_zero_counter() {
        let mut table = TaskTable::new();
        let rt = table.spawn(&TaskSpec::default().realtime(SchedClass::Rr, 10));
        table.task_mut(rt).counter = 0;
        assert_eq!(goodness(table.task(rt), 0, MmId::KERNEL), 1010);
    }

    #[test]
    fn yielded_task_evaluates_to_zero() {
        let mut t = other_task(7, 20, 0, MmId(1));
        t.policy.yielded = true;
        assert_eq!(goodness(&t, 0, MmId(1)), 0);
        // But the yield-ignoring variant sees through it.
        assert!(goodness_ignoring_yield(&t, 0, MmId(1)) > 0);
    }

    #[test]
    fn lane_goodness_agrees_with_struct_goodness() {
        // Exhaustive-ish cross-check of the lane variant against the
        // struct variant over the interesting corners: RT vs other, zero
        // counter, both bonuses on/off.
        let mut table = TaskTable::new();
        let mut tids = Vec::new();
        for (counter, priority, processor, mm) in [
            (0, 20, 0, MmId(1)),
            (7, 20, 0, MmId(1)),
            (7, 20, 3, MmId(2)),
            (80, 40, 1, MmId::KERNEL),
        ] {
            let tid = table.spawn(&TaskSpec::default().priority(priority).mm(mm));
            let mut t = table.task_mut(tid);
            t.counter = counter;
            t.processor = processor;
            drop(t);
            tids.push(tid);
        }
        let rt = table.spawn(&TaskSpec::default().realtime(SchedClass::Fifo, 55));
        table.task_mut(rt).counter = 0;
        tids.push(rt);
        let yielder = table.spawn(&TaskSpec::default().priority(20).mm(MmId(1)));
        table.task_mut(yielder).counter = 5;
        table.task_mut(yielder).policy.yielded = true;
        tids.push(yielder);

        for &tid in &tids {
            for cpu in [0, 3] {
                for prev_mm in [MmId::KERNEL, MmId(1), MmId(2)] {
                    assert_eq!(
                        lane_goodness_ignoring_yield(table.lanes(), tid.index(), cpu, prev_mm),
                        goodness_ignoring_yield(table.task(tid), cpu, prev_mm),
                        "lane/struct goodness disagree for {tid:?} cpu={cpu} prev_mm={prev_mm:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn static_part_matches_task_helper() {
        let t = other_task(9, 20, 99, MmId(7));
        // With no bonuses, goodness equals the static goodness.
        assert_eq!(goodness(&t, 0, MmId(8)), t.static_goodness());
    }

    #[test]
    fn topo_goodness_on_flat_trees_equals_flat_goodness() {
        // The byte-identity keystone: on a one-level tree the topology
        // variants agree with the classic functions on every input.
        let flat = elsc_simcore::Topology::flat(4);
        let mut table = TaskTable::new();
        let mut tids = Vec::new();
        for (counter, priority, processor, mm) in [
            (0, 20, 0, MmId(1)),
            (7, 20, 0, MmId(1)),
            (7, 20, 3, MmId(2)),
            (80, 40, 1, MmId::KERNEL),
        ] {
            let tid = table.spawn(&TaskSpec::default().priority(priority).mm(mm));
            let mut t = table.task_mut(tid);
            t.counter = counter;
            t.processor = processor;
            drop(t);
            tids.push(tid);
        }
        let rt = table.spawn(&TaskSpec::default().realtime(SchedClass::Fifo, 55));
        tids.push(rt);
        for &tid in &tids {
            for cpu in 0..4 {
                for prev_mm in [MmId::KERNEL, MmId(1), MmId(2)] {
                    assert_eq!(
                        goodness_ignoring_yield_on(&flat, table.task(tid), cpu, prev_mm),
                        goodness_ignoring_yield(table.task(tid), cpu, prev_mm),
                        "flat-topology goodness must match for {tid:?} cpu={cpu}"
                    );
                    assert_eq!(
                        lane_goodness_ignoring_yield_on(
                            &flat,
                            table.lanes(),
                            tid.index(),
                            cpu,
                            prev_mm
                        ),
                        lane_goodness_ignoring_yield(table.lanes(), tid.index(), cpu, prev_mm),
                        "flat-topology lane goodness must match for {tid:?} cpu={cpu}"
                    );
                }
            }
        }
    }

    #[test]
    fn topo_lane_goodness_agrees_with_struct_variant() {
        let numa: elsc_simcore::Topology = "2N4C2T".parse().unwrap();
        let mut table = TaskTable::new();
        let mut tids = Vec::new();
        for processor in [0usize, 1, 3, 8, 15] {
            let tid = table.spawn(&TaskSpec::default().priority(20).mm(MmId(1)));
            let mut t = table.task_mut(tid);
            t.counter = 6;
            t.processor = processor;
            drop(t);
            tids.push(tid);
        }
        for &tid in &tids {
            for cpu in [0usize, 1, 7, 8] {
                assert_eq!(
                    lane_goodness_ignoring_yield_on(
                        &numa,
                        table.lanes(),
                        tid.index(),
                        cpu,
                        MmId(2)
                    ),
                    goodness_ignoring_yield_on(&numa, table.task(tid), cpu, MmId(2)),
                );
            }
        }
    }

    #[test]
    fn topo_bonus_grades_by_distance() {
        let numa: elsc_simcore::Topology = "2N4C2T".parse().unwrap();
        let t = other_task(7, 20, 1, MmId(1));
        // Deciding on CPU 0; task last ran on CPU 1 (SMT sibling).
        assert_eq!(
            goodness_ignoring_yield_on(&numa, &t, 0, MmId(2)),
            27 + SMT_AFFINITY_BONUS
        );
        let t = other_task(7, 20, 5, MmId(1));
        assert_eq!(
            goodness_ignoring_yield_on(&numa, &t, 0, MmId(2)),
            27 + LLC_AFFINITY_BONUS
        );
        let t = other_task(7, 20, 9, MmId(1));
        assert_eq!(goodness_ignoring_yield_on(&numa, &t, 0, MmId(2)), 27);
        // The exact-CPU bonus is unchanged and still dominates.
        let t = other_task(7, 20, 0, MmId(1));
        assert_eq!(
            goodness_ignoring_yield_on(&numa, &t, 0, MmId(2)),
            27 + PROC_CHANGE_PENALTY
        );
        // The ladder must be strictly decreasing with distance.
        const {
            assert!(PROC_CHANGE_PENALTY > SMT_AFFINITY_BONUS);
            assert!(SMT_AFFINITY_BONUS > LLC_AFFINITY_BONUS);
            assert!(LLC_AFFINITY_BONUS > PACKAGE_AFFINITY_BONUS);
            assert!(PACKAGE_AFFINITY_BONUS > 0);
        }
    }
}
