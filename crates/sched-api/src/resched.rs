//! `reschedule_idle()`: deciding which CPU should run a freshly-woken task.
//!
//! When `wake_up_process()` makes a task runnable, the 2.3 kernel looks
//! for a processor to run it on: preferably the task's last CPU if idle
//! (warm caches), then any idle CPU, otherwise the CPU whose current task
//! has the lowest goodness — preempted only if the woken task beats it.
//!
//! The paper leaves this logic untouched in both schedulers, so it lives
//! here, shared. The machine model turns the returned [`WakeTarget`] into
//! an IPI or a `need_resched` flag.

use elsc_ktask::{CpuId, TaskTable, Tid};

use crate::config::SchedConfig;
use crate::goodness::{goodness_ignoring_yield, goodness_ignoring_yield_on, topo_affinity_bonus};

/// What the waker sees of one CPU.
#[derive(Clone, Copy, Debug)]
pub struct CpuView {
    /// The CPU's id.
    pub id: CpuId,
    /// Whether it is running its idle task.
    pub idle: bool,
    /// The task currently running (the idle task if `idle`).
    pub current: Tid,
}

/// The placement decision for a woken task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WakeTarget {
    /// Send a reschedule IPI to an idle CPU.
    IpiIdle(CpuId),
    /// Mark `need_resched` on a busy CPU (preemption at its next
    /// scheduling point).
    Preempt(CpuId),
    /// Leave the task queued; no CPU change is warranted.
    None,
}

/// Decides where a woken task should run (`reschedule_idle`).
///
/// `cpus` must contain one entry per processor. On a non-SMP build the
/// only possible outcomes are preempting CPU 0 or nothing.
///
/// # Panics
///
/// Panics if `cpus` is empty or `woken` is stale.
pub fn reschedule_idle(
    tasks: &TaskTable,
    cfg: &SchedConfig,
    cpus: &[CpuView],
    woken: Tid,
) -> WakeTarget {
    assert!(!cpus.is_empty(), "no CPUs to consider");
    let task = tasks.task(woken);

    if !cfg.smp {
        // UP kernel: just check whether the woken task should preempt the
        // single running task.
        let view = &cpus[0];
        if view.idle {
            return WakeTarget::IpiIdle(0);
        }
        let cur = tasks.task(view.current);
        let g_new = goodness_ignoring_yield(task, 0, cur.mm);
        let g_cur = goodness_ignoring_yield(cur, 0, cur.mm);
        if g_new > g_cur {
            return WakeTarget::Preempt(0);
        }
        return WakeTarget::None;
    }

    // SMP: prefer the task's own last CPU if idle (cache affinity)...
    let last = task.processor;
    if let Some(view) = cpus.iter().find(|v| v.id == last) {
        if view.idle {
            return WakeTarget::IpiIdle(last);
        }
    }
    // ...then the *nearest* idle CPU. The flat model had no notion of
    // near: its "any idle CPU" fallback took the lowest-numbered one.
    // Under a declared topology that choice is a bug — it happily sends
    // a task across the machine while an SMT sibling of its last CPU
    // sits idle — so idle candidates are ranked by the same
    // distance-graded affinity bonus `goodness()` uses. Ties keep the
    // first (lowest-id) candidate, and on a flat tree every bonus is 0,
    // so the flat behaviour is bit-for-bit the old `find(idle)`.
    let topo = &cfg.topology;
    let mut nearest: Option<(CpuId, i32)> = None;
    for view in cpus.iter().filter(|v| v.idle) {
        let bonus = topo_affinity_bonus(topo, view.id, last);
        if nearest.is_none_or(|(_, b)| bonus > b) {
            nearest = Some((view.id, bonus));
        }
    }
    if let Some((cpu, _)) = nearest {
        return WakeTarget::IpiIdle(cpu);
    }
    // ...else the busy CPU whose current task is weakest, preempting only
    // if the woken task clearly beats it (the affinity penalty acts as the
    // preemption margin, as in the kernel).
    let mut weakest: Option<(CpuId, i32)> = None;
    for view in cpus {
        let cur = tasks.task(view.current);
        let g_cur = goodness_ignoring_yield_on(topo, cur, view.id, cur.mm);
        if weakest.is_none_or(|(_, g)| g_cur < g) {
            weakest = Some((view.id, g_cur));
        }
    }
    if let Some((cpu, g_cur)) = weakest {
        // The woken task's goodness from that CPU's perspective; it does
        // not get the affinity bonus unless it last ran near there.
        let cur_mm = tasks
            .task(cpus.iter().find(|v| v.id == cpu).unwrap().current)
            .mm;
        let g_new = goodness_ignoring_yield_on(topo, task, cpu, cur_mm);
        if g_new > g_cur {
            return WakeTarget::Preempt(cpu);
        }
    }
    WakeTarget::None
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsc_ktask::{MmId, TaskSpec, TaskTable};

    struct Fixture {
        tasks: TaskTable,
        idle: Vec<Tid>,
        busy: Vec<Tid>,
    }

    fn fixture(nr_cpus: usize) -> Fixture {
        let mut tasks = TaskTable::new();
        let idle = (0..nr_cpus)
            .map(|cpu| {
                let tid = tasks.spawn(&TaskSpec::named("idle").priority(1));
                let mut t = tasks.task_mut(tid);
                t.counter = 0;
                t.processor = cpu;
                tid
            })
            .collect();
        let busy = (0..nr_cpus)
            .map(|cpu| {
                let tid = tasks.spawn(&TaskSpec::named("busy").mm(MmId(1)));
                let mut t = tasks.task_mut(tid);
                t.processor = cpu;
                t.has_cpu = true;
                tid
            })
            .collect();
        Fixture { tasks, idle, busy }
    }

    fn views(f: &Fixture, idle_mask: &[bool]) -> Vec<CpuView> {
        idle_mask
            .iter()
            .enumerate()
            .map(|(i, &is_idle)| CpuView {
                id: i,
                idle: is_idle,
                current: if is_idle { f.idle[i] } else { f.busy[i] },
            })
            .collect()
    }

    fn spawn_woken(f: &mut Fixture, counter: i32, last_cpu: usize) -> Tid {
        let tid = f.tasks.spawn(&TaskSpec::named("woken").mm(MmId(2)));
        let mut t = f.tasks.task_mut(tid);
        t.counter = counter;
        t.processor = last_cpu;
        tid
    }

    #[test]
    fn prefers_last_cpu_when_idle() {
        let mut f = fixture(4);
        let woken = spawn_woken(&mut f, 20, 2);
        let v = views(&f, &[true, false, true, false]);
        let target = reschedule_idle(&f.tasks, &SchedConfig::smp(4), &v, woken);
        assert_eq!(target, WakeTarget::IpiIdle(2));
    }

    #[test]
    fn falls_back_to_any_idle_cpu() {
        let mut f = fixture(4);
        let woken = spawn_woken(&mut f, 20, 3);
        let v = views(&f, &[false, true, false, false]);
        let target = reschedule_idle(&f.tasks, &SchedConfig::smp(4), &v, woken);
        assert_eq!(target, WakeTarget::IpiIdle(1));
    }

    #[test]
    fn preempts_weakest_busy_cpu_when_clearly_better() {
        let mut f = fixture(2);
        // CPU 1's current task is nearly out of quantum.
        f.tasks.task_mut(f.busy[1]).counter = 1;
        f.tasks.task_mut(f.busy[0]).counter = 20;
        // Woken task is strong and last ran on CPU 1 (gets affinity there).
        let woken = spawn_woken(&mut f, 20, 1);
        let v = views(&f, &[false, false]);
        let target = reschedule_idle(&f.tasks, &SchedConfig::smp(2), &v, woken);
        assert_eq!(target, WakeTarget::Preempt(1));
    }

    #[test]
    fn does_not_preempt_stronger_tasks() {
        let mut f = fixture(2);
        // Both currents are strong; woken task is weak.
        let woken = spawn_woken(&mut f, 1, 0);
        f.tasks.task_mut(woken).priority = 1;
        let v = views(&f, &[false, false]);
        let target = reschedule_idle(&f.tasks, &SchedConfig::smp(2), &v, woken);
        assert_eq!(target, WakeTarget::None);
    }

    #[test]
    fn up_kernel_preempts_only_on_better_goodness() {
        let mut f = fixture(1);
        let weak = spawn_woken(&mut f, 1, 0);
        f.tasks.task_mut(weak).priority = 1;
        let v = views(&f, &[false]);
        assert_eq!(
            reschedule_idle(&f.tasks, &SchedConfig::up(), &v, weak),
            WakeTarget::None
        );
        f.tasks.task_mut(f.busy[0]).counter = 0; // current exhausted
        let strong = spawn_woken(&mut f, 20, 0);
        assert_eq!(
            reschedule_idle(&f.tasks, &SchedConfig::up(), &v, strong),
            WakeTarget::Preempt(0)
        );
    }

    #[test]
    fn up_kernel_kicks_idle_cpu() {
        let mut f = fixture(1);
        let woken = spawn_woken(&mut f, 20, 0);
        let v = views(&f, &[true]);
        assert_eq!(
            reschedule_idle(&f.tasks, &SchedConfig::up(), &v, woken),
            WakeTarget::IpiIdle(0)
        );
    }

    #[test]
    fn idle_fallback_prefers_nearest_cpu_under_topology() {
        // Regression for the flat-model bug: with the task's last CPU
        // busy, the old fallback took the lowest-numbered idle CPU even
        // when an SMT sibling or node-mate of the last CPU was idle.
        let mut f = fixture(16);
        let mut cfg = SchedConfig::smp(16);
        cfg.topology = "2N4C2T".parse().unwrap();
        // Woken task last ran on CPU 9 (node 1); CPU 9 is busy.
        let woken = spawn_woken(&mut f, 20, 9);
        let mut mask = [false; 16];
        mask[2] = true; // idle, but node 0: remote
        mask[8] = true; // idle SMT sibling of CPU 9
        mask[12] = true; // idle, same node, different core
        let v = views(&f, &mask);
        let target = reschedule_idle(&f.tasks, &cfg, &v, woken);
        assert_eq!(target, WakeTarget::IpiIdle(8), "SMT sibling wins");
        // Without the sibling, the node-mate beats the remote CPU.
        let mut mask = [false; 16];
        mask[2] = true;
        mask[12] = true;
        let v = views(&f, &mask);
        let target = reschedule_idle(&f.tasks, &cfg, &v, woken);
        assert_eq!(target, WakeTarget::IpiIdle(12), "node-mate beats remote");
    }

    #[test]
    fn idle_fallback_on_flat_trees_is_first_idle_cpu() {
        // Pinned flat behaviour: a declared flat tree must reproduce the
        // pre-topology pick (the lowest-numbered idle CPU) exactly, for
        // every idle mask.
        let mut f = fixture(4);
        let woken = spawn_woken(&mut f, 20, 3);
        let mut cfg = SchedConfig::smp(4);
        cfg.topology = elsc_simcore::Topology::flat(4);
        for mask_bits in 0u32..8 {
            // CPU 3 (the last CPU) stays busy so the fallback is reached.
            let mask = [
                mask_bits & 1 != 0,
                mask_bits & 2 != 0,
                mask_bits & 4 != 0,
                false,
            ];
            let v = views(&f, &mask);
            let got = reschedule_idle(&f.tasks, &cfg, &v, woken);
            let want = match mask.iter().position(|&b| b) {
                Some(first_idle) => WakeTarget::IpiIdle(first_idle),
                None => reschedule_idle(&f.tasks, &SchedConfig::smp(4), &v, woken),
            };
            assert_eq!(got, want, "mask {mask:?}");
        }
    }

    #[test]
    fn realtime_task_preempts_everything() {
        let mut f = fixture(4);
        let rt = f
            .tasks
            .spawn(&TaskSpec::named("rt").realtime(elsc_ktask::SchedClass::Fifo, 50));
        let v = views(&f, &[false, false, false, false]);
        let target = reschedule_idle(&f.tasks, &SchedConfig::smp(4), &v, rt);
        assert!(matches!(target, WakeTarget::Preempt(_)));
    }
}
