//! Lock plans: the locking regime a scheduler declares for its run queue(s).
//!
//! Linux 2.3.99 guards all run-queue state with one global `runqueue_lock`,
//! and the paper's 2P/4P results are shaped by that single serialization
//! point (§4, §8). Sharded designs (the §8 multi-queue scheduler, the O(1)
//! scheduler that followed) split the state and its locks per CPU. A
//! [`LockPlan`] lets each [`Scheduler`](crate::Scheduler) declare which
//! regime it is built for, and [`LockDomains`] does the per-call
//! bookkeeping: which domains the current `schedule()`/wakeup call holds,
//! how much extra spin its mid-call acquisitions cost, and the
//! `double_rq_lock` ordering discipline that keeps multi-domain
//! acquisition deadlock-free.
//!
//! The machine owns the [`LockModel`] (the bank
//! of busy-interval domains); schedulers see only the narrow
//! [`DomainLocker`] trait through
//! [`SchedCtx::lock_queue_domain`](crate::SchedCtx::lock_queue_domain),
//! so they can demand "I am about to touch CPU 3's queue" without knowing
//! how queues map onto lock domains.

use core::fmt;
use core::str::FromStr;

use elsc_simcore::lockdomain::LockModel;
use elsc_simcore::spinlock::HolderId;
use elsc_simcore::Cycles;

/// The locking regime a scheduler wants for its run-queue state.
///
/// The default for every scheduler is [`LockPlan::Global`] — the paper's
/// single `runqueue_lock` — so existing designs are bit-for-bit unchanged.
/// Sharded designs opt in to more domains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockPlan {
    /// One lock guards everything (Linux 2.3.99's `runqueue_lock`).
    Global,
    /// One lock per CPU run queue (the §8 multi-queue regime).
    PerCpu,
    /// A fixed number of lock shards, CPUs mapped round-robin.
    Sharded(usize),
    /// One lock per NUMA node: CPUs are chunked `cpus_per_node` at a
    /// time (hierarchical CPU numbering makes chunk == node), so all
    /// queues on a node — the unit a topology-aware scheduler shares
    /// state across — sit under one lock. The payload is the chunk size,
    /// fixed at plan-resolution time from the declared topology, which
    /// keeps the plan `Copy` and the mapping pure arithmetic.
    PerNode(usize),
}

impl LockPlan {
    /// Number of lock domains this plan needs on an `nr_cpus` machine.
    pub fn nr_domains(self, nr_cpus: usize) -> usize {
        match self {
            LockPlan::Global => 1,
            LockPlan::PerCpu => nr_cpus.max(1),
            LockPlan::Sharded(n) => n.max(1),
            LockPlan::PerNode(per) => nr_cpus.max(1).div_ceil(per.max(1)),
        }
    }

    /// The domain guarding `queue_cpu`'s run-queue state.
    pub fn domain_for_cpu(self, queue_cpu: usize, nr_cpus: usize) -> usize {
        match self {
            LockPlan::Global => 0,
            LockPlan::PerCpu => queue_cpu % nr_cpus.max(1),
            LockPlan::Sharded(n) => queue_cpu % n.max(1),
            LockPlan::PerNode(per) => (queue_cpu / per.max(1)).min(
                // Clamp stale CPU ids into the last node's domain so the
                // mapping is total, as the modulo plans are.
                self.nr_domains(nr_cpus) - 1,
            ),
        }
    }

    /// Short label for reports ("global", "percpu", "sharded:N",
    /// "pernode:K" with K the CPUs-per-node chunk).
    pub fn label(self) -> String {
        self.to_string()
    }
}

impl fmt::Display for LockPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockPlan::Global => f.write_str("global"),
            LockPlan::PerCpu => f.write_str("percpu"),
            LockPlan::Sharded(n) => write!(f, "sharded:{n}"),
            LockPlan::PerNode(per) => write!(f, "pernode:{per}"),
        }
    }
}

impl FromStr for LockPlan {
    type Err = String;

    /// Parses `global`, `percpu`, `sharded:N`, or `pernode:K` (N, K ≥ 1).
    /// The CLI additionally accepts bare `pernode`, resolving K from the
    /// declared topology before it reaches this parser.
    ///
    /// ```
    /// use elsc_sched_api::LockPlan;
    ///
    /// assert_eq!("global".parse::<LockPlan>(), Ok(LockPlan::Global));
    /// assert_eq!("percpu".parse::<LockPlan>(), Ok(LockPlan::PerCpu));
    /// assert_eq!("sharded:3".parse::<LockPlan>(), Ok(LockPlan::Sharded(3)));
    /// assert_eq!("pernode:8".parse::<LockPlan>(), Ok(LockPlan::PerNode(8)));
    /// assert!("sharded:0".parse::<LockPlan>().is_err());
    /// assert!("pernode:0".parse::<LockPlan>().is_err());
    /// assert!("banana".parse::<LockPlan>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "global" => Ok(LockPlan::Global),
            "percpu" => Ok(LockPlan::PerCpu),
            _ => {
                if let Some(n) = s.strip_prefix("sharded:") {
                    let n: usize = n
                        .parse()
                        .map_err(|_| format!("bad shard count in lock plan '{s}'"))?;
                    if n == 0 {
                        return Err("lock plan needs at least one shard".to_string());
                    }
                    Ok(LockPlan::Sharded(n))
                } else if let Some(per) = s.strip_prefix("pernode:") {
                    let per: usize = per
                        .parse()
                        .map_err(|_| format!("bad CPUs-per-node in lock plan '{s}'"))?;
                    if per == 0 {
                        return Err("pernode needs at least one CPU per node".to_string());
                    }
                    Ok(LockPlan::PerNode(per))
                } else {
                    Err(format!(
                        "unknown lock plan '{s}' (expected global, percpu, sharded:N, or pernode:K)"
                    ))
                }
            }
        }
    }
}

/// One mid-call lock-domain acquisition, for the machine's accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DomainAcquire {
    /// Which domain was taken.
    pub domain: usize,
    /// Cycles spent spinning (and transferring the line) for it.
    pub spin: u64,
    /// The instant the acquirer owned it.
    pub at: Cycles,
}

/// What a scheduler may ask of the locking layer mid-call.
///
/// Dyn-safe on purpose: [`SchedCtx`](crate::SchedCtx) carries a
/// `&mut dyn DomainLocker` so the context type does not need a second
/// lifetime for the machine's concrete [`LockDomains`].
pub trait DomainLocker {
    /// Ensures the domain guarding `queue_cpu`'s run queue is held,
    /// given that `elapsed` meter cycles have passed inside the current
    /// scheduler call. No-op if the domain is already held.
    fn acquire_for_cpu(&mut self, queue_cpu: usize, elapsed: u64);
}

/// The set of lock domains one scheduler call holds.
///
/// The machine acquires the call's *home* domain itself (charging its
/// spin to the caller's timeline), then hands the model to `LockDomains`
/// for the duration of the call. Mid-call acquisitions — a multi-queue
/// steal taking a victim CPU's lock — go through [`DomainLocker`]; their
/// spin accumulates in [`extra_spin`](LockDomains::extra_spin) and each
/// one is logged for the machine to fold into stats, the profiler, and
/// the trace after the call returns.
///
/// # Ordering discipline
///
/// Domains are always held in ascending index order (`double_rq_lock`).
/// Acquiring a domain below the highest held one releases everything and
/// retakes the whole set in ascending order; re-taking a just-released
/// domain is free (same holder, no busy interval) but does count as an
/// acquisition, exactly as `double_rq_lock`'s unlock-and-relock does.
pub struct LockDomains<'a> {
    model: &'a mut LockModel,
    plan: LockPlan,
    nr_cpus: usize,
    holder: HolderId,
    /// Time the home domain was owned (the call's cycle origin).
    base: Cycles,
    extra_spin: u64,
    scratch: &'a mut LockScratch,
}

/// Reusable backing storage for a [`LockDomains`] call.
///
/// The machine takes and releases lock domains on every `schedule()` and
/// every wakeup; owning the held-set and acquisition-log buffers here (and
/// lending them per call) keeps that path allocation-free. After
/// [`LockDomains::release_all`] the acquisition log remains readable via
/// [`LockScratch::taken`] until the next call reuses the buffer.
#[derive(Debug, Default)]
pub struct LockScratch {
    /// Held domains, ascending.
    held: Vec<usize>,
    taken: Vec<DomainAcquire>,
}

impl LockScratch {
    /// The mid-call acquisitions logged by the most recent call.
    pub fn taken(&self) -> &[DomainAcquire] {
        &self.taken
    }
}

impl<'a> LockDomains<'a> {
    /// Wraps `model` for one call by `holder` that already owns
    /// `home_domain` since `base`.
    ///
    /// # Panics
    ///
    /// Debug-panics if `home_domain` is not currently held.
    pub fn new(
        model: &'a mut LockModel,
        plan: LockPlan,
        nr_cpus: usize,
        holder: HolderId,
        base: Cycles,
        home_domain: usize,
        scratch: &'a mut LockScratch,
    ) -> Self {
        debug_assert!(
            model.is_held(home_domain),
            "the machine acquires the home domain before delegating"
        );
        scratch.held.clear();
        scratch.taken.clear();
        scratch.held.push(home_domain);
        LockDomains {
            model,
            plan,
            nr_cpus,
            holder,
            base,
            extra_spin: 0,
            scratch,
        }
    }

    /// Spin cycles accumulated by mid-call acquisitions so far.
    pub fn extra_spin(&self) -> u64 {
        self.extra_spin
    }

    /// Domains currently held, in ascending order.
    pub fn held(&self) -> &[usize] {
        &self.scratch.held
    }

    /// Releases every held domain at `at` and returns the log of
    /// mid-call acquisitions for the machine's accounting. The log lives
    /// in the lent [`LockScratch`], so no allocation happens per call.
    pub fn release_all(self, at: Cycles) -> &'a [DomainAcquire] {
        let LockDomains { model, scratch, .. } = self;
        for &d in &scratch.held {
            model.release(d, at);
        }
        &scratch.taken
    }

    /// Acquires `domain` at `now`, logging the acquisition; returns the
    /// owned instant.
    fn take(&mut self, domain: usize, now: Cycles) -> Cycles {
        let owned = self.model.acquire(domain, now, self.holder);
        let spin = owned.saturating_sub(now).get();
        self.extra_spin += spin;
        self.scratch.taken.push(DomainAcquire {
            domain,
            spin,
            at: owned,
        });
        owned
    }
}

impl DomainLocker for LockDomains<'_> {
    fn acquire_for_cpu(&mut self, queue_cpu: usize, elapsed: u64) {
        let domain = self.plan.domain_for_cpu(queue_cpu, self.nr_cpus);
        if self.scratch.held.contains(&domain) {
            return;
        }
        let now = self.base + elapsed + self.extra_spin;
        if self.scratch.held.last().is_some_and(|&h| domain > h) {
            // Already in canonical order: take it directly.
            self.take(domain, now);
            self.scratch.held.push(domain);
        } else {
            // Out of order: double_rq_lock — drop everything, retake the
            // whole set ascending.
            for &d in &self.scratch.held {
                self.model.release(d, now);
            }
            self.scratch.held.push(domain);
            self.scratch.held.sort_unstable();
            let order = core::mem::take(&mut self.scratch.held);
            let mut t = now;
            for &d in &order {
                t = self.take(d, t);
            }
            self.scratch.held = order;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_domain_counts() {
        assert_eq!(LockPlan::Global.nr_domains(4), 1);
        assert_eq!(LockPlan::PerCpu.nr_domains(4), 4);
        assert_eq!(LockPlan::PerCpu.nr_domains(0), 1);
        assert_eq!(LockPlan::Sharded(2).nr_domains(8), 2);
        assert_eq!(LockPlan::Sharded(0).nr_domains(8), 1);
        assert_eq!(LockPlan::PerNode(8).nr_domains(16), 2);
        assert_eq!(LockPlan::PerNode(4).nr_domains(4), 1);
        assert_eq!(LockPlan::PerNode(0).nr_domains(4), 4);
    }

    #[test]
    fn plan_domain_mapping() {
        assert_eq!(LockPlan::Global.domain_for_cpu(3, 4), 0);
        assert_eq!(LockPlan::PerCpu.domain_for_cpu(3, 4), 3);
        assert_eq!(LockPlan::Sharded(2).domain_for_cpu(3, 4), 1);
    }

    #[test]
    fn pernode_plan_chunks_cpus_by_node() {
        // 2N4C2T: 16 CPUs, 8 per node — CPUs 0..8 are node 0, 8..16 node 1.
        let p = LockPlan::PerNode(8);
        for cpu in 0..8 {
            assert_eq!(p.domain_for_cpu(cpu, 16), 0);
        }
        for cpu in 8..16 {
            assert_eq!(p.domain_for_cpu(cpu, 16), 1);
        }
        // Out-of-range queue CPUs clamp into the last domain (total map).
        assert_eq!(p.domain_for_cpu(99, 16), 1);
    }

    #[test]
    fn plan_labels_round_trip() {
        for p in [
            LockPlan::Global,
            LockPlan::PerCpu,
            LockPlan::Sharded(3),
            LockPlan::PerNode(8),
        ] {
            assert_eq!(p.label().parse::<LockPlan>().unwrap(), p);
        }
    }

    #[test]
    fn plan_parse_rejects_nonsense() {
        assert!("bogus".parse::<LockPlan>().is_err());
        assert!("sharded:0".parse::<LockPlan>().is_err());
        assert!("sharded:x".parse::<LockPlan>().is_err());
        assert!("pernode:0".parse::<LockPlan>().is_err());
        assert!("pernode:x".parse::<LockPlan>().is_err());
    }

    #[test]
    fn home_domain_reacquire_is_a_noop() {
        let mut model = LockModel::new(2, 0);
        let a = model.acquire(0, Cycles(100), 0);
        let mut scratch = LockScratch::default();
        let mut d = LockDomains::new(&mut model, LockPlan::PerCpu, 2, 0, a, 0, &mut scratch);
        d.acquire_for_cpu(0, 50);
        assert_eq!(d.extra_spin(), 0);
        let taken = d.release_all(a + 50);
        assert!(taken.is_empty());
        assert_eq!(model.total_acquisitions(), 1);
    }

    #[test]
    fn ascending_acquire_takes_second_domain() {
        let mut model = LockModel::new(2, 0);
        // CPU 1 holds domain 1 until 1000.
        let b = model.acquire(1, Cycles(0), 1);
        model.release(1, b + 1000);
        // CPU 0's call starts at 100 on its own domain 0, then steals
        // from CPU 1's queue at +50 meter cycles: it spins until 1000.
        let a = model.acquire(0, Cycles(100), 0);
        let mut scratch = LockScratch::default();
        let mut d = LockDomains::new(&mut model, LockPlan::PerCpu, 2, 0, a, 0, &mut scratch);
        d.acquire_for_cpu(1, 50);
        // Arrived at 150, domain 1 free at 1000: 850 spin + 0 transfer
        // (transfer cost is 0 here).
        assert_eq!(d.extra_spin(), 850);
        let taken = d.release_all(Cycles(1000) + 60);
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].domain, 1);
        assert_eq!(taken[0].spin, 850);
        assert_eq!(taken[0].at, Cycles(1000));
    }

    #[test]
    fn descending_acquire_releases_and_retakes_in_order() {
        let mut model = LockModel::new(2, 0);
        // CPU 1's call holds domain 1, then needs domain 0.
        let a = model.acquire(1, Cycles(100), 1);
        let mut scratch = LockScratch::default();
        let mut d = LockDomains::new(&mut model, LockPlan::PerCpu, 2, 1, a, 1, &mut scratch);
        d.acquire_for_cpu(0, 30);
        // Both domains free: re-taking 1 and taking 0 are both
        // spin-free, but they are real acquisitions.
        assert_eq!(d.extra_spin(), 0);
        assert_eq!(d.held(), &[0, 1]);
        let taken = d.release_all(Cycles(200));
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].domain, 0);
        assert_eq!(taken[1].domain, 1);
        // Initial + re-take of 1 + take of 0.
        assert_eq!(model.total_acquisitions(), 3);
        assert!(!model.is_held(0) && !model.is_held(1));
    }

    #[test]
    fn extra_spin_shifts_later_acquires() {
        let mut model = LockModel::new(3, 0);
        // Domain 1 busy until 500, domain 2 busy until 700.
        let x = model.acquire(1, Cycles(0), 9);
        model.release(1, x + 500);
        let y = model.acquire(2, Cycles(0), 9);
        model.release(2, y + 700);
        let a = model.acquire(0, Cycles(0), 0);
        let mut scratch = LockScratch::default();
        let mut d = LockDomains::new(&mut model, LockPlan::PerCpu, 3, 0, a, 0, &mut scratch);
        d.acquire_for_cpu(1, 100); // arrives 100, owns at 500: 400 spin
        assert_eq!(d.extra_spin(), 400);
        d.acquire_for_cpu(2, 100); // arrives 100 + 400 = 500, owns at 700
        assert_eq!(d.extra_spin(), 600);
        let taken = d.release_all(Cycles(800));
        assert_eq!(taken.iter().map(|t| t.spin).sum::<u64>(), 600);
    }
}
