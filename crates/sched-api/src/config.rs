//! Scheduler-visible machine configuration.

use elsc_simcore::Topology;

/// Configuration shared by the machine model and the schedulers.
///
/// The paper distinguishes "UP" kernels (compiled without SMP support: no
/// run-queue lock, no IPIs) from "1P" kernels (SMP build running on one
/// processor); [`SchedConfig::smp`] captures that build-time switch
/// independently of [`SchedConfig::nr_cpus`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedConfig {
    /// Number of processors.
    pub nr_cpus: usize,
    /// Whether this is an SMP build (lock costs, `reschedule_idle` IPIs,
    /// `has_cpu` checks in the scan loops).
    pub smp: bool,
    /// ELSC's per-list search limit; `None` means the paper's default of
    /// `nr_cpus / 2 + 5` (§5.2).
    pub elsc_search_limit: Option<usize>,
    /// The declared machine topology. Always consistent with `nr_cpus`
    /// (`topology.nr_cpus() == nr_cpus`); defaults to the one-level flat
    /// tree, on which every topology-aware path is required to behave
    /// byte-identically to the pre-topology model.
    pub topology: Topology,
}

impl SchedConfig {
    /// A uniprocessor (non-SMP build) configuration.
    pub fn up() -> Self {
        SchedConfig {
            nr_cpus: 1,
            smp: false,
            elsc_search_limit: None,
            topology: Topology::flat(1),
        }
    }

    /// An SMP build running on `nr_cpus` processors (`nr_cpus = 1` is the
    /// paper's "1P" configuration).
    ///
    /// # Panics
    ///
    /// Panics if `nr_cpus == 0`.
    pub fn smp(nr_cpus: usize) -> Self {
        assert!(nr_cpus > 0, "a machine has at least one CPU");
        SchedConfig {
            nr_cpus,
            smp: true,
            elsc_search_limit: None,
            topology: Topology::flat(nr_cpus),
        }
    }

    /// An SMP build over a declared topology tree; `nr_cpus` follows the
    /// tree.
    pub fn topo(topology: Topology) -> Self {
        SchedConfig {
            nr_cpus: topology.nr_cpus(),
            smp: true,
            elsc_search_limit: None,
            topology,
        }
    }

    /// The effective ELSC per-list examination limit:
    /// "half the number of processors in the system plus five" (§5.2).
    pub fn search_limit(&self) -> usize {
        self.elsc_search_limit.unwrap_or(self.nr_cpus / 2 + 5)
    }

    /// Short label used in reports ("UP", "1P", "2P", ...; the topology
    /// grammar, e.g. "2N4C2T", when a multi-level tree is declared). A
    /// declared flat tree labels as plain "{n}P" — by design it *is* the
    /// flat model, down to the report bytes.
    pub fn label(&self) -> String {
        if self.smp && !self.topology.is_flat() {
            self.topology.to_string()
        } else if self.smp {
            format!("{}P", self.nr_cpus)
        } else {
            "UP".to_string()
        }
    }
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig::up()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn up_config() {
        let c = SchedConfig::up();
        assert_eq!(c.nr_cpus, 1);
        assert!(!c.smp);
        assert_eq!(c.label(), "UP");
    }

    #[test]
    fn smp_labels() {
        assert_eq!(SchedConfig::smp(1).label(), "1P");
        assert_eq!(SchedConfig::smp(2).label(), "2P");
        assert_eq!(SchedConfig::smp(4).label(), "4P");
    }

    #[test]
    fn paper_search_limit_formula() {
        assert_eq!(SchedConfig::up().search_limit(), 5);
        assert_eq!(SchedConfig::smp(1).search_limit(), 5);
        assert_eq!(SchedConfig::smp(2).search_limit(), 6);
        assert_eq!(SchedConfig::smp(4).search_limit(), 7);
    }

    #[test]
    fn explicit_search_limit_overrides() {
        let mut c = SchedConfig::smp(4);
        c.elsc_search_limit = Some(3);
        assert_eq!(c.search_limit(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_panics() {
        SchedConfig::smp(0);
    }

    #[test]
    fn topo_config_follows_the_tree() {
        let c = SchedConfig::topo("2N4C2T".parse().unwrap());
        assert_eq!(c.nr_cpus, 16);
        assert!(c.smp);
        assert_eq!(c.label(), "2N4C2T");
    }

    #[test]
    fn declared_flat_tree_labels_as_plain_smp() {
        let c = SchedConfig::topo(Topology::flat(4));
        assert_eq!(c.label(), "4P", "flat trees must be indistinguishable");
        assert_eq!(SchedConfig::smp(4).topology, Topology::flat(4));
    }
}
