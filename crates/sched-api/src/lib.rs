//! The scheduler interface shared by every run-queue design in this
//! reproduction.
//!
//! The paper's design goal 1 is "keep changes local to the scheduler; do
//! not change current interfaces" (§5). This crate *is* that interface:
//!
//! * [`mod@goodness`] — the selection heuristic of `kernel/sched.c` (§3.3.1),
//!   split into its static and dynamic parts the way ELSC exploits (§5).
//! * [`Scheduler`] — the five entry points the kernel exposes:
//!   `add_to_runqueue`, `del_from_runqueue`, `move_first_runqueue`,
//!   `move_last_runqueue`, and `schedule` itself.
//! * [`resched::reschedule_idle`] — the wakeup placement logic shared by
//!   all schedulers (the paper keeps it unchanged).
//! * [`SchedConfig`] — machine-level knobs the schedulers see (CPU count,
//!   SMP vs UP build, ELSC search limit, declared topology tree).
//! * [`LockPlan`] — the locking regime each scheduler declares for its
//!   run-queue state (global, per-CPU, sharded, or per-NUMA-node), with
//!   [`LockDomains`] handling per-call multi-domain acquisition in
//!   `double_rq_lock` order.
//!
//! The baseline lives in `elsc-sched-linux`, the paper's contribution in
//! the `elsc` crate, and the §8 future-work designs in `elsc-sched-ext`;
//! all are interchangeable behind this trait.
#![deny(missing_docs)]

pub mod config;
pub mod goodness;
pub mod lockplan;
pub mod resched;
pub mod scheduler;

pub use config::SchedConfig;
pub use goodness::{
    goodness, goodness_ignoring_yield, goodness_ignoring_yield_on, lane_goodness_ignoring_yield,
    lane_goodness_ignoring_yield_on, rt_goodness, topo_affinity_bonus, IDLE_GOODNESS,
    LLC_AFFINITY_BONUS, MM_BONUS, PACKAGE_AFFINITY_BONUS, PROC_CHANGE_PENALTY, RT_GOODNESS_BASE,
    SMT_AFFINITY_BONUS,
};
pub use lockplan::{DomainAcquire, DomainLocker, LockDomains, LockPlan, LockScratch};
pub use resched::{reschedule_idle, CpuView, WakeTarget};
pub use scheduler::{
    LearnedInfo, PolicyBackend, PolicyLoadInfo, PolicyViolation, SchedCtx, Scheduler,
};
