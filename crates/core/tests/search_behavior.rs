//! Behavioural tests of the ELSC search loop, including the two
//! *intentional* divergences from the baseline that the paper documents
//! in §5.2 ("we describe how the ELSC scheduler behaves differently").

use elsc::ElscScheduler;
use elsc_ktask::{CpuId, MmId, SchedClass, TaskSpec, TaskState, TaskTable, Tid};
use elsc_sched_api::{SchedConfig, SchedCtx, Scheduler};
use elsc_sched_linux::LinuxScheduler;
use elsc_simcore::{CostModel, CycleMeter};
use elsc_stats::SchedStats;

struct Rig {
    tasks: TaskTable,
    stats: SchedStats,
    meter: CycleMeter,
    costs: CostModel,
    cfg: SchedConfig,
    idle: Tid,
}

impl Rig {
    fn new(cfg: SchedConfig) -> Rig {
        let mut tasks = TaskTable::new();
        let idle = tasks.spawn(&TaskSpec::named("idle").priority(1));
        tasks.task_mut(idle).counter = 0;
        tasks.task_mut(idle).has_cpu = true;
        Rig {
            tasks,
            stats: SchedStats::new(cfg.nr_cpus),
            meter: CycleMeter::new(),
            costs: CostModel::default(),
            cfg,
            idle,
        }
    }

    fn spawn(&mut self, sched: &mut dyn Scheduler, counter: i32, cpu: CpuId, mm: MmId) -> Tid {
        let tid = self.tasks.spawn(&TaskSpec::named("t").mm(mm));
        {
            let mut t = self.tasks.task_mut(tid);
            t.counter = counter;
            t.processor = cpu;
        }
        let mut ctx = SchedCtx {
            tasks: &mut self.tasks,
            stats: &mut self.stats,
            meter: &mut self.meter,
            costs: &self.costs,
            cfg: &self.cfg,
            probe: None,
            locks: None,
        };
        sched.add_to_runqueue(&mut ctx, tid);
        tid
    }

    fn schedule(&mut self, sched: &mut dyn Scheduler, cpu: CpuId, prev: Tid) -> Tid {
        let idle = self.idle;
        let mut ctx = SchedCtx {
            tasks: &mut self.tasks,
            stats: &mut self.stats,
            meter: &mut self.meter,
            costs: &self.costs,
            cfg: &self.cfg,
            probe: None,
            locks: None,
        };
        let next = sched.schedule(&mut ctx, cpu, prev, idle);
        sched.debug_check(&self.tasks);
        next
    }
}

#[test]
fn difference_one_bonus_rich_task_in_lower_list_is_passed_over() {
    // Paper §5.2: "it is possible that a task residing in the second
    // highest priority list, which would receive these bonuses and have
    // had a higher goodness() value than the chosen task, is not run. We
    // decided this behavioral difference is acceptable."
    //
    // strong: static 40 (list 10), last ran on CPU 1, foreign mm -> full
    // goodness from CPU 0 is 40.
    // kin: static 37 (list 9), last ran on CPU 0, shares prev's mm -> full
    // goodness 37 + 15 + 1 = 53. The baseline runs kin; ELSC runs strong.
    let cfg = SchedConfig::smp(2);

    let mut rig = Rig::new(cfg.clone());
    rig.tasks.task_mut(rig.idle).mm = MmId(7);
    let mut elsc = ElscScheduler::new();
    let strong = rig.spawn(&mut elsc, 20, 1, MmId(3));
    let kin = rig.spawn(&mut elsc, 17, 0, MmId(7));
    assert_eq!(rig.schedule(&mut elsc, 0, rig.idle), strong);

    let mut rig = Rig::new(cfg);
    rig.tasks.task_mut(rig.idle).mm = MmId(7);
    let mut reg = LinuxScheduler::new();
    let strong2 = rig.spawn(&mut reg, 20, 1, MmId(3));
    let kin2 = rig.spawn(&mut reg, 17, 0, MmId(7));
    assert_eq!(rig.schedule(&mut reg, 0, rig.idle), kin2);
    let _ = (kin, strong2);
}

#[test]
fn difference_two_lone_yielder_rerun_vs_recalc() {
    // Paper §5.2 end: the baseline recalculates every counter in the
    // system when a yielding task is alone; ELSC re-runs it (when its
    // counter is non-zero).
    let run = |sched: &mut dyn Scheduler, rig: &mut Rig| {
        let y = rig.spawn(sched, 20, 0, MmId(1));
        assert_eq!(rig.schedule(sched, 0, rig.idle), y);
        rig.tasks.task_mut(y).policy.yielded = true;
        assert_eq!(rig.schedule(sched, 0, y), y);
    };
    let mut rig = Rig::new(SchedConfig::up());
    let mut reg = LinuxScheduler::new();
    run(&mut reg, &mut rig);
    assert_eq!(rig.stats.cpu(0).recalc_entries, 1, "baseline recalculates");

    let mut rig = Rig::new(SchedConfig::up());
    let mut elsc = ElscScheduler::new();
    run(&mut elsc, &mut rig);
    assert_eq!(rig.stats.cpu(0).recalc_entries, 0, "ELSC re-runs instead");
    assert_eq!(rig.stats.cpu(0).yield_reruns, 1);
}

#[test]
fn lone_yielder_with_zero_counter_does_recalculate() {
    // The paper's carve-out: ELSC re-runs the yielder only "if it does
    // not have a zero counter value".
    let mut rig = Rig::new(SchedConfig::up());
    let mut elsc = ElscScheduler::new();
    let y = rig.spawn(&mut elsc, 20, 0, MmId(1));
    assert_eq!(rig.schedule(&mut elsc, 0, rig.idle), y);
    rig.tasks.task_mut(y).counter = 0;
    rig.tasks.task_mut(y).policy.yielded = true;
    let next = rig.schedule(&mut elsc, 0, y);
    assert_eq!(next, y);
    assert_eq!(rig.stats.cpu(0).recalc_entries, 1);
    assert_eq!(rig.tasks.task(y).counter, 20, "counter refilled");
}

#[test]
fn search_descends_past_fully_occupied_lists() {
    // SMP: three static classes; the top two lists hold only tasks
    // running on the other CPU, so the scan must descend twice.
    let mut rig = Rig::new(SchedConfig::smp(2));
    let mut elsc = ElscScheduler::new();
    let top = rig.spawn(&mut elsc, 20, 1, MmId(1)); // list 10
    let mid = rig.spawn(&mut elsc, 12, 1, MmId(1)); // list 8
    let low = rig.spawn(&mut elsc, 4, 0, MmId(1)); // list 6
    for t in [top, mid] {
        rig.tasks.task_mut(t).has_cpu = true;
        rig.tasks.task_mut(t).processor = 1;
    }
    assert_eq!(rig.schedule(&mut elsc, 0, rig.idle), low);
}

#[test]
fn examination_respects_the_search_limit_exactly() {
    // With 20 equal tasks and the UP limit of 5 (no mm shortcut because
    // every mm differs from prev's), exactly 5 are examined.
    let mut rig = Rig::new(SchedConfig::up());
    rig.tasks.task_mut(rig.idle).mm = MmId(99);
    let mut elsc = ElscScheduler::new();
    for i in 0..20 {
        rig.spawn(&mut elsc, 20, 0, MmId(1 + i as u32));
    }
    rig.schedule(&mut elsc, 0, rig.idle);
    assert_eq!(rig.stats.cpu(0).tasks_examined, 5);
}

#[test]
fn custom_search_limit_is_honoured() {
    let mut cfg = SchedConfig::up();
    cfg.elsc_search_limit = Some(2);
    let mut rig = Rig::new(cfg);
    rig.tasks.task_mut(rig.idle).mm = MmId(99);
    let mut elsc = ElscScheduler::new();
    for i in 0..10 {
        rig.spawn(&mut elsc, 20, 0, MmId(1 + i as u32));
    }
    rig.schedule(&mut elsc, 0, rig.idle);
    assert_eq!(rig.stats.cpu(0).tasks_examined, 2);
}

#[test]
fn zero_counter_section_ends_the_list_scan() {
    // A list whose usable tasks are exhausted mid-scan: the zero section
    // must stop the walk (those tasks are parked for the next recalc).
    let mut rig = Rig::new(SchedConfig::up());
    rig.tasks.task_mut(rig.idle).mm = MmId(99);
    let mut elsc = ElscScheduler::new();
    let usable = rig.spawn(&mut elsc, 20, 0, MmId(1));
    // Parked zero-counter tasks land in the same list (predicted index).
    for _ in 0..5 {
        rig.spawn(&mut elsc, 0, 0, MmId(2));
    }
    let next = rig.schedule(&mut elsc, 0, rig.idle);
    assert_eq!(next, usable);
    // Only the one usable task was examined; the zero section was not.
    assert_eq!(rig.stats.cpu(0).tasks_examined, 1);
}

#[test]
fn blocked_and_requeued_task_is_reindexed_by_fresh_counter() {
    // A task whose counter changed while it ran must land in the right
    // list when it re-enters the queue.
    let mut rig = Rig::new(SchedConfig::up());
    let mut elsc = ElscScheduler::new();
    let t = rig.spawn(&mut elsc, 20, 0, MmId(1));
    assert_eq!(rig.schedule(&mut elsc, 0, rig.idle), t);
    // Runs for a while: counter drains from 20 to 3 (ticks).
    rig.tasks.task_mut(t).counter = 3;
    // Blocks...
    rig.tasks.task_mut(t).state = TaskState::Interruptible;
    assert_eq!(rig.schedule(&mut elsc, 0, t), rig.idle);
    // ...and wakes: must now be indexed by static goodness 23 -> list 5.
    rig.tasks.task_mut(t).state = TaskState::Running;
    {
        let mut ctx = SchedCtx {
            tasks: &mut rig.tasks,
            stats: &mut rig.stats,
            meter: &mut rig.meter,
            costs: &rig.costs,
            cfg: &rig.cfg,
            probe: None,
            locks: None,
        };
        elsc.add_to_runqueue(&mut ctx, t);
    }
    assert_eq!(rig.tasks.task(t).rq_hint, 5);
    assert_eq!(elsc.table().top(), Some(5));
    elsc.debug_check(&rig.tasks);
}

#[test]
fn rt_region_is_searched_before_other_region() {
    let mut rig = Rig::new(SchedConfig::up());
    let mut elsc = ElscScheduler::new();
    let _other = rig.spawn(&mut elsc, 40, 0, MmId(1));
    let rt = {
        let tid = rig
            .tasks
            .spawn(&TaskSpec::named("rt").realtime(SchedClass::Rr, 3));
        let mut ctx = SchedCtx {
            tasks: &mut rig.tasks,
            stats: &mut rig.stats,
            meter: &mut rig.meter,
            costs: &rig.costs,
            cfg: &rig.cfg,
            probe: None,
            locks: None,
        };
        elsc.add_to_runqueue(&mut ctx, tid);
        tid
    };
    assert_eq!(elsc.table().top(), Some(20), "RT base list");
    assert_eq!(rig.schedule(&mut elsc, 0, rig.idle), rt);
}

#[test]
fn moves_on_marked_running_tasks_are_rejected_upstream() {
    // Contract check: move_* requires in_list; the machine never calls it
    // on a running-marked task. Verify the precondition is detectable.
    let mut rig = Rig::new(SchedConfig::up());
    let mut elsc = ElscScheduler::new();
    let t = rig.spawn(&mut elsc, 20, 0, MmId(1));
    assert_eq!(rig.schedule(&mut elsc, 0, rig.idle), t);
    let task = rig.tasks.task(t);
    assert!(task.on_runqueue() && !task.in_list());
}
