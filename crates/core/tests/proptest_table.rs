//! Property tests on the ELSC table: indexing bounds, the
//! predicted-counter invariant, and structural integrity under arbitrary
//! link/unlink/move sequences.

#![cfg(feature = "proptest")]
// Property-based suites need the external `proptest` crate, which is
// unavailable in offline builds; enable the `proptest` feature after
// restoring the dev-dependency (see CONTRIBUTING.md).
use proptest::prelude::*;

use elsc::table::{index_for, ElscTable, NR_LISTS, RT_BASE_LIST};
use elsc_ktask::recalc::recalculated_counter;
use elsc_ktask::{SchedClass, TaskSpec, TaskTable, Tid};

/// Strategy for arbitrary (but legal) task parameters.
fn task_params() -> impl Strategy<Value = (i32, i32, bool, i32)> {
    // (counter, priority, realtime, rt_priority)
    (0..=80i32, 1..=40i32, any::<bool>(), 0..=99i32)
}

fn spawn_task(
    tasks: &mut TaskTable,
    (counter, priority, rt, rt_priority): (i32, i32, bool, i32),
) -> Tid {
    let spec = if rt {
        TaskSpec::default().realtime(SchedClass::Fifo, rt_priority)
    } else {
        TaskSpec::default().priority(priority)
    };
    let tid = tasks.spawn(&spec);
    let t = tasks.task_mut(tid);
    t.counter = counter.min(2 * t.priority);
    tid
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn index_is_always_in_bounds(p in task_params()) {
        let mut tasks = TaskTable::new();
        let tid = spawn_task(&mut tasks, p);
        let (idx, zero) = index_for(tasks.task(tid));
        prop_assert!(idx < NR_LISTS);
        if p.2 {
            // Real-time tasks live in the ten highest lists...
            prop_assert!(idx >= RT_BASE_LIST);
            prop_assert!(!zero);
        } else {
            // ...ordinary tasks strictly below them.
            prop_assert!(idx < RT_BASE_LIST);
            prop_assert_eq!(zero, tasks.task(tid).counter == 0);
        }
    }

    #[test]
    fn higher_static_goodness_never_lands_lower(
        c1 in 1..=80i32, c2 in 1..=80i32, prio in 1..=40i32
    ) {
        // Within SCHED_OTHER at equal priority, a larger counter must
        // index into an equal-or-higher list: the table is sorted.
        let mut tasks = TaskTable::new();
        let a = spawn_task(&mut tasks, (c1, prio, false, 0));
        let b = spawn_task(&mut tasks, (c2, prio, false, 0));
        let (ia, _) = index_for(tasks.task(a));
        let (ib, _) = index_for(tasks.task(b));
        if tasks.task(a).static_goodness() >= tasks.task(b).static_goodness() {
            prop_assert!(ia >= ib);
        }
    }

    #[test]
    fn predicted_counter_invariant(prio in 1..=40i32) {
        // The heart of the design: a zero-counter task parked at its
        // *predicted* position needs no re-indexing after the global
        // recalculation.
        let mut tasks = TaskTable::new();
        let tid = spawn_task(&mut tasks, (0, prio, false, 0));
        let (before_idx, zero) = index_for(tasks.task(tid));
        prop_assert!(zero);
        // Recalculate, as the scheduler would.
        let t = tasks.task_mut(tid);
        t.counter = recalculated_counter(t);
        let (after_idx, zero_after) = index_for(tasks.task(tid));
        prop_assert!(!zero_after);
        prop_assert_eq!(before_idx, after_idx, "recalc must not move the task");
    }

    #[test]
    fn table_integrity_under_arbitrary_ops(
        params in prop::collection::vec(task_params(), 1..24),
        ops in prop::collection::vec((0usize..24, 0u8..4), 1..120),
    ) {
        let mut tasks = TaskTable::new();
        let mut table = ElscTable::new();
        let tids: Vec<Tid> = params
            .iter()
            .map(|&p| spawn_task(&mut tasks, p))
            .collect();
        let mut linked = vec![false; tids.len()];
        for &(pick, kind) in &ops {
            let i = pick % tids.len();
            let tid = tids[i];
            match kind {
                0 => {
                    if !linked[i] {
                        table.link(&mut tasks, tid);
                        linked[i] = true;
                    }
                }
                1 => {
                    if linked[i] {
                        table.unlink(&mut tasks, tid);
                        linked[i] = false;
                    }
                }
                2 => {
                    if linked[i] {
                        table.move_first(&mut tasks, tid);
                    }
                }
                _ => {
                    if linked[i] {
                        table.move_last(&mut tasks, tid);
                    }
                }
            }
            table.debug_check(&tasks);
        }
    }

    #[test]
    fn top_is_max_linked_usable_list(
        params in prop::collection::vec(task_params(), 1..20),
    ) {
        let mut tasks = TaskTable::new();
        let mut table = ElscTable::new();
        let mut expected_top: Option<usize> = None;
        let mut expected_next: Option<usize> = None;
        for &p in &params {
            let tid = spawn_task(&mut tasks, p);
            let (idx, zero) = index_for(tasks.task(tid));
            table.link(&mut tasks, tid);
            if zero {
                expected_next = Some(expected_next.map_or(idx, |v: usize| v.max(idx)));
            } else {
                expected_top = Some(expected_top.map_or(idx, |v: usize| v.max(idx)));
            }
        }
        prop_assert_eq!(table.top(), expected_top);
        prop_assert_eq!(table.next_top(), expected_next);
    }

    #[test]
    fn unlink_keep_next_preserves_on_queue_appearance(p in task_params()) {
        let mut tasks = TaskTable::new();
        let mut table = ElscTable::new();
        let tid = spawn_task(&mut tasks, p);
        table.link(&mut tasks, tid);
        table.unlink_keep_next(&mut tasks, tid);
        let t = tasks.task(tid);
        prop_assert!(t.on_runqueue());
        prop_assert!(!t.in_list());
        prop_assert_eq!(table.top(), None);
        prop_assert_eq!(table.next_top(), None);
        table.debug_check(&tasks);
    }
}
